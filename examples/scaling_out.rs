//! Scale a model from 1 to N PICASSO-Executors (Fig. 15) and print the
//! per-node throughput and scaling efficiency.
//!
//! ```text
//! cargo run --release --example scaling_out [model] [max_workers]
//! ```

use picasso::experiments::{fig15_scaling, Scale};
use picasso::ModelKind;

fn main() {
    let kind = match std::env::args().nth(1).as_deref() {
        Some("wd") => ModelKind::WideDeep,
        Some("mmoe") => ModelKind::MMoe,
        _ => ModelKind::Can,
    };
    let max: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);

    println!("scaling {} out to {max} EFLOPS nodes ...\n", kind.name());
    println!("  {:>8} {:>12} {:>12}", "workers", "IPS/node", "efficiency");
    let mut base = None;
    let mut w = 1;
    while w <= max {
        let ips = fig15_scaling::ips_at(kind, w, Scale::Quick);
        let b = *base.get_or_insert(ips);
        println!("  {:>8} {:>12.0} {:>11.0}%", w, ips, ips / b * 100.0);
        w *= 2;
    }
}
