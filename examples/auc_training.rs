//! Really train a CTR model (manual backprop on the CPU) under synchronous
//! and asynchronous-stale semantics and compare held-out AUC — the Table
//! III accuracy experiment.
//!
//! ```text
//! cargo run --release --example auc_training
//! ```

use picasso::train::{auc_datasets, train_ctr, SyncMode, TrainConfig, Variant};

fn main() {
    let data = auc_datasets::alibaba_like();
    println!("training DIN-style attention model on {} ...\n", data.name);
    println!("  {:<22} {:>8} {:>12}", "system", "AUC", "final loss");
    for (name, mode) in [
        ("PICASSO (sync)", SyncMode::Synchronous),
        ("TF-PS (staleness 2)", SyncMode::AsyncStale { staleness: 2 }),
        ("TF-PS (staleness 6)", SyncMode::AsyncStale { staleness: 6 }),
    ] {
        let cfg = TrainConfig {
            steps: 150,
            batch: 256,
            mode,
            ..TrainConfig::default()
        };
        let out = train_ctr(Variant::Attention, &data, &cfg);
        println!("  {:<22} {:>8.4} {:>12.4}", name, out.auc, out.final_loss);
    }
    println!("\nsynchronous updates preserve accuracy; staleness costs AUC.");
}
