//! Drive the real HybridHash implementation (Algorithm 1) over a skewed ID
//! stream and watch the hot set converge, then sweep the Hot-storage size
//! like Table VI.
//!
//! ```text
//! cargo run --release --example hybridhash_cache
//! ```

use picasso::data::{IdDistribution, IdSampler};
use picasso::embedding::{EmbeddingTable, HybridHash, HybridHashConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let vocab = 200_000u64;
    let dim = 16usize;
    let sampler = IdSampler::new(vocab, IdDistribution::Zipf { s: 0.9 });

    println!("HybridHash over zipf(0.9), vocab {vocab}, dim {dim}:");
    println!(
        "  {:<12} {:>10} {:>10} {:>9}",
        "hot bytes", "hot rows", "flushes", "hit ratio"
    );
    for hot_mb in [1u64, 4, 16, 64] {
        let mut cache = HybridHash::new(
            EmbeddingTable::new(dim, 7),
            HybridHashConfig {
                warmup_iters: 50,
                flush_iters: 50,
                hot_bytes: hot_mb << 20,
            },
        );
        let mut rng = StdRng::seed_from_u64(13);
        let mut ids = Vec::new();
        let mut out = Vec::new();
        for _ in 0..400 {
            ids.clear();
            sampler.sample_into(&mut rng, 4096, &mut ids);
            out.clear();
            cache.lookup_batch(&ids, &mut out);
        }
        let stats = cache.stats();
        println!(
            "  {:<12} {:>10} {:>10} {:>8.1}%",
            format!("{hot_mb} MB"),
            cache.hot_rows(),
            stats.flushes,
            stats.hit_ratio() * 100.0,
        );
    }
    println!(
        "\n(top-20% coverage of this stream: {:.0}%)",
        sampler.coverage_of_top(0.2) * 100.0
    );
}
