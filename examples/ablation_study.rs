//! The Table IV ablation: remove packing / interleaving / caching one at a
//! time from full PICASSO and watch the throughput drop.
//!
//! ```text
//! cargo run --release --example ablation_study [wd|can|mmoe]
//! ```

use picasso::experiments::{tab04_ablation, Scale};
use picasso::ModelKind;

fn main() {
    let kind = match std::env::args().nth(1).as_deref() {
        Some("can") => ModelKind::Can,
        Some("mmoe") => ModelKind::MMoe,
        _ => ModelKind::WideDeep,
    };
    println!("ablating {} on the EFLOPS cluster ...\n", kind.name());
    let rows = tab04_ablation::ablate(kind, Scale::Quick);
    let full = rows[0].report.ips_per_node;
    println!(
        "  {:<18} {:>10} {:>8} {:>12} {:>9}",
        "config", "IPS", "delta", "PCIe GB/s", "SM util"
    );
    for row in &rows {
        println!(
            "  {:<18} {:>10.0} {:>7.0}% {:>12.2} {:>8.0}%",
            row.label,
            row.report.ips_per_node,
            (row.report.ips_per_node / full - 1.0) * 100.0,
            row.report.pcie_gbps,
            row.report.sm_util_pct,
        );
    }
}
