//! Export a Chrome/Perfetto trace of one training iteration schedule for
//! PICASSO and the XDL baseline — open the JSON files in
//! https://ui.perfetto.dev to see the pulse-like baseline and the
//! interleaved PICASSO schedule side by side.
//!
//! ```text
//! cargo run --release --example export_trace [model]
//! ```

use picasso::embedding::{PackPlan, PlannerConfig};
use picasso::exec::{observe, simulate, SimConfig, Strategy};
use picasso::graph::{d_packing, k_packing};
use picasso::obs::{prometheus, MetricsRegistry};
use picasso::sim::{to_chrome_trace, MachineSpec};
use picasso::ModelKind;
use std::collections::BTreeMap;

fn main() {
    let kind = match std::env::args().nth(1).as_deref() {
        Some("can") => ModelKind::Can,
        Some("mmoe") => ModelKind::MMoe,
        _ => ModelKind::WideDeep,
    };
    let data = kind.default_dataset();
    let cfg = SimConfig {
        batch_per_executor: 8192,
        iterations: 2,
        machines: 2,
        machine: MachineSpec::eflops(),
        quantized_comm: false,
    };

    // Baseline: the unoptimized graph under synchronous PS.
    let base_spec = kind.build(&data);
    let base = simulate(&base_spec, Strategy::PsSync { servers: 1 }, &cfg).unwrap();
    std::fs::write("trace_baseline.json", to_chrome_trace(&base.result)).unwrap();

    // PICASSO: packed graph under the hybrid strategy.
    let plan = PackPlan::plan(&data, &PlannerConfig::default());
    let assign: BTreeMap<usize, usize> = plan
        .packs
        .iter()
        .enumerate()
        .flat_map(|(p, pack)| pack.tables.iter().map(move |&t| (t, p)))
        .collect();
    let mut packed = k_packing::apply(&d_packing::apply(&base_spec, &assign));
    packed.micro_batches = 3;
    let picasso = simulate(&packed, Strategy::Hybrid, &cfg).unwrap();
    std::fs::write("trace_picasso.json", to_chrome_trace(&picasso.result)).unwrap();

    // Metrics registry dump of the PICASSO run in Prometheus text format.
    let registry = MetricsRegistry::new();
    observe::export_metrics(&picasso, &registry);
    std::fs::write(
        "metrics_picasso.prom",
        prometheus::render(&registry.snapshot()),
    )
    .unwrap();

    println!("{}:", kind.name());
    println!(
        "  baseline (sync PS): {:.0} IPS/node, {} tasks -> trace_baseline.json",
        base.ips_per_node(),
        base.result.records.len()
    );
    println!(
        "  PICASSO (packed):   {:.0} IPS/node, {} tasks -> trace_picasso.json",
        picasso.ips_per_node(),
        picasso.result.records.len()
    );
    println!("  metrics registry    -> metrics_picasso.prom");
    println!("open both traces in https://ui.perfetto.dev to compare the schedules");
}
