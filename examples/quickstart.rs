//! Quickstart: train one model under PICASSO and a baseline, and print the
//! headline comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use picasso::{Framework, ModelKind, PicassoConfig, Session};

fn main() {
    // DLRM on the Criteo-shaped benchmark dataset, one EFLOPS node.
    let config = PicassoConfig::new().iterations(4);
    let session = Session::new(ModelKind::Dlrm, config);

    println!("training DLRM under full PICASSO ...");
    let picasso = session.run_picasso();
    println!("training DLRM under asynchronous TF-PS ...");
    let baseline = session.run_framework(Framework::TfPs);

    let p = &picasso.report;
    let b = &baseline.report;
    println!();
    println!("                      PICASSO      TF-PS");
    println!(
        "  IPS / node        {:>9.0}  {:>9.0}",
        p.ips_per_node, b.ips_per_node
    );
    println!(
        "  GPU SM util       {:>8.0}%  {:>8.0}%",
        p.sm_util_pct, b.sm_util_pct
    );
    println!(
        "  PCIe GB/s         {:>9.2}  {:>9.2}",
        p.pcie_gbps, b.pcie_gbps
    );
    println!(
        "  batch/executor    {:>9}  {:>9}",
        p.batch_per_executor, b.batch_per_executor
    );
    println!(
        "  graph operations  {:>9}  {:>9}",
        p.op_stats.total_ops, b.op_stats.total_ops
    );
    println!();
    println!(
        "  speedup: {:.1}x   (packing to {} chains, {} groups, {} micro-batches, {:.0}% cache hits)",
        p.ips_per_node / b.ips_per_node,
        picasso.spec.chains.len(),
        p.groups,
        p.micro_batches,
        p.cache_hit_ratio * 100.0,
    );
    if let (Some(pb), Some(bb)) = (p.bottleneck(), b.bottleneck()) {
        println!("  bottleneck: {bb} (TF-PS)  ->  {pb} (PICASSO)");
    }
}
