//! Sweep test: every model in the zoo trains under PICASSO and the XDL
//! baseline on its default dataset, and PICASSO always wins. This is the
//! Table VII claim generalized across datasets.

use picasso::exec::WarmupConfig;
use picasso::{Framework, ModelKind, PicassoConfig, Session};

fn tiny() -> PicassoConfig {
    PicassoConfig {
        machines: 1,
        iterations: 2,
        batch_per_executor: Some(1024),
        warmup: WarmupConfig {
            batches: 2,
            batch_size: 128,
            max_vocab: 500,
            hot_bytes: 1 << 24,
            seed: 9,
        },
        ..PicassoConfig::default()
    }
}

#[test]
fn every_model_improves_under_picasso() {
    for kind in ModelKind::ALL {
        let session = Session::new(kind, tiny());
        let picasso = session.run_framework(Framework::Picasso).report;
        let xdl = session.run_framework(Framework::Xdl).report;
        assert!(
            picasso.ips_per_node > xdl.ips_per_node,
            "{}: PICASSO {:.0} <= XDL {:.0}",
            kind.name(),
            picasso.ips_per_node,
            xdl.ips_per_node
        );
        assert!(
            picasso.op_stats.total_ops < xdl.op_stats.total_ops,
            "{}: packing must shrink the graph",
            kind.name()
        );
        assert!(picasso.ips_per_node.is_finite());
        assert!(picasso.sm_util_pct >= 0.0 && picasso.sm_util_pct <= 100.0);
    }
}

#[test]
fn every_model_reports_a_bottleneck() {
    for kind in [
        ModelKind::Lr,
        ModelKind::Dien,
        ModelKind::MMoe,
        ModelKind::Can,
    ] {
        let report = Session::new(kind, tiny()).report();
        assert!(
            report.bottleneck().is_some(),
            "{}: critical path must attribute the makespan",
            kind.name()
        );
    }
}
