//! Integration tests of the §V extensions: quantized communication,
//! preset-excluded embeddings, and the Chrome-trace exporter.

use picasso::experiments::Scale;
use picasso::sim::to_chrome_trace;
use picasso::{ModelKind, PicassoConfig, Session};

fn quick() -> PicassoConfig {
    let mut cfg: PicassoConfig = Scale::Quick.eflops_config();
    cfg.machines = 2;
    cfg.iterations = 3;
    cfg.batch_per_executor = Some(4096);
    cfg
}

#[test]
fn quantized_communication_speeds_up_the_comm_bound_model() {
    let full = Session::new(ModelKind::Can, quick()).report();
    let quant = Session::new(ModelKind::Can, quick().quantized_communication(true)).report();
    assert!(
        quant.ips_per_node > full.ips_per_node,
        "halving wire bytes must help CAN: {} vs {}",
        quant.ips_per_node,
        full.ips_per_node
    );
    // And it halves the measured network consumption per instance.
    let full_bytes_per_inst = full.network_gbps / full.ips_per_node;
    let quant_bytes_per_inst = quant.network_gbps / quant.ips_per_node;
    assert!(
        quant_bytes_per_inst < full_bytes_per_inst * 0.75,
        "wire bytes/instance should drop markedly"
    );
}

#[test]
fn excluded_tables_do_not_change_workload_volume() {
    let base = Session::new(ModelKind::Din, quick()).run_picasso();
    let excl = Session::new(ModelKind::Din, quick().exclude_tables(vec![0, 1, 2])).run_picasso();
    // Same data volume either way; exclusion only relaxes ordering.
    assert_eq!(
        base.spec.embedding_bytes_per_instance(),
        excl.spec.embedding_bytes_per_instance()
    );
    assert!(excl.spec.chains.iter().any(|c| c.interleave_excluded));
    assert!(excl.report.ips_per_node > 0.0);
}

#[test]
fn simulation_exports_a_chrome_trace() {
    use picasso::exec::{simulate, SimConfig, Strategy};
    use picasso::sim::MachineSpec;
    let data = ModelKind::Dlrm.default_dataset();
    let spec = ModelKind::Dlrm.build(&data);
    let out = simulate(
        &spec,
        Strategy::Hybrid,
        &SimConfig {
            batch_per_executor: 1024,
            iterations: 2,
            machines: 1,
            machine: MachineSpec::eflops(),
            quantized_comm: false,
        },
    )
    .unwrap();
    let trace = to_chrome_trace(&out.result);
    assert!(trace.contains("\"traceEvents\""));
    assert!(
        trace.matches("\"ph\":\"X\"").count() > 100,
        "real runs have many events"
    );
    assert!(trace.contains("gpu0/sm") || trace.contains("node0/gpu0/sm"));
}
