//! Integration tests pinning the paper's qualitative claims, one per
//! experiment family (the full tables live in `picasso-core`'s experiment
//! modules; these assert the cross-cutting shapes).

use picasso::data::{BatchGenerator, DatasetSpec, FrequencyStats};
use picasso::experiments::Scale;
use picasso::graph::graph_stats;
use picasso::train::{auc_datasets, train_ctr, SyncMode, TrainConfig, Variant};
use picasso::{Framework, ModelKind, PicassoConfig, Session};

#[test]
fn fig3_claim_skewed_ids_cover_most_data() {
    // 20% of IDs cover 70% on average across the five datasets.
    let mut avg = 0.0;
    for data in [
        DatasetSpec::criteo(),
        DatasetSpec::alibaba(),
        DatasetSpec::product1(),
        DatasetSpec::product2(),
        DatasetSpec::product3(),
    ] {
        let shared = data.shared();
        let mut gen = BatchGenerator::with_max_vocab(shared.clone(), 3, 10_000);
        let mut stats = FrequencyStats::new();
        for _ in 0..4 {
            let b = gen.next_batch(512);
            for f in &b.fields {
                stats.record_all(&f.ids);
            }
        }
        avg += stats.coverage_of_top(0.2) / 5.0;
    }
    assert!(
        (0.55..0.95).contains(&avg),
        "average top-20% coverage {avg:.2} outside the Fig. 3 band"
    );
}

#[test]
fn tab5_claim_packing_collapses_operations() {
    let data = DatasetSpec::product2();
    let base = ModelKind::Can.build(&data);
    let session = Session::new(ModelKind::Can, {
        let mut c: PicassoConfig = Scale::Quick.eflops_config();
        c.machines = 1;
        c.batch_per_executor = Some(1024);
        c
    });
    let packed = session.run_picasso().spec;
    let b = graph_stats(&base);
    let p = graph_stats(&packed);
    assert_eq!(b.packed_embeddings, 364);
    assert!(p.packed_embeddings <= 60);
    let ratio = p.total_ops as f64 / b.total_ops as f64;
    assert!(ratio < 0.35, "op ratio {ratio:.3}");
}

#[test]
fn tab3_claim_sync_training_preserves_auc() {
    let data = auc_datasets::criteo_like();
    let sync = train_ctr(
        Variant::DotDeep,
        &data,
        &TrainConfig {
            steps: 80,
            ..TrainConfig::default()
        },
    );
    let stale = train_ctr(
        Variant::DotDeep,
        &data,
        &TrainConfig {
            steps: 80,
            mode: SyncMode::AsyncStale { staleness: 4 },
            ..TrainConfig::default()
        },
    );
    assert!(sync.auc > 0.62, "sync AUC {:.3}", sync.auc);
    assert!(
        stale.auc <= sync.auc + 0.015,
        "stale {:.3} vs sync {:.3}",
        stale.auc,
        sync.auc
    );
}

#[test]
fn tab7_claim_picasso_lifts_batch_and_throughput() {
    let data = DatasetSpec::product2().shared();
    let mut cfg: PicassoConfig = Scale::Quick.eflops_config();
    cfg.machines = 2;
    let session = Session::with_dataset(ModelKind::Dcn, data, cfg);
    let xdl = session.run_framework(Framework::Xdl).report;
    let picasso = session.run_framework(Framework::Picasso).report;
    assert!(picasso.batch_per_executor >= xdl.batch_per_executor);
    assert!(picasso.ips_per_node > xdl.ips_per_node);
}
