//! Workspace-level integration tests: the headline claims of the paper,
//! exercised through the top-level API across every crate.

use picasso::experiments::Scale;
use picasso::{Framework, ModelKind, Optimizations, PicassoConfig, Session, Strategy};

fn quick(machines: usize) -> PicassoConfig {
    let mut cfg = Scale::Quick.eflops_config();
    cfg.machines = machines;
    cfg.iterations = 3;
    cfg.batch_per_executor = Some(4096);
    cfg
}

#[test]
fn picasso_beats_all_baselines_on_every_representative_workload() {
    for kind in [ModelKind::WideDeep, ModelKind::Can, ModelKind::MMoe] {
        let session = Session::new(kind, quick(2));
        let picasso = session.run_picasso().report.ips_per_node;
        for fw in [
            Framework::TfPs,
            Framework::Xdl,
            Framework::Horovod,
            Framework::PyTorch,
        ] {
            let baseline = session.run_framework(fw).report.ips_per_node;
            assert!(
                picasso > baseline,
                "{}: PICASSO {picasso:.0} <= {} {baseline:.0}",
                kind.name(),
                fw.name()
            );
        }
    }
}

#[test]
fn speedup_over_ps_baseline_is_substantial() {
    // The paper reports 1.9x-10x over TF-PS and ~4x over sync-PS XDL.
    let session = Session::new(ModelKind::Can, quick(4));
    let picasso = session.run_picasso().report.ips_per_node;
    let tfps = session.run_framework(Framework::TfPs).report.ips_per_node;
    let speedup = picasso / tfps;
    assert!(
        speedup > 1.9,
        "PICASSO should be at least 1.9x TF-PS, got {speedup:.2}x"
    );
}

#[test]
fn utilization_rises_with_picasso() {
    let session = Session::new(ModelKind::MMoe, quick(2));
    let picasso = session.run_picasso().report;
    let xdl = session.run_framework(Framework::Xdl).report;
    assert!(
        picasso.sm_util_pct > xdl.sm_util_pct,
        "PICASSO SM util {:.0}% <= XDL {:.0}%",
        picasso.sm_util_pct,
        xdl.sm_util_pct
    );
}

#[test]
fn optimizations_compose_monotonically() {
    // Full PICASSO >= any single-optimization removal >= hybrid base.
    let session = Session::new(ModelKind::WideDeep, quick(2));
    let full = session.run_picasso().report.ips_per_node;
    let base = session
        .run_custom(Strategy::Hybrid, Optimizations::none(), "base")
        .report
        .ips_per_node;
    for o in [
        Optimizations::without_packing(),
        Optimizations::without_interleaving(),
        Optimizations::without_caching(),
    ] {
        let partial = session
            .run_custom(Strategy::Hybrid, o, "partial")
            .report
            .ips_per_node;
        assert!(
            partial <= full * 1.03,
            "partial {partial:.0} > full {full:.0}"
        );
        // Removing packing leaves interleaving running over a fragmentary
        // graph, whose extra dispatch can eat into the hybrid baseline, so
        // the lower bound is loose.
        assert!(
            partial >= base * 0.6,
            "removing one optimization should not collapse below the unoptimized hybrid: {partial:.0} < {base:.0}"
        );
    }
}

#[test]
fn packed_graph_preserves_workload_volume() {
    // Packing must not change how much embedding data moves per instance.
    let session = Session::new(ModelKind::Can, quick(2));
    let full = session.run_picasso();
    let base = session.run_framework(Framework::PicassoBase);
    let a = full.spec.embedding_bytes_per_instance();
    let b = base.spec.embedding_bytes_per_instance();
    assert!((a - b).abs() < b * 1e-9, "packed {a} vs baseline {b}");
    assert!(full.spec.chains.len() < base.spec.chains.len());
}

#[test]
fn reports_are_deterministic() {
    let session = Session::new(ModelKind::Dlrm, quick(2));
    let a = session.run_picasso().report;
    let b = session.run_picasso().report;
    assert_eq!(a.ips_per_node, b.ips_per_node);
    assert_eq!(a.sm_util_pct, b.sm_util_pct);
    assert_eq!(a.op_stats.total_ops, b.op_stats.total_ops);
}
