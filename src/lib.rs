//! # PICASSO (reproduction)
//!
//! A Rust reproduction of *"PICASSO: Unleashing the Potential of GPU-centric
//! Training for Wide-and-deep Recommender Systems"* (ICDE 2022): the
//! packing / interleaving / caching training-system optimizations, the WDL
//! model zoo, the distributed execution engine over a discrete-event
//! hardware simulator, real embedding and HybridHash substrates, and a CPU
//! trainer for the accuracy experiments.
//!
//! This crate re-exports [`picasso_core`]; see that crate (and `DESIGN.md`
//! in the repository root) for the architecture.
//!
//! ```no_run
//! use picasso::{ModelKind, PicassoConfig, Session};
//!
//! let session = Session::new(ModelKind::Can, PicassoConfig::new().machines(16));
//! println!("{:.0} instances/sec/node", session.report().ips_per_node);
//! ```

#![warn(missing_docs)]

pub use picasso_core::*;
