//! Constructors for feature-interaction modules.
//!
//! Each constructor derives per-instance FLOPs, activation bytes, parameter
//! counts, and kernel-launch multiplicities from the module's architectural
//! shape, following the published architectures (FM, DCN cross layers, CIN,
//! DIN attention, DIEN GRU, Transformer blocks, CAN co-action units, MoE
//! experts and gates, ATBRG graph aggregation).

use picasso_graph::{InteractionModule, ModuleKind};

/// A plain linear (LR / wide) term over concatenated inputs.
pub fn linear(input_fields: Vec<u32>, width: usize) -> InteractionModule {
    InteractionModule {
        kind: ModuleKind::Linear,
        input_fields,
        flops_per_instance: 2.0 * width as f64,
        bytes_per_instance: width as f64 * 4.0,
        params: width as f64 + 1.0,
        output_width: 1,
        micro_ops_forward: 8,
    }
}

/// A DNN tower: fully-connected layers over a concatenated input.
pub fn dnn_tower(
    input_fields: Vec<u32>,
    input_width: usize,
    widths: &[usize],
) -> InteractionModule {
    assert!(!widths.is_empty());
    let mut flops = 0.0;
    let mut params = 0.0;
    let mut bytes = input_width as f64 * 4.0;
    let mut prev = input_width;
    for &w in widths {
        flops += 2.0 * prev as f64 * w as f64;
        params += (prev * w + w) as f64;
        bytes += w as f64 * 8.0;
        prev = w;
    }
    InteractionModule {
        kind: ModuleKind::DnnTower,
        input_fields,
        flops_per_instance: flops,
        bytes_per_instance: bytes,
        params,
        output_width: *widths.last().unwrap(),
        micro_ops_forward: 12 * widths.len() as u32,
    }
}

/// Factorization-machine second-order interaction over `n_fields` embeddings
/// of dimension `dim` (the O(n·d) sum-of-squares formulation).
pub fn fm(input_fields: Vec<u32>, n_fields: usize, dim: usize) -> InteractionModule {
    let nd = n_fields as f64 * dim as f64;
    InteractionModule {
        kind: ModuleKind::Fm,
        input_fields,
        flops_per_instance: 4.0 * nd + 2.0 * dim as f64,
        bytes_per_instance: nd * 8.0,
        params: 0.0,
        output_width: dim,
        micro_ops_forward: 14,
    }
}

/// DCN cross network of `depth` layers over width `width`.
pub fn cross(input_fields: Vec<u32>, width: usize, depth: usize) -> InteractionModule {
    assert!(depth >= 1);
    InteractionModule {
        kind: ModuleKind::Cross,
        input_fields,
        flops_per_instance: depth as f64 * 4.0 * width as f64,
        bytes_per_instance: depth as f64 * width as f64 * 8.0,
        params: depth as f64 * 2.0 * width as f64,
        output_width: width,
        micro_ops_forward: 10 * depth as u32,
    }
}

/// xDeepFM compressed interaction network: `layers` CIN layers with `maps`
/// feature maps over `n_fields` embeddings of dimension `dim`.
pub fn cin(
    input_fields: Vec<u32>,
    n_fields: usize,
    dim: usize,
    layers: usize,
    maps: usize,
) -> InteractionModule {
    assert!(layers >= 1 && maps >= 1);
    let per_layer = 2.0 * (n_fields * maps * dim) as f64 * maps as f64;
    InteractionModule {
        kind: ModuleKind::Cin,
        input_fields,
        flops_per_instance: layers as f64 * per_layer,
        bytes_per_instance: layers as f64 * (maps * dim) as f64 * 8.0,
        params: layers as f64 * (n_fields * maps * maps) as f64,
        output_width: layers * maps,
        micro_ops_forward: 22 * layers as u32,
    }
}

/// DIN target attention over a behaviour sequence of average length
/// `seq_len` with embedding dimension `dim` (per-position scoring MLP
/// 4d → 80 → 40 → 1).
pub fn attention(input_fields: Vec<u32>, dim: usize, seq_len: f64) -> InteractionModule {
    let d = dim as f64;
    let per_pos = 2.0 * (4.0 * d * 80.0 + 80.0 * 40.0 + 40.0);
    InteractionModule {
        kind: ModuleKind::Attention,
        input_fields,
        flops_per_instance: seq_len * per_pos,
        bytes_per_instance: seq_len * d * 8.0,
        params: 4.0 * d * 80.0 + 80.0 * 40.0 + 40.0,
        output_width: dim,
        micro_ops_forward: 36,
    }
}

/// DIEN interest-evolution GRU over a sequence: `seq_len` recurrent steps of
/// hidden size `dim`. Recurrence launches kernels per step, making this the
/// most fragmentary module in the zoo.
pub fn gru(input_fields: Vec<u32>, dim: usize, seq_len: f64) -> InteractionModule {
    let d = dim as f64;
    InteractionModule {
        kind: ModuleKind::Gru,
        input_fields,
        flops_per_instance: seq_len * 6.0 * d * d * 2.0,
        bytes_per_instance: seq_len * d * 12.0,
        params: 6.0 * d * d,
        output_width: dim,
        micro_ops_forward: (5.0 * seq_len.max(1.0)) as u32,
    }
}

/// A Transformer block (DSIN session interest extractor) over `seq_len`
/// positions of width `dim`.
pub fn transformer(input_fields: Vec<u32>, dim: usize, seq_len: f64) -> InteractionModule {
    let d = dim as f64;
    let t = seq_len;
    let qkv = 3.0 * 2.0 * t * d * d;
    let attn = 2.0 * 2.0 * t * t * d;
    let ffn = 2.0 * 2.0 * t * d * 4.0 * d;
    InteractionModule {
        kind: ModuleKind::Transformer,
        input_fields,
        flops_per_instance: qkv + attn + ffn,
        bytes_per_instance: t * d * 16.0 + t * t * 4.0,
        params: 3.0 * d * d + 8.0 * d * d,
        output_width: dim,
        micro_ops_forward: 30,
    }
}

/// A CAN feature co-action unit between a behaviour sequence (length
/// `seq_len`, dim `dim`) and a target feature: the target embedding is
/// reshaped into micro-MLP weights applied to every sequence position.
pub fn co_action(input_fields: Vec<u32>, dim: usize, seq_len: f64) -> InteractionModule {
    let d = dim as f64;
    InteractionModule {
        kind: ModuleKind::CoAction,
        input_fields,
        flops_per_instance: seq_len * 2.0 * d * d * 2.0,
        bytes_per_instance: seq_len * d * 8.0,
        params: 0.0, // weights come from embeddings, not dense parameters
        output_width: dim,
        micro_ops_forward: 24,
    }
}

/// One MoE expert tower.
pub fn expert(input_fields: Vec<u32>, input_width: usize, widths: &[usize]) -> InteractionModule {
    let mut m = dnn_tower(input_fields, input_width, widths);
    m.kind = ModuleKind::Expert;
    m
}

/// An MoE/STAR gating network over `n_experts` experts.
pub fn gate(input_fields: Vec<u32>, input_width: usize, n_experts: usize) -> InteractionModule {
    InteractionModule {
        kind: ModuleKind::Gate,
        input_fields,
        flops_per_instance: 2.0 * input_width as f64 * n_experts as f64 + 3.0 * n_experts as f64,
        bytes_per_instance: (input_width + n_experts) as f64 * 4.0,
        params: (input_width * n_experts + n_experts) as f64,
        output_width: n_experts,
        micro_ops_forward: 10,
    }
}

/// ATBRG adaptive target-behaviour relational graph aggregation: samples
/// `neighbors` graph neighbours per instance and aggregates their
/// embeddings; dominated by irregular memory access and host-side graph
/// walking.
pub fn graph_agg(input_fields: Vec<u32>, dim: usize, neighbors: usize) -> InteractionModule {
    let d = dim as f64;
    let n = neighbors as f64;
    InteractionModule {
        kind: ModuleKind::GraphAgg,
        input_fields,
        flops_per_instance: n * 2.0 * d * d,
        bytes_per_instance: n * d * 12.0,
        params: 2.0 * d * d,
        output_width: dim,
        micro_ops_forward: 60,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dnn_tower_matches_manual_count() {
        let m = dnn_tower(vec![0], 100, &[50, 10]);
        assert_eq!(m.flops_per_instance, 2.0 * (100.0 * 50.0 + 50.0 * 10.0));
        assert_eq!(m.params, (100 * 50 + 50 + 50 * 10 + 10) as f64);
        assert_eq!(m.output_width, 10);
        assert_eq!(m.micro_ops_forward, 24);
    }

    #[test]
    fn gru_is_fragmentary() {
        let g = gru(vec![0], 16, 100.0);
        let a = attention(vec![0], 16, 100.0);
        assert!(
            g.micro_ops_forward > 10 * a.micro_ops_forward,
            "recurrence launches per-step kernels"
        );
    }

    #[test]
    fn attention_flops_scale_with_seq_len() {
        let short = attention(vec![0], 8, 10.0);
        let long = attention(vec![0], 8, 100.0);
        assert!((long.flops_per_instance / short.flops_per_instance - 10.0).abs() < 1e-9);
    }

    #[test]
    fn co_action_has_no_dense_params() {
        let m = co_action(vec![0, 1], 16, 50.0);
        assert_eq!(m.params, 0.0);
        assert!(m.flops_per_instance > 0.0);
    }

    #[test]
    fn transformer_has_quadratic_attention_term() {
        let t10 = transformer(vec![0], 8, 10.0);
        let t100 = transformer(vec![0], 8, 100.0);
        // More than linear growth in seq_len.
        assert!(t100.flops_per_instance > 10.0 * t10.flops_per_instance);
    }

    #[test]
    fn gate_output_is_expert_count() {
        let g = gate(vec![0], 64, 71);
        assert_eq!(g.output_width, 71);
        assert!(g.params > 0.0);
    }

    #[test]
    fn cross_scales_linearly_in_depth() {
        let c1 = cross(vec![0], 128, 1);
        let c3 = cross(vec![0], 128, 3);
        assert!((c3.flops_per_instance / c1.flops_per_instance - 3.0).abs() < 1e-9);
        assert_eq!(c3.micro_ops_forward, 30);
    }

    #[test]
    fn cin_and_graph_agg_are_positive() {
        let c = cin(vec![0], 26, 16, 3, 100);
        assert!(c.flops_per_instance > 0.0 && c.params > 0.0);
        let g = graph_agg(vec![0], 16, 20);
        assert!(g.bytes_per_instance > 0.0);
        assert_eq!(g.micro_ops_forward, 60);
    }
}
