//! # picasso-models
//!
//! The WDL model zoo: operator-graph constructors for the fourteen
//! recommendation models the paper evaluates (Tables III and VII), from LR
//! through DLRM/DeepFM/DIN/DIEN to CAN, STAR and the 71-expert MMoE
//! variant, plus the interaction-module building blocks they share.
//!
//! ```
//! use picasso_data::DatasetSpec;
//! use picasso_models::ModelKind;
//!
//! let data = DatasetSpec::criteo();
//! let spec = ModelKind::Dlrm.build(&data);
//! assert_eq!(spec.chains.len(), 26); // one chain per embedding table
//! ```

#![warn(missing_docs)]

pub mod modules;
pub mod zoo;

pub use zoo::{all_fields, assemble, baseline_chains, tables, width_of, ModelKind, TableInfo};
