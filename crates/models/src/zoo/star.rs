//! STAR \[25\]: star-topology adaptive recommender for multi-domain CTR.
//!
//! A shared centred tower plus per-domain towers whose weights multiply the
//! shared ones, with a domain gate — multi-scenario serving in one model.

use crate::modules;
use crate::zoo::{all_fields, assemble, width_of};
use picasso_data::DatasetSpec;
use picasso_graph::{MlpSpec, WdlSpec};

/// Number of business domains sharing the model.
const DOMAINS: usize = 4;

/// Builds the unoptimized STAR graph.
pub fn build(data: &DatasetSpec) -> WdlSpec {
    let fields = all_fields(data);
    let width = width_of(data, &fields);
    let mut mods = Vec::new();
    let shared = modules::dnn_tower(fields.clone(), width, &[1024, 512, 256]);
    let out_w = shared.output_width;
    mods.push(shared);
    for _ in 0..DOMAINS {
        mods.push(modules::dnn_tower(fields.clone(), width, &[1024, 512, 256]));
    }
    mods.push(modules::gate(fields, width, DOMAINS + 1));
    assemble("STAR", data, mods, MlpSpec::new(out_w, vec![128, 1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_replicates_towers_per_domain() {
        let spec = build(&DatasetSpec::product2());
        assert_eq!(spec.modules.len(), DOMAINS + 2);
        // Each domain tower carries full parameters: heavy dense part.
        assert!(spec.dense_params() > 1e7);
        spec.validate().unwrap();
    }
}
