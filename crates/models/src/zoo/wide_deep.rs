//! Wide & Deep \[2\]: a wide linear term plus a deep DNN tower.
//!
//! The paper's I/O-&-memory-intensive representative (Fig. 5): hundreds of
//! feature fields feed a comparatively small dense part, so exposed data
//! transmission and embedding lookup dominate the iteration.

use crate::modules;
use crate::zoo::{all_fields, assemble, width_of};
use picasso_data::DatasetSpec;
use picasso_graph::{MlpSpec, WdlSpec};

/// Builds the unoptimized Wide & Deep graph.
pub fn build(data: &DatasetSpec) -> WdlSpec {
    let fields = all_fields(data);
    let width = width_of(data, &fields);
    let wide = modules::linear(fields.clone(), width);
    let deep = modules::dnn_tower(fields, width, &[512, 256]);
    let mlp_input = 1 + deep.output_width;
    assemble(
        "W&D",
        data,
        vec![wide, deep],
        MlpSpec::new(mlp_input, vec![64, 1]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wd_has_wide_and_deep_parts() {
        let spec = build(&DatasetSpec::product1());
        assert_eq!(spec.modules.len(), 2);
        assert!(spec.dense_params() > 1e6, "deep tower carries parameters");
        assert_eq!(spec.chains.len(), 204);
        spec.validate().unwrap();
    }
}
