//! The WDL model zoo.
//!
//! One constructor per published model architecture evaluated in the paper
//! (Tables III and VII). Every constructor takes a [`DatasetSpec`] and
//! produces the *unoptimized* logical graph — one embedding chain per table,
//! interaction modules wired to field subsets, and the MLP — which the
//! PICASSO passes then transform.

use picasso_data::DatasetSpec;
use picasso_graph::{EmbeddingChain, Layer, MlpSpec, WdlSpec};
use std::collections::BTreeMap;

pub mod atbrg;
pub mod can;
pub mod dcn;
pub mod deepfm;
pub mod dien;
pub mod din;
pub mod dlrm;
pub mod dsin;
pub mod lr;
pub mod mmoe;
pub mod star;
pub mod two_tower;
pub mod wide_deep;
pub mod xdeepfm;

/// Summary of one embedding table in a dataset.
#[derive(Debug, Clone)]
pub struct TableInfo {
    /// Table group id.
    pub table: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Field indices querying this table.
    pub fields: Vec<u32>,
    /// Total categorical IDs per instance across those fields.
    pub ids_per_instance: f64,
}

impl TableInfo {
    /// Whether this table backs a behaviour sequence (multiple positions or
    /// multi-hot fields).
    pub fn is_sequence(&self) -> bool {
        self.fields.len() > 1 || self.ids_per_instance > 1.5
    }

    /// Average sequence length seen by interaction modules.
    pub fn seq_len(&self) -> f64 {
        self.ids_per_instance
    }
}

/// Extracts per-table summaries from a dataset, ordered by table id.
pub fn tables(data: &DatasetSpec) -> Vec<TableInfo> {
    let mut map: BTreeMap<usize, TableInfo> = BTreeMap::new();
    for (i, f) in data.fields.iter().enumerate() {
        let e = map.entry(f.table_group).or_insert_with(|| TableInfo {
            table: f.table_group,
            dim: f.dim,
            fields: Vec::new(),
            ids_per_instance: 0.0,
        });
        e.fields.push(i as u32);
        e.ids_per_instance += f.avg_ids;
    }
    map.into_values().collect()
}

/// The unoptimized embedding layer: one chain per table (what Table V's
/// baseline "# of packed embedding" column counts).
pub fn baseline_chains(data: &DatasetSpec) -> Vec<EmbeddingChain> {
    tables(data)
        .into_iter()
        .map(|t| {
            let mut c = EmbeddingChain::for_table(t.table, t.dim, t.fields, t.ids_per_instance);
            // Pooling keeps one row per field position.
            c.pooled_rows_per_instance = c.fields.len() as f64;
            c
        })
        .collect()
}

/// Sum of pooled embedding widths over `field_subset` (the concatenated
/// input width interaction modules see).
pub fn width_of(data: &DatasetSpec, fields: &[u32]) -> usize {
    fields.iter().map(|&f| data.fields[f as usize].dim).sum()
}

/// All field indices of the dataset.
pub fn all_fields(data: &DatasetSpec) -> Vec<u32> {
    (0..data.fields.len() as u32).collect()
}

/// Representative field per table: the first position (used to wire a
/// module to "one field per table" inputs without exploding input lists).
pub fn representative_fields(tables: &[TableInfo]) -> Vec<u32> {
    tables.iter().map(|t| t.fields[0]).collect()
}

/// Assembles a full spec from parts.
pub fn assemble(
    name: &str,
    data: &DatasetSpec,
    modules: Vec<picasso_graph::InteractionModule>,
    mlp: MlpSpec,
) -> WdlSpec {
    let spec = WdlSpec {
        name: name.into(),
        io_bytes_per_instance: data.bytes_per_instance(),
        chains: baseline_chains(data),
        modules,
        mlp,
        micro_batches: 1,
        interleave_from: Layer::Embedding,
        group_deps: Vec::new(),
    };
    debug_assert!(spec.validate().is_ok(), "{:?}", spec.validate());
    spec
}

/// The models evaluated in the paper, in Table VII order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Piece-wise linear logistic regression.
    Lr,
    /// Wide & Deep.
    WideDeep,
    /// Two-tower DNN retrieval model.
    TwoTowerDnn,
    /// Facebook DLRM.
    Dlrm,
    /// DeepFM.
    DeepFm,
    /// Deep & Cross Network.
    Dcn,
    /// xDeepFM.
    XDeepFm,
    /// Adaptive target-behaviour relational graph network.
    Atbrg,
    /// Deep Interest Network.
    Din,
    /// Deep Interest Evolution Network.
    Dien,
    /// Deep Session Interest Network.
    Dsin,
    /// CAN feature co-action network.
    Can,
    /// STAR multi-domain model.
    Star,
    /// Multi-gate mixture-of-experts (71 experts).
    MMoe,
}

impl ModelKind {
    /// All models, in Table VII order.
    pub const ALL: [ModelKind; 14] = [
        ModelKind::Lr,
        ModelKind::WideDeep,
        ModelKind::TwoTowerDnn,
        ModelKind::Dlrm,
        ModelKind::DeepFm,
        ModelKind::Dcn,
        ModelKind::XDeepFm,
        ModelKind::Atbrg,
        ModelKind::Din,
        ModelKind::Dien,
        ModelKind::Dsin,
        ModelKind::Can,
        ModelKind::Star,
        ModelKind::MMoe,
    ];

    /// The model's display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Lr => "LR",
            ModelKind::WideDeep => "W&D",
            ModelKind::TwoTowerDnn => "TwoTowerDNN",
            ModelKind::Dlrm => "DLRM",
            ModelKind::DeepFm => "DeepFM",
            ModelKind::Dcn => "DCN",
            ModelKind::XDeepFm => "xDeepFM",
            ModelKind::Atbrg => "ATBRG",
            ModelKind::Din => "DIN",
            ModelKind::Dien => "DIEN",
            ModelKind::Dsin => "DSIN",
            ModelKind::Can => "CAN",
            ModelKind::Star => "STAR",
            ModelKind::MMoe => "MMoE",
        }
    }

    /// Builds the unoptimized logical graph for `data`.
    pub fn build(self, data: &DatasetSpec) -> WdlSpec {
        match self {
            ModelKind::Lr => lr::build(data),
            ModelKind::WideDeep => wide_deep::build(data),
            ModelKind::TwoTowerDnn => two_tower::build(data),
            ModelKind::Dlrm => dlrm::build(data),
            ModelKind::DeepFm => deepfm::build(data),
            ModelKind::Dcn => dcn::build(data),
            ModelKind::XDeepFm => xdeepfm::build(data),
            ModelKind::Atbrg => atbrg::build(data),
            ModelKind::Din => din::build(data),
            ModelKind::Dien => dien::build(data),
            ModelKind::Dsin => dsin::build(data),
            ModelKind::Can => can::build(data),
            ModelKind::Star => star::build(data),
            ModelKind::MMoe => mmoe::build(data),
        }
    }

    /// The Table II dataset this model is benchmarked on.
    pub fn default_dataset(self) -> DatasetSpec {
        match self {
            ModelKind::Dlrm | ModelKind::DeepFm => DatasetSpec::criteo(),
            ModelKind::Din | ModelKind::Dien => DatasetSpec::alibaba(),
            ModelKind::Lr | ModelKind::WideDeep => DatasetSpec::product1(),
            ModelKind::Can
            | ModelKind::TwoTowerDnn
            | ModelKind::Dcn
            | ModelKind::XDeepFm
            | ModelKind::Atbrg
            | ModelKind::Dsin
            | ModelKind::Star => DatasetSpec::product2(),
            ModelKind::MMoe => DatasetSpec::product3(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_aggregate_fields() {
        let data = DatasetSpec::alibaba();
        let ts = tables(&data);
        assert_eq!(ts.len(), 19);
        let seqs: Vec<_> = ts.iter().filter(|t| t.is_sequence()).collect();
        assert_eq!(seqs.len(), 12);
        assert_eq!(seqs[0].fields.len(), 100);
    }

    #[test]
    fn baseline_chain_count_is_table_count() {
        for data in [DatasetSpec::product1(), DatasetSpec::product2()] {
            assert_eq!(baseline_chains(&data).len(), data.table_count());
        }
    }

    #[test]
    fn every_model_builds_on_its_default_dataset() {
        for kind in ModelKind::ALL {
            let data = kind.default_dataset();
            let spec = kind.build(&data);
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: {e:?}", kind.name()));
            assert!(!spec.chains.is_empty(), "{}", kind.name());
            assert!(spec.mlp.flops_per_instance > 0.0, "{}", kind.name());
            assert_eq!(spec.micro_batches, 1);
        }
    }

    #[test]
    fn every_model_builds_on_product2() {
        // Table VII runs the whole zoo on Product-2.
        let data = DatasetSpec::product2();
        for kind in ModelKind::ALL {
            let spec = kind.build(&data);
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: {e:?}", kind.name()));
        }
    }

    #[test]
    fn width_of_sums_dims() {
        let data = DatasetSpec::criteo();
        assert_eq!(width_of(&data, &[0, 1]), 256);
        assert_eq!(width_of(&data, &all_fields(&data)), 26 * 128);
    }
}
