//! xDeepFM \[38\]: compressed interaction network (CIN) plus deep tower —
//! the heaviest explicit-interaction model in the zoo.

use crate::modules;
use crate::zoo::{all_fields, assemble, tables, width_of};
use picasso_data::DatasetSpec;
use picasso_graph::{MlpSpec, WdlSpec};

/// Builds the unoptimized xDeepFM graph (3 CIN layers of 100 maps).
pub fn build(data: &DatasetSpec) -> WdlSpec {
    let fields = all_fields(data);
    let ts = tables(data);
    let dim = ts.first().map(|t| t.dim).unwrap_or(16);
    let cin = modules::cin(fields.clone(), ts.len(), dim, 3, 100);
    let width = width_of(data, &fields);
    let deep = modules::dnn_tower(fields, width, &[400, 400]);
    let mlp_input = cin.output_width + deep.output_width;
    assemble(
        "xDeepFM",
        data,
        vec![cin, deep],
        MlpSpec::new(mlp_input, vec![64, 1]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xdeepfm_is_compute_heavy() {
        let spec = build(&DatasetSpec::criteo());
        let dcn = crate::zoo::dcn::build(&DatasetSpec::criteo());
        assert!(spec.dense_flops_per_instance() > dcn.dense_flops_per_instance());
        spec.validate().unwrap();
    }
}
