//! DIN \[4\]: Deep Interest Network — target attention over each behaviour
//! sequence plus a deep tower over the base profile features.

use crate::modules;
use crate::zoo::{assemble, tables, width_of};
use picasso_data::DatasetSpec;
use picasso_graph::{MlpSpec, WdlSpec};

/// Builds the unoptimized DIN graph.
pub fn build(data: &DatasetSpec) -> WdlSpec {
    let ts = tables(data);
    let mut mods = Vec::new();
    let mut attn_width = 0;
    for t in ts.iter().filter(|t| t.is_sequence()) {
        let m = modules::attention(t.fields.clone(), t.dim, t.seq_len());
        attn_width += m.output_width;
        mods.push(m);
    }
    let base_fields: Vec<u32> = ts
        .iter()
        .filter(|t| !t.is_sequence())
        .flat_map(|t| t.fields.clone())
        .collect();
    let mut tower_width = 0;
    if !base_fields.is_empty() {
        tower_width = 200;
        let w = width_of(data, &base_fields);
        mods.push(modules::dnn_tower(base_fields, w, &[512, tower_width]));
    }
    assemble(
        "DIN",
        data,
        mods,
        MlpSpec::new(attn_width + tower_width, vec![200, 80, 1]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn din_on_alibaba_attends_12_sequences() {
        let spec = build(&DatasetSpec::alibaba());
        // 12 attention modules + 1 base tower.
        assert_eq!(spec.modules.len(), 13);
        assert_eq!(spec.chains.len(), 19);
        spec.validate().unwrap();
    }
}
