//! MMoE \[24\] variant: 71 experts at the MLP, derived from canonical DIN —
//! the paper's computation-intensive representative (Fig. 5), serving
//! scenario-aware CTR prediction.

use crate::modules;
use crate::zoo::{assemble, tables, width_of};
use picasso_data::DatasetSpec;
use picasso_graph::{MlpSpec, WdlSpec};

/// Expert count from §II-D.
pub const EXPERTS: usize = 71;

/// Task (gate) count.
pub const TASKS: usize = 3;

/// Builds the unoptimized MMoE graph.
pub fn build(data: &DatasetSpec) -> WdlSpec {
    let ts = tables(data);
    let mut mods = Vec::new();
    // DIN backbone: attention per behaviour sequence.
    let mut attn_width = 0;
    for t in ts.iter().filter(|t| t.is_sequence()) {
        let a = modules::attention(t.fields.clone(), t.dim, t.seq_len());
        attn_width += a.output_width;
        mods.push(a);
    }
    let base_fields: Vec<u32> = ts
        .iter()
        .filter(|t| !t.is_sequence())
        .flat_map(|t| t.fields.clone())
        .collect();
    let base_width = width_of(data, &base_fields);
    // Shared bottom tower compresses the concatenated representation
    // before the experts (keeping dense parameters MoE-shaped rather than
    // exploding with the input width).
    let bottom = modules::dnn_tower(base_fields.clone(), attn_width + base_width, &[1024, 512]);
    let expert_input = bottom.output_width;
    mods.push(bottom);
    // 71 experts over the shared representation.
    let mut expert_width = 0;
    for _ in 0..EXPERTS {
        let e = modules::expert(base_fields.clone(), expert_input, &[1024, 512]);
        expert_width = e.output_width;
        mods.push(e);
    }
    for _ in 0..TASKS {
        mods.push(modules::gate(base_fields.clone(), expert_input, EXPERTS));
    }
    assemble(
        "MMoE",
        data,
        mods,
        MlpSpec::new(expert_width * TASKS, vec![128, TASKS]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmoe_has_71_experts() {
        let spec = build(&DatasetSpec::product3());
        let experts = spec
            .modules
            .iter()
            .filter(|m| m.kind == picasso_graph::ModuleKind::Expert)
            .count();
        assert_eq!(experts, EXPERTS);
        spec.validate().unwrap();
    }

    #[test]
    fn mmoe_is_compute_dominant() {
        let spec = build(&DatasetSpec::product3());
        let wd = crate::zoo::wide_deep::build(&DatasetSpec::product1());
        assert!(
            spec.dense_flops_per_instance() > 5.0 * wd.dense_flops_per_instance(),
            "71 experts dwarf W&D compute"
        );
    }
}
