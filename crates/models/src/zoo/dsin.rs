//! DSIN \[40\]: Deep Session Interest Network — sessions encoded by
//! Transformer blocks with bias, then attention-aggregated.

use crate::modules;
use crate::zoo::{assemble, tables, width_of};
use picasso_data::DatasetSpec;
use picasso_graph::{MlpSpec, WdlSpec};

/// Builds the unoptimized DSIN graph (each behaviour sequence treated as a
/// session stack).
pub fn build(data: &DatasetSpec) -> WdlSpec {
    let ts = tables(data);
    let mut mods = Vec::new();
    let mut width = 0;
    for t in ts.iter().filter(|t| t.is_sequence()) {
        let tr = modules::transformer(t.fields.clone(), t.dim, t.seq_len());
        let a = modules::attention(t.fields.clone(), t.dim, t.seq_len());
        width += tr.output_width + a.output_width;
        mods.push(tr);
        mods.push(a);
    }
    let base_fields: Vec<u32> = ts
        .iter()
        .filter(|t| !t.is_sequence())
        .flat_map(|t| t.fields.clone())
        .collect();
    if !base_fields.is_empty() {
        let w = width_of(data, &base_fields);
        let tower = modules::dnn_tower(base_fields, w, &[512, 200]);
        width += tower.output_width;
        mods.push(tower);
    }
    assemble("DSIN", data, mods, MlpSpec::new(width, vec![200, 80, 1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsin_builds_transformers() {
        let spec = build(&DatasetSpec::product2());
        // 30 sequences x (transformer + attention) + base tower.
        assert_eq!(spec.modules.len(), 61);
        spec.validate().unwrap();
    }
}
