//! CAN \[8\]: feature co-action network — the paper's communication-intensive
//! representative (Fig. 5).
//!
//! CAN multiplies feature interactions: every behaviour sequence co-acts
//! with several target features through micro-MLPs whose weights come from
//! the embeddings themselves, on top of a DIN-style attention backbone.
//! With 1,834 feature fields over 364 tables the embedding exchange
//! dominates, which is why the paper reports ~60-70% communication time.

use crate::modules;
use crate::zoo::{assemble, tables, width_of};
use picasso_data::DatasetSpec;
use picasso_graph::{MlpSpec, WdlSpec};

/// Number of target features each behaviour sequence co-acts with.
const CO_ACTION_TARGETS: usize = 3;

/// Co-action micro-MLP width (sliced from the embedding, bounded).
const CO_ACTION_DIM: usize = 16;

/// Builds the unoptimized CAN graph.
pub fn build(data: &DatasetSpec) -> WdlSpec {
    let ts = tables(data);
    let base: Vec<&crate::zoo::TableInfo> = ts.iter().filter(|t| !t.is_sequence()).collect();
    let seqs: Vec<&crate::zoo::TableInfo> = ts.iter().filter(|t| t.is_sequence()).collect();
    let mut mods = Vec::new();
    let mut width = 0;

    for (i, seq) in seqs.iter().enumerate() {
        // Attention backbone per sequence.
        let a = modules::attention(seq.fields.clone(), seq.dim, seq.seq_len());
        width += a.output_width;
        mods.push(a);
        // Co-action units against a rotating set of target features.
        for k in 0..CO_ACTION_TARGETS {
            if base.is_empty() {
                break;
            }
            let target = base[(i * CO_ACTION_TARGETS + k) % base.len()];
            let mut fields = seq.fields.clone();
            fields.extend_from_slice(&target.fields);
            let m = modules::co_action(fields, CO_ACTION_DIM.min(seq.dim.max(4)), seq.seq_len());
            width += m.output_width;
            mods.push(m);
        }
    }
    let base_fields: Vec<u32> = base.iter().flat_map(|t| t.fields.clone()).collect();
    if !base_fields.is_empty() {
        let w = width_of(data, &base_fields);
        let tower = modules::dnn_tower(base_fields, w, &[512, 256]);
        width += tower.output_width;
        mods.push(tower);
    }
    assemble(
        "CAN",
        data,
        mods,
        MlpSpec::new(width.max(1), vec![512, 256, 1]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn can_on_product2_has_many_modules() {
        let spec = build(&DatasetSpec::product2());
        // 30 sequences x (1 attention + 3 co-action) + 1 base tower.
        assert_eq!(spec.modules.len(), 30 * 4 + 1);
        assert_eq!(spec.chains.len(), 364);
        spec.validate().unwrap();
    }

    #[test]
    fn can_moves_lots_of_embedding_bytes() {
        let spec = build(&DatasetSpec::product2());
        // Communication-intensive: far more embedding bytes per instance
        // than W&D on Product-1.
        let wd = crate::zoo::wide_deep::build(&DatasetSpec::product1());
        assert!(spec.embedding_bytes_per_instance() > 2.0 * wd.embedding_bytes_per_instance());
    }
}
