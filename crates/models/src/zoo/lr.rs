//! LR: piece-wise linear logistic regression \[35\].
//!
//! The shallowest model in the zoo: a single wide linear term over every
//! feature embedding, no deep interaction. I/O and embedding dominated —
//! exactly the workload whose GPU utilization Fig. 1 shows lowest.

use crate::modules;
use crate::zoo::{all_fields, assemble, width_of};
use picasso_data::DatasetSpec;
use picasso_graph::{MlpSpec, WdlSpec};

/// Builds the unoptimized LR graph.
pub fn build(data: &DatasetSpec) -> WdlSpec {
    let fields = all_fields(data);
    let width = width_of(data, &fields);
    let wide = modules::linear(fields, width);
    assemble("LR", data, vec![wide], MlpSpec::new(1, vec![1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lr_is_shallow() {
        let spec = build(&DatasetSpec::product1());
        assert_eq!(spec.modules.len(), 1);
        assert!(
            spec.dense_flops_per_instance() < 1e5,
            "LR has almost no compute"
        );
        spec.validate().unwrap();
    }
}
