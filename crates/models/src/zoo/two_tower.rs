//! TwoTowerDNN \[36\]: user tower and item tower trained for retrieval.

use crate::modules;
use crate::zoo::{assemble, tables, width_of};
use picasso_data::DatasetSpec;
use picasso_graph::{MlpSpec, WdlSpec};

/// Builds the unoptimized two-tower graph: tables are split evenly between
/// the user and item towers.
pub fn build(data: &DatasetSpec) -> WdlSpec {
    let ts = tables(data);
    let half = ts.len() / 2;
    let user_fields: Vec<u32> = ts[..half].iter().flat_map(|t| t.fields.clone()).collect();
    let item_fields: Vec<u32> = ts[half..].iter().flat_map(|t| t.fields.clone()).collect();
    let user = modules::dnn_tower(
        user_fields.clone(),
        width_of(data, &user_fields),
        &[512, 128],
    );
    let item = modules::dnn_tower(
        item_fields.clone(),
        width_of(data, &item_fields),
        &[512, 128],
    );
    let mlp_input = user.output_width + item.output_width;
    assemble(
        "TwoTowerDNN",
        data,
        vec![user, item],
        MlpSpec::new(mlp_input, vec![64, 1]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn towers_split_fields() {
        let spec = build(&DatasetSpec::product2());
        assert_eq!(spec.modules.len(), 2);
        let total_inputs: usize = spec.modules.iter().map(|m| m.input_fields.len()).sum();
        assert_eq!(total_inputs, DatasetSpec::product2().fields.len());
        spec.validate().unwrap();
    }
}
