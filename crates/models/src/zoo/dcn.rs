//! DCN \[37\]: Deep & Cross Network — explicit bounded-degree crosses plus a
//! deep tower.

use crate::modules;
use crate::zoo::{all_fields, assemble, width_of};
use picasso_data::DatasetSpec;
use picasso_graph::{MlpSpec, WdlSpec};

/// Builds the unoptimized DCN graph (3 cross layers).
pub fn build(data: &DatasetSpec) -> WdlSpec {
    let fields = all_fields(data);
    let width = width_of(data, &fields);
    let cross = modules::cross(fields.clone(), width, 3);
    let deep = modules::dnn_tower(fields, width, &[1024, 512]);
    let mlp_input = cross.output_width + deep.output_width;
    assemble(
        "DCN",
        data,
        vec![cross, deep],
        MlpSpec::new(mlp_input, vec![256, 1]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcn_has_cross_and_deep() {
        let spec = build(&DatasetSpec::product2());
        assert_eq!(spec.modules.len(), 2);
        spec.validate().unwrap();
    }
}
