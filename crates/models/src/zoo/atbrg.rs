//! ATBRG \[39\]: adaptive target-behaviour relational graph network.
//!
//! Graph sampling and relational aggregation over user behaviours — heavy
//! irregular memory access with modest dense compute, and the smallest
//! feasible batch size in Table VII.

use crate::modules;
use crate::zoo::{all_fields, assemble, tables, width_of};
use picasso_data::DatasetSpec;
use picasso_graph::{MlpSpec, WdlSpec};

/// Builds the unoptimized ATBRG graph.
pub fn build(data: &DatasetSpec) -> WdlSpec {
    let ts = tables(data);
    let mut modules_v = Vec::new();
    // One relational aggregation per behaviour sequence, sampling ~50
    // neighbours around the target.
    for t in ts.iter().filter(|t| t.is_sequence()) {
        modules_v.push(modules::graph_agg(t.fields.clone(), t.dim, 50));
    }
    if modules_v.is_empty() {
        // Datasets without sequences still get one aggregation over all
        // fields (graph built from co-occurrence).
        let fields = all_fields(data);
        let dim = ts.first().map(|t| t.dim).unwrap_or(16);
        modules_v.push(modules::graph_agg(fields, dim, 50));
    }
    let base_fields: Vec<u32> = ts
        .iter()
        .filter(|t| !t.is_sequence())
        .flat_map(|t| t.fields.clone())
        .collect();
    let agg_width: usize = modules_v.iter().map(|m| m.output_width).sum();
    let tower_width = width_of(data, &base_fields).max(1);
    if !base_fields.is_empty() {
        modules_v.push(modules::dnn_tower(base_fields, tower_width, &[512, 128]));
    }
    let mlp_input = agg_width + 128;
    assemble(
        "ATBRG",
        data,
        modules_v,
        MlpSpec::new(mlp_input, vec![200, 80, 1]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atbrg_builds_aggregators_per_sequence() {
        let spec = build(&DatasetSpec::product2());
        // 30 sequence tables + 1 base tower.
        assert_eq!(spec.modules.len(), 31);
        spec.validate().unwrap();
    }
}
