//! DIEN \[5\]: Deep Interest Evolution Network — a GRU interest extractor
//! feeding attentional interest evolution per behaviour sequence.
//!
//! The recurrence launches kernels per sequence step, making DIEN the most
//! fragmentary compute workload in the public benchmarks.

use crate::modules;
use crate::zoo::{assemble, tables, width_of};
use picasso_data::DatasetSpec;
use picasso_graph::{MlpSpec, WdlSpec};

/// Builds the unoptimized DIEN graph.
pub fn build(data: &DatasetSpec) -> WdlSpec {
    let ts = tables(data);
    let mut mods = Vec::new();
    let mut width = 0;
    for t in ts.iter().filter(|t| t.is_sequence()) {
        let g = modules::gru(t.fields.clone(), t.dim, t.seq_len());
        let a = modules::attention(t.fields.clone(), t.dim, t.seq_len());
        width += g.output_width + a.output_width;
        mods.push(g);
        mods.push(a);
    }
    let base_fields: Vec<u32> = ts
        .iter()
        .filter(|t| !t.is_sequence())
        .flat_map(|t| t.fields.clone())
        .collect();
    if !base_fields.is_empty() {
        let w = width_of(data, &base_fields);
        let tower = modules::dnn_tower(base_fields, w, &[512, 200]);
        width += tower.output_width;
        mods.push(tower);
    }
    assemble("DIEN", data, mods, MlpSpec::new(width, vec![200, 80, 1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use picasso_graph::graph_stats;

    #[test]
    fn dien_is_more_fragmentary_than_din() {
        let data = DatasetSpec::alibaba();
        let dien = build(&data);
        let din = crate::zoo::din::build(&data);
        assert!(
            graph_stats(&dien).module_ops > 2 * graph_stats(&din).module_ops,
            "GRU recurrence multiplies kernel launches"
        );
        dien.validate().unwrap();
    }
}
