//! DeepFM \[3\]: factorization machine plus deep network sharing embeddings.

use crate::modules;
use crate::zoo::{all_fields, assemble, tables, width_of};
use picasso_data::DatasetSpec;
use picasso_graph::{MlpSpec, WdlSpec};

/// Builds the unoptimized DeepFM graph.
pub fn build(data: &DatasetSpec) -> WdlSpec {
    let fields = all_fields(data);
    let n = tables(data).len();
    let dim = data.fields.first().map(|f| f.dim).unwrap_or(16);
    let fm = modules::fm(fields.clone(), n, dim);
    let width = width_of(data, &fields);
    let deep = modules::dnn_tower(fields, width, &[400, 400, 400]);
    let mlp_input = fm.output_width + deep.output_width;
    assemble(
        "DeepFM",
        data,
        vec![fm, deep],
        MlpSpec::new(mlp_input, vec![64, 1]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deepfm_shares_embeddings_between_parts() {
        let spec = build(&DatasetSpec::criteo());
        assert_eq!(spec.modules.len(), 2);
        assert_eq!(spec.modules[0].input_fields, spec.modules[1].input_fields);
        spec.validate().unwrap();
    }
}
