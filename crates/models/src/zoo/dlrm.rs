//! DLRM \[23\]: Facebook's deep learning recommendation model (MLPerf
//! benchmark). Dense bottom MLP, pairwise dot-product feature interaction,
//! deep top MLP.

use crate::modules;
use crate::zoo::{all_fields, assemble, representative_fields, tables};
use picasso_data::DatasetSpec;
use picasso_graph::{MlpSpec, WdlSpec};

/// Builds the unoptimized DLRM graph.
pub fn build(data: &DatasetSpec) -> WdlSpec {
    let ts = tables(data);
    let dim = ts.first().map(|t| t.dim).unwrap_or(128);
    let n = ts.len();
    // Bottom MLP embeds the dense features into the interaction space.
    let bottom = modules::dnn_tower(Vec::new(), data.numeric.max(1), &[512, 256, dim]);
    // Pairwise dot interaction over all table embeddings + bottom output.
    let dot = modules::fm(all_fields(data), n + 1, dim);
    let reps = representative_fields(&ts);
    let post = modules::dnn_tower(reps, (n + 1) * (n + 2) / 2, &[1024, 512]);
    let mlp_input = post.output_width;
    assemble(
        "DLRM",
        data,
        vec![bottom, dot, post],
        MlpSpec::new(mlp_input, vec![256, 1]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dlrm_on_criteo_has_26_chains() {
        let spec = build(&DatasetSpec::criteo());
        assert_eq!(spec.chains.len(), 26);
        assert_eq!(spec.modules.len(), 3);
        assert!(spec.dense_flops_per_instance() > 1e6);
        spec.validate().unwrap();
    }
}
