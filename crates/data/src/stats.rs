//! Empirical frequency statistics over observed ID streams.
//!
//! Used to verify that generated workloads reproduce the Fig. 3 skew, and by
//! the warm-up phase of training to drive packing-shard and cache decisions.

use std::collections::HashMap;

/// Counts occurrences of categorical IDs.
#[derive(Debug, Clone, Default)]
pub struct FrequencyStats {
    counts: HashMap<u64, u64>,
    total: u64,
}

impl FrequencyStats {
    /// Creates an empty counter.
    pub fn new() -> Self {
        FrequencyStats::default()
    }

    /// Records one observation of `id`.
    #[inline]
    pub fn record(&mut self, id: u64) {
        *self.counts.entry(id).or_insert(0) += 1;
        self.total += 1;
    }

    /// Records a slice of observations.
    pub fn record_all(&mut self, ids: &[u64]) {
        for &id in ids {
            self.record(id);
        }
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct IDs observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Count of one ID.
    pub fn count(&self, id: u64) -> u64 {
        self.counts.get(&id).copied().unwrap_or(0)
    }

    /// The `k` most frequent IDs, most frequent first (ties broken by ID for
    /// determinism).
    pub fn top_k(&self, k: usize) -> Vec<u64> {
        let mut items: Vec<(u64, u64)> = self.counts.iter().map(|(&id, &c)| (id, c)).collect();
        items.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        items.truncate(k);
        items.into_iter().map(|(id, _)| id).collect()
    }

    /// Fraction of observations covered by the top `fraction` of *distinct*
    /// IDs — the empirical version of Fig. 3's coverage curve.
    pub fn coverage_of_top(&self, fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&fraction));
        if self.total == 0 {
            return 0.0;
        }
        let k = ((self.counts.len() as f64 * fraction).floor() as usize).min(self.counts.len());
        let mut freqs: Vec<u64> = self.counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let covered: u64 = freqs[..k].iter().sum();
        covered as f64 / self.total as f64
    }

    /// Empirical CDF points `(fraction of distinct IDs, coverage)`.
    pub fn cdf_points(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2);
        (0..points)
            .map(|i| {
                let f = i as f64 / (points - 1) as f64;
                (f, self.coverage_of_top(f))
            })
            .collect()
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &FrequencyStats) {
        for (&id, &c) in &other.counts {
            *self.counts.entry(id).or_insert(0) += c;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_totals() {
        let mut s = FrequencyStats::new();
        s.record_all(&[1, 1, 1, 2, 3]);
        assert_eq!(s.total(), 5);
        assert_eq!(s.distinct(), 3);
        assert_eq!(s.count(1), 3);
        assert_eq!(s.count(99), 0);
    }

    #[test]
    fn top_k_orders_by_frequency_then_id() {
        let mut s = FrequencyStats::new();
        s.record_all(&[5, 5, 9, 9, 2]);
        assert_eq!(s.top_k(2), vec![5, 9], "tie broken by smaller id");
        assert_eq!(s.top_k(10), vec![5, 9, 2]);
        assert!(s.top_k(0).is_empty());
    }

    #[test]
    fn coverage_of_skewed_stream() {
        let mut s = FrequencyStats::new();
        // One id covers 90 of 100 observations; 10 ids cover the rest.
        for _ in 0..90 {
            s.record(0);
        }
        for id in 1..=10 {
            s.record(id);
        }
        // Top ~9% of distinct ids (1 of 11) covers 90%.
        let cov = s.coverage_of_top(0.1);
        assert!((cov - 0.9).abs() < 1e-9, "coverage {cov}");
        assert!((s.coverage_of_top(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = FrequencyStats::new();
        a.record_all(&[1, 2]);
        let mut b = FrequencyStats::new();
        b.record_all(&[2, 3]);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.count(2), 2);
        assert_eq!(a.distinct(), 3);
    }

    #[test]
    fn empty_counter_is_sane() {
        let s = FrequencyStats::new();
        assert_eq!(s.coverage_of_top(0.5), 0.0);
        assert_eq!(s.cdf_points(3).len(), 3);
    }
}
