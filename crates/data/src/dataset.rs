//! Dataset specifications matching Table II of the paper.
//!
//! The public benchmark datasets (Criteo, Alibaba) and the three in-house
//! production datasets (Product-1/2/3) are reproduced as synthetic
//! generators whose *statistics* — field counts, sequence lengths, embedding
//! dimensions, parameter volume, and ID skew — match the table. Sequence
//! features are expanded into one field per position (the paper counts them
//! that way: Alibaba has "1,207 (7+12x100)" fields), with all positions of a
//! sequence sharing one embedding table.

use crate::distribution::IdDistribution;
use crate::field::FieldSpec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A dataset: numeric features plus a list of sparse fields.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name.
    pub name: String,
    /// Number of dense numeric features per instance.
    pub numeric: usize,
    /// Sparse fields (sequence features expanded per position).
    pub fields: Vec<FieldSpec>,
    /// Total instances, `None` for streaming/infinite production data.
    pub instances: Option<u64>,
}

impl DatasetSpec {
    /// Number of sparse feature fields (Table II's "# sparse feature fields").
    pub fn sparse_field_count(&self) -> usize {
        self.fields.len()
    }

    /// Number of distinct embedding tables.
    pub fn table_count(&self) -> usize {
        let mut groups: Vec<usize> = self.fields.iter().map(|f| f.table_group).collect();
        groups.sort_unstable();
        groups.dedup();
        groups.len()
    }

    /// Distinct embedding dimensions in use, ascending.
    pub fn distinct_dims(&self) -> Vec<usize> {
        let mut dims: Vec<usize> = self.fields.iter().map(|f| f.dim).collect();
        dims.sort_unstable();
        dims.dedup();
        dims
    }

    /// Total logical embedding parameters (floats), counting shared tables
    /// once.
    pub fn total_params(&self) -> f64 {
        let mut per_table: BTreeMap<usize, f64> = BTreeMap::new();
        for f in &self.fields {
            per_table.entry(f.table_group).or_insert(f.table_params());
        }
        per_table.values().sum()
    }

    /// Average raw bytes per training instance (IDs + dense features).
    pub fn bytes_per_instance(&self) -> f64 {
        let ids: f64 = self.fields.iter().map(|f| f.id_bytes_per_instance()).sum();
        ids + self.numeric as f64 * 4.0
    }

    /// Average embedding-output bytes per instance across all fields.
    pub fn embedding_bytes_per_instance(&self) -> f64 {
        self.fields
            .iter()
            .map(|f| f.embedding_bytes_per_instance())
            .sum()
    }

    /// Fields grouped by embedding dimension (the D-packing criterion).
    pub fn fields_by_dim(&self) -> BTreeMap<usize, Vec<usize>> {
        let mut by_dim: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, f) in self.fields.iter().enumerate() {
            by_dim.entry(f.dim).or_default().push(i);
        }
        by_dim
    }

    /// Wraps in an [`Arc`] for cheap sharing.
    pub fn shared(self) -> Arc<DatasetSpec> {
        Arc::new(self)
    }

    /// Criteo click logs: 4B instances, 13 numeric + 26 sparse fields,
    /// dim 128, ~6B parameters (DLRM / DeepFM benchmarks).
    pub fn criteo() -> DatasetSpec {
        // Top 20% of IDs cover ~75% of Criteo impressions (Fig. 3).
        let dist = IdDistribution::Zipf { s: 0.82 };
        let mut fields = Vec::with_capacity(26);
        for i in 0..26 {
            // A few huge ID spaces (user/item-like) plus many moderate ones,
            // sized so that sum(vocab)*128 ~ 6e9 parameters.
            let vocab = if i < 4 { 10_000_000 } else { 300_000 };
            fields.push(FieldSpec::one_hot(format!("cat{i}"), vocab, 128, dist, i));
        }
        DatasetSpec {
            name: "criteo".into(),
            numeric: 13,
            fields,
            instances: Some(4_000_000_000),
        }
    }

    /// Alibaba CTR: 13M instances, 1,207 sparse fields (7 + 12 sequences of
    /// length 100), dim 4, ~6B parameters (DIN / DIEN benchmarks).
    pub fn alibaba() -> DatasetSpec {
        // Behaviour logs are the most skewed public set (~90% coverage).
        let dist = IdDistribution::Zipf { s: 0.94 };
        let mut fields = Vec::with_capacity(1207);
        for i in 0..7 {
            fields.push(FieldSpec::one_hot(
                format!("base{i}"),
                8_000_000,
                4,
                dist,
                i,
            ));
        }
        for s in 0..12 {
            let table = 7 + s;
            for p in 0..100 {
                fields.push(FieldSpec::one_hot(
                    format!("seq{s}_pos{p}"),
                    120_000_000,
                    4,
                    dist,
                    table,
                ));
            }
        }
        DatasetSpec {
            name: "alibaba".into(),
            numeric: 0,
            fields,
            instances: Some(13_000_000),
        }
    }

    /// Product-1: streaming, 10 numeric + 204 sparse fields, dims 8–32,
    /// ~160B parameters (W&D workload; I/O & memory intensive).
    pub fn product1() -> DatasetSpec {
        // The flattest production distribution (~65% coverage).
        let dist = IdDistribution::Zipf { s: 0.73 };
        let dims = [8usize, 16, 32];
        let fields = (0..204)
            .map(|i| FieldSpec::one_hot(format!("f{i}"), 42_000_000, dims[i % dims.len()], dist, i))
            .collect();
        DatasetSpec {
            name: "product-1".into(),
            numeric: 10,
            fields,
            instances: None,
        }
    }

    /// Product-2: streaming, 1,834 sparse fields (334 + 30 sequences of
    /// length 50), dims 8–200, ~1T parameters (CAN workload; communication
    /// intensive).
    pub fn product2() -> DatasetSpec {
        // CAN's co-action features are heavily reused (~85% coverage).
        let dist = IdDistribution::Zipf { s: 0.90 };
        let dims = [8usize, 16, 32, 64, 128, 200];
        let mut fields = Vec::with_capacity(1834);
        for i in 0..334 {
            fields.push(FieldSpec::one_hot(
                format!("f{i}"),
                36_000_000,
                dims[i % dims.len()],
                dist,
                i,
            ));
        }
        for s in 0..30 {
            let table = 334 + s;
            let dim = dims[s % dims.len()];
            for p in 0..50 {
                fields.push(FieldSpec::one_hot(
                    format!("seq{s}_pos{p}"),
                    36_000_000,
                    dim,
                    dist,
                    table,
                ));
            }
        }
        DatasetSpec {
            name: "product-2".into(),
            numeric: 0,
            fields,
            instances: None,
        }
    }

    /// Product-3: streaming, 584 sparse fields (84 + 10 sequences of length
    /// 50), dims 12–128, ~1T parameters (MMoE workload; computation
    /// intensive).
    pub fn product3() -> DatasetSpec {
        // ~75% coverage for the MMoE workload.
        let dist = IdDistribution::Zipf { s: 0.82 };
        let dims = [12usize, 32, 64, 128];
        let mut fields = Vec::with_capacity(584);
        for i in 0..84 {
            fields.push(FieldSpec::one_hot(
                format!("f{i}"),
                180_000_000,
                dims[i % dims.len()],
                dist,
                i,
            ));
        }
        for s in 0..10 {
            let table = 84 + s;
            let dim = dims[s % dims.len()];
            for p in 0..50 {
                fields.push(FieldSpec::one_hot(
                    format!("seq{s}_pos{p}"),
                    180_000_000,
                    dim,
                    dist,
                    table,
                ));
            }
        }
        DatasetSpec {
            name: "product-3".into(),
            numeric: 0,
            fields,
            instances: None,
        }
    }

    /// The Table VIII synthetic dataset: Product-2's fields duplicated
    /// `multiple` times (364 tables per copy).
    pub fn product2_duplicated(multiple: usize) -> DatasetSpec {
        assert!(multiple >= 1, "need at least one copy");
        let base = DatasetSpec::product2();
        let tables_per_copy = base.table_count();
        let mut fields = Vec::with_capacity(base.fields.len() * multiple);
        for copy in 0..multiple {
            for f in &base.fields {
                let mut f = f.clone();
                f.name = format!("dup{copy}_{}", f.name);
                f.table_group += copy * tables_per_copy;
                fields.push(f);
            }
        }
        DatasetSpec {
            name: format!("product-2-x{multiple}"),
            numeric: 0,
            fields,
            instances: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn criteo_matches_table_two() {
        let d = DatasetSpec::criteo();
        assert_eq!(d.numeric, 13);
        assert_eq!(d.sparse_field_count(), 26);
        assert_eq!(d.distinct_dims(), vec![128]);
        let params = d.total_params();
        assert!(
            (5e9..7e9).contains(&params),
            "criteo should have ~6B params, got {params:.2e}"
        );
    }

    #[test]
    fn alibaba_matches_table_two() {
        let d = DatasetSpec::alibaba();
        assert_eq!(d.sparse_field_count(), 1207);
        assert_eq!(d.table_count(), 19, "7 base + 12 sequence tables");
        assert_eq!(d.distinct_dims(), vec![4]);
        let params = d.total_params();
        assert!((5e9..7e9).contains(&params), "got {params:.2e}");
    }

    #[test]
    fn product1_matches_table_two() {
        let d = DatasetSpec::product1();
        assert_eq!(d.sparse_field_count(), 204);
        assert_eq!(d.numeric, 10);
        assert_eq!(d.distinct_dims(), vec![8, 16, 32]);
        let params = d.total_params();
        assert!(
            (1.3e11..2e11).contains(&params),
            "~160B params, got {params:.2e}"
        );
    }

    #[test]
    fn product2_matches_table_two() {
        let d = DatasetSpec::product2();
        assert_eq!(d.sparse_field_count(), 1834);
        assert_eq!(d.table_count(), 364, "334 base + 30 sequence tables");
        let params = d.total_params();
        assert!(
            (0.7e12..1.3e12).contains(&params),
            "~1T params, got {params:.2e}"
        );
    }

    #[test]
    fn product3_matches_table_two() {
        let d = DatasetSpec::product3();
        assert_eq!(d.sparse_field_count(), 584);
        assert_eq!(d.table_count(), 94);
        let params = d.total_params();
        assert!(
            (0.7e12..1.3e12).contains(&params),
            "~1T params, got {params:.2e}"
        );
    }

    #[test]
    fn duplication_multiplies_fields_and_tables() {
        let d = DatasetSpec::product2_duplicated(3);
        assert_eq!(d.sparse_field_count(), 1834 * 3);
        assert_eq!(d.table_count(), 364 * 3);
    }

    #[test]
    fn shared_tables_counted_once() {
        let base = DatasetSpec::alibaba();
        // 1207 fields but only 19 tables: params must be far below
        // naive per-field sum.
        let naive: f64 = base.fields.iter().map(|f| f.table_params()).sum();
        assert!(base.total_params() < naive / 10.0);
    }

    #[test]
    fn fields_by_dim_partitions_all_fields() {
        let d = DatasetSpec::product2();
        let by_dim = d.fields_by_dim();
        let total: usize = by_dim.values().map(|v| v.len()).sum();
        assert_eq!(total, d.sparse_field_count());
        assert_eq!(by_dim.len(), d.distinct_dims().len());
    }

    #[test]
    fn bytes_per_instance_positive() {
        for d in [
            DatasetSpec::criteo(),
            DatasetSpec::alibaba(),
            DatasetSpec::product1(),
        ] {
            assert!(d.bytes_per_instance() > 0.0);
            assert!(d.embedding_bytes_per_instance() > 0.0);
        }
    }
}
