//! Training-batch generation.
//!
//! Materializes actual categorical-ID streams for the parts of the system
//! that run for real (HybridHash, embedding operators, the AUC trainer).
//! Logical vocabularies in the trillions are clamped to a working vocabulary
//! so the weight tables stay small; the *distributional* properties the
//! optimizations depend on (skew, multi-hot lengths) are preserved.

use crate::dataset::DatasetSpec;
use crate::distribution::IdSampler;
use crate::synthetic::ClickModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// The materialized IDs of one field across a batch, in ragged layout.
#[derive(Debug, Clone)]
pub struct FieldBatch {
    /// Index of the field in the dataset spec.
    pub field: usize,
    /// Flattened categorical IDs (table-local ranks).
    pub ids: Vec<u64>,
    /// Instance boundaries: `ids[offsets[i]..offsets[i+1]]` belongs to
    /// instance `i`; length is `batch_size + 1`.
    pub offsets: Vec<u32>,
}

impl FieldBatch {
    /// IDs of one instance.
    pub fn instance(&self, i: usize) -> &[u64] {
        &self.ids[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Whether the batch holds no instances.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One mini-batch of training data.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Instances in the batch.
    pub size: usize,
    /// Per-field ID lists (same order as `DatasetSpec::fields`).
    pub fields: Vec<FieldBatch>,
    /// Dense features, row-major `size x numeric`.
    pub dense: Vec<f32>,
    /// Binary click labels.
    pub labels: Vec<f32>,
}

impl Batch {
    /// Total categorical IDs across all fields.
    pub fn total_ids(&self) -> usize {
        self.fields.iter().map(|f| f.ids.len()).sum()
    }
}

/// Seeded generator of batches for a dataset.
#[derive(Debug)]
pub struct BatchGenerator {
    spec: Arc<DatasetSpec>,
    /// Per-field samplers over the clamped working vocabulary.
    samplers: Vec<IdSampler>,
    /// Working vocabulary per field (after clamping).
    working_vocab: Vec<u64>,
    click: ClickModel,
    rng: StdRng,
}

/// Default cap on materialized vocabulary size per table.
pub const DEFAULT_MAX_WORKING_VOCAB: u64 = 50_000;

impl BatchGenerator {
    /// Creates a generator with the default working-vocabulary cap.
    pub fn new(spec: Arc<DatasetSpec>, seed: u64) -> Self {
        BatchGenerator::with_max_vocab(spec, seed, DEFAULT_MAX_WORKING_VOCAB)
    }

    /// Creates a generator clamping each field's vocabulary to `max_vocab`.
    pub fn with_max_vocab(spec: Arc<DatasetSpec>, seed: u64, max_vocab: u64) -> Self {
        assert!(max_vocab > 0, "working vocabulary must be nonempty");
        // Samplers are cached per (vocab, skew-bits): presets reuse a handful
        // of combinations across hundreds of fields.
        let mut cache: HashMap<(u64, u64), IdSampler> = HashMap::new();
        let mut samplers = Vec::with_capacity(spec.fields.len());
        let mut working_vocab = Vec::with_capacity(spec.fields.len());
        for f in &spec.fields {
            let vocab = f.vocab.min(max_vocab);
            let key = (vocab, f.dist.exponent().to_bits());
            let sampler = cache
                .entry(key)
                .or_insert_with(|| IdSampler::new(vocab, f.dist))
                .clone();
            samplers.push(sampler);
            working_vocab.push(vocab);
        }
        BatchGenerator {
            click: ClickModel::new(seed ^ 0x9e37_79b9_7f4a_7c15),
            spec,
            samplers,
            working_vocab,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The dataset this generator draws from.
    pub fn spec(&self) -> &Arc<DatasetSpec> {
        &self.spec
    }

    /// Working vocabulary of a field after clamping.
    pub fn working_vocab(&self, field: usize) -> u64 {
        self.working_vocab[field]
    }

    /// Generates the next batch of `size` instances.
    pub fn next_batch(&mut self, size: usize) -> Batch {
        assert!(size > 0, "batch size must be positive");
        let spec = Arc::clone(&self.spec);
        let n_fields = spec.fields.len();
        let mut fields = Vec::with_capacity(n_fields);
        for (fi, fspec) in spec.fields.iter().enumerate() {
            let mut ids = Vec::with_capacity((size as f64 * fspec.avg_ids) as usize + size);
            let mut offsets = Vec::with_capacity(size + 1);
            offsets.push(0u32);
            for _ in 0..size {
                let len = self.multi_hot_len(fspec.avg_ids);
                self.samplers[fi].sample_into(&mut self.rng, len, &mut ids);
                offsets.push(ids.len() as u32);
            }
            fields.push(FieldBatch {
                field: fi,
                ids,
                offsets,
            });
        }
        let mut dense = Vec::with_capacity(size * self.spec.numeric);
        for _ in 0..size * self.spec.numeric {
            dense.push(self.rng.gen_range(-1.0f32..1.0));
        }
        let labels =
            self.click
                .label_batch(&fields, &dense, self.spec.numeric, size, &mut self.rng);
        Batch {
            size,
            fields,
            dense,
            labels,
        }
    }

    /// Draws a multi-hot length around `avg` (uniform in `[avg/2, 3*avg/2]`,
    /// at least 1).
    fn multi_hot_len(&mut self, avg: f64) -> usize {
        if avg <= 1.0 {
            return 1;
        }
        let lo = (avg * 0.5).floor() as usize;
        let hi = (avg * 1.5).ceil() as usize;
        self.rng.gen_range(lo..=hi).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetSpec;
    use crate::field::FieldSpec;

    fn tiny_spec() -> Arc<DatasetSpec> {
        use crate::distribution::IdDistribution;
        DatasetSpec {
            name: "tiny".into(),
            numeric: 3,
            fields: vec![
                FieldSpec::one_hot("a", 100, 8, IdDistribution::Zipf { s: 1.1 }, 0),
                FieldSpec::one_hot("b", 1000, 8, IdDistribution::Uniform, 1).with_avg_ids(10.0),
            ],
            instances: None,
        }
        .shared()
    }

    #[test]
    fn batch_shape_is_consistent() {
        let mut g = BatchGenerator::new(tiny_spec(), 42);
        let b = g.next_batch(16);
        assert_eq!(b.size, 16);
        assert_eq!(b.fields.len(), 2);
        assert_eq!(b.dense.len(), 16 * 3);
        assert_eq!(b.labels.len(), 16);
        for f in &b.fields {
            assert_eq!(f.len(), 16);
            assert_eq!(*f.offsets.last().unwrap() as usize, f.ids.len());
        }
        // One-hot field: exactly one id per instance.
        assert_eq!(b.fields[0].ids.len(), 16);
        // Multi-hot field: roughly 10 per instance.
        let avg = b.fields[1].ids.len() as f64 / 16.0;
        assert!((5.0..=15.0).contains(&avg), "avg multi-hot len {avg}");
    }

    #[test]
    fn ids_respect_working_vocab() {
        let mut g = BatchGenerator::with_max_vocab(tiny_spec(), 1, 50);
        let b = g.next_batch(64);
        assert_eq!(g.working_vocab(0), 50);
        for f in &b.fields {
            assert!(f.ids.iter().all(|&id| id < 1000));
        }
        assert!(b.fields[0].ids.iter().all(|&id| id < 50));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut g1 = BatchGenerator::new(tiny_spec(), 7);
        let mut g2 = BatchGenerator::new(tiny_spec(), 7);
        let b1 = g1.next_batch(8);
        let b2 = g2.next_batch(8);
        assert_eq!(b1.fields[0].ids, b2.fields[0].ids);
        assert_eq!(b1.labels, b2.labels);
        let mut g3 = BatchGenerator::new(tiny_spec(), 8);
        let b3 = g3.next_batch(8);
        assert_ne!(b1.fields[0].ids, b3.fields[0].ids);
    }

    #[test]
    fn labels_are_binary_and_mixed() {
        let mut g = BatchGenerator::new(tiny_spec(), 3);
        let b = g.next_batch(512);
        assert!(b.labels.iter().all(|&l| l == 0.0 || l == 1.0));
        let pos: f32 = b.labels.iter().sum();
        assert!(
            pos > 16.0 && pos < 496.0,
            "labels should be mixed, got {pos} positives"
        );
    }

    #[test]
    fn instance_accessor_matches_offsets() {
        let mut g = BatchGenerator::new(tiny_spec(), 5);
        let b = g.next_batch(4);
        let f = &b.fields[1];
        let mut total = 0;
        for i in 0..4 {
            total += f.instance(i).len();
        }
        assert_eq!(total, f.ids.len());
    }

    #[test]
    fn presets_generate() {
        // Smoke-test the big presets with a small working vocab.
        for spec in [DatasetSpec::alibaba(), DatasetSpec::product2()] {
            let mut g = BatchGenerator::with_max_vocab(spec.shared(), 1, 1000);
            let b = g.next_batch(2);
            assert_eq!(b.fields.len(), b.fields.capacity().min(b.fields.len()));
            assert!(b.total_ids() >= b.size * b.fields.len());
        }
    }
}
