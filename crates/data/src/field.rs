//! Feature-field specifications.
//!
//! A WDL model ingests up to thousands of *feature fields* (Fig. 2). Each
//! sparse field maps categorical IDs into an embedding table; several fields
//! (e.g. the positions of one behaviour sequence) may share a table.

use crate::distribution::IdDistribution;
use serde::{Deserialize, Serialize};

/// Description of one sparse feature field.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FieldSpec {
    /// Field name, e.g. `"user_id"` or `"seq3_pos17"`.
    pub name: String,
    /// Logical vocabulary size of the backing embedding table (used for
    /// parameter-volume cost modeling; materialized vocabularies are clamped
    /// by the batch generator).
    pub vocab: u64,
    /// Embedding dimension of the backing table.
    pub dim: usize,
    /// Average number of categorical IDs this field contributes per instance
    /// (1.0 for one-hot; >1 for multi-hot fields).
    pub avg_ids: f64,
    /// ID skew.
    pub dist: IdDistribution,
    /// Embedding-table identity: fields with equal `table_group` share one
    /// table (sequence positions typically do).
    pub table_group: usize,
}

impl FieldSpec {
    /// Creates a one-hot field with its own table.
    pub fn one_hot(
        name: impl Into<String>,
        vocab: u64,
        dim: usize,
        dist: IdDistribution,
        table_group: usize,
    ) -> Self {
        assert!(vocab > 0 && dim > 0, "vocab and dim must be positive");
        FieldSpec {
            name: name.into(),
            vocab,
            dim,
            avg_ids: 1.0,
            dist,
            table_group,
        }
    }

    /// Sets the average multi-hot length.
    pub fn with_avg_ids(mut self, avg_ids: f64) -> Self {
        assert!(avg_ids > 0.0, "avg_ids must be positive");
        self.avg_ids = avg_ids;
        self
    }

    /// Logical parameter count of this field's table (`vocab * dim`); shared
    /// tables are counted once at the dataset level.
    pub fn table_params(&self) -> f64 {
        self.vocab as f64 * self.dim as f64
    }

    /// Bytes of embedding output this field produces per instance
    /// (`avg_ids * dim * 4`).
    pub fn embedding_bytes_per_instance(&self) -> f64 {
        self.avg_ids * self.dim as f64 * 4.0
    }

    /// Bytes of raw categorical-ID input per instance (8-byte IDs).
    pub fn id_bytes_per_instance(&self) -> f64 {
        self.avg_ids * 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_defaults() {
        let f = FieldSpec::one_hot("user", 1000, 16, IdDistribution::Uniform, 0);
        assert_eq!(f.avg_ids, 1.0);
        assert_eq!(f.table_params(), 16_000.0);
        assert_eq!(f.embedding_bytes_per_instance(), 64.0);
        assert_eq!(f.id_bytes_per_instance(), 8.0);
    }

    #[test]
    fn multi_hot_scales_bytes() {
        let f = FieldSpec::one_hot("seq", 1000, 8, IdDistribution::Zipf { s: 1.1 }, 1)
            .with_avg_ids(50.0);
        assert_eq!(f.embedding_bytes_per_instance(), 50.0 * 8.0 * 4.0);
        assert_eq!(f.id_bytes_per_instance(), 400.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dim_rejected() {
        let _ = FieldSpec::one_hot("bad", 10, 0, IdDistribution::Uniform, 0);
    }
}
