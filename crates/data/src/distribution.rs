//! Categorical-ID distributions.
//!
//! Section II-B of the paper observes that categorical feature IDs are
//! heavily skewed: sorted by frequency, the top 20 % of IDs cover 70 % of the
//! training data on average and up to 99 % (Fig. 3). We model every field's
//! ID stream as a (possibly uniform) Zipf distribution over its vocabulary,
//! sampled by exact CDF inversion so the empirical skew matches the analytic
//! coverage the caching experiments depend on.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The shape of a field's categorical-ID distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IdDistribution {
    /// All IDs equally likely.
    Uniform,
    /// Zipf with the given exponent `s > 0`: weight of rank-k ID is `k^-s`.
    Zipf {
        /// Exponent; larger means more skew.
        s: f64,
    },
}

impl IdDistribution {
    /// Zipf exponent, or 0.0 for uniform.
    pub fn exponent(self) -> f64 {
        match self {
            IdDistribution::Uniform => 0.0,
            IdDistribution::Zipf { s } => s,
        }
    }
}

/// A sampler over `0..vocab` ranks with precomputed cumulative weights.
///
/// Rank 0 is the most frequent ID. Samplers are cheap to clone (the weight
/// table is shared).
#[derive(Debug, Clone)]
pub struct IdSampler {
    vocab: u64,
    cumulative: Arc<[f64]>,
}

impl IdSampler {
    /// Builds a sampler for a vocabulary of `vocab` IDs.
    ///
    /// # Panics
    /// If `vocab == 0` or the Zipf exponent is not finite and positive.
    pub fn new(vocab: u64, dist: IdDistribution) -> Self {
        assert!(vocab > 0, "vocabulary must be nonempty");
        let s = dist.exponent();
        assert!(s.is_finite() && s >= 0.0, "zipf exponent must be >= 0");
        let n = vocab as usize;
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 1..=n {
            total += (k as f64).powf(-s);
            cumulative.push(total);
        }
        IdSampler {
            vocab,
            cumulative: cumulative.into(),
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> u64 {
        self.vocab
    }

    /// Draws one ID rank (0 = hottest).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let total = *self.cumulative.last().expect("nonempty vocabulary");
        let u: f64 = rng.gen_range(0.0..total);
        // First rank whose cumulative weight exceeds u.
        self.cumulative.partition_point(|&c| c <= u) as u64
    }

    /// Fills `out` with `n` sampled IDs.
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, n: usize, out: &mut Vec<u64>) {
        out.reserve(n);
        for _ in 0..n {
            out.push(self.sample(rng));
        }
    }

    /// Analytic fraction of probability mass covered by the top
    /// `fraction` of IDs (by rank). This is the quantity plotted in Fig. 3.
    pub fn coverage_of_top(&self, fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
        let n = self.cumulative.len();
        let k = ((n as f64 * fraction).floor() as usize).min(n);
        if k == 0 {
            return 0.0;
        }
        self.cumulative[k - 1] / self.cumulative[n - 1]
    }

    /// Probability of the rank-`k` ID (0-based).
    pub fn probability(&self, k: u64) -> f64 {
        let k = k as usize;
        assert!(k < self.cumulative.len(), "rank out of range");
        let total = self.cumulative[self.cumulative.len() - 1];
        let prev = if k == 0 { 0.0 } else { self.cumulative[k - 1] };
        (self.cumulative[k] - prev) / total
    }

    /// CDF points `(fraction of IDs, fraction of mass)` at `points` evenly
    /// spaced fractions, suitable for reproducing Fig. 3.
    pub fn cdf_points(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two points");
        (0..points)
            .map(|i| {
                let f = i as f64 / (points - 1) as f64;
                (f, self.coverage_of_top(f))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_coverage_is_linear() {
        let s = IdSampler::new(1000, IdDistribution::Uniform);
        assert!((s.coverage_of_top(0.2) - 0.2).abs() < 1e-9);
        assert!((s.coverage_of_top(1.0) - 1.0).abs() < 1e-12);
        assert_eq!(s.coverage_of_top(0.0), 0.0);
    }

    #[test]
    fn zipf_top_20_percent_covers_most_mass() {
        // The Fig. 3 observation: 20% of IDs cover ~70% of data on average.
        let s = IdSampler::new(100_000, IdDistribution::Zipf { s: 1.1 });
        let cov = s.coverage_of_top(0.2);
        assert!(cov > 0.65, "zipf(1.1) coverage of top 20% was {cov}");
        let hot = IdSampler::new(100_000, IdDistribution::Zipf { s: 1.6 });
        assert!(hot.coverage_of_top(0.2) > 0.95);
    }

    #[test]
    fn empirical_frequencies_match_skew() {
        let s = IdSampler::new(1000, IdDistribution::Zipf { s: 1.2 });
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u64; 1000];
        let draws = 200_000;
        for _ in 0..draws {
            counts[s.sample(&mut rng) as usize] += 1;
        }
        // Rank 0 should be sampled close to its analytic probability.
        let p0 = s.probability(0);
        let emp = counts[0] as f64 / draws as f64;
        assert!((emp - p0).abs() / p0 < 0.05, "p0={p0} emp={emp}");
        // Monotone-ish: hottest rank clearly beats rank 100.
        assert!(counts[0] > counts[100] * 2);
    }

    #[test]
    fn sample_stays_in_vocab() {
        let s = IdSampler::new(17, IdDistribution::Zipf { s: 2.0 });
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(s.sample(&mut rng) < 17);
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let s = IdSampler::new(100, IdDistribution::Zipf { s: 0.9 });
        let total: f64 = (0..100).map(|k| s.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_points_are_monotone() {
        let s = IdSampler::new(5000, IdDistribution::Zipf { s: 1.3 });
        let pts = s.cdf_points(11);
        assert_eq!(pts.len(), 11);
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert!((pts[10].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_into_appends() {
        let s = IdSampler::new(10, IdDistribution::Uniform);
        let mut rng = StdRng::seed_from_u64(3);
        let mut out = vec![99];
        s.sample_into(&mut rng, 5, &mut out);
        assert_eq!(out.len(), 6);
        assert_eq!(out[0], 99);
    }

    #[test]
    #[should_panic(expected = "vocabulary must be nonempty")]
    fn zero_vocab_rejected() {
        let _ = IdSampler::new(0, IdDistribution::Uniform);
    }
}

/// Approximate partial generalized harmonic number `H(v, s) = sum_{k=1..v}
/// k^-s` via the Euler–Maclaurin integral form. Accurate to well under 1%
/// for `v >= 1`.
pub fn harmonic_partial(v: f64, s: f64) -> f64 {
    assert!(v >= 1.0 && s >= 0.0);
    if v < 64.0 {
        return (1..=v as u64).map(|k| (k as f64).powf(-s)).sum();
    }
    let head: f64 = (1..=32u64).map(|k| (k as f64).powf(-s)).sum();
    let a = 32.5f64;
    let integral = if (s - 1.0).abs() < 1e-9 {
        (v / a).ln()
    } else {
        (v.powf(1.0 - s) - a.powf(1.0 - s)) / (1.0 - s)
    };
    head + integral
}

/// Analytic fraction of ID mass covered by the `k` most frequent IDs of a
/// Zipf(`s`) distribution over `vocab` IDs (the quantity HybridHash's hit
/// ratio converges to when Hot-storage holds `k` rows).
pub fn coverage_top_k(vocab: u64, s: f64, k: f64) -> f64 {
    if vocab == 0 {
        return 0.0;
    }
    let k = k.clamp(0.0, vocab as f64);
    if k < 1.0 {
        return 0.0;
    }
    if s == 0.0 {
        return k / vocab as f64;
    }
    harmonic_partial(k, s) / harmonic_partial(vocab as f64, s)
}

/// Expected fraction of IDs remaining after `Unique` when `draws` IDs are
/// sampled i.i.d. from Zipf(`s`) over `vocab`: `E[distinct] / draws`, with
/// `E[distinct] = sum_k (1 - exp(-draws * p_k))` evaluated by a head sum
/// plus a log-spaced integral over the tail.
pub fn expected_unique_ratio(vocab: u64, s: f64, draws: f64) -> f64 {
    if draws <= 0.0 || vocab == 0 {
        return 1.0;
    }
    let v = vocab as f64;
    let norm = harmonic_partial(v, s);
    let p = |k: f64| k.powf(-s) / norm;
    let head_n = 4096.min(vocab);
    let mut distinct: f64 = (1..=head_n)
        .map(|k| 1.0 - (-draws * p(k as f64)).exp())
        .sum();
    if (head_n as f64) < v {
        // Integrate 1 - exp(-draws * p(x)) over (head_n, v] on a log grid.
        let lo = head_n as f64;
        let steps = 512;
        let ratio = (v / lo).powf(1.0 / steps as f64);
        let mut x = lo;
        for _ in 0..steps {
            let x_next = x * ratio;
            let mid = (x * x_next).sqrt();
            distinct += (1.0 - (-draws * p(mid)).exp()) * (x_next - x);
            x = x_next;
        }
    }
    (distinct / draws).clamp(0.0, 1.0)
}

#[cfg(test)]
mod analytic_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn harmonic_matches_exact_sum() {
        for s in [0.0, 0.5, 0.9, 1.0, 1.3] {
            let exact: f64 = (1..=10_000u64).map(|k| (k as f64).powf(-s)).sum();
            let approx = harmonic_partial(10_000.0, s);
            assert!(
                (approx / exact - 1.0).abs() < 0.01,
                "s={s}: {approx} vs {exact}"
            );
        }
    }

    #[test]
    fn coverage_matches_sampler() {
        let sampler = IdSampler::new(10_000, IdDistribution::Zipf { s: 0.9 });
        let analytic = coverage_top_k(10_000, 0.9, 2_000.0);
        let table = sampler.coverage_of_top(0.2);
        assert!((analytic - table).abs() < 0.01, "{analytic} vs {table}");
    }

    #[test]
    fn coverage_is_scale_free_below_one() {
        // For s < 1 the top-20% coverage barely depends on vocabulary size —
        // which is what makes the clamped working vocabularies faithful.
        let small = coverage_top_k(10_000, 0.8, 2_000.0);
        let large = coverage_top_k(100_000_000, 0.8, 20_000_000.0);
        assert!((small - large).abs() < 0.06, "{small} vs {large}");
    }

    #[test]
    fn unique_ratio_matches_empirical() {
        let vocab = 5_000u64;
        let s = 0.9;
        let draws = 20_000usize;
        let sampler = IdSampler::new(vocab, IdDistribution::Zipf { s });
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..draws {
            seen.insert(sampler.sample(&mut rng));
        }
        let empirical = seen.len() as f64 / draws as f64;
        let analytic = expected_unique_ratio(vocab, s, draws as f64);
        assert!(
            (analytic - empirical).abs() < 0.02,
            "analytic {analytic} vs empirical {empirical}"
        );
    }

    #[test]
    fn unique_ratio_limits() {
        // Tiny draw counts barely collide.
        assert!(expected_unique_ratio(1_000_000, 0.9, 10.0) > 0.99);
        // Massive oversampling of a small vocab collapses.
        assert!(expected_unique_ratio(100, 0.9, 100_000.0) < 0.01);
        assert_eq!(expected_unique_ratio(100, 0.9, 0.0), 1.0);
    }
}
