//! # picasso-data
//!
//! Synthetic WDL datasets and workload generation for the PICASSO
//! reproduction.
//!
//! Table II of the paper describes five datasets — Criteo, Alibaba CTR, and
//! three in-house production datasets — by their field counts, sequence
//! lengths, embedding dimensions and parameter volumes. This crate provides
//! matching [`DatasetSpec`] presets, Zipf-skewed ID samplers reproducing the
//! Fig. 3 frequency CDFs, a seeded [`BatchGenerator`] that materializes real
//! ID streams, and a hidden logistic [`ClickModel`] so the AUC experiments
//! measure genuine learning.
//!
//! ```
//! use picasso_data::{BatchGenerator, DatasetSpec};
//!
//! let spec = DatasetSpec::criteo().shared();
//! let mut gen = BatchGenerator::new(spec, 42);
//! let batch = gen.next_batch(256);
//! assert_eq!(batch.size, 256);
//! assert_eq!(batch.fields.len(), 26);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod dataset;
pub mod distribution;
pub mod field;
pub mod stats;
pub mod synthetic;

pub use batch::{Batch, BatchGenerator, FieldBatch, DEFAULT_MAX_WORKING_VOCAB};
pub use dataset::DatasetSpec;
pub use distribution::{IdDistribution, IdSampler};
pub use field::FieldSpec;
pub use stats::FrequencyStats;
pub use synthetic::{sigmoid, splitmix64, ClickModel};
