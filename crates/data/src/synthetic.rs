//! Synthetic click ground truth.
//!
//! The AUC experiments (Table III) need labels that a model can actually
//! learn. We generate clicks from a hidden logistic model whose per-ID
//! weights are derived from a deterministic hash, so the ground truth is
//! consistent across batches, epochs, and training systems — any AUC above
//! 0.5 reflects real learning.

use crate::batch::FieldBatch;
use rand::Rng;

/// SplitMix64: a tiny, high-quality deterministic mixer.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hidden logistic click model.
#[derive(Debug, Clone)]
pub struct ClickModel {
    seed: u64,
    /// Global bias; negative so the positive rate is CTR-like (20–40 %).
    bias: f64,
    /// Scale of per-ID weights.
    scale: f64,
}

impl ClickModel {
    /// Creates a click model keyed by `seed`.
    pub fn new(seed: u64) -> Self {
        ClickModel {
            seed,
            bias: -0.8,
            scale: 1.6,
        }
    }

    /// The hidden weight of `(field, id)`, in `[-scale/2, scale/2]`.
    pub fn weight(&self, field: usize, id: u64) -> f64 {
        let h = splitmix64(self.seed ^ splitmix64((field as u64) << 40 ^ id));
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        (unit - 0.5) * self.scale
    }

    /// The hidden logit of one instance.
    pub fn logit(&self, fields: &[FieldBatch], dense: &[f32], numeric: usize, i: usize) -> f64 {
        let mut z = self.bias;
        for fb in fields {
            let ids = fb.instance(i);
            if ids.is_empty() {
                continue;
            }
            let norm = (ids.len() as f64).sqrt();
            for &id in ids {
                z += self.weight(fb.field, id) / norm;
            }
        }
        for (j, &x) in dense[i * numeric..(i + 1) * numeric].iter().enumerate() {
            z += self.weight(usize::MAX - j, 0) * x as f64 * 0.5;
        }
        z
    }

    /// Draws binary labels for a whole batch.
    pub fn label_batch<R: Rng + ?Sized>(
        &self,
        fields: &[FieldBatch],
        dense: &[f32],
        numeric: usize,
        size: usize,
        rng: &mut R,
    ) -> Vec<f32> {
        (0..size)
            .map(|i| {
                let p = sigmoid(self.logit(fields, dense, numeric, i));
                if rng.gen_bool(p) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    }
}

/// Numerically stable logistic function.
#[inline]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Avalanche sanity: flipping one input bit flips many output bits.
        let d = (splitmix64(0) ^ splitmix64(1)).count_ones();
        assert!(d > 16, "poor mixing: only {d} bits differ");
    }

    #[test]
    fn weights_are_bounded_and_stable() {
        let m = ClickModel::new(9);
        for f in 0..10 {
            for id in 0..100 {
                let w = m.weight(f, id);
                assert!(w.abs() <= 0.8 + 1e-12);
                assert_eq!(w, m.weight(f, id));
            }
        }
    }

    #[test]
    fn different_seeds_give_different_models() {
        let a = ClickModel::new(1);
        let b = ClickModel::new(2);
        let diffs = (0..100)
            .filter(|&id| a.weight(0, id) != b.weight(0, id))
            .count();
        assert!(diffs > 90);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(40.0) > 0.999_999);
        assert!(sigmoid(-40.0) < 1e-6);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!(sigmoid(1000.0) <= 1.0);
    }

    #[test]
    fn logit_depends_on_ids() {
        let m = ClickModel::new(3);
        let fa = FieldBatch {
            field: 0,
            ids: vec![1, 2],
            offsets: vec![0, 1, 2],
        };
        let za = m.logit(std::slice::from_ref(&fa), &[], 0, 0);
        let zb = m.logit(std::slice::from_ref(&fa), &[], 0, 1);
        assert_ne!(za, zb);
    }
}
