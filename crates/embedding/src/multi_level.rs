//! Multi-level HybridHash (§III-D's extension).
//!
//! The paper notes that HybridHash "can be extended to a multiple-level
//! cache system, including devices like Intel's persistent memory and SSD".
//! [`MultiLevelCache`] generalizes Algorithm 1 to an arbitrary storage
//! hierarchy: the bottom level holds the authoritative hashmap; every level
//! above it is a frequency-ranked scratchpad refreshed on the flush cadence,
//! with the hottest IDs in the fastest tier.

use crate::table::EmbeddingTable;
use std::collections::HashMap;

/// One storage tier of the hierarchy.
#[derive(Debug, Clone)]
pub struct CacheLevel {
    /// Human-readable tier name (e.g. `"hbm"`, `"dram"`, `"pmem"`).
    pub name: String,
    /// Capacity in bytes (ignored for the bottom, authoritative level).
    pub bytes: u64,
    /// Read bandwidth in bytes/s (used by cost attribution, not lookups).
    pub bandwidth: f64,
}

/// Per-level hit statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LevelStats {
    /// Lookups served by this level after warm-up.
    pub hits: u64,
}

/// Configuration of the hierarchy.
#[derive(Debug, Clone)]
pub struct MultiLevelConfig {
    /// Iterations of statistics-only warm-up.
    pub warmup_iters: u64,
    /// Refresh cadence.
    pub flush_iters: u64,
    /// Tiers, fastest first; the last is the authoritative store and its
    /// capacity is unbounded.
    pub levels: Vec<CacheLevel>,
}

impl MultiLevelConfig {
    /// The paper's example hierarchy: GPU HBM, DRAM, persistent memory,
    /// with an SSD-backed authoritative store.
    pub fn hbm_dram_pmem_ssd(hbm_bytes: u64, dram_bytes: u64, pmem_bytes: u64) -> Self {
        MultiLevelConfig {
            warmup_iters: 100,
            flush_iters: 100,
            levels: vec![
                CacheLevel {
                    name: "hbm".into(),
                    bytes: hbm_bytes,
                    bandwidth: 900e9,
                },
                CacheLevel {
                    name: "dram".into(),
                    bytes: dram_bytes,
                    bandwidth: 100e9,
                },
                CacheLevel {
                    name: "pmem".into(),
                    bytes: pmem_bytes,
                    bandwidth: 8e9,
                },
                CacheLevel {
                    name: "ssd".into(),
                    bytes: u64::MAX,
                    bandwidth: 2e9,
                },
            ],
        }
    }
}

/// A frequency-ranked multi-level embedding store.
#[derive(Debug)]
pub struct MultiLevelCache {
    cfg: MultiLevelConfig,
    /// The authoritative table (conceptually on the bottom level).
    store: EmbeddingTable,
    /// Cached rows per non-bottom level.
    tiers: Vec<HashMap<u64, Box<[f32]>>>,
    fcounter: HashMap<u64, u64>,
    itr: u64,
    stats: Vec<LevelStats>,
    warmup_lookups: u64,
}

impl MultiLevelCache {
    /// Wraps `store` with the configured hierarchy.
    ///
    /// # Panics
    /// If fewer than two levels are configured.
    pub fn new(store: EmbeddingTable, cfg: MultiLevelConfig) -> Self {
        assert!(
            cfg.levels.len() >= 2,
            "need at least one cache tier plus the store"
        );
        assert!(cfg.flush_iters > 0);
        let tiers = vec![HashMap::new(); cfg.levels.len() - 1];
        let stats = vec![LevelStats::default(); cfg.levels.len()];
        MultiLevelCache {
            cfg,
            store,
            tiers,
            fcounter: HashMap::new(),
            itr: 0,
            stats,
            warmup_lookups: 0,
        }
    }

    /// Row capacity of tier `level`.
    pub fn tier_row_capacity(&self, level: usize) -> usize {
        (self.cfg.levels[level].bytes / (self.store.dim() as u64 * 4).max(1)) as usize
    }

    /// Per-level hit statistics (index matches `cfg.levels`; the last entry
    /// counts authoritative-store reads).
    pub fn stats(&self) -> &[LevelStats] {
        &self.stats
    }

    /// Fraction of post-warm-up lookups served above level `level`
    /// (cumulative hit ratio of the tiers faster than it).
    pub fn hit_ratio_above(&self, level: usize) -> f64 {
        let total: u64 = self.stats.iter().map(|s| s.hits).sum();
        if total == 0 {
            return 0.0;
        }
        let above: u64 = self.stats[..level].iter().map(|s| s.hits).sum();
        above as f64 / total as f64
    }

    /// Looks up a batch, appending `dim` floats per ID to `out`.
    pub fn lookup_batch(&mut self, ids: &[u64], out: &mut Vec<f32>) {
        self.itr += 1;
        if self.itr <= self.cfg.warmup_iters {
            for &id in ids {
                *self.fcounter.entry(id).or_insert(0) += 1;
                self.store.gather_into(id, out);
            }
            self.warmup_lookups += ids.len() as u64;
            if self.itr == self.cfg.warmup_iters {
                self.flush();
            }
            return;
        }
        for &id in ids {
            *self.fcounter.entry(id).or_insert(0) += 1;
            let mut served = false;
            for (li, tier) in self.tiers.iter().enumerate() {
                if let Some(row) = tier.get(&id) {
                    out.extend_from_slice(row);
                    self.stats[li].hits += 1;
                    served = true;
                    break;
                }
            }
            if !served {
                self.store.gather_into(id, out);
                let bottom = self.stats.len() - 1;
                self.stats[bottom].hits += 1;
            }
        }
        if (self.itr - self.cfg.warmup_iters).is_multiple_of(self.cfg.flush_iters) {
            self.flush();
        }
    }

    /// Ranks IDs by frequency and fills the tiers: hottest in tier 0, next
    /// band in tier 1, and so on.
    fn flush(&mut self) {
        let mut items: Vec<(u64, u64)> = self.fcounter.iter().map(|(&id, &c)| (id, c)).collect();
        items.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut cursor = 0usize;
        for li in 0..self.tiers.len() {
            let cap = self.tier_row_capacity(li);
            let end = (cursor + cap).min(items.len());
            let mut tier = HashMap::with_capacity(end - cursor);
            for &(id, _) in &items[cursor..end] {
                tier.insert(id, self.store.row(id).into());
            }
            self.tiers[li] = tier;
            cursor = end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picasso_data::{IdDistribution, IdSampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg(tier_rows: &[usize], dim: usize) -> MultiLevelConfig {
        let mut levels: Vec<CacheLevel> = tier_rows
            .iter()
            .enumerate()
            .map(|(i, &rows)| CacheLevel {
                name: format!("t{i}"),
                bytes: (rows * dim * 4) as u64,
                bandwidth: 1e9 / (i + 1) as f64,
            })
            .collect();
        levels.push(CacheLevel {
            name: "store".into(),
            bytes: u64::MAX,
            bandwidth: 1e8,
        });
        MultiLevelConfig {
            warmup_iters: 5,
            flush_iters: 50,
            levels,
        }
    }

    #[test]
    fn tiers_hold_frequency_bands() {
        let dim = 4;
        let mut cache = MultiLevelCache::new(EmbeddingTable::new(dim, 3), cfg(&[2, 4], dim));
        let mut out = Vec::new();
        // Frequencies: id 0 > 1 > 2 > ... > 9.
        for _ in 0..6 {
            let mut ids = Vec::new();
            for id in 0..10u64 {
                for _ in 0..(10 - id) {
                    ids.push(id);
                }
            }
            out.clear();
            cache.lookup_batch(&ids, &mut out);
        }
        // Tier 0 (2 rows) holds ids 0-1; tier 1 (4 rows) holds ids 2-5.
        assert!(cache.tiers[0].contains_key(&0) && cache.tiers[0].contains_key(&1));
        assert!(cache.tiers[1].contains_key(&2) && cache.tiers[1].contains_key(&5));
        assert!(!cache.tiers[1].contains_key(&0), "tiers are disjoint");
    }

    #[test]
    fn values_match_uncached_store() {
        let dim = 8;
        let mut cache = MultiLevelCache::new(EmbeddingTable::new(dim, 9), cfg(&[4, 8], dim));
        let mut reference = EmbeddingTable::new(dim, 9);
        let sampler = IdSampler::new(100, IdDistribution::Zipf { s: 1.0 });
        let mut rng = StdRng::seed_from_u64(4);
        let mut ids = Vec::new();
        let mut out = Vec::new();
        for _ in 0..20 {
            ids.clear();
            sampler.sample_into(&mut rng, 64, &mut ids);
            out.clear();
            cache.lookup_batch(&ids, &mut out);
            let mut want = Vec::new();
            for &id in &ids {
                want.extend_from_slice(reference.row(id));
            }
            assert_eq!(out, want);
        }
    }

    #[test]
    fn faster_tiers_serve_more_of_a_skewed_stream() {
        let dim = 4;
        let mut cache = MultiLevelCache::new(EmbeddingTable::new(dim, 1), cfg(&[100, 400], dim));
        let sampler = IdSampler::new(5_000, IdDistribution::Zipf { s: 1.1 });
        let mut rng = StdRng::seed_from_u64(8);
        let mut ids = Vec::new();
        let mut out = Vec::new();
        for _ in 0..60 {
            ids.clear();
            sampler.sample_into(&mut rng, 1024, &mut ids);
            out.clear();
            cache.lookup_batch(&ids, &mut out);
        }
        let s = cache.stats();
        // Tier 0 holds 2% of the vocab but serves far more than 2% of hits.
        let total: u64 = s.iter().map(|l| l.hits).sum();
        assert!(s[0].hits as f64 / total as f64 > 0.2, "{s:?}");
        // Cumulative ratios are monotone in the hierarchy.
        assert!(cache.hit_ratio_above(1) <= cache.hit_ratio_above(2));
        assert!(cache.hit_ratio_above(2) < 1.0);
    }

    #[test]
    fn paper_hierarchy_constructor() {
        let c = MultiLevelConfig::hbm_dram_pmem_ssd(1 << 30, 16 << 30, 64 << 30);
        assert_eq!(c.levels.len(), 4);
        assert_eq!(c.levels[0].name, "hbm");
        assert!(c.levels[0].bandwidth > c.levels[3].bandwidth);
    }

    #[test]
    #[should_panic(expected = "at least one cache tier")]
    fn single_level_rejected() {
        let _ = MultiLevelCache::new(
            EmbeddingTable::new(4, 0),
            MultiLevelConfig {
                warmup_iters: 1,
                flush_iters: 1,
                levels: vec![CacheLevel {
                    name: "only".into(),
                    bytes: 0,
                    bandwidth: 1.0,
                }],
            },
        );
    }
}
