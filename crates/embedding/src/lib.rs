//! # picasso-embedding
//!
//! The embedding-layer substrate of the PICASSO reproduction: hashmap-backed
//! embedding tables, the sparse operators of §II-D (Unique, Partition,
//! Gather, Shuffle, Stitch, SegmentReduction), the HybridHash two-level
//! cache (Algorithm 1), the Eq. 1 `CalcVParam` cost model, and the D-Packing
//! planner that groups tables into packed operations.
//!
//! Everything in this crate executes for real on the CPU over materialized
//! ID streams; the measured outputs (hit ratios, unique counts, comm bytes)
//! parameterize the hardware simulator.
//!
//! ```
//! use picasso_embedding::{EmbeddingTable, HybridHash, HybridHashConfig};
//!
//! let table = EmbeddingTable::new(16, 42);
//! let mut cache = HybridHash::new(table, HybridHashConfig::default());
//! let mut out = Vec::new();
//! cache.lookup_batch(&[3, 1, 4, 1, 5], &mut out);
//! assert_eq!(out.len(), 5 * 16);
//! ```

#![warn(missing_docs)]

pub mod ckpt;
pub mod cost;
pub mod hybrid_hash;
pub mod multi_level;
pub mod ops;
pub mod planner;
pub mod table;

pub use ckpt::{CacheSnapshot, TableSnapshot};
pub use cost::{calc_vparam, shard_count, TableLoad};
pub use hybrid_hash::{CacheMetrics, CacheStats, HybridHash, HybridHashConfig, LookupReport};
pub use multi_level::{CacheLevel, LevelStats, MultiLevelCache, MultiLevelConfig};
pub use ops::{
    expand_unique, gather, partition, segment_reduce, shuffle_stitch, unique, OpCost,
    PartitionOutput, Reduction, UniqueOutput,
};
pub use planner::{Pack, PackPlan, PlannerConfig};
pub use table::{EmbeddingTable, RowArena, ShardedTable};
