//! Checkpoint serialization for embedding state.
//!
//! Two snapshot shapes live here: [`TableSnapshot`] (rows of one
//! [`EmbeddingTable`]) and [`CacheSnapshot`] (the full [`HybridHash`] state:
//! iteration, statistics, frequency counters, hot ID list, and the cold
//! table). Both encode with the `picasso-ckpt` codec — flat little-endian,
//! rows sorted by ID — so the same state always produces the same bytes and
//! the crash-and-recover proof can compare checkpoints bit for bit.
//!
//! [`HybridHash`]: crate::HybridHash

use crate::table::EmbeddingTable;
use crate::CacheStats;
use picasso_ckpt::{CodecError, Decoder, Encoder};

/// Rows of one embedding table, sorted by ID.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSnapshot {
    /// Embedding dimension (shape check on restore).
    pub dim: u32,
    /// `(id, row)` pairs in ascending ID order.
    pub rows: Vec<(u64, Vec<f32>)>,
}

impl TableSnapshot {
    /// Captures the rows for `ids` (which must be materialized and sorted
    /// ascending) via one batched read of the table's arena.
    fn capture(table: &EmbeddingTable, ids: Vec<u64>) -> TableSnapshot {
        let dim = table.dim();
        let mut buf = Vec::new();
        table.gather_materialized(&ids, &mut buf);
        let rows = ids
            .into_iter()
            .enumerate()
            .map(|(i, id)| (id, buf[i * dim..(i + 1) * dim].to_vec()))
            .collect();
        TableSnapshot {
            dim: dim as u32,
            rows,
        }
    }

    /// Captures every materialized row of `table`.
    pub fn full(table: &EmbeddingTable) -> TableSnapshot {
        Self::capture(table, table.materialized_ids())
    }

    /// Captures only rows dirtied since the table's last `mark_clean`.
    pub fn dirty(table: &EmbeddingTable) -> TableSnapshot {
        Self::capture(table, table.dirty_ids().collect())
    }

    /// Number of rows captured.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the snapshot holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Resets `table` to exactly this snapshot's rows; `table` ends clean.
    pub fn restore_full(&self, table: &mut EmbeddingTable) {
        assert_eq!(
            self.dim as usize,
            table.dim(),
            "snapshot dim must match table"
        );
        table.clear_rows();
        self.apply(table);
    }

    /// Overwrites this snapshot's rows into `table` (incremental restore on
    /// top of the parent state); `table` ends clean.
    pub fn apply(&self, table: &mut EmbeddingTable) {
        assert_eq!(
            self.dim as usize,
            table.dim(),
            "snapshot dim must match table"
        );
        for (id, row) in &self.rows {
            table.put(*id, row);
        }
        table.mark_clean();
    }

    fn encode_into(&self, e: &mut Encoder) {
        e.u32(self.dim);
        e.u64(self.rows.len() as u64);
        for (id, row) in &self.rows {
            e.u64(*id);
            e.f32_slice(row);
        }
    }

    fn decode_from(d: &mut Decoder<'_>) -> Result<TableSnapshot, CodecError> {
        let dim = d.u32()?;
        if dim == 0 {
            return Err(CodecError::Invalid("table snapshot with dim 0".into()));
        }
        let n = d.u64()? as usize;
        let mut rows = Vec::new();
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            let id = d.u64()?;
            if prev.is_some_and(|p| p >= id) {
                return Err(CodecError::Invalid(format!(
                    "row ids out of order at id {id}"
                )));
            }
            prev = Some(id);
            let row = d.f32_slice()?;
            if row.len() != dim as usize {
                return Err(CodecError::Invalid(format!(
                    "row {id} has {} values, dim is {dim}",
                    row.len()
                )));
            }
            rows.push((id, row));
        }
        Ok(TableSnapshot { dim, rows })
    }

    /// Serializes the snapshot to shard bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        self.encode_into(&mut e);
        e.finish()
    }

    /// Parses shard bytes (inverse of [`TableSnapshot::encode`]).
    pub fn decode(bytes: &[u8]) -> Result<TableSnapshot, CodecError> {
        let mut d = Decoder::new(bytes);
        let snap = Self::decode_from(&mut d)?;
        d.finish()?;
        Ok(snap)
    }
}

/// Complete (or delta) state of one [`HybridHash`](crate::HybridHash).
///
/// Hot-storage values are intentionally absent: gradient write-through keeps
/// every hot row equal to its cold row, so the hot set is reconstructed from
/// `hot_ids` against the restored cold table.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheSnapshot {
    /// Iteration counter at capture time.
    pub itr: u64,
    /// Cumulative cache statistics at capture time.
    pub stats: CacheStats,
    /// `(id, absolute count)` frequency counters, ascending by ID. Full
    /// snapshots carry every counter; deltas only the touched ones.
    pub counters: Vec<(u64, u64)>,
    /// IDs resident in Hot-storage, ascending (always complete — the hot
    /// set is replaced wholesale at every flush, not diffed).
    pub hot_ids: Vec<u64>,
    /// The cold table's rows (full or dirty-only).
    pub cold: TableSnapshot,
}

impl CacheSnapshot {
    /// Serializes the snapshot to shard bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u64(self.itr);
        e.u64(self.stats.hot_hits);
        e.u64(self.stats.cold_hits);
        e.u64(self.stats.warmup_lookups);
        e.u64(self.stats.flushes);
        e.u64(self.stats.evictions);
        e.u64(self.counters.len() as u64);
        for &(id, count) in &self.counters {
            e.u64(id);
            e.u64(count);
        }
        e.u64(self.hot_ids.len() as u64);
        for &id in &self.hot_ids {
            e.u64(id);
        }
        self.cold.encode_into(&mut e);
        e.finish()
    }

    /// Parses shard bytes (inverse of [`CacheSnapshot::encode`]).
    pub fn decode(bytes: &[u8]) -> Result<CacheSnapshot, CodecError> {
        let mut d = Decoder::new(bytes);
        let itr = d.u64()?;
        let stats = CacheStats {
            hot_hits: d.u64()?,
            cold_hits: d.u64()?,
            warmup_lookups: d.u64()?,
            flushes: d.u64()?,
            evictions: d.u64()?,
        };
        let n = d.u64()? as usize;
        let mut counters = Vec::new();
        for _ in 0..n {
            counters.push((d.u64()?, d.u64()?));
        }
        let n = d.u64()? as usize;
        let mut hot_ids = Vec::new();
        for _ in 0..n {
            hot_ids.push(d.u64()?);
        }
        let cold = TableSnapshot::decode_from(&mut d)?;
        d.finish()?;
        Ok(CacheSnapshot {
            itr,
            stats,
            counters,
            hot_ids,
            cold,
        })
    }

    /// Total bytes this snapshot encodes to (checkpoint sizing metric).
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hybrid_hash::{HybridHash, HybridHashConfig};

    fn table_eq(a: &EmbeddingTable, b: &EmbeddingTable) -> bool {
        TableSnapshot::full(a) == TableSnapshot::full(b)
    }

    #[test]
    fn table_snapshot_round_trips_bytes() {
        let mut t = EmbeddingTable::new(4, 9);
        for id in [5u64, 1, 99] {
            t.row(id);
        }
        t.apply_gradient(5, &[0.5; 4], 0.1);
        let snap = TableSnapshot::full(&t);
        let back = TableSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(back, snap);
        let mut restored = EmbeddingTable::new(4, 9);
        back.restore_full(&mut restored);
        assert!(table_eq(&t, &restored));
        assert_eq!(restored.dirty_count(), 0, "restore ends clean");
    }

    #[test]
    fn dirty_snapshot_covers_exactly_the_touched_rows() {
        let mut t = EmbeddingTable::new(2, 0);
        t.row(1);
        t.row(2);
        t.mark_clean();
        t.apply_gradient(2, &[1.0, 1.0], 0.1);
        t.row(3);
        let delta = TableSnapshot::dirty(&t);
        assert_eq!(
            delta.rows.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            [2, 3]
        );
        assert!(delta.len() < TableSnapshot::full(&t).len());
    }

    #[test]
    fn decode_rejects_malformed_snapshots() {
        let mut t = EmbeddingTable::new(2, 0);
        t.row(1);
        let good = TableSnapshot::full(&t).encode();
        // Truncated.
        assert!(TableSnapshot::decode(&good[..good.len() - 1]).is_err());
        // Trailing garbage.
        let mut long = good.clone();
        long.push(0);
        assert!(TableSnapshot::decode(&long).is_err());
        // dim 0.
        let mut e = Encoder::new();
        e.u32(0);
        e.u64(0);
        assert!(matches!(
            TableSnapshot::decode(&e.finish()),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn cache_snapshot_round_trips_bytes() {
        let mut h = HybridHash::new(
            EmbeddingTable::new(4, 3),
            HybridHashConfig {
                warmup_iters: 1,
                flush_iters: 2,
                hot_bytes: 1 << 16,
            },
        );
        let mut out = Vec::new();
        for ids in [[1u64, 2, 3], [1, 1, 4], [2, 5, 1]] {
            out.clear();
            h.lookup_batch(&ids, &mut out);
        }
        h.apply_gradient(1, &[0.1; 4], 0.5);
        let snap = h.snapshot_full();
        let back = CacheSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn cache_restore_reproduces_the_live_state() {
        let cfg = HybridHashConfig {
            warmup_iters: 2,
            flush_iters: 3,
            hot_bytes: 64,
        };
        let mut live = HybridHash::new(EmbeddingTable::new(4, 8), cfg.clone());
        let mut out = Vec::new();
        for step in 0..10u64 {
            out.clear();
            live.lookup_batch(&[step % 4, (step + 1) % 5, 7], &mut out);
            live.apply_gradient(step % 4, &[0.25; 4], 0.1);
        }
        let snap = live.snapshot_full();
        let mut restored = HybridHash::new(EmbeddingTable::new(4, 8), cfg);
        restored.restore_full(&snap);

        assert_eq!(restored.iteration(), live.iteration());
        assert_eq!(restored.stats(), live.stats());
        assert_eq!(restored.hot_rows(), live.hot_rows());
        assert!(table_eq(restored.cold(), live.cold()));
        // Behavior equivalence: the next lookups agree exactly.
        let mut a = Vec::new();
        let mut b = Vec::new();
        let ra = live.lookup_batch(&[0, 1, 2, 7, 9], &mut a);
        let rb = restored.lookup_batch(&[0, 1, 2, 7, 9], &mut b);
        assert_eq!(ra, rb);
        assert_eq!(a, b);
    }

    #[test]
    fn delta_chain_equals_full_snapshot() {
        let cfg = HybridHashConfig {
            warmup_iters: 1,
            flush_iters: 2,
            hot_bytes: 96,
        };
        let mut live = HybridHash::new(EmbeddingTable::new(3, 5), cfg.clone());
        let mut out = Vec::new();
        out.clear();
        live.lookup_batch(&[1, 2, 3, 4], &mut out);
        let base = live.snapshot_full();
        live.mark_clean();
        out.clear();
        live.lookup_batch(&[2, 2, 5], &mut out);
        live.apply_gradient(5, &[1.0; 3], 0.2);
        let delta = live.snapshot_delta();
        assert!(
            delta.cold.len() < base.cold.len() + 2,
            "delta must not re-ship the whole table"
        );

        let mut restored = HybridHash::new(EmbeddingTable::new(3, 5), cfg);
        restored.restore_full(&base);
        restored.apply_delta(&delta);
        let want = live.snapshot_full();
        let got = restored.snapshot_full();
        assert_eq!(got, want, "base + delta must equal the live state");
    }

    #[test]
    fn touched_set_shrinks_deltas() {
        let mut h = HybridHash::new(EmbeddingTable::new(4, 1), HybridHashConfig::default());
        let mut out = Vec::new();
        let all: Vec<u64> = (0..100).collect();
        h.lookup_batch(&all, &mut out);
        h.mark_clean();
        assert_eq!(h.touched_count(), 0);
        out.clear();
        h.lookup_batch(&[3, 4, 3], &mut out);
        assert_eq!(h.touched_count(), 2);
        let delta = h.snapshot_delta();
        assert_eq!(delta.counters.len(), 2);
        assert!(delta.encoded_len() < h.snapshot_full().encoded_len());
    }
}
