//! Execution-cost estimation for packed embedding operations (Eq. 1).
//!
//! `CalcVParam(T) = N * sum_{t in T} (t_dim * sum_{ID in t} ID_freq)`
//! estimates the parameter volume (floats) processed by a packed operation
//! over the tables `T`, where `N` is the total number of categorical IDs and
//! the frequencies come from warm-up statistics.

use picasso_data::FrequencyStats;

/// Per-table inputs to Eq. 1: dimension and the warm-up relative frequency
/// mass of the IDs hitting it.
#[derive(Debug, Clone, Copy)]
pub struct TableLoad {
    /// Embedding dimension of the table.
    pub dim: usize,
    /// Sum of the relative frequencies of the table's observed IDs: the
    /// fraction of all categorical IDs that query this table.
    pub freq_mass: f64,
}

impl TableLoad {
    /// Builds the load of one table from warm-up statistics.
    ///
    /// `table_stats` counts this table's observed IDs; `total_ids` is `N`,
    /// the total categorical IDs observed across all tables.
    pub fn from_stats(dim: usize, table_stats: &FrequencyStats, total_ids: u64) -> TableLoad {
        let freq_mass = if total_ids == 0 {
            0.0
        } else {
            table_stats.total() as f64 / total_ids as f64
        };
        TableLoad { dim, freq_mass }
    }

    /// This table's contribution to Eq. 1: `N * t_dim * sum_{ID in t}
    /// ID_freq` floats, given `total_ids = N` observed IDs. Calibration
    /// tooling uses the per-table term directly; [`calc_vparam`] sums it
    /// over a pack.
    pub fn volume(&self, total_ids: u64) -> f64 {
        total_ids as f64 * self.dim as f64 * self.freq_mass
    }
}

/// Eq. 1: estimated parameter volume (floats) processed by a packed
/// operation covering `tables`, given `total_ids = N` observed IDs.
pub fn calc_vparam(tables: &[TableLoad], total_ids: u64) -> f64 {
    tables.iter().map(|t| t.volume(total_ids)).sum()
}

/// Number of shards a packed operation should be split into so that no shard
/// exceeds the average volume across packs (§III-B: packs with
/// above-average `CalcVParam` are evenly split).
pub fn shard_count(pack_volume: f64, avg_volume: f64) -> usize {
    if avg_volume <= 0.0 || pack_volume <= avg_volume {
        1
    } else {
        (pack_volume / avg_volume).round().max(1.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vparam_scales_with_dim_and_mass() {
        let small = [TableLoad {
            dim: 8,
            freq_mass: 0.5,
        }];
        let large = [TableLoad {
            dim: 32,
            freq_mass: 0.5,
        }];
        assert_eq!(calc_vparam(&large, 1000), 4.0 * calc_vparam(&small, 1000));
        // The paper's example: dim-32 tables get 4 shards relative to dim-8.
        let v8 = calc_vparam(&small, 1000);
        let v32 = calc_vparam(&large, 1000);
        let avg = v8; // imagine the average volume equals the dim-8 pack's
        assert_eq!(shard_count(v32, avg), 4);
        assert_eq!(shard_count(v8, avg), 1);
    }

    #[test]
    fn vparam_of_multiple_tables_adds() {
        let t = TableLoad {
            dim: 4,
            freq_mass: 0.25,
        };
        let one = calc_vparam(&[t], 100);
        let two = calc_vparam(&[t, t], 100);
        assert!((two - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    fn from_stats_computes_mass() {
        let mut s = FrequencyStats::new();
        s.record_all(&[1, 2, 2, 3]);
        let load = TableLoad::from_stats(16, &s, 16);
        assert!((load.freq_mass - 0.25).abs() < 1e-12);
        let empty = TableLoad::from_stats(16, &FrequencyStats::new(), 0);
        assert_eq!(empty.freq_mass, 0.0);
    }

    #[test]
    fn per_table_volume_sums_to_vparam() {
        let a = TableLoad {
            dim: 8,
            freq_mass: 0.5,
        };
        let b = TableLoad {
            dim: 32,
            freq_mass: 0.25,
        };
        assert_eq!(a.volume(1000), 1000.0 * 8.0 * 0.5);
        assert!((calc_vparam(&[a, b], 1000) - (a.volume(1000) + b.volume(1000))).abs() < 1e-9);
        assert_eq!(a.volume(0), 0.0);
    }

    #[test]
    fn shard_count_edge_cases() {
        assert_eq!(shard_count(10.0, 0.0), 1);
        assert_eq!(shard_count(0.0, 10.0), 1);
        assert_eq!(shard_count(10.0, 10.0), 1);
        assert_eq!(shard_count(25.0, 10.0), 3, "rounds 2.5 up");
    }
}
