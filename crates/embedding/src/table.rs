//! Embedding tables.
//!
//! Industrial WDL systems store embedding parameters in hashmaps so the
//! table can grow with newly-emerging categorical IDs (§III-B). Rows are
//! lazily initialized from a deterministic per-table hash so that every
//! training system variant sees bit-identical initial parameters — the
//! cache-consistency property tests depend on this.

use picasso_data::splitmix64;
use std::collections::{BTreeSet, HashMap};

/// A growable embedding table keyed by categorical ID.
///
/// The table tracks which rows changed since [`EmbeddingTable::mark_clean`]
/// (materialization counts: an uninterrupted run and a restored run must
/// agree on *which* rows exist, not just their values). Incremental
/// checkpoints serialize only this dirty set.
#[derive(Debug, Clone)]
pub struct EmbeddingTable {
    dim: usize,
    seed: u64,
    rows: HashMap<u64, Box<[f32]>>,
    dirty: BTreeSet<u64>,
}

impl EmbeddingTable {
    /// Creates an empty table with embedding dimension `dim`.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        EmbeddingTable {
            dim,
            seed,
            rows: HashMap::new(),
            dirty: BTreeSet::new(),
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of materialized rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows have been materialized.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Bytes of parameter storage currently materialized.
    pub fn bytes(&self) -> u64 {
        (self.rows.len() * self.dim * 4) as u64
    }

    /// The deterministic initial value of `row[j]` for `id`.
    fn init_value(seed: u64, id: u64, j: usize) -> f32 {
        let h = splitmix64(seed ^ splitmix64(id.wrapping_add(j as u64) ^ (j as u64) << 32));
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        ((unit - 0.5) * 0.2) as f32
    }

    /// Returns the row for `id`, materializing it on first access.
    pub fn row(&mut self, id: u64) -> &[f32] {
        let (dim, seed) = (self.dim, self.seed);
        let dirty = &mut self.dirty;
        self.rows.entry(id).or_insert_with(|| {
            dirty.insert(id);
            (0..dim).map(|j| Self::init_value(seed, id, j)).collect()
        })
    }

    /// Returns the row for `id` without materializing; `None` if absent.
    pub fn peek(&self, id: u64) -> Option<&[f32]> {
        self.rows.get(&id).map(|r| r.as_ref())
    }

    /// Copies the row for `id` into `out`.
    pub fn gather_into(&mut self, id: u64, out: &mut Vec<f32>) {
        let row = self.row(id);
        out.extend_from_slice(row);
    }

    /// Overwrites the row for `id` (used by cache write-back).
    pub fn put(&mut self, id: u64, values: &[f32]) {
        assert_eq!(values.len(), self.dim, "row length must equal dim");
        self.rows.insert(id, values.into());
        self.dirty.insert(id);
    }

    /// Applies a gradient step `row -= lr * grad` to the row for `id`.
    pub fn apply_gradient(&mut self, id: u64, grad: &[f32], lr: f32) {
        assert_eq!(grad.len(), self.dim, "gradient length must equal dim");
        let (dim, seed) = (self.dim, self.seed);
        let row = self
            .rows
            .entry(id)
            .or_insert_with(|| (0..dim).map(|j| Self::init_value(seed, id, j)).collect());
        for (w, g) in row.iter_mut().zip(grad) {
            *w -= lr * g;
        }
        self.dirty.insert(id);
    }

    /// IDs of rows touched (materialized, written, or updated) since the last
    /// [`EmbeddingTable::mark_clean`], ascending.
    pub fn dirty_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.dirty.iter().copied()
    }

    /// Number of dirty rows.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Forgets the dirty set — called after a checkpoint captures it (and
    /// after a restore, which reconstructs a just-checkpointed state).
    pub fn mark_clean(&mut self) {
        self.dirty.clear();
    }

    /// IDs of every materialized row, ascending.
    pub fn materialized_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.rows.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Drops all materialized rows and the dirty set (full-restore staging).
    pub fn clear_rows(&mut self) {
        self.rows.clear();
        self.dirty.clear();
    }
}

/// An embedding table partitioned across `n_shards` workers (the MP layout:
/// embedding parameters are partitioned across PICASSO-Executors).
#[derive(Debug, Clone)]
pub struct ShardedTable {
    shards: Vec<EmbeddingTable>,
}

impl ShardedTable {
    /// Creates a table split over `n_shards` partitions.
    pub fn new(dim: usize, seed: u64, n_shards: usize) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        ShardedTable {
            shards: (0..n_shards)
                // Same seed on every shard: the shard of an ID is a pure
                // function of the ID, so values do not depend on layout.
                .map(|_| EmbeddingTable::new(dim, seed))
                .collect(),
        }
    }

    /// Number of partitions.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard owns `id`.
    pub fn shard_of(&self, id: u64) -> usize {
        (splitmix64(id) % self.shards.len() as u64) as usize
    }

    /// Mutable access to one shard.
    pub fn shard_mut(&mut self, s: usize) -> &mut EmbeddingTable {
        &mut self.shards[s]
    }

    /// Shared access to one shard.
    pub fn shard(&self, s: usize) -> &EmbeddingTable {
        &self.shards[s]
    }

    /// Looks up `id` on its owning shard.
    pub fn row(&mut self, id: u64) -> &[f32] {
        let s = self.shard_of(id);
        self.shards[s].row(id)
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.shards[0].dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_deterministic() {
        let mut a = EmbeddingTable::new(8, 42);
        let mut b = EmbeddingTable::new(8, 42);
        assert_eq!(a.row(17), b.row(17));
        let mut c = EmbeddingTable::new(8, 43);
        assert_ne!(a.row(17), c.row(17), "different seeds differ");
    }

    #[test]
    fn rows_are_small_and_varied() {
        let mut t = EmbeddingTable::new(16, 1);
        let r = t.row(5).to_vec();
        assert!(r.iter().all(|v| v.abs() <= 0.1));
        let distinct = r
            .iter()
            .map(|v| v.to_bits())
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 8, "row values should vary");
    }

    #[test]
    fn lazy_materialization() {
        let mut t = EmbeddingTable::new(4, 0);
        assert!(t.is_empty());
        assert!(t.peek(1).is_none());
        t.row(1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.bytes(), 16);
        assert!(t.peek(1).is_some());
    }

    #[test]
    fn gradient_updates_row() {
        let mut t = EmbeddingTable::new(2, 0);
        let before = t.row(9).to_vec();
        t.apply_gradient(9, &[1.0, -1.0], 0.5);
        let after = t.peek(9).unwrap();
        assert!((after[0] - (before[0] - 0.5)).abs() < 1e-6);
        assert!((after[1] - (before[1] + 0.5)).abs() < 1e-6);
    }

    #[test]
    fn put_overwrites() {
        let mut t = EmbeddingTable::new(2, 0);
        t.put(3, &[1.0, 2.0]);
        assert_eq!(t.peek(3).unwrap(), &[1.0, 2.0]);
    }

    #[test]
    fn shards_partition_ids_consistently() {
        let mut t = ShardedTable::new(4, 7, 4);
        assert_eq!(t.shard_count(), 4);
        let s = t.shard_of(99);
        assert_eq!(s, t.shard_of(99), "stable mapping");
        // Value equals an unsharded table's value: layout-independent.
        let mut plain = EmbeddingTable::new(4, 7);
        assert_eq!(t.row(99), plain.row(99));
    }

    #[test]
    fn shard_distribution_is_roughly_balanced() {
        let t = ShardedTable::new(4, 0, 8);
        let mut counts = [0usize; 8];
        for id in 0..8000 {
            counts[t.shard_of(id)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "imbalanced shard: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "row length must equal dim")]
    fn put_rejects_wrong_dim() {
        let mut t = EmbeddingTable::new(3, 0);
        t.put(0, &[1.0]);
    }
}
