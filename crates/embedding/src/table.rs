//! Embedding tables.
//!
//! Industrial WDL systems store embedding parameters in hashmaps so the
//! table can grow with newly-emerging categorical IDs (§III-B). Rows are
//! lazily initialized from a deterministic per-table hash so that every
//! training system variant sees bit-identical initial parameters — the
//! cache-consistency property tests depend on this.
//!
//! Storage is struct-of-arrays: all rows live in one contiguous `f32` arena
//! ([`RowArena`]) with a hashmap used only to translate an ID to its dense
//! slot. The hot path (gather / scatter over a batch of IDs) then streams
//! through contiguous memory instead of chasing one heap allocation per row.

use picasso_data::splitmix64;
use std::collections::{BTreeSet, HashMap};

/// A struct-of-arrays row store: one contiguous `Vec<f32>` holding all rows
/// (`dim` floats each, slot-major) plus an id→slot index. Rows are only
/// appended or overwritten, never removed individually, so slots stay dense
/// and stable for the arena's lifetime.
#[derive(Debug, Clone, Default)]
pub struct RowArena {
    dim: usize,
    data: Vec<f32>,
    index: HashMap<u64, u32>,
    slot_ids: Vec<u64>,
}

impl RowArena {
    /// Creates an empty arena for rows of `dim` floats.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "row dimension must be positive");
        RowArena {
            dim,
            data: Vec::new(),
            index: HashMap::new(),
            slot_ids: Vec::new(),
        }
    }

    /// Creates an empty arena preallocated for `rows` rows.
    pub fn with_capacity(dim: usize, rows: usize) -> Self {
        assert!(dim > 0, "row dimension must be positive");
        RowArena {
            dim,
            data: Vec::with_capacity(rows * dim),
            index: HashMap::with_capacity(rows),
            slot_ids: Vec::with_capacity(rows),
        }
    }

    /// Row width in floats.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows stored.
    pub fn len(&self) -> usize {
        self.slot_ids.len()
    }

    /// Whether the arena holds no rows.
    pub fn is_empty(&self) -> bool {
        self.slot_ids.is_empty()
    }

    /// Whether a row exists for `id`.
    pub fn contains(&self, id: u64) -> bool {
        self.index.contains_key(&id)
    }

    /// The row for `id`, if present.
    pub fn get(&self, id: u64) -> Option<&[f32]> {
        self.index.get(&id).map(|&s| self.row(s))
    }

    /// Mutable row for `id`, if present.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut [f32]> {
        match self.index.get(&id) {
            Some(&s) => {
                let lo = s as usize * self.dim;
                Some(&mut self.data[lo..lo + self.dim])
            }
            None => None,
        }
    }

    /// The row in slot `slot` (slots are handed out by [`RowArena::ensure_with`]).
    pub fn row(&self, slot: u32) -> &[f32] {
        let lo = slot as usize * self.dim;
        &self.data[lo..lo + self.dim]
    }

    /// Returns the slot for `id`, appending a fresh row filled by
    /// `init(j)` for each column `j` when absent. The bool is `true` iff the
    /// row was created by this call.
    pub fn ensure_with(&mut self, id: u64, mut init: impl FnMut(usize) -> f32) -> (u32, bool) {
        if let Some(&s) = self.index.get(&id) {
            return (s, false);
        }
        let slot = self.slot_ids.len() as u32;
        self.data.extend((0..self.dim).map(&mut init));
        self.slot_ids.push(id);
        self.index.insert(id, slot);
        (slot, true)
    }

    /// Overwrites the row for `id`, appending a new slot if absent.
    pub fn insert(&mut self, id: u64, values: &[f32]) {
        assert_eq!(values.len(), self.dim, "row length must equal dim");
        match self.index.get(&id) {
            Some(&s) => {
                let lo = s as usize * self.dim;
                self.data[lo..lo + self.dim].copy_from_slice(values);
            }
            None => {
                let slot = self.slot_ids.len() as u32;
                self.data.extend_from_slice(values);
                self.slot_ids.push(id);
                self.index.insert(id, slot);
            }
        }
    }

    /// IDs of every row in slot (insertion) order.
    pub fn ids(&self) -> &[u64] {
        &self.slot_ids
    }

    /// IDs of every row, ascending.
    pub fn sorted_ids(&self) -> Vec<u64> {
        let mut ids = self.slot_ids.clone();
        ids.sort_unstable();
        ids
    }

    /// Drops every row.
    pub fn clear(&mut self) {
        self.data.clear();
        self.index.clear();
        self.slot_ids.clear();
    }
}

/// A growable embedding table keyed by categorical ID, backed by a
/// [`RowArena`].
///
/// The table tracks which rows changed since [`EmbeddingTable::mark_clean`]
/// (materialization counts: an uninterrupted run and a restored run must
/// agree on *which* rows exist, not just their values). Incremental
/// checkpoints serialize only this dirty set.
#[derive(Debug, Clone)]
pub struct EmbeddingTable {
    seed: u64,
    arena: RowArena,
    dirty: BTreeSet<u64>,
}

impl EmbeddingTable {
    /// Creates an empty table with embedding dimension `dim`.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        EmbeddingTable {
            seed,
            arena: RowArena::new(dim),
            dirty: BTreeSet::new(),
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.arena.dim()
    }

    /// Number of materialized rows.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Whether no rows have been materialized.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Bytes of parameter storage currently materialized.
    pub fn bytes(&self) -> u64 {
        (self.arena.len() * self.arena.dim() * 4) as u64
    }

    /// The deterministic initial value of `row[j]` for `id`.
    fn init_value(seed: u64, id: u64, j: usize) -> f32 {
        let h = splitmix64(seed ^ splitmix64(id.wrapping_add(j as u64) ^ (j as u64) << 32));
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        ((unit - 0.5) * 0.2) as f32
    }

    /// Materializes the row for `id` if absent, returning its arena slot.
    fn ensure(&mut self, id: u64) -> u32 {
        let seed = self.seed;
        let (slot, created) = self
            .arena
            .ensure_with(id, |j| Self::init_value(seed, id, j));
        if created {
            self.dirty.insert(id);
        }
        slot
    }

    /// Returns the row for `id`, materializing it on first access.
    pub fn row(&mut self, id: u64) -> &[f32] {
        let slot = self.ensure(id);
        self.arena.row(slot)
    }

    /// Returns the row for `id` without materializing; `None` if absent.
    pub fn peek(&self, id: u64) -> Option<&[f32]> {
        self.arena.get(id)
    }

    /// Copies the row for `id` into `out`.
    pub fn gather_into(&mut self, id: u64, out: &mut Vec<f32>) {
        let slot = self.ensure(id);
        out.extend_from_slice(self.arena.row(slot));
    }

    /// Batched gather: appends `dim` floats per ID to `out`, materializing
    /// absent rows. One pass over contiguous arena memory.
    pub fn gather_rows(&mut self, ids: &[u64], out: &mut Vec<f32>) {
        out.reserve(ids.len() * self.arena.dim());
        for &id in ids {
            let slot = self.ensure(id);
            out.extend_from_slice(self.arena.row(slot));
        }
    }

    /// Batched read-only gather over rows that must already be materialized
    /// (checkpoint capture): appends `dim` floats per ID to `out`.
    ///
    /// # Panics
    /// Panics if any ID has no materialized row.
    pub fn gather_materialized(&self, ids: &[u64], out: &mut Vec<f32>) {
        out.reserve(ids.len() * self.arena.dim());
        for &id in ids {
            out.extend_from_slice(self.arena.get(id).expect("row must be materialized"));
        }
    }

    /// Overwrites the row for `id` (used by cache write-back).
    pub fn put(&mut self, id: u64, values: &[f32]) {
        self.arena.insert(id, values);
        self.dirty.insert(id);
    }

    /// Applies a gradient step `row -= lr * grad` to the row for `id`.
    pub fn apply_gradient(&mut self, id: u64, grad: &[f32], lr: f32) {
        assert_eq!(grad.len(), self.dim(), "gradient length must equal dim");
        let slot = self.ensure(id);
        let lo = slot as usize * self.arena.dim;
        let row = &mut self.arena.data[lo..lo + self.arena.dim];
        for (w, g) in row.iter_mut().zip(grad) {
            *w -= lr * g;
        }
        self.dirty.insert(id);
    }

    /// Batched scatter: applies `row -= lr * grad` for each ID, reading the
    /// i-th gradient from `grads[i*dim..(i+1)*dim]`.
    pub fn scatter_grads(&mut self, ids: &[u64], grads: &[f32], lr: f32) {
        let dim = self.dim();
        assert_eq!(
            grads.len(),
            ids.len() * dim,
            "need one dim-wide gradient per id"
        );
        for (i, &id) in ids.iter().enumerate() {
            self.apply_gradient(id, &grads[i * dim..(i + 1) * dim], lr);
        }
    }

    /// IDs of rows touched (materialized, written, or updated) since the last
    /// [`EmbeddingTable::mark_clean`], ascending.
    pub fn dirty_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.dirty.iter().copied()
    }

    /// Number of dirty rows.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Forgets the dirty set — called after a checkpoint captures it (and
    /// after a restore, which reconstructs a just-checkpointed state).
    pub fn mark_clean(&mut self) {
        self.dirty.clear();
    }

    /// IDs of every materialized row, ascending.
    pub fn materialized_ids(&self) -> Vec<u64> {
        self.arena.sorted_ids()
    }

    /// Drops all materialized rows and the dirty set (full-restore staging).
    pub fn clear_rows(&mut self) {
        self.arena.clear();
        self.dirty.clear();
    }
}

/// An embedding table partitioned across `n_shards` workers (the MP layout:
/// embedding parameters are partitioned across PICASSO-Executors).
#[derive(Debug, Clone)]
pub struct ShardedTable {
    shards: Vec<EmbeddingTable>,
}

impl ShardedTable {
    /// Creates a table split over `n_shards` partitions.
    pub fn new(dim: usize, seed: u64, n_shards: usize) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        ShardedTable {
            shards: (0..n_shards)
                // Same seed on every shard: the shard of an ID is a pure
                // function of the ID, so values do not depend on layout.
                .map(|_| EmbeddingTable::new(dim, seed))
                .collect(),
        }
    }

    /// Number of partitions.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard owns `id`.
    pub fn shard_of(&self, id: u64) -> usize {
        (splitmix64(id) % self.shards.len() as u64) as usize
    }

    /// Mutable access to one shard.
    pub fn shard_mut(&mut self, s: usize) -> &mut EmbeddingTable {
        &mut self.shards[s]
    }

    /// Shared access to one shard.
    pub fn shard(&self, s: usize) -> &EmbeddingTable {
        &self.shards[s]
    }

    /// Looks up `id` on its owning shard.
    pub fn row(&mut self, id: u64) -> &[f32] {
        let s = self.shard_of(id);
        self.shards[s].row(id)
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.shards[0].dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_deterministic() {
        let mut a = EmbeddingTable::new(8, 42);
        let mut b = EmbeddingTable::new(8, 42);
        assert_eq!(a.row(17), b.row(17));
        let mut c = EmbeddingTable::new(8, 43);
        assert_ne!(a.row(17), c.row(17), "different seeds differ");
    }

    #[test]
    fn rows_are_small_and_varied() {
        let mut t = EmbeddingTable::new(16, 1);
        let r = t.row(5).to_vec();
        assert!(r.iter().all(|v| v.abs() <= 0.1));
        let distinct = r
            .iter()
            .map(|v| v.to_bits())
            .collect::<std::collections::HashSet<_>>();
        assert!(distinct.len() > 8, "row values should vary");
    }

    #[test]
    fn lazy_materialization() {
        let mut t = EmbeddingTable::new(4, 0);
        assert!(t.is_empty());
        assert!(t.peek(1).is_none());
        t.row(1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.bytes(), 16);
        assert!(t.peek(1).is_some());
    }

    #[test]
    fn gradient_updates_row() {
        let mut t = EmbeddingTable::new(2, 0);
        let before = t.row(9).to_vec();
        t.apply_gradient(9, &[1.0, -1.0], 0.5);
        let after = t.peek(9).unwrap();
        assert!((after[0] - (before[0] - 0.5)).abs() < 1e-6);
        assert!((after[1] - (before[1] + 0.5)).abs() < 1e-6);
    }

    #[test]
    fn put_overwrites() {
        let mut t = EmbeddingTable::new(2, 0);
        t.put(3, &[1.0, 2.0]);
        assert_eq!(t.peek(3).unwrap(), &[1.0, 2.0]);
    }

    #[test]
    fn batched_gather_matches_single_row_lookups() {
        let mut batched = EmbeddingTable::new(4, 11);
        let mut single = EmbeddingTable::new(4, 11);
        let ids = [9u64, 2, 9, 100, 2];
        let mut out = Vec::new();
        batched.gather_rows(&ids, &mut out);
        let mut want = Vec::new();
        for &id in &ids {
            want.extend_from_slice(single.row(id));
        }
        assert_eq!(out, want);
        assert_eq!(batched.dirty_count(), single.dirty_count());
        assert_eq!(batched.materialized_ids(), single.materialized_ids());
    }

    #[test]
    fn batched_scatter_matches_single_gradients() {
        let mut batched = EmbeddingTable::new(2, 3);
        let mut single = EmbeddingTable::new(2, 3);
        let ids = [7u64, 8, 7];
        let grads = [1.0f32, 2.0, -1.0, 0.5, 0.25, 4.0];
        batched.scatter_grads(&ids, &grads, 0.1);
        for (i, &id) in ids.iter().enumerate() {
            single.apply_gradient(id, &grads[i * 2..(i + 1) * 2], 0.1);
        }
        for &id in &ids {
            assert_eq!(batched.peek(id), single.peek(id));
        }
    }

    #[test]
    fn gather_materialized_reads_without_dirtying() {
        let mut t = EmbeddingTable::new(2, 5);
        t.row(4);
        t.row(1);
        t.mark_clean();
        let mut out = Vec::new();
        t.gather_materialized(&[1, 4], &mut out);
        assert_eq!(out.len(), 4);
        assert_eq!(&out[..2], t.peek(1).unwrap());
        assert_eq!(t.dirty_count(), 0, "read-only gather must not dirty");
    }

    #[test]
    fn arena_rows_are_contiguous_slots() {
        let mut a = RowArena::new(2);
        let (s0, c0) = a.ensure_with(50, |j| j as f32);
        let (s1, c1) = a.ensure_with(10, |j| 10.0 + j as f32);
        let (s0b, c0b) = a.ensure_with(50, |_| f32::NAN);
        assert!(c0 && c1 && !c0b);
        assert_eq!(s0, 0);
        assert_eq!(s1, 1);
        assert_eq!(s0b, s0);
        assert_eq!(a.ids(), &[50, 10], "slot order is insertion order");
        assert_eq!(a.sorted_ids(), vec![10, 50]);
        assert_eq!(a.row(0), &[0.0, 1.0], "re-ensure must not reinit");
        a.insert(10, &[9.0, 9.0]);
        assert_eq!(a.get(10).unwrap(), &[9.0, 9.0]);
        assert_eq!(a.len(), 2, "overwrite does not grow the arena");
    }

    #[test]
    fn shards_partition_ids_consistently() {
        let mut t = ShardedTable::new(4, 7, 4);
        assert_eq!(t.shard_count(), 4);
        let s = t.shard_of(99);
        assert_eq!(s, t.shard_of(99), "stable mapping");
        // Value equals an unsharded table's value: layout-independent.
        let mut plain = EmbeddingTable::new(4, 7);
        assert_eq!(t.row(99), plain.row(99));
    }

    #[test]
    fn shard_distribution_is_roughly_balanced() {
        let t = ShardedTable::new(4, 0, 8);
        let mut counts = [0usize; 8];
        for id in 0..8000 {
            counts[t.shard_of(id)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "imbalanced shard: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "row length must equal dim")]
    fn put_rejects_wrong_dim() {
        let mut t = EmbeddingTable::new(3, 0);
        t.put(0, &[1.0]);
    }
}
