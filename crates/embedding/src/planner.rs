//! The D-Packing planner (§III-B).
//!
//! Decides how a dataset's embedding tables are combined into *packed
//! operations*: tables sharing an embedding dimension go into one pack, and
//! packs whose estimated `CalcVParam` (Eq. 1) exceeds the average — or which
//! would funnel too many concurrent hashmap queries — are evenly split into
//! shards. The resulting pack count is what Table V reports as "# of packed
//! embedding".

use crate::cost::{calc_vparam, shard_count, TableLoad};
use picasso_data::DatasetSpec;
use std::collections::BTreeMap;

/// One packed embedding operation: a set of tables plus the field indices
/// that feed it.
#[derive(Debug, Clone)]
pub struct Pack {
    /// Embedding dimension shared by all tables in the pack.
    pub dim: usize,
    /// Table groups covered.
    pub tables: Vec<usize>,
    /// Dataset field indices routed into this pack.
    pub fields: Vec<usize>,
    /// Estimated Eq. 1 volume.
    pub vparam: f64,
}

/// Planner configuration.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Upper bound on tables per pack, limiting concurrent hashmap queries
    /// into one packed operation (§III-B's throughput concern).
    pub max_tables_per_pack: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            max_tables_per_pack: 16,
        }
    }
}

/// The result of planning: the packed operations, in deterministic order
/// (ascending dim, then shard index).
#[derive(Debug, Clone)]
pub struct PackPlan {
    /// Packed operations.
    pub packs: Vec<Pack>,
    /// For every dataset field index, the pack it is routed to.
    pub field_to_pack: Vec<usize>,
}

impl PackPlan {
    /// Number of packed embedding operations (Table V's right column).
    pub fn pack_count(&self) -> usize {
        self.packs.len()
    }

    /// The Eq. 1 assignment in the form the D-Packing pass consumes:
    /// embedding table group → pack index.
    pub fn table_to_pack(&self) -> BTreeMap<usize, usize> {
        let mut out = BTreeMap::new();
        for (p, pack) in self.packs.iter().enumerate() {
            for &t in &pack.tables {
                out.insert(t, p);
            }
        }
        out
    }

    /// Plans packs for `spec`.
    ///
    /// Without warm-up statistics the planner assumes each field contributes
    /// ID mass proportional to its `avg_ids` (exact for the synthetic
    /// generators); with statistics, callers can re-plan via
    /// [`PackPlan::with_loads`].
    pub fn plan(spec: &DatasetSpec, cfg: &PlannerConfig) -> PackPlan {
        // Estimated per-table frequency mass: share of all categorical IDs.
        let total_ids: f64 = spec.fields.iter().map(|f| f.avg_ids).sum();
        let mut table_mass: BTreeMap<usize, f64> = BTreeMap::new();
        let mut table_dim: BTreeMap<usize, usize> = BTreeMap::new();
        for f in &spec.fields {
            *table_mass.entry(f.table_group).or_insert(0.0) += f.avg_ids / total_ids;
            table_dim.insert(f.table_group, f.dim);
        }
        let loads: BTreeMap<usize, TableLoad> = table_mass
            .iter()
            .map(|(&t, &mass)| {
                (
                    t,
                    TableLoad {
                        dim: table_dim[&t],
                        freq_mass: mass,
                    },
                )
            })
            .collect();
        PackPlan::with_loads(spec, cfg, &loads, 1_000_000)
    }

    /// Plans packs using measured per-table loads (from warm-up iterations).
    pub fn with_loads(
        spec: &DatasetSpec,
        cfg: &PlannerConfig,
        loads: &BTreeMap<usize, TableLoad>,
        total_ids: u64,
    ) -> PackPlan {
        assert!(cfg.max_tables_per_pack > 0, "pack size must be positive");
        // Group tables by dim.
        let mut by_dim: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (&t, load) in loads {
            by_dim.entry(load.dim).or_default().push(t);
        }
        // Eq. 1 volume per dim-group, and the cross-group average.
        let volumes: BTreeMap<usize, f64> = by_dim
            .iter()
            .map(|(&dim, tables)| {
                let tl: Vec<TableLoad> = tables.iter().map(|t| loads[t]).collect();
                (dim, calc_vparam(&tl, total_ids))
            })
            .collect();
        let avg = volumes.values().sum::<f64>() / volumes.len().max(1) as f64;

        // Field routing: map table -> pack later; build packs per dim group.
        let mut packs = Vec::new();
        let mut table_to_pack: BTreeMap<usize, usize> = BTreeMap::new();
        for (&dim, tables) in &by_dim {
            let by_volume = shard_count(volumes[&dim], avg);
            let by_width = tables.len().div_ceil(cfg.max_tables_per_pack);
            let shards = by_volume.max(by_width).min(tables.len());
            // Round-robin tables into shards to balance volume.
            let mut shard_tables: Vec<Vec<usize>> = vec![Vec::new(); shards];
            for (i, &t) in tables.iter().enumerate() {
                shard_tables[i % shards].push(t);
            }
            for st in shard_tables {
                let pack_idx = packs.len();
                for &t in &st {
                    table_to_pack.insert(t, pack_idx);
                }
                let tl: Vec<TableLoad> = st.iter().map(|t| loads[t]).collect();
                packs.push(Pack {
                    dim,
                    vparam: calc_vparam(&tl, total_ids),
                    tables: st,
                    fields: Vec::new(),
                });
            }
        }
        // Route fields to packs through their tables.
        let mut field_to_pack = Vec::with_capacity(spec.fields.len());
        for (i, f) in spec.fields.iter().enumerate() {
            let p = *table_to_pack
                .get(&f.table_group)
                .expect("every field's table has a load entry");
            packs[p].fields.push(i);
            field_to_pack.push(p);
        }
        PackPlan {
            packs,
            field_to_pack,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picasso_data::DatasetSpec;

    #[test]
    fn packs_cover_all_fields_exactly_once() {
        for spec in [
            DatasetSpec::criteo(),
            DatasetSpec::alibaba(),
            DatasetSpec::product1(),
            DatasetSpec::product2(),
            DatasetSpec::product3(),
        ] {
            let plan = PackPlan::plan(&spec, &PlannerConfig::default());
            let covered: usize = plan.packs.iter().map(|p| p.fields.len()).sum();
            assert_eq!(covered, spec.fields.len(), "{}", spec.name);
            assert_eq!(plan.field_to_pack.len(), spec.fields.len());
            for (i, &p) in plan.field_to_pack.iter().enumerate() {
                assert!(plan.packs[p].fields.contains(&i));
                assert_eq!(plan.packs[p].dim, spec.fields[i].dim);
            }
            // The table-to-pack view is consistent with the pack list.
            let t2p = plan.table_to_pack();
            for (p, pack) in plan.packs.iter().enumerate() {
                for t in &pack.tables {
                    assert_eq!(t2p[t], p, "{}", spec.name);
                }
            }
        }
    }

    #[test]
    fn pack_counts_are_table_five_shaped() {
        let cfg = PlannerConfig::default();
        // Paper Table V: W&D 204 tables -> 16 packs, CAN 364 -> 19,
        // MMoE 94 -> 11. We assert the same order of magnitude: packs are
        // 3-15% of the table count.
        for (spec, paper_packs) in [
            (DatasetSpec::product1(), 16usize),
            (DatasetSpec::product2(), 19),
            (DatasetSpec::product3(), 11),
        ] {
            let plan = PackPlan::plan(&spec, &cfg);
            let tables = spec.table_count();
            let packs = plan.pack_count();
            assert!(
                packs >= paper_packs / 3 && packs <= paper_packs * 3,
                "{}: {packs} packs for {tables} tables (paper: {paper_packs})",
                spec.name
            );
            assert!(
                packs < tables / 3,
                "{}: packing should consolidate",
                spec.name
            );
        }
    }

    #[test]
    fn packs_group_by_dim() {
        let spec = DatasetSpec::product1();
        let plan = PackPlan::plan(&spec, &PlannerConfig::default());
        for p in &plan.packs {
            for &t in &p.tables {
                // All fields of table t share the pack's dim by construction.
                let f = spec.fields.iter().find(|f| f.table_group == t).unwrap();
                assert_eq!(f.dim, p.dim);
            }
        }
    }

    #[test]
    fn width_cap_limits_tables_per_pack() {
        let spec = DatasetSpec::product2();
        let cfg = PlannerConfig {
            max_tables_per_pack: 8,
        };
        let plan = PackPlan::plan(&spec, &cfg);
        for p in &plan.packs {
            assert!(p.tables.len() <= 8 + 1, "pack too wide: {}", p.tables.len());
        }
        // Tighter cap means more packs.
        let loose = PackPlan::plan(&spec, &PlannerConfig::default());
        assert!(plan.pack_count() >= loose.pack_count());
    }

    #[test]
    fn single_dim_dataset_still_splits_by_width() {
        let spec = DatasetSpec::criteo(); // 26 tables, all dim 128
        let plan = PackPlan::plan(
            &spec,
            &PlannerConfig {
                max_tables_per_pack: 10,
            },
        );
        assert!(plan.pack_count() >= 3, "26 tables / cap 10 -> >= 3 packs");
    }
}
