//! HybridHash — the paper's Algorithm 1.
//!
//! The embedding hashmap (a sparse structure) lives in *Cold-storage* (DRAM:
//! large but bandwidth-bound); *Hot-storage* (GPU device memory: fast but
//! capacity-bound) is used purely as a scratchpad holding the top-k most
//! frequently queried rows. During `warmup_iters` iterations only the
//! host-side frequency counter is trained; afterwards every `flush_iters`
//! iterations the hot set is refreshed from the counter. If at flush time
//! the entire table fits in Hot-storage, everything is promoted.

use crate::table::{EmbeddingTable, RowArena};
use picasso_obs::{MetricKind, MetricsRegistry};
use std::collections::{BTreeSet, HashMap};

/// Configuration of a [`HybridHash`].
#[derive(Debug, Clone)]
pub struct HybridHashConfig {
    /// Iterations during which only statistics are collected (the paper uses
    /// 100 steps in the ablation).
    pub warmup_iters: u64,
    /// Refresh the hot set every this many iterations.
    pub flush_iters: u64,
    /// Capacity of Hot-storage in bytes (the Table VI sweep varies this from
    /// 256 MB to 4 GB).
    pub hot_bytes: u64,
}

impl Default for HybridHashConfig {
    fn default() -> Self {
        HybridHashConfig {
            warmup_iters: 100,
            flush_iters: 100,
            hot_bytes: 1 << 30, // 1 GB, the paper's default
        }
    }
}

/// Cumulative cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from Hot-storage.
    pub hot_hits: u64,
    /// Lookups served from Cold-storage after warm-up.
    pub cold_hits: u64,
    /// Lookups during warm-up (always cold).
    pub warmup_lookups: u64,
    /// Number of hot-set refreshes performed.
    pub flushes: u64,
    /// Rows demoted from Hot-storage across all refreshes.
    pub evictions: u64,
}

impl CacheStats {
    /// Post-warm-up hit ratio in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hot_hits + self.cold_hits;
        if total == 0 {
            0.0
        } else {
            self.hot_hits as f64 / total as f64
        }
    }
}

/// Per-call lookup report (drives the simulator's Gather cost split).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LookupReport {
    /// IDs served from Hot-storage in this call.
    pub hot_hits: u64,
    /// IDs served from Cold-storage in this call.
    pub cold_hits: u64,
}

impl LookupReport {
    /// Hit ratio of this call.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hot_hits + self.cold_hits;
        if total == 0 {
            0.0
        } else {
            self.hot_hits as f64 / total as f64
        }
    }
}

/// A two-level embedding store per Algorithm 1.
///
/// Hot-storage is a [`RowArena`] — the GPU-resident analogue of a contiguous
/// embedding cache — rebuilt wholesale at every flush, so between flushes
/// hot lookups read one dense buffer.
#[derive(Debug, Clone)]
pub struct HybridHash {
    cfg: HybridHashConfig,
    cold: EmbeddingTable,
    hot: RowArena,
    fcounter: HashMap<u64, u64>,
    /// IDs whose frequency counter changed since the last
    /// [`HybridHash::mark_clean`] — the incremental-checkpoint set.
    touched: BTreeSet<u64>,
    itr: u64,
    stats: CacheStats,
}

impl HybridHash {
    /// Wraps a cold table with a hot cache.
    pub fn new(cold: EmbeddingTable, cfg: HybridHashConfig) -> Self {
        assert!(cfg.flush_iters > 0, "flush_iters must be positive");
        let hot = RowArena::new(cold.dim());
        HybridHash {
            cfg,
            cold,
            hot,
            fcounter: HashMap::new(),
            touched: BTreeSet::new(),
            itr: 0,
            stats: CacheStats::default(),
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.cold.dim()
    }

    /// Maximum rows Hot-storage can hold.
    pub fn hot_row_capacity(&self) -> usize {
        (self.cfg.hot_bytes as usize) / (self.cold.dim() * 4)
    }

    /// Rows currently resident in Hot-storage.
    pub fn hot_rows(&self) -> usize {
        self.hot.len()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Current iteration counter.
    pub fn iteration(&self) -> u64 {
        self.itr
    }

    /// Read-only access to the cold table.
    pub fn cold(&self) -> &EmbeddingTable {
        &self.cold
    }

    /// Algorithm 1: queries a batch of IDs, appending `dim` floats per ID to
    /// `out`, and advances the iteration counter.
    pub fn lookup_batch(&mut self, ids: &[u64], out: &mut Vec<f32>) -> LookupReport {
        let mut report = LookupReport::default();
        self.itr += 1;
        if self.itr <= self.cfg.warmup_iters {
            // L9-12: warm-up — count frequencies, serve from cold storage.
            for &id in ids {
                *self.fcounter.entry(id).or_insert(0) += 1;
                self.touched.insert(id);
                self.cold.gather_into(id, out);
                report.cold_hits += 1;
            }
            self.stats.warmup_lookups += ids.len() as u64;
            if self.itr == self.cfg.warmup_iters {
                self.flush();
            }
            return report;
        }
        // L14-21: serve from hot when possible, else cold; keep counting.
        for &id in ids {
            if let Some(row) = self.hot.get(id) {
                out.extend_from_slice(row);
                report.hot_hits += 1;
            } else {
                self.cold.gather_into(id, out);
                report.cold_hits += 1;
            }
            *self.fcounter.entry(id).or_insert(0) += 1;
            self.touched.insert(id);
        }
        self.stats.hot_hits += report.hot_hits;
        self.stats.cold_hits += report.cold_hits;
        // L23-26: periodic refresh of the hot set.
        if (self.itr - self.cfg.warmup_iters).is_multiple_of(self.cfg.flush_iters) {
            self.flush();
        }
        report
    }

    /// Applies a gradient to the row for `id`, keeping hot and cold copies
    /// coherent (the hot row is the working copy; cold is written through so
    /// a later flush cannot resurrect stale values).
    pub fn apply_gradient(&mut self, id: u64, grad: &[f32], lr: f32) {
        if let Some(row) = self.hot.get_mut(id) {
            for (w, g) in row.iter_mut().zip(grad) {
                *w -= lr * g;
            }
            let row = row.to_vec();
            self.cold.put(id, &row);
        } else {
            self.cold.apply_gradient(id, grad, lr);
        }
    }

    /// Refreshes Hot-storage with the top-k most frequent IDs (L24-25). If
    /// the whole materialized table fits, promotes everything.
    fn flush(&mut self) {
        let capacity = self.hot_row_capacity();
        if capacity == 0 {
            return;
        }
        self.stats.flushes += 1;
        let promote_all = self.cold.len() <= capacity;
        let mut hot_ids: Vec<u64>;
        if promote_all {
            hot_ids = self.fcounter.keys().copied().take(capacity).collect();
        } else {
            // top-k(FCounter): partial sort by (count desc, id asc).
            let mut items: Vec<(u64, u64)> =
                self.fcounter.iter().map(|(&id, &c)| (id, c)).collect();
            items.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            items.truncate(capacity);
            hot_ids = items.into_iter().map(|(id, _)| id).collect();
        }
        hot_ids.sort_unstable();
        self.hot = self.promoted_arena(&hot_ids);
    }

    /// Builds a fresh hot arena holding the (cold) rows for `hot_ids` via
    /// one batched gather, counting as evicted every currently-hot row that
    /// is not re-promoted.
    fn promoted_arena(&mut self, hot_ids: &[u64]) -> RowArena {
        let dim = self.cold.dim();
        let mut buf = Vec::new();
        self.cold.gather_rows(hot_ids, &mut buf);
        let mut new_hot = RowArena::with_capacity(dim, hot_ids.len());
        for (i, &id) in hot_ids.iter().enumerate() {
            new_hot.insert(id, &buf[i * dim..(i + 1) * dim]);
        }
        self.stats.evictions += self
            .hot
            .ids()
            .iter()
            .filter(|&&id| !new_hot.contains(id))
            .count() as u64;
        new_hot
    }

    /// Point-in-time metrics view, detachable from the cache (warm-up
    /// measurement caches are transient; the run-level exporters keep only
    /// this snapshot).
    pub fn metrics(&self) -> CacheMetrics {
        CacheMetrics {
            stats: self.stats,
            hot_rows: self.hot.len(),
            hot_capacity: self.hot_row_capacity(),
        }
    }

    /// Exports the cache's cumulative counters and occupancy into `registry`,
    /// labeled by `table`. Observation-only: lookups drive the same
    /// [`CacheStats`] whether or not this is ever called, and the
    /// counter-derived hit ratio equals [`CacheStats::hit_ratio`] exactly.
    pub fn export_metrics(&self, table: &str, registry: &MetricsRegistry) {
        self.metrics().export(table, registry)
    }

    /// The frequency counter for `id` (0 if never looked up).
    pub fn frequency(&self, id: u64) -> u64 {
        self.fcounter.get(&id).copied().unwrap_or(0)
    }

    /// IDs whose frequency counter changed since the last
    /// [`HybridHash::mark_clean`].
    pub fn touched_count(&self) -> usize {
        self.touched.len()
    }

    /// Captures the complete cache state. Hot-storage *values* are not
    /// serialized: `apply_gradient` writes hot updates through to cold, so
    /// the hot row always equals the cold row and the hot set is fully
    /// described by its ID list.
    pub fn snapshot_full(&self) -> crate::ckpt::CacheSnapshot {
        let mut counters: Vec<(u64, u64)> = self.fcounter.iter().map(|(&i, &c)| (i, c)).collect();
        counters.sort_unstable();
        crate::ckpt::CacheSnapshot {
            itr: self.itr,
            stats: self.stats,
            counters,
            hot_ids: self.hot.sorted_ids(),
            cold: crate::ckpt::TableSnapshot::full(&self.cold),
        }
    }

    /// Captures only state touched since the last [`HybridHash::mark_clean`]:
    /// dirty cold rows and the (absolute) counters of touched IDs. The small
    /// scalar state — iteration, stats, hot ID list — is always included.
    pub fn snapshot_delta(&self) -> crate::ckpt::CacheSnapshot {
        let counters: Vec<(u64, u64)> = self
            .touched
            .iter()
            .map(|&id| (id, self.frequency(id)))
            .collect();
        crate::ckpt::CacheSnapshot {
            itr: self.itr,
            stats: self.stats,
            counters,
            hot_ids: self.hot.sorted_ids(),
            cold: crate::ckpt::TableSnapshot::dirty(&self.cold),
        }
    }

    /// Clears the touched/dirty sets after a checkpoint captured them.
    pub fn mark_clean(&mut self) {
        self.touched.clear();
        self.cold.mark_clean();
    }

    /// Resets the cache to exactly the state of a full snapshot. Ends clean.
    pub fn restore_full(&mut self, snap: &crate::ckpt::CacheSnapshot) {
        snap.cold.restore_full(&mut self.cold);
        self.fcounter = snap.counters.iter().copied().collect();
        self.itr = snap.itr;
        self.stats = snap.stats;
        self.rebuild_hot(&snap.hot_ids);
        self.mark_clean();
    }

    /// Applies one incremental snapshot on top of the current state (which
    /// must be the snapshot's parent). Ends clean.
    pub fn apply_delta(&mut self, snap: &crate::ckpt::CacheSnapshot) {
        snap.cold.apply(&mut self.cold);
        for &(id, count) in &snap.counters {
            self.fcounter.insert(id, count);
        }
        self.itr = snap.itr;
        self.stats = snap.stats;
        self.rebuild_hot(&snap.hot_ids);
        self.mark_clean();
    }

    fn rebuild_hot(&mut self, hot_ids: &[u64]) {
        let dim = self.cold.dim();
        let mut buf = Vec::new();
        self.cold.gather_rows(hot_ids, &mut buf);
        let mut hot = RowArena::with_capacity(dim, hot_ids.len());
        for (i, &id) in hot_ids.iter().enumerate() {
            hot.insert(id, &buf[i * dim..(i + 1) * dim]);
        }
        self.hot = hot;
    }
}

/// A point-in-time snapshot of a cache's exportable state.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheMetrics {
    /// Cumulative lookup/flush/eviction counters.
    pub stats: CacheStats,
    /// Rows resident in Hot-storage at snapshot time.
    pub hot_rows: usize,
    /// Maximum rows Hot-storage can hold.
    pub hot_capacity: usize,
}

impl CacheMetrics {
    /// Exports the snapshot into `registry`, labeled by `table`.
    pub fn export(&self, table: &str, registry: &MetricsRegistry) {
        registry.describe(
            "embedding_lookups_total",
            MetricKind::Counter,
            "HybridHash lookups, by outcome (hot / cold / warmup)",
        );
        registry.describe(
            "embedding_flushes_total",
            MetricKind::Counter,
            "Hot-set refreshes performed",
        );
        registry.describe(
            "embedding_evictions_total",
            MetricKind::Counter,
            "Rows demoted from Hot-storage across refreshes",
        );
        registry.describe(
            "embedding_hot_rows",
            MetricKind::Gauge,
            "Rows currently resident in Hot-storage",
        );
        registry.describe(
            "embedding_hot_occupancy",
            MetricKind::Gauge,
            "Hot-storage occupancy as a fraction of row capacity",
        );
        let labels = [("table", table)];
        let s = self.stats;
        registry.counter_add(
            "embedding_lookups_total",
            &[("table", table), ("outcome", "hot")],
            s.hot_hits,
        );
        registry.counter_add(
            "embedding_lookups_total",
            &[("table", table), ("outcome", "cold")],
            s.cold_hits,
        );
        registry.counter_add(
            "embedding_lookups_total",
            &[("table", table), ("outcome", "warmup")],
            s.warmup_lookups,
        );
        registry.counter_add("embedding_flushes_total", &labels, s.flushes);
        registry.counter_add("embedding_evictions_total", &labels, s.evictions);
        registry.gauge_set("embedding_hot_rows", &labels, self.hot_rows as f64);
        let occupancy = if self.hot_capacity == 0 {
            0.0
        } else {
            self.hot_rows as f64 / self.hot_capacity as f64
        };
        registry.gauge_set("embedding_hot_occupancy", &labels, occupancy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picasso_data::{IdDistribution, IdSampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cache(dim: usize, hot_bytes: u64, warmup: u64, flush: u64) -> HybridHash {
        HybridHash::new(
            EmbeddingTable::new(dim, 7),
            HybridHashConfig {
                warmup_iters: warmup,
                flush_iters: flush,
                hot_bytes,
            },
        )
    }

    #[test]
    fn warmup_serves_cold_and_counts() {
        let mut h = cache(4, 1 << 20, 2, 10);
        let mut out = Vec::new();
        let r = h.lookup_batch(&[1, 2, 1], &mut out);
        assert_eq!(r.cold_hits, 3);
        assert_eq!(r.hot_hits, 0);
        assert_eq!(out.len(), 12);
        assert_eq!(h.stats().warmup_lookups, 3);
    }

    #[test]
    fn hot_ids_hit_after_warmup() {
        let mut h = cache(4, 1 << 20, 1, 100);
        let mut out = Vec::new();
        h.lookup_batch(&[5, 5, 6], &mut out); // warm-up ends, flush happens
        out.clear();
        let r = h.lookup_batch(&[5, 6, 7], &mut out);
        // 5 and 6 were counted in warm-up and fit in the hot set; 7 is new.
        assert_eq!(r.hot_hits, 2);
        assert_eq!(r.cold_hits, 1);
    }

    #[test]
    fn returns_same_values_as_uncached_table() {
        let mut h = cache(8, 1 << 20, 1, 2);
        let mut reference = EmbeddingTable::new(8, 7);
        let ids = [3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3];
        let mut out = Vec::new();
        for chunk in ids.chunks(3) {
            out.clear();
            h.lookup_batch(chunk, &mut out);
            let mut want = Vec::new();
            for &id in chunk {
                want.extend_from_slice(reference.row(id));
            }
            assert_eq!(out, want, "cache must be value-transparent");
        }
    }

    #[test]
    fn capacity_bounds_hot_rows() {
        // Room for exactly 2 rows of dim 4 (32 bytes).
        let mut h = cache(4, 32, 1, 1);
        let mut out = Vec::new();
        h.lookup_batch(&[1, 1, 1, 2, 2, 3], &mut out);
        assert!(h.hot_rows() <= 2);
        out.clear();
        let r = h.lookup_batch(&[1, 2, 3], &mut out);
        assert_eq!(r.hot_hits, 2, "the two hottest ids are cached");
        assert_eq!(r.cold_hits, 1);
    }

    #[test]
    fn skewed_stream_reaches_high_hit_ratio() {
        let sampler = IdSampler::new(10_000, IdDistribution::Zipf { s: 1.2 });
        let mut rng = StdRng::seed_from_u64(11);
        // Hot storage for 2000 of 10000 ids (20%).
        let mut h = cache(4, 2000 * 16, 20, 20);
        let mut out = Vec::new();
        let mut ids = Vec::new();
        for _ in 0..200 {
            ids.clear();
            sampler.sample_into(&mut rng, 512, &mut ids);
            out.clear();
            h.lookup_batch(&ids, &mut out);
        }
        let ratio = h.stats().hit_ratio();
        assert!(
            ratio > 0.6,
            "zipf(1.2) with 20% cache should hit often, got {ratio:.3}"
        );
    }

    #[test]
    fn small_table_promotes_everything() {
        let mut h = cache(4, 1 << 20, 1, 5);
        let mut out = Vec::new();
        h.lookup_batch(&[1, 2, 3], &mut out);
        out.clear();
        let r = h.lookup_batch(&[1, 2, 3], &mut out);
        assert_eq!(r.hot_hits, 3, "entire table fits in hot storage");
        assert_eq!(h.stats().hit_ratio(), 1.0);
    }

    #[test]
    fn gradients_are_coherent_across_flushes() {
        let mut h = cache(2, 1 << 20, 1, 1);
        let mut out = Vec::new();
        h.lookup_batch(&[1], &mut out);
        // id 1 now hot; update it, then force flushes via more lookups.
        h.apply_gradient(1, &[1.0, 1.0], 0.1);
        let mut want = Vec::new();
        if let Some(r) = h.cold().peek(1) {
            want.extend_from_slice(r)
        }
        for _ in 0..3 {
            out.clear();
            h.lookup_batch(&[1], &mut out);
            assert_eq!(out, want, "updated value must survive flushes");
        }
    }

    #[test]
    fn flush_cadence_matches_config() {
        let mut h = cache(4, 1 << 20, 2, 3);
        let mut out = Vec::new();
        for _ in 0..11 {
            out.clear();
            h.lookup_batch(&[1], &mut out);
        }
        // Flush at end of warm-up (itr=2) + every 3 iters after (5, 8, 11).
        assert_eq!(h.stats().flushes, 4);
    }

    #[test]
    fn evictions_are_counted_when_the_hot_set_turns_over() {
        // Room for 2 rows; hammer {1,2}, then shift the workload to {3,4}.
        let mut h = cache(4, 32, 1, 1);
        let mut out = Vec::new();
        h.lookup_batch(&[1, 1, 2, 2], &mut out);
        for _ in 0..3 {
            out.clear();
            h.lookup_batch(&[3, 3, 3, 4, 4, 4], &mut out);
        }
        assert!(h.stats().evictions >= 2, "ids 1 and 2 must be demoted");
    }

    #[test]
    fn exported_counters_reproduce_the_hit_ratio() {
        let sampler = IdSampler::new(5_000, IdDistribution::Zipf { s: 1.2 });
        let mut rng = StdRng::seed_from_u64(7);
        let mut h = cache(4, 1000 * 16, 10, 10);
        let mut out = Vec::new();
        let mut ids = Vec::new();
        for _ in 0..100 {
            ids.clear();
            sampler.sample_into(&mut rng, 256, &mut ids);
            out.clear();
            h.lookup_batch(&ids, &mut out);
        }
        let registry = picasso_obs::MetricsRegistry::new();
        h.export_metrics("t0", &registry);
        let hot = registry.counter_value(
            "embedding_lookups_total",
            &[("table", "t0"), ("outcome", "hot")],
        );
        let cold = registry.counter_value(
            "embedding_lookups_total",
            &[("table", "t0"), ("outcome", "cold")],
        );
        let from_counters = hot as f64 / (hot + cold) as f64;
        assert!(
            (from_counters - h.stats().hit_ratio()).abs() < 1e-9,
            "counter-derived ratio {from_counters} != stats ratio {}",
            h.stats().hit_ratio()
        );
        assert_eq!(
            registry.counter_value("embedding_flushes_total", &[("table", "t0")]),
            h.stats().flushes
        );
        let occupancy = registry.gauge_value("embedding_hot_occupancy", &[("table", "t0")]);
        assert!(occupancy.is_some_and(|o| (0.0..=1.0).contains(&o) && o > 0.0));
    }

    #[test]
    fn zero_capacity_never_promotes() {
        let mut h = cache(4, 0, 1, 1);
        let mut out = Vec::new();
        for _ in 0..5 {
            out.clear();
            let r = h.lookup_batch(&[1, 2], &mut out);
            assert_eq!(r.hot_hits, 0);
        }
        assert_eq!(h.hot_rows(), 0);
    }
}
