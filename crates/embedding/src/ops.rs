//! The sparse embedding operators of the WDL embedding layer (§II-D).
//!
//! Real implementations of Unique, Partition, Gather, Shuffle, Stitch and
//! SegmentReduction over materialized ID streams. Each returns its actual
//! output *plus* an [`OpCost`] describing the bytes/FLOPs it would move on
//! the paper's hardware, which the execution engine feeds to the simulator.

use crate::table::ShardedTable;
use std::collections::HashMap;

/// Abstract cost of one operator invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpCost {
    /// Bytes read from parameter/working memory.
    pub bytes_read: f64,
    /// Bytes written to working memory.
    pub bytes_written: f64,
    /// Bytes exchanged between workers.
    pub comm_bytes: f64,
    /// Floating-point operations.
    pub flops: f64,
}

impl OpCost {
    /// Sums two costs.
    pub fn merge(self, other: OpCost) -> OpCost {
        OpCost {
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
            comm_bytes: self.comm_bytes + other.comm_bytes,
            flops: self.flops + other.flops,
        }
    }
}

/// Output of [`unique`]: deduplicated IDs plus, for every input position,
/// the index of its ID in the unique list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniqueOutput {
    /// Deduplicated IDs in first-occurrence order.
    pub unique_ids: Vec<u64>,
    /// `inverse[i]` is the position of `ids[i]` in `unique_ids`.
    pub inverse: Vec<u32>,
}

/// Eliminates redundant categorical feature IDs (the `Unique` operator).
pub fn unique(ids: &[u64]) -> (UniqueOutput, OpCost) {
    let mut index: HashMap<u64, u32> = HashMap::with_capacity(ids.len());
    let mut unique_ids = Vec::new();
    let mut inverse = Vec::with_capacity(ids.len());
    for &id in ids {
        let next = unique_ids.len() as u32;
        let entry = *index.entry(id).or_insert_with(|| {
            unique_ids.push(id);
            next
        });
        inverse.push(entry);
    }
    let cost = OpCost {
        bytes_read: ids.len() as f64 * 8.0,
        bytes_written: unique_ids.len() as f64 * 8.0 + inverse.len() as f64 * 4.0,
        ..OpCost::default()
    };
    (
        UniqueOutput {
            unique_ids,
            inverse,
        },
        cost,
    )
}

/// Output of [`partition`]: IDs bucketed by owning shard, with bookkeeping
/// to undo the permutation.
#[derive(Debug, Clone)]
pub struct PartitionOutput {
    /// `parts[s]` holds the IDs owned by shard `s`.
    pub parts: Vec<Vec<u64>>,
    /// For each input position, `(shard, index within shard)`.
    pub origin: Vec<(u32, u32)>,
}

/// Partitions IDs into per-shard buckets (`Partition`).
pub fn partition(ids: &[u64], table: &ShardedTable) -> (PartitionOutput, OpCost) {
    let n = table.shard_count();
    let mut parts: Vec<Vec<u64>> = vec![Vec::new(); n];
    let mut origin = Vec::with_capacity(ids.len());
    for &id in ids {
        let s = table.shard_of(id);
        origin.push((s as u32, parts[s].len() as u32));
        parts[s].push(id);
    }
    let cost = OpCost {
        bytes_read: ids.len() as f64 * 8.0,
        bytes_written: ids.len() as f64 * 8.0,
        ..OpCost::default()
    };
    (PartitionOutput { parts, origin }, cost)
}

/// Queries rows from one shard of the table (`Gather`): `dim` floats per ID,
/// concatenated.
pub fn gather(table: &mut ShardedTable, shard: usize, ids: &[u64]) -> (Vec<f32>, OpCost) {
    let dim = table.dim();
    let mut out = Vec::with_capacity(ids.len() * dim);
    table.shard_mut(shard).gather_rows(ids, &mut out);
    let bytes = (ids.len() * dim * 4) as f64;
    (
        out,
        OpCost {
            bytes_read: bytes,
            bytes_written: bytes,
            ..OpCost::default()
        },
    )
}

/// Exchanges per-shard gathered rows back to the requesting worker
/// (`Shuffle`) and stitches them into input order (`Stitch`). This is the
/// fused `Shuffle&Stitch` kernel of Fig. 7; the communication bytes cover
/// every row fetched from a remote shard.
pub fn shuffle_stitch(
    parts: &PartitionOutput,
    gathered: &[Vec<f32>],
    dim: usize,
    local_shard: usize,
) -> (Vec<f32>, OpCost) {
    assert_eq!(parts.parts.len(), gathered.len(), "one buffer per shard");
    let total: usize = parts.origin.len();
    let mut out = vec![0.0f32; total * dim];
    let mut comm_bytes = 0.0;
    for (i, &(shard, idx)) in parts.origin.iter().enumerate() {
        let src = &gathered[shard as usize][idx as usize * dim..(idx as usize + 1) * dim];
        out[i * dim..(i + 1) * dim].copy_from_slice(src);
        if shard as usize != local_shard {
            comm_bytes += (dim * 4) as f64;
        }
    }
    let bytes = (total * dim * 4) as f64;
    (
        out,
        OpCost {
            bytes_read: bytes,
            bytes_written: bytes,
            comm_bytes,
            ..OpCost::default()
        },
    )
}

/// Expands unique-row embeddings back to per-position embeddings using the
/// inverse mapping from [`unique`].
pub fn expand_unique(unique_rows: &[f32], inverse: &[u32], dim: usize) -> (Vec<f32>, OpCost) {
    let mut out = Vec::with_capacity(inverse.len() * dim);
    for &u in inverse {
        let u = u as usize;
        out.extend_from_slice(&unique_rows[u * dim..(u + 1) * dim]);
    }
    let bytes = (inverse.len() * dim * 4) as f64;
    (
        out,
        OpCost {
            bytes_read: bytes,
            bytes_written: bytes,
            ..OpCost::default()
        },
    )
}

/// Pooling mode for [`segment_reduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reduction {
    /// Sum of the segment's rows.
    Sum,
    /// Mean of the segment's rows (empty segments produce zeros).
    Mean,
}

/// Pools per-position embeddings into one row per segment
/// (`SegmentReduction`, e.g. summing a user's behaviour sequence).
pub fn segment_reduce(
    rows: &[f32],
    offsets: &[u32],
    dim: usize,
    mode: Reduction,
) -> (Vec<f32>, OpCost) {
    assert!(!offsets.is_empty(), "offsets must contain at least the end");
    let segments = offsets.len() - 1;
    let mut out = vec![0.0f32; segments * dim];
    let mut flops = 0.0;
    for s in 0..segments {
        let (lo, hi) = (offsets[s] as usize, offsets[s + 1] as usize);
        for r in lo..hi {
            for j in 0..dim {
                out[s * dim + j] += rows[r * dim + j];
            }
        }
        flops += ((hi - lo) * dim) as f64;
        if mode == Reduction::Mean && hi > lo {
            let inv = 1.0 / (hi - lo) as f32;
            for j in 0..dim {
                out[s * dim + j] *= inv;
            }
            flops += dim as f64;
        }
    }
    let cost = OpCost {
        bytes_read: rows.len() as f64 * 4.0,
        bytes_written: out.len() as f64 * 4.0,
        flops,
        ..OpCost::default()
    };
    (out, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ShardedTable;

    #[test]
    fn unique_deduplicates_preserving_order() {
        let (u, cost) = unique(&[5, 3, 5, 7, 3]);
        assert_eq!(u.unique_ids, vec![5, 3, 7]);
        assert_eq!(u.inverse, vec![0, 1, 0, 2, 1]);
        assert!(cost.bytes_read > 0.0);
    }

    #[test]
    fn unique_of_empty_is_empty() {
        let (u, _) = unique(&[]);
        assert!(u.unique_ids.is_empty());
        assert!(u.inverse.is_empty());
    }

    #[test]
    fn partition_routes_every_id_to_its_shard() {
        let table = ShardedTable::new(4, 0, 3);
        let ids: Vec<u64> = (0..100).collect();
        let (p, _) = partition(&ids, &table);
        assert_eq!(p.parts.iter().map(Vec::len).sum::<usize>(), 100);
        for (s, part) in p.parts.iter().enumerate() {
            assert!(part.iter().all(|&id| table.shard_of(id) == s));
        }
        // origin lets us find each id again.
        for (i, &(s, idx)) in p.origin.iter().enumerate() {
            assert_eq!(p.parts[s as usize][idx as usize], ids[i]);
        }
    }

    #[test]
    fn full_pipeline_reproduces_direct_lookup() {
        // unique -> partition -> gather-per-shard -> shuffle&stitch ->
        // expand must equal looking ids up one by one.
        let mut table = ShardedTable::new(4, 9, 3);
        let ids = vec![11u64, 4, 11, 8, 15, 4, 16, 23, 42, 8];

        let (u, _) = unique(&ids);
        let (parts, _) = partition(&u.unique_ids, &table);
        let gathered: Vec<Vec<f32>> = (0..3)
            .map(|s| gather(&mut table, s, &parts.parts[s].clone()).0)
            .collect();
        let (stitched, shuffle_cost) = shuffle_stitch(&parts, &gathered, 4, 0);
        let (expanded, _) = expand_unique(&stitched, &u.inverse, 4);

        let mut want = Vec::new();
        for &id in &ids {
            want.extend_from_slice(table.row(id));
        }
        assert_eq!(expanded, want);
        assert!(shuffle_cost.comm_bytes > 0.0, "remote shards cost bytes");
    }

    #[test]
    fn shuffle_counts_only_remote_bytes() {
        let table = ShardedTable::new(2, 1, 2);
        // Find one local (shard 0) and one remote id.
        let local = (0..100).find(|&i| table.shard_of(i) == 0).unwrap();
        let remote = (0..100).find(|&i| table.shard_of(i) == 1).unwrap();
        let mut t = table.clone();
        let (parts, _) = partition(&[local, remote], &t);
        let gathered: Vec<Vec<f32>> = (0..2)
            .map(|s| gather(&mut t, s, &parts.parts[s].clone()).0)
            .collect();
        let (_, cost) = shuffle_stitch(&parts, &gathered, 2, 0);
        assert_eq!(cost.comm_bytes, 8.0, "one remote row of dim 2 = 8 bytes");
    }

    #[test]
    fn segment_reduce_sums_segments() {
        // 2 segments of dim 2: [1,2]+[3,4] and [5,6].
        let rows = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let (out, cost) = segment_reduce(&rows, &[0, 2, 3], 2, Reduction::Sum);
        assert_eq!(out, vec![4.0, 6.0, 5.0, 6.0]);
        assert!(cost.flops > 0.0);
    }

    #[test]
    fn segment_reduce_mean_and_empty_segments() {
        let rows = vec![2.0, 4.0, 6.0, 8.0];
        let (out, _) = segment_reduce(&rows, &[0, 2, 2], 2, Reduction::Mean);
        assert_eq!(out, vec![4.0, 6.0, 0.0, 0.0], "empty segment is zeros");
    }

    #[test]
    fn cost_merge_adds_fields() {
        let a = OpCost {
            bytes_read: 1.0,
            bytes_written: 2.0,
            comm_bytes: 3.0,
            flops: 4.0,
        };
        let b = a;
        let m = a.merge(b);
        assert_eq!(m.bytes_read, 2.0);
        assert_eq!(m.flops, 8.0);
    }
}
