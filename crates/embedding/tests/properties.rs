//! Property tests: cache transparency, operator-pipeline equivalence, and
//! planner invariants.

use picasso_data::DatasetSpec;
use picasso_embedding::{
    expand_unique, gather, partition, shuffle_stitch, unique, EmbeddingTable, HybridHash,
    HybridHashConfig, PackPlan, PlannerConfig, ShardedTable,
};
use proptest::prelude::*;

proptest! {
    /// HybridHash is value-transparent: any lookup sequence returns exactly
    /// what an uncached table would, for any cache size / cadence.
    #[test]
    fn cache_is_value_transparent(
        batches in proptest::collection::vec(
            proptest::collection::vec(0u64..200, 1..40), 1..20),
        hot_rows in 0usize..64,
        warmup in 1u64..5,
        flush in 1u64..5,
    ) {
        let dim = 4;
        let mut cache = HybridHash::new(
            EmbeddingTable::new(dim, 99),
            HybridHashConfig {
                warmup_iters: warmup,
                flush_iters: flush,
                hot_bytes: (hot_rows * dim * 4) as u64,
            },
        );
        let mut reference = EmbeddingTable::new(dim, 99);
        let mut out = Vec::new();
        for ids in &batches {
            out.clear();
            cache.lookup_batch(ids, &mut out);
            let mut want = Vec::new();
            for &id in ids {
                want.extend_from_slice(reference.row(id));
            }
            prop_assert_eq!(&out, &want);
        }
        // Hot storage never exceeds its capacity.
        prop_assert!(cache.hot_rows() <= hot_rows);
    }

    /// The unique/partition/gather/shuffle-stitch/expand pipeline equals a
    /// direct row-by-row lookup for any id stream and shard count.
    #[test]
    fn embedding_pipeline_equivalence(
        ids in proptest::collection::vec(0u64..500, 1..120),
        shards in 1usize..6,
        dim in 1usize..9,
    ) {
        let mut table = ShardedTable::new(dim, 3, shards);
        let (u, _) = unique(&ids);
        let (parts, _) = partition(&u.unique_ids, &table);
        let gathered: Vec<Vec<f32>> = (0..shards)
            .map(|s| {
                let part = parts.parts[s].clone();
                gather(&mut table, s, &part).0
            })
            .collect();
        let (stitched, _) = shuffle_stitch(&parts, &gathered, dim, 0);
        let (expanded, _) = expand_unique(&stitched, &u.inverse, dim);

        let mut want = Vec::with_capacity(ids.len() * dim);
        for &id in &ids {
            want.extend_from_slice(table.row(id));
        }
        prop_assert_eq!(expanded, want);
    }

    /// Unique produces a minimal, consistent mapping.
    #[test]
    fn unique_is_minimal_and_consistent(ids in proptest::collection::vec(0u64..50, 0..200)) {
        let (u, _) = unique(&ids);
        // Every input id maps back through inverse.
        for (i, &id) in ids.iter().enumerate() {
            prop_assert_eq!(u.unique_ids[u.inverse[i] as usize], id);
        }
        // No duplicates in unique list.
        let mut sorted = u.unique_ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), u.unique_ids.len());
    }

    /// The SoA arena table is observationally identical to a per-row model
    /// (the old `HashMap<u64, Box<[f32]>>` storage): same values, same
    /// materialized-ID set, same dirty-ID tracking, under any interleaving
    /// of row/put/gradient/batched-gather/batched-scatter/mark-clean ops.
    #[test]
    fn arena_table_matches_per_row_reference_model(
        ops in proptest::collection::vec(
            (0usize..6, proptest::collection::vec(0u64..60, 1..8), -1.0f32..1.0),
            1..60),
    ) {
        let dim = 4;
        let mut table = EmbeddingTable::new(dim, 42);
        // First-touch values come from a second table with the same seed
        // (init depends only on (seed, id)), so the reference shares no
        // storage or bookkeeping with the arena under test.
        let mut init = EmbeddingTable::new(dim, 42);
        let mut rows: std::collections::HashMap<u64, Vec<f32>> = Default::default();
        let mut dirty: std::collections::BTreeSet<u64> = Default::default();
        for (kind, ids, x) in &ops {
            let id = ids[0];
            match kind {
                0 => {
                    let want = rows.entry(id).or_insert_with(|| {
                        dirty.insert(id);
                        init.row(id).to_vec()
                    }).clone();
                    prop_assert_eq!(table.row(id), &want[..]);
                }
                1 => {
                    let vals: Vec<f32> = (0..dim).map(|j| x + j as f32).collect();
                    table.put(id, &vals);
                    rows.insert(id, vals);
                    dirty.insert(id);
                }
                2 => {
                    let grad: Vec<f32> = (0..dim).map(|j| x * (j + 1) as f32).collect();
                    table.apply_gradient(id, &grad, 0.1);
                    let row = rows.entry(id).or_insert_with(|| init.row(id).to_vec());
                    for (w, g) in row.iter_mut().zip(&grad) {
                        *w -= 0.1 * g;
                    }
                    dirty.insert(id);
                }
                3 => {
                    let mut got = Vec::new();
                    table.gather_rows(ids, &mut got);
                    let mut want = Vec::new();
                    for &i in ids {
                        let row = rows.entry(i).or_insert_with(|| {
                            dirty.insert(i);
                            init.row(i).to_vec()
                        });
                        want.extend_from_slice(row);
                    }
                    prop_assert_eq!(got, want);
                }
                4 => {
                    let grads: Vec<f32> = (0..ids.len() * dim).map(|j| x * j as f32).collect();
                    table.scatter_grads(ids, &grads, 0.05);
                    for (i, &id) in ids.iter().enumerate() {
                        let row = rows.entry(id).or_insert_with(|| init.row(id).to_vec());
                        for (j, w) in row.iter_mut().enumerate() {
                            *w -= 0.05 * grads[i * dim + j];
                        }
                        dirty.insert(id);
                    }
                }
                _ => {
                    table.mark_clean();
                    dirty.clear();
                }
            }
        }
        // Final state agrees exactly: values, materialization, dirtiness.
        let mut want_ids: Vec<u64> = rows.keys().copied().collect();
        want_ids.sort_unstable();
        prop_assert_eq!(table.materialized_ids(), want_ids);
        prop_assert_eq!(
            table.dirty_ids().collect::<Vec<u64>>(),
            dirty.iter().copied().collect::<Vec<u64>>()
        );
        for (id, want) in &rows {
            prop_assert_eq!(table.peek(*id).unwrap(), &want[..], "row {}", id);
        }
    }

    /// The planner always covers every field exactly once and respects the
    /// width cap, for any cap.
    #[test]
    fn planner_partitions_fields(cap in 1usize..40) {
        let spec = DatasetSpec::product3();
        let plan = PackPlan::plan(&spec, &PlannerConfig { max_tables_per_pack: cap });
        let mut seen = vec![false; spec.fields.len()];
        for p in &plan.packs {
            for &f in &p.fields {
                prop_assert!(!seen[f], "field {f} in two packs");
                seen[f] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Total Eq.1 volume is conserved across shardings of the same spec.
        let v: f64 = plan.packs.iter().map(|p| p.vparam).sum();
        let base = PackPlan::plan(&spec, &PlannerConfig::default());
        let vb: f64 = base.packs.iter().map(|p| p.vparam).sum();
        prop_assert!((v - vb).abs() < vb * 1e-9 + 1e-9);
    }
}
