//! Property tests: cache transparency, operator-pipeline equivalence, and
//! planner invariants.

use picasso_data::DatasetSpec;
use picasso_embedding::{
    expand_unique, gather, partition, shuffle_stitch, unique, EmbeddingTable, HybridHash,
    HybridHashConfig, PackPlan, PlannerConfig, ShardedTable,
};
use proptest::prelude::*;

proptest! {
    /// HybridHash is value-transparent: any lookup sequence returns exactly
    /// what an uncached table would, for any cache size / cadence.
    #[test]
    fn cache_is_value_transparent(
        batches in proptest::collection::vec(
            proptest::collection::vec(0u64..200, 1..40), 1..20),
        hot_rows in 0usize..64,
        warmup in 1u64..5,
        flush in 1u64..5,
    ) {
        let dim = 4;
        let mut cache = HybridHash::new(
            EmbeddingTable::new(dim, 99),
            HybridHashConfig {
                warmup_iters: warmup,
                flush_iters: flush,
                hot_bytes: (hot_rows * dim * 4) as u64,
            },
        );
        let mut reference = EmbeddingTable::new(dim, 99);
        let mut out = Vec::new();
        for ids in &batches {
            out.clear();
            cache.lookup_batch(ids, &mut out);
            let mut want = Vec::new();
            for &id in ids {
                want.extend_from_slice(reference.row(id));
            }
            prop_assert_eq!(&out, &want);
        }
        // Hot storage never exceeds its capacity.
        prop_assert!(cache.hot_rows() <= hot_rows);
    }

    /// The unique/partition/gather/shuffle-stitch/expand pipeline equals a
    /// direct row-by-row lookup for any id stream and shard count.
    #[test]
    fn embedding_pipeline_equivalence(
        ids in proptest::collection::vec(0u64..500, 1..120),
        shards in 1usize..6,
        dim in 1usize..9,
    ) {
        let mut table = ShardedTable::new(dim, 3, shards);
        let (u, _) = unique(&ids);
        let (parts, _) = partition(&u.unique_ids, &table);
        let gathered: Vec<Vec<f32>> = (0..shards)
            .map(|s| {
                let part = parts.parts[s].clone();
                gather(&mut table, s, &part).0
            })
            .collect();
        let (stitched, _) = shuffle_stitch(&parts, &gathered, dim, 0);
        let (expanded, _) = expand_unique(&stitched, &u.inverse, dim);

        let mut want = Vec::with_capacity(ids.len() * dim);
        for &id in &ids {
            want.extend_from_slice(table.row(id));
        }
        prop_assert_eq!(expanded, want);
    }

    /// Unique produces a minimal, consistent mapping.
    #[test]
    fn unique_is_minimal_and_consistent(ids in proptest::collection::vec(0u64..50, 0..200)) {
        let (u, _) = unique(&ids);
        // Every input id maps back through inverse.
        for (i, &id) in ids.iter().enumerate() {
            prop_assert_eq!(u.unique_ids[u.inverse[i] as usize], id);
        }
        // No duplicates in unique list.
        let mut sorted = u.unique_ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), u.unique_ids.len());
    }

    /// The planner always covers every field exactly once and respects the
    /// width cap, for any cap.
    #[test]
    fn planner_partitions_fields(cap in 1usize..40) {
        let spec = DatasetSpec::product3();
        let plan = PackPlan::plan(&spec, &PlannerConfig { max_tables_per_pack: cap });
        let mut seen = vec![false; spec.fields.len()];
        for p in &plan.packs {
            for &f in &p.fields {
                prop_assert!(!seen[f], "field {f} in two packs");
                seen[f] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Total Eq.1 volume is conserved across shardings of the same spec.
        let v: f64 = plan.packs.iter().map(|p| p.vparam).sum();
        let base = PackPlan::plan(&spec, &PlannerConfig::default());
        let vb: f64 = base.packs.iter().map(|p| p.vparam).sum();
        prop_assert!((v - vb).abs() < vb * 1e-9 + 1e-9);
    }
}
