//! Checkpoint property tests: `restore(save(state)) == state` for
//! embedding tables (full and incremental snapshots) and the HybridHash
//! cache (frequency counters included), over arbitrary lookup/update
//! streams.

use picasso_embedding::{
    CacheSnapshot, EmbeddingTable, HybridHash, HybridHashConfig, TableSnapshot,
};
use proptest::prelude::*;

const DIM: usize = 4;

/// Drives a table through a mixed stream: even ops are lookups (which
/// lazily materialize), odd ops are gradient updates.
fn drive_table(table: &mut EmbeddingTable, ops: &[(u64, f32)]) {
    for (i, &(id, v)) in ops.iter().enumerate() {
        if i % 2 == 0 {
            table.row(id);
        } else {
            table.apply_gradient(id, &[v; DIM], 0.1);
        }
    }
}

proptest! {
    /// A full snapshot decodes back to exactly the rows it encoded, and
    /// restoring it reproduces the source table bit for bit — including
    /// the set of materialized rows, which the lazy seeded init makes
    /// observable.
    #[test]
    fn full_snapshot_round_trips(
        ops in proptest::collection::vec((0u64..300, -1.0f32..1.0), 1..80),
        seed in 0u64..50,
    ) {
        let mut table = EmbeddingTable::new(DIM, seed);
        drive_table(&mut table, &ops);

        let snap = TableSnapshot::full(&table);
        let decoded = TableSnapshot::decode(&snap.encode()).unwrap();
        prop_assert_eq!(&decoded, &snap);

        let mut restored = EmbeddingTable::new(DIM, seed);
        decoded.restore_full(&mut restored);
        prop_assert_eq!(restored.materialized_ids(), table.materialized_ids());
        for id in table.materialized_ids() {
            prop_assert_eq!(restored.peek(id), table.peek(id));
        }
        // Restore leaves the table clean, like a just-written checkpoint.
        prop_assert_eq!(restored.dirty_count(), 0);
    }

    /// Splitting a stream at an arbitrary point and checkpointing as
    /// full-at-split + delta-at-end reproduces the same state as one full
    /// snapshot at the end.
    #[test]
    fn incremental_chain_equals_full_snapshot(
        ops in proptest::collection::vec((0u64..300, -1.0f32..1.0), 2..80),
        split_pct in 0usize..100,
        seed in 0u64..50,
    ) {
        let split = ops.len() * split_pct / 100;
        let mut table = EmbeddingTable::new(DIM, seed);
        drive_table(&mut table, &ops[..split]);
        let base = TableSnapshot::full(&table);
        table.mark_clean();
        drive_table(&mut table, &ops[split..]);
        let delta = TableSnapshot::dirty(&table);
        // The delta holds exactly the rows touched since the base.
        prop_assert_eq!(delta.len(), table.dirty_count());

        let mut restored = EmbeddingTable::new(DIM, seed);
        TableSnapshot::decode(&base.encode()).unwrap().restore_full(&mut restored);
        TableSnapshot::decode(&delta.encode()).unwrap().apply(&mut restored);

        prop_assert_eq!(&TableSnapshot::full(&restored), &TableSnapshot::full(&table));
    }

    /// HybridHash round-trips through a full snapshot: frequency counters,
    /// hot set, cold rows, and iteration cursor — verified behaviorally by
    /// feeding both caches the same next batch.
    #[test]
    fn cache_snapshot_round_trips_counters_and_rows(
        batches in proptest::collection::vec(
            proptest::collection::vec(0u64..120, 1..30), 1..12),
        probe in proptest::collection::vec(0u64..120, 1..30),
        hot_rows in 0usize..32,
    ) {
        let cfg = HybridHashConfig {
            warmup_iters: 2,
            flush_iters: 2,
            hot_bytes: (hot_rows * DIM * 4) as u64,
        };
        let mut cache = HybridHash::new(EmbeddingTable::new(DIM, 7), cfg.clone());
        let mut out = Vec::new();
        for ids in &batches {
            out.clear();
            cache.lookup_batch(ids, &mut out);
            cache.apply_gradient(ids[0], &[0.25; DIM], 0.1);
        }

        let snap = cache.snapshot_full();
        let decoded = CacheSnapshot::decode(&snap.encode()).unwrap();
        let mut restored = HybridHash::new(EmbeddingTable::new(DIM, 7), cfg);
        restored.restore_full(&decoded);

        for &id in &probe {
            prop_assert_eq!(restored.frequency(id), cache.frequency(id),
                "frequency counter of id {} diverged", id);
        }
        prop_assert_eq!(restored.iteration(), cache.iteration());
        prop_assert_eq!(restored.hot_rows(), cache.hot_rows());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        restored.lookup_batch(&probe, &mut a);
        cache.lookup_batch(&probe, &mut b);
        prop_assert_eq!(a, b, "restored cache must answer the next batch identically");
    }

    /// Counter deltas are exact: restoring full-at-split then applying the
    /// delta yields the same counters and state as the live cache.
    #[test]
    fn cache_delta_chain_matches_live_counters(
        batches in proptest::collection::vec(
            proptest::collection::vec(0u64..120, 1..30), 2..12),
        split in 1usize..11,
        probe in proptest::collection::vec(0u64..120, 1..30),
    ) {
        let split = split.min(batches.len() - 1);
        let cfg = HybridHashConfig {
            warmup_iters: 2,
            flush_iters: 2,
            hot_bytes: (16 * DIM * 4) as u64,
        };
        let mut cache = HybridHash::new(EmbeddingTable::new(DIM, 9), cfg.clone());
        let mut out = Vec::new();
        for ids in &batches[..split] {
            out.clear();
            cache.lookup_batch(ids, &mut out);
        }
        let base = cache.snapshot_full();
        cache.mark_clean();
        for ids in &batches[split..] {
            out.clear();
            cache.lookup_batch(ids, &mut out);
        }
        let delta = cache.snapshot_delta();

        let mut restored = HybridHash::new(EmbeddingTable::new(DIM, 9), cfg);
        restored.restore_full(&CacheSnapshot::decode(&base.encode()).unwrap());
        restored.apply_delta(&CacheSnapshot::decode(&delta.encode()).unwrap());

        for &id in &probe {
            prop_assert_eq!(restored.frequency(id), cache.frequency(id));
        }
        let (mut a, mut b) = (Vec::new(), Vec::new());
        restored.lookup_batch(&probe, &mut a);
        cache.lookup_batch(&probe, &mut b);
        prop_assert_eq!(a, b);
    }
}
