//! Deterministic binary codec and shard checksums.
//!
//! Shards are flat little-endian byte streams: the encoder writes fixed-width
//! integers and floats in declaration order, the decoder reads them back and
//! rejects truncated or oversized payloads. Determinism matters twice over —
//! the crash-and-recover proof compares checkpoints byte for byte, and the
//! perf gate pins incremental-vs-full size ratios — so there is no padding,
//! no varint, and no platform-dependent field.

use std::fmt;

/// FNV-1a 64-bit hash — the integrity checksum of every shard file. Chosen
/// over CRC for being dependency-free and trivially portable; this guards
/// against torn writes and bit rot, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Why a payload could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before a read completed.
    UnexpectedEof {
        /// Bytes the read needed.
        want: usize,
        /// Bytes left in the payload.
        have: usize,
    },
    /// Bytes remained after the document was fully decoded.
    TrailingBytes(usize),
    /// A decoded value violated a structural invariant.
    Invalid(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { want, have } => {
                write!(
                    f,
                    "unexpected end of payload: need {want} bytes, have {have}"
                )
            }
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after document"),
            CodecError::Invalid(msg) => write!(f, "invalid payload: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends fixed-width little-endian values to a byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f32` by bit pattern (exact round trip, NaN included).
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes an `f64` by bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes a length-prefixed `f32` slice.
    pub fn f32_slice(&mut self, vs: &[f32]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.f32(v);
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Reads fixed-width little-endian values back out of a payload.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let have = self.buf.len() - self.pos;
        if have < n {
            return Err(CodecError::UnexpectedEof { want: n, have });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads an `f32` by bit pattern.
    pub fn f32(&mut self) -> Result<f32, CodecError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed `f32` slice.
    pub fn f32_slice(&mut self) -> Result<Vec<f32>, CodecError> {
        let n = self.u64()? as usize;
        // Each element needs 4 bytes; bound before allocating so a corrupt
        // length cannot trigger a huge reservation.
        let have = self.buf.len() - self.pos;
        if have < n.saturating_mul(4) {
            return Err(CodecError::UnexpectedEof { want: n * 4, have });
        }
        (0..n).map(|_| self.f32()).collect()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(self.buf.len() - self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_exactly() {
        let mut e = Encoder::new();
        e.u64(u64::MAX);
        e.u32(7);
        e.f32(-0.0);
        e.f64(f64::MIN_POSITIVE);
        e.f32_slice(&[1.5, f32::NAN, -3.25]);
        let bytes = e.finish();

        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.u32().unwrap(), 7);
        assert_eq!(d.f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(d.f64().unwrap(), f64::MIN_POSITIVE);
        let vs = d.f32_slice().unwrap();
        assert_eq!(vs.len(), 3);
        assert!(vs[1].is_nan(), "NaN bit patterns survive");
        d.finish().unwrap();
    }

    #[test]
    fn truncation_is_detected() {
        let mut e = Encoder::new();
        e.u64(1);
        let mut bytes = e.finish();
        bytes.pop();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(
            d.u64(),
            Err(CodecError::UnexpectedEof { want: 8, have: 7 })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut e = Encoder::new();
        e.u32(1);
        let mut bytes = e.finish();
        bytes.push(0);
        let mut d = Decoder::new(&bytes);
        d.u32().unwrap();
        assert_eq!(d.finish(), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn corrupt_slice_length_does_not_allocate() {
        let mut e = Encoder::new();
        e.u64(u64::MAX / 8); // absurd element count, no payload
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(
            d.f32_slice(),
            Err(CodecError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn fnv_is_stable_and_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        let a = fnv1a64(b"picasso");
        let b = fnv1a64(b"picassp");
        assert_ne!(a, b, "one-bit change moves the checksum");
        assert_eq!(a, fnv1a64(b"picasso"), "hash is a pure function");
    }
}
