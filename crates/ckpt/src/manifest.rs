//! Checkpoint manifests.
//!
//! A manifest is the small JSON document that makes a checkpoint *exist*:
//! shard files are staged first, and the atomic rename of the manifest is
//! the commit point. It records the training step, whether the snapshot is
//! full or incremental (with a parent link for the chain), and the byte
//! length + FNV-1a checksum of every shard so the store can validate
//! integrity before trusting a restore.

use picasso_obs::json::{self, Json};

/// Version of the manifest layout; bump when a required field changes shape.
pub const CKPT_SCHEMA_VERSION: u64 = 1;

/// Identifies checkpoint manifests among other JSON artifacts.
pub const CKPT_MANIFEST_KIND: &str = "picasso.checkpoint_manifest";

/// Whether a checkpoint stands alone or extends a parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointKind {
    /// Complete model state; restores without reading any other checkpoint.
    Full,
    /// Only state touched since the parent checkpoint; restoring requires
    /// the parent chain down to the nearest full snapshot.
    Incremental,
}

impl CheckpointKind {
    /// Stable lowercase name used in JSON.
    pub fn name(self) -> &'static str {
        match self {
            CheckpointKind::Full => "full",
            CheckpointKind::Incremental => "incremental",
        }
    }

    /// Parses the stable name back (inverse of [`CheckpointKind::name`]).
    pub fn parse(name: &str) -> Option<CheckpointKind> {
        match name {
            "full" => Some(CheckpointKind::Full),
            "incremental" => Some(CheckpointKind::Incremental),
            _ => None,
        }
    }
}

/// One shard file of a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// Logical shard name (e.g. `dense`, `table3`).
    pub name: String,
    /// File name within the checkpoint directory.
    pub file: String,
    /// Payload length in bytes.
    pub bytes: u64,
    /// FNV-1a checksum of the payload.
    pub checksum: u64,
}

/// The manifest of one committed checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Training step (completed iterations) the checkpoint captures.
    pub step: u64,
    /// Full or incremental.
    pub kind: CheckpointKind,
    /// Step of the parent checkpoint (`None` for full snapshots).
    pub parent: Option<u64>,
    /// Shard files, in write order.
    pub shards: Vec<ShardEntry>,
}

impl Manifest {
    /// Sum of shard payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.bytes).sum()
    }

    /// Looks up a shard by logical name.
    pub fn shard(&self, name: &str) -> Option<&ShardEntry> {
        self.shards.iter().find(|s| s.name == name)
    }

    /// The manifest's file name for `step` (`MANIFEST_<step>.json`).
    pub fn file_name(step: u64) -> String {
        format!("MANIFEST_{step}.json")
    }

    /// Serializes the manifest document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema_version", Json::UInt(CKPT_SCHEMA_VERSION)),
            ("kind", Json::str(CKPT_MANIFEST_KIND)),
            ("step", Json::UInt(self.step)),
            ("snapshot", Json::str(self.kind.name())),
            (
                "parent",
                match self.parent {
                    Some(p) => Json::UInt(p),
                    None => Json::Null,
                },
            ),
            (
                "shards",
                Json::Arr(
                    self.shards
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("name", Json::str(&s.name)),
                                ("file", Json::str(&s.file)),
                                ("bytes", Json::UInt(s.bytes)),
                                ("checksum", Json::UInt(s.checksum)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a manifest document (inverse of [`Manifest::to_json`]).
    pub fn from_json(doc: &Json) -> Result<Manifest, String> {
        match doc.get("kind").and_then(Json::as_str) {
            Some(CKPT_MANIFEST_KIND) => {}
            other => return Err(format!("not a checkpoint manifest (kind {other:?})")),
        }
        let version = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version")?;
        if version != CKPT_SCHEMA_VERSION {
            return Err(format!(
                "schema_version {version} != supported {CKPT_SCHEMA_VERSION}"
            ));
        }
        let step = doc
            .get("step")
            .and_then(Json::as_u64)
            .ok_or("missing step")?;
        let kind = doc
            .get("snapshot")
            .and_then(Json::as_str)
            .and_then(CheckpointKind::parse)
            .ok_or("missing or bad snapshot kind")?;
        let parent = match doc.get("parent") {
            Some(Json::Null) | None => None,
            Some(v) => Some(v.as_u64().ok_or("bad parent")?),
        };
        if kind == CheckpointKind::Incremental && parent.is_none() {
            return Err("incremental manifest without a parent".into());
        }
        let mut shards = Vec::new();
        for s in doc
            .get("shards")
            .and_then(Json::items)
            .ok_or("missing shards")?
        {
            shards.push(ShardEntry {
                name: s
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("shard missing name")?
                    .to_string(),
                file: s
                    .get("file")
                    .and_then(Json::as_str)
                    .ok_or("shard missing file")?
                    .to_string(),
                bytes: s
                    .get("bytes")
                    .and_then(Json::as_u64)
                    .ok_or("shard missing bytes")?,
                checksum: s
                    .get("checksum")
                    .and_then(Json::as_u64)
                    .ok_or("shard missing checksum")?,
            });
        }
        Ok(Manifest {
            step,
            kind,
            parent,
            shards,
        })
    }

    /// Parses manifest text (file contents).
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        Manifest::from_json(&doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            step: 42,
            kind: CheckpointKind::Incremental,
            parent: Some(40),
            shards: vec![
                ShardEntry {
                    name: "dense".into(),
                    file: "ckpt-00000042-dense.bin".into(),
                    bytes: 128,
                    checksum: 0xdead_beef,
                },
                ShardEntry {
                    name: "table0".into(),
                    file: "ckpt-00000042-table0.bin".into(),
                    bytes: 64,
                    checksum: 7,
                },
            ],
        }
    }

    #[test]
    fn manifest_json_round_trips() {
        let m = sample();
        let text = m.to_json().to_json();
        let back = Manifest::parse(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.total_bytes(), 192);
        assert_eq!(back.shard("dense").unwrap().bytes, 128);
        assert!(back.shard("missing").is_none());
    }

    #[test]
    fn full_manifests_have_no_parent() {
        let m = Manifest {
            step: 0,
            kind: CheckpointKind::Full,
            parent: None,
            shards: vec![],
        };
        let back = Manifest::parse(&m.to_json().to_json()).unwrap();
        assert_eq!(back.parent, None);
        assert_eq!(back.kind, CheckpointKind::Full);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(Manifest::parse("not json").is_err());
        assert!(Manifest::parse(r#"{"kind":"other"}"#).is_err());
        // Wrong schema version.
        let mut m = sample().to_json();
        if let Json::Obj(pairs) = &mut m {
            pairs[0].1 = Json::UInt(999);
        }
        assert!(Manifest::from_json(&m)
            .unwrap_err()
            .contains("schema_version"));
        // Incremental without parent.
        let orphan = r#"{"schema_version":1,"kind":"picasso.checkpoint_manifest","step":5,"snapshot":"incremental","parent":null,"shards":[]}"#;
        assert!(Manifest::parse(orphan).unwrap_err().contains("parent"));
    }

    #[test]
    fn kind_names_round_trip() {
        for k in [CheckpointKind::Full, CheckpointKind::Incremental] {
            assert_eq!(CheckpointKind::parse(k.name()), Some(k));
        }
        assert_eq!(CheckpointKind::parse("diff"), None);
    }
}
