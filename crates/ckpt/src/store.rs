//! The directory-level checkpoint store.
//!
//! Write protocol: every shard is written to a `.tmp` file and renamed into
//! place, then the manifest itself is written the same way — the manifest
//! rename is the commit point, so a crash mid-checkpoint leaves at worst
//! orphaned shard files (reclaimed by [`CheckpointStore::gc`]) and never a
//! manifest describing missing data. Read protocol: [`CheckpointStore::latest_valid`]
//! walks manifests newest-first, checksums every shard in the manifest's
//! parent chain, and falls back to the previous manifest when validation
//! fails, so a corrupted newest checkpoint degrades recovery instead of
//! breaking it.

use crate::codec::fnv1a64;
use crate::manifest::{CheckpointKind, Manifest, ShardEntry};
use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Why a store operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem failure (path and OS error text).
    Io(String),
    /// A manifest or shard failed integrity validation.
    Corrupt(String),
    /// A referenced checkpoint or shard does not exist.
    NotFound(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "checkpoint io error: {msg}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            StoreError::NotFound(msg) => write!(f, "checkpoint not found: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Io(format!("{}: {e}", path.display()))
}

/// Summary of one committed checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSummary {
    /// Step the checkpoint captures.
    pub step: u64,
    /// Full or incremental.
    pub kind: CheckpointKind,
    /// Total shard payload bytes.
    pub bytes: u64,
    /// Number of shard files.
    pub shards: usize,
}

/// What [`CheckpointStore::gc`] removed and kept.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Steps of checkpoints kept.
    pub kept: Vec<u64>,
    /// Steps of checkpoints removed.
    pub removed: Vec<u64>,
    /// Orphaned shard files (no committed manifest references them) removed.
    pub orphans_removed: usize,
}

/// A checkpoint directory.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) the store at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<CheckpointStore, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        Ok(CheckpointStore { dir })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Begins writing a checkpoint for `step`. Shards are staged as they are
    /// added; nothing is visible until [`CheckpointWriter::commit`].
    pub fn begin(
        &self,
        step: u64,
        kind: CheckpointKind,
        parent: Option<u64>,
    ) -> Result<CheckpointWriter<'_>, StoreError> {
        if kind == CheckpointKind::Incremental && parent.is_none() {
            return Err(StoreError::Corrupt(format!(
                "incremental checkpoint at step {step} needs a parent"
            )));
        }
        Ok(CheckpointWriter {
            store: self,
            manifest: Manifest {
                step,
                kind,
                parent,
                shards: Vec::new(),
            },
        })
    }

    /// Steps of every committed manifest, ascending.
    pub fn steps(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return out;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(step) = name
                .strip_prefix("MANIFEST_")
                .and_then(|rest| rest.strip_suffix(".json"))
                .and_then(|num| num.parse::<u64>().ok())
            {
                out.push(step);
            }
        }
        out.sort_unstable();
        out
    }

    /// Loads (without validating shards) the manifest for `step`.
    pub fn manifest(&self, step: u64) -> Result<Manifest, StoreError> {
        let path = self.dir.join(Manifest::file_name(step));
        let text = fs::read_to_string(&path).map_err(|e| match e.kind() {
            std::io::ErrorKind::NotFound => {
                StoreError::NotFound(format!("no manifest for step {step}"))
            }
            _ => io_err(&path, e),
        })?;
        Manifest::parse(&text).map_err(|e| StoreError::Corrupt(format!("step {step}: {e}")))
    }

    /// Reads one shard's payload, verifying length and checksum.
    pub fn read_shard(&self, manifest: &Manifest, name: &str) -> Result<Vec<u8>, StoreError> {
        let entry = manifest.shard(name).ok_or_else(|| {
            StoreError::NotFound(format!("step {} has no shard '{name}'", manifest.step))
        })?;
        self.read_entry(manifest.step, entry)
    }

    fn read_entry(&self, step: u64, entry: &ShardEntry) -> Result<Vec<u8>, StoreError> {
        let path = self.dir.join(&entry.file);
        let payload = fs::read(&path).map_err(|e| io_err(&path, e))?;
        if payload.len() as u64 != entry.bytes {
            return Err(StoreError::Corrupt(format!(
                "step {step} shard '{}': {} bytes on disk, manifest says {}",
                entry.name,
                payload.len(),
                entry.bytes
            )));
        }
        let sum = fnv1a64(&payload);
        if sum != entry.checksum {
            return Err(StoreError::Corrupt(format!(
                "step {step} shard '{}': checksum {sum:#x} != manifest {:#x}",
                entry.name, entry.checksum
            )));
        }
        Ok(payload)
    }

    /// Validates every shard of `manifest` (existence, length, checksum).
    pub fn validate(&self, manifest: &Manifest) -> Result<(), StoreError> {
        for entry in &manifest.shards {
            self.read_entry(manifest.step, entry)?;
        }
        Ok(())
    }

    /// Resolves the restore chain for `manifest`: the nearest full ancestor
    /// first, then every incremental up to and including `manifest` itself.
    /// Every link is validated.
    pub fn chain(&self, manifest: &Manifest) -> Result<Vec<Manifest>, StoreError> {
        let mut chain = vec![manifest.clone()];
        let mut cursor = manifest.clone();
        while cursor.kind == CheckpointKind::Incremental {
            let parent_step = cursor.parent.expect("incremental manifests carry a parent");
            if parent_step >= cursor.step {
                return Err(StoreError::Corrupt(format!(
                    "step {} claims parent {parent_step} (parents must be older)",
                    cursor.step
                )));
            }
            cursor = self.manifest(parent_step)?;
            chain.push(cursor.clone());
        }
        chain.reverse();
        for link in &chain {
            self.validate(link)?;
        }
        Ok(chain)
    }

    /// The newest checkpoint whose full parent chain validates, together
    /// with its restore chain and one reason per rejected newer checkpoint.
    /// `Ok(None)` when the store holds no usable checkpoint at all.
    #[allow(clippy::type_complexity)]
    pub fn latest_valid(
        &self,
    ) -> Result<Option<(Manifest, Vec<Manifest>, Vec<String>)>, StoreError> {
        let mut rejected = Vec::new();
        for &step in self.steps().iter().rev() {
            let manifest = match self.manifest(step) {
                Ok(m) => m,
                Err(e) => {
                    rejected.push(format!("step {step}: {e}"));
                    continue;
                }
            };
            match self.chain(&manifest) {
                Ok(chain) => return Ok(Some((manifest, chain, rejected))),
                Err(e) => rejected.push(format!("step {step}: {e}")),
            }
        }
        Ok(None)
    }

    /// Retention: keeps the newest `keep_full` full checkpoints, every
    /// checkpoint whose restore chain reaches a kept manifest, and nothing
    /// else. Orphaned shard files (from aborted writes) are deleted too.
    /// Chains are preserved by construction: the keep set is closed under
    /// the parent relation.
    pub fn gc(&self, keep_full: usize) -> Result<GcReport, StoreError> {
        let steps = self.steps();
        let mut manifests = Vec::new();
        for &step in &steps {
            manifests.push(self.manifest(step)?);
        }
        // Newest keep_full full snapshots seed the keep set.
        let mut keep: BTreeSet<u64> = manifests
            .iter()
            .filter(|m| m.kind == CheckpointKind::Full)
            .rev()
            .take(keep_full.max(1))
            .map(|m| m.step)
            .collect();
        // Close over parent chains: a checkpoint survives when its chain
        // bottoms out in a kept full snapshot.
        for m in &manifests {
            let mut path = vec![m.step];
            let mut cursor = m;
            let reaches_kept = loop {
                if keep.contains(&cursor.step) {
                    break true;
                }
                match cursor.parent {
                    Some(p) => match manifests.iter().find(|c| c.step == p) {
                        Some(parent) => {
                            path.push(parent.step);
                            cursor = parent;
                        }
                        None => break false,
                    },
                    None => break false,
                }
            };
            if reaches_kept {
                keep.extend(path);
            }
        }

        let mut report = GcReport::default();
        let mut referenced: BTreeSet<String> = BTreeSet::new();
        for m in &manifests {
            if keep.contains(&m.step) {
                report.kept.push(m.step);
                referenced.extend(m.shards.iter().map(|s| s.file.clone()));
                referenced.insert(Manifest::file_name(m.step));
            }
        }
        for m in &manifests {
            if !keep.contains(&m.step) {
                report.removed.push(m.step);
                let path = self.dir.join(Manifest::file_name(m.step));
                fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
            }
        }
        // Sweep unreferenced shard/tmp files.
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, e))?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let sweepable = name.starts_with("ckpt-") || name.ends_with(".tmp");
            if sweepable && !referenced.contains(name) {
                let path = entry.path();
                fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
                report.orphans_removed += 1;
            }
        }
        Ok(report)
    }

    fn write_atomic(&self, file: &str, payload: &[u8]) -> Result<(), StoreError> {
        let tmp = self.dir.join(format!("{file}.tmp"));
        let dst = self.dir.join(file);
        fs::write(&tmp, payload).map_err(|e| io_err(&tmp, e))?;
        fs::rename(&tmp, &dst).map_err(|e| io_err(&dst, e))?;
        Ok(())
    }
}

/// Stages shards for one checkpoint; the manifest write in
/// [`CheckpointWriter::commit`] makes them visible. Dropping the writer
/// without committing leaves only orphaned shard files, which the next
/// [`CheckpointStore::gc`] reclaims.
#[derive(Debug)]
pub struct CheckpointWriter<'a> {
    store: &'a CheckpointStore,
    manifest: Manifest,
}

impl CheckpointWriter<'_> {
    /// Writes one shard atomically and records it in the pending manifest.
    pub fn add_shard(&mut self, name: &str, payload: &[u8]) -> Result<(), StoreError> {
        if self.manifest.shard(name).is_some() {
            return Err(StoreError::Corrupt(format!(
                "duplicate shard '{name}' at step {}",
                self.manifest.step
            )));
        }
        let file = format!("ckpt-{:08}-{name}.bin", self.manifest.step);
        self.store.write_atomic(&file, payload)?;
        self.manifest.shards.push(ShardEntry {
            name: name.to_string(),
            file,
            bytes: payload.len() as u64,
            checksum: fnv1a64(payload),
        });
        Ok(())
    }

    /// Commits: writes the manifest atomically, making the checkpoint
    /// restorable.
    pub fn commit(self) -> Result<CheckpointSummary, StoreError> {
        let text = self.manifest.to_json().to_json() + "\n";
        self.store
            .write_atomic(&Manifest::file_name(self.manifest.step), text.as_bytes())?;
        Ok(CheckpointSummary {
            step: self.manifest.step,
            kind: self.manifest.kind,
            bytes: self.manifest.total_bytes(),
            shards: self.manifest.shards.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("picasso-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        CheckpointStore::open(dir).unwrap()
    }

    fn write_full(store: &CheckpointStore, step: u64, payload: &[u8]) -> CheckpointSummary {
        let mut w = store.begin(step, CheckpointKind::Full, None).unwrap();
        w.add_shard("dense", payload).unwrap();
        w.commit().unwrap()
    }

    fn write_incr(store: &CheckpointStore, step: u64, parent: u64, payload: &[u8]) {
        let mut w = store
            .begin(step, CheckpointKind::Incremental, Some(parent))
            .unwrap();
        w.add_shard("dense", payload).unwrap();
        w.commit().unwrap();
    }

    #[test]
    fn write_read_round_trip() {
        let store = temp_store("rw");
        let summary = write_full(&store, 3, b"hello world");
        assert_eq!(summary.step, 3);
        assert_eq!(summary.bytes, 11);
        assert_eq!(summary.shards, 1);
        let m = store.manifest(3).unwrap();
        assert_eq!(store.read_shard(&m, "dense").unwrap(), b"hello world");
        assert!(matches!(
            store.read_shard(&m, "nope"),
            Err(StoreError::NotFound(_))
        ));
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn uncommitted_checkpoints_are_invisible() {
        let store = temp_store("atomic");
        let mut w = store.begin(1, CheckpointKind::Full, None).unwrap();
        w.add_shard("dense", b"staged").unwrap();
        drop(w); // no commit
        assert!(store.steps().is_empty(), "no manifest, no checkpoint");
        assert!(store.latest_valid().unwrap().is_none());
        // The orphaned shard is reclaimed by gc.
        let report = store.gc(1).unwrap();
        assert_eq!(report.orphans_removed, 1);
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn duplicate_shard_names_are_rejected() {
        let store = temp_store("dup");
        let mut w = store.begin(1, CheckpointKind::Full, None).unwrap();
        w.add_shard("dense", b"a").unwrap();
        assert!(matches!(
            w.add_shard("dense", b"b"),
            Err(StoreError::Corrupt(_))
        ));
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn corrupted_shard_fails_validation_and_falls_back() {
        let store = temp_store("corrupt");
        write_full(&store, 1, b"good old state");
        write_full(&store, 2, b"shiny new state");
        // Flip a byte in the newest shard file.
        let m2 = store.manifest(2).unwrap();
        let path = store.dir().join(&m2.shards[0].file);
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        assert!(matches!(store.validate(&m2), Err(StoreError::Corrupt(_))));
        let (best, chain, rejected) = store.latest_valid().unwrap().expect("step 1 still valid");
        assert_eq!(best.step, 1, "fell back past the corrupted checkpoint");
        assert_eq!(chain.len(), 1);
        assert_eq!(rejected.len(), 1);
        assert!(
            rejected[0].contains("checksum"),
            "reason names the cause: {rejected:?}"
        );
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn truncated_shard_is_rejected_by_length_check() {
        let store = temp_store("trunc");
        write_full(&store, 1, b"0123456789");
        let m = store.manifest(1).unwrap();
        let path = store.dir().join(&m.shards[0].file);
        fs::write(&path, b"01234").unwrap();
        let err = store.validate(&m).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)));
        assert!(err.to_string().contains("bytes"));
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn chains_resolve_base_first_and_validate_every_link() {
        let store = temp_store("chain");
        write_full(&store, 10, b"base");
        write_incr(&store, 12, 10, b"d1");
        write_incr(&store, 14, 12, b"d2");
        let m = store.manifest(14).unwrap();
        let chain = store.chain(&m).unwrap();
        assert_eq!(
            chain.iter().map(|c| c.step).collect::<Vec<_>>(),
            [10, 12, 14]
        );
        // Corrupting the *base* invalidates the whole chain.
        let base = store.manifest(10).unwrap();
        let path = store.dir().join(&base.shards[0].file);
        fs::write(&path, b"XXXX").unwrap();
        assert!(store.chain(&m).is_err());
        assert!(store.latest_valid().unwrap().is_none());
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn missing_parent_invalidates_an_incremental() {
        let store = temp_store("orphan");
        write_full(&store, 1, b"base");
        write_incr(&store, 3, 2, b"points at nothing");
        let m = store.manifest(3).unwrap();
        assert!(matches!(store.chain(&m), Err(StoreError::NotFound(_))));
        let (best, _, rejected) = store.latest_valid().unwrap().unwrap();
        assert_eq!(best.step, 1);
        assert_eq!(rejected.len(), 1);
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn gc_keeps_parent_chains_intact() {
        let store = temp_store("gc");
        write_full(&store, 10, b"f10");
        write_incr(&store, 12, 10, b"i12");
        write_full(&store, 20, b"f20");
        write_incr(&store, 22, 20, b"i22");
        write_incr(&store, 24, 22, b"i24");
        let report = store.gc(1).unwrap();
        assert_eq!(report.kept, [20, 22, 24]);
        assert_eq!(report.removed, [10, 12]);
        assert_eq!(store.steps(), [20, 22, 24]);
        // Everything kept still restores.
        let m = store.manifest(24).unwrap();
        assert_eq!(store.chain(&m).unwrap().len(), 3);
        // Removed checkpoints' shard files are gone too.
        let files: Vec<_> = fs::read_dir(store.dir())
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(!files.iter().any(|f| f.contains("00000010")), "{files:?}");
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn gc_keeps_at_least_one_full_snapshot() {
        let store = temp_store("gc-min");
        write_full(&store, 1, b"only");
        let report = store.gc(0).unwrap();
        assert_eq!(report.kept, [1], "keep_full is clamped to >= 1");
        fs::remove_dir_all(store.dir()).unwrap();
    }

    #[test]
    fn incremental_without_parent_is_rejected_at_begin() {
        let store = temp_store("begin");
        assert!(matches!(
            store.begin(5, CheckpointKind::Incremental, None),
            Err(StoreError::Corrupt(_))
        ));
        fs::remove_dir_all(store.dir()).unwrap();
    }
}
