//! # picasso-ckpt
//!
//! The fault-tolerance foundation of the PICASSO reproduction: a versioned
//! on-disk checkpoint format and the store that manages it.
//!
//! Production WDL training jobs run for days; XDL2 (the productized
//! PICASSO) survives worker crashes by periodically persisting model state
//! and restoring the last valid snapshot. This crate owns that format:
//!
//! * [`codec`] — a deterministic little-endian binary codec plus the FNV-1a
//!   checksum every shard is integrity-checked with. No external
//!   dependencies (the build container has no registry access).
//! * [`manifest`] — the JSON manifest describing one checkpoint: its step,
//!   kind (full or incremental), parent link, and per-shard file entries.
//! * [`store`] — the directory-level store: atomic write-then-rename
//!   commits, checksum validation with fallback to the previous manifest,
//!   incremental-chain resolution, and retention/GC that never breaks a
//!   parent chain.
//!
//! What goes *into* a shard is the owning crate's business: embedding
//! tables and the HybridHash cache serialize themselves in
//! `picasso-embedding`, dense trainer parameters in `picasso-train`, and
//! the recovery driver in `picasso-exec` ties them together.

#![warn(missing_docs)]

pub mod codec;
pub mod manifest;
pub mod store;

pub use codec::{fnv1a64, CodecError, Decoder, Encoder};
pub use manifest::{CheckpointKind, Manifest, ShardEntry, CKPT_SCHEMA_VERSION};
pub use store::{CheckpointStore, CheckpointSummary, CheckpointWriter, GcReport, StoreError};
