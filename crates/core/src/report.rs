//! Plain-text table rendering for experiment output.

use picasso_obs::Json;
use std::fmt;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> TextTable {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Serializes the table as a run-report payload document.
    pub fn to_json(&self) -> Json {
        let strings =
            |cells: &[String]| Json::Arr(cells.iter().map(|c| Json::str(c.as_str())).collect());
        Json::obj([
            ("kind", Json::str("picasso.table")),
            ("title", Json::str(&self.title)),
            ("headers", strings(&self.headers)),
            (
                "rows",
                Json::Arr(self.rows.iter().map(|r| strings(r)).collect()),
            ),
        ])
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (c, w) in cells.iter().zip(&widths) {
                write!(f, " {c:<w$} |")?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a number with k/M/B suffixes (e.g. IPS values).
pub fn si(v: f64) -> String {
    let a = v.abs();
    if a >= 1e9 {
        format!("{:.2}B", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.1}K", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Formats a ratio as a signed percentage (`+25%`).
pub fn pct_delta(new: f64, old: f64) -> String {
    if old == 0.0 {
        return "n/a".into();
    }
    format!("{:+.0}%", (new / old - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new("Demo", &["model", "ips"]);
        t.row(vec!["W&D".into(), "22.8K".into()]);
        t.row(vec!["CAN".into(), "12.2K".into()]);
        let s = t.to_string();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| W&D   |"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn si_suffixes() {
        assert_eq!(si(12_218.0), "12.2K");
        assert_eq!(si(2.5e6), "2.50M");
        assert_eq!(si(3.2e9), "3.20B");
        assert_eq!(si(42.0), "42.0");
    }

    #[test]
    fn to_json_escapes_quotes_and_non_ascii() {
        let mut t = TextTable::new("W&D \"quick\"\ttable", &["モデル", "ips\n(K)"]);
        t.row(vec!["犬\\猫".into(), "12.2K".into()]);
        let text = t.to_json().to_json();
        // Raw quotes/controls must not leak into the document.
        assert!(text.contains(r#"W&D \"quick\"\ttable"#));
        assert!(text.contains(r#"ips\n(K)"#));
        // The document parses back with content intact.
        let doc = picasso_obs::json::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("title").and_then(Json::as_str),
            Some("W&D \"quick\"\ttable")
        );
        let headers = doc.get("headers").and_then(Json::items).unwrap();
        assert_eq!(headers[0].as_str(), Some("モデル"));
        assert_eq!(headers[1].as_str(), Some("ips\n(K)"));
        let rows = doc.get("rows").and_then(Json::items).unwrap();
        assert_eq!(rows[0].items().unwrap()[0].as_str(), Some("犬\\猫"));
    }

    #[test]
    fn pct_delta_formats() {
        assert_eq!(pct_delta(130.0, 100.0), "+30%");
        assert_eq!(pct_delta(50.0, 100.0), "-50%");
        assert_eq!(pct_delta(1.0, 0.0), "n/a");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
