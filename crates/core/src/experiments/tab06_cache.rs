//! Table VI: HybridHash hit ratio and throughput by Hot-storage size.
//!
//! Reproduces both effects: hit ratio saturates past ~2 GB (marginal
//! returns), and oversized caches shrink the feasible batch enough to cost
//! throughput — there is no need to chase a high hit ratio.

use crate::experiments::Scale;
use crate::report::{pct_delta, TextTable};
use crate::{PicassoConfig, Session};
use picasso_exec::ModelKind;

/// Hot-storage sizes swept (bytes).
pub const SIZES: [(u64, &str); 5] = [
    (256 << 20, "256MB"),
    (512 << 20, "512MB"),
    (1 << 30, "1GB"),
    (2 << 30, "2GB"),
    (4 << 30, "4GB"),
];

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct CachePoint {
    /// Hot-storage bytes.
    pub bytes: u64,
    /// Measured hit ratio.
    pub hit_ratio: f64,
    /// IPS at this size.
    pub ips: f64,
}

/// Sweeps the cache size for one model. The warm-up cache budget scales
/// with the Hot-storage size so the measured hit ratio reflects it.
pub fn sweep(kind: ModelKind, scale: Scale) -> Vec<CachePoint> {
    SIZES
        .iter()
        .map(|&(bytes, _)| {
            let mut cfg: PicassoConfig = scale.eflops_config().hot_storage(bytes);
            // The warm-up uses a scaled-down working vocabulary; scale the
            // measurement budget proportionally to the sweep point.
            cfg.warmup.hot_bytes =
                (scale.warmup().hot_bytes as f64 * (bytes as f64 / (1u64 << 30) as f64)) as u64;
            let run = Session::new(kind, cfg).run_picasso();
            CachePoint {
                bytes,
                hit_ratio: run.report.cache_hit_ratio,
                ips: run.report.ips_per_node,
            }
        })
        .collect()
}

/// Runs Table VI for the three workloads.
pub fn run(scale: Scale) -> TextTable {
    let mut table = TextTable::new(
        "Tab. VI — hit ratio and IPS by Hot-storage size (IPS relative to 1GB)",
        &["model", "hot-storage", "hit ratio", "IPS delta"],
    );
    for kind in [ModelKind::WideDeep, ModelKind::Can, ModelKind::MMoe] {
        let points = sweep(kind, scale);
        let base = points[2].ips; // 1GB reference, as in the paper
        for (p, &(_, label)) in points.iter().zip(SIZES.iter()) {
            table.row(vec![
                kind.name().into(),
                label.into(),
                format!("{:.0}%", p.hit_ratio * 100.0),
                pct_delta(p.ips, base),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_grows_with_cache_size() {
        let points = sweep(ModelKind::Can, Scale::Quick);
        assert!(points
            .windows(2)
            .all(|w| w[1].hit_ratio >= w[0].hit_ratio - 1e-9));
        assert!(points.last().unwrap().hit_ratio > points[0].hit_ratio);
    }

    #[test]
    fn oversized_cache_does_not_raise_throughput_proportionally() {
        // The paper's marginal effect: 4GB should not beat 1GB by much, as
        // the occupied device memory compresses the batch.
        let points = sweep(ModelKind::WideDeep, Scale::Quick);
        let at_1g = points[2].ips;
        let at_4g = points[4].ips;
        assert!(
            at_4g < at_1g * 1.15,
            "4GB cache {at_4g} should not dominate 1GB {at_1g}"
        );
    }
}
