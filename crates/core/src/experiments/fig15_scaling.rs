//! Fig. 15: scaling out from 1 to 128 PICASSO-Executors.
//!
//! CAN and MMoE scale near-linearly; W&D (not enough compute to amortize
//! the growing exchange) is sublinear.

use crate::experiments::Scale;
use crate::report::{si, TextTable};
use crate::{PicassoConfig, Session};
use picasso_exec::ModelKind;

/// IPS per node for one model at `workers` EFLOPS nodes.
pub fn ips_at(kind: ModelKind, workers: usize, scale: Scale) -> f64 {
    let mut cfg: PicassoConfig = scale.eflops_config().machines(workers);
    cfg.batch_per_executor = scale.quick_batch();
    Session::new(kind, cfg).report().ips_per_node
}

/// Runs the scaling sweep.
pub fn run(scale: Scale) -> TextTable {
    let mut table = TextTable::new(
        "Fig. 15 — IPS per node when scaling out (efficiency vs 1 node)",
        &["model", "workers", "IPS/node", "efficiency"],
    );
    for kind in [ModelKind::WideDeep, ModelKind::Can, ModelKind::MMoe] {
        let mut base = None;
        for &w in &scale.scaling_workers() {
            let ips = ips_at(kind, w, scale);
            let b = *base.get_or_insert(ips);
            table.row(vec![
                kind.name().into(),
                w.to_string(),
                si(ips),
                format!("{:.0}%", ips / b * 100.0),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_heavy_models_scale_better_than_wd() {
        let eff = |kind: ModelKind| ips_at(kind, 8, Scale::Quick) / ips_at(kind, 1, Scale::Quick);
        let wd = eff(ModelKind::WideDeep);
        let mmoe = eff(ModelKind::MMoe);
        assert!(
            mmoe >= wd * 0.9,
            "MMoE efficiency {mmoe:.2} should be >= W&D {wd:.2}"
        );
        assert!(mmoe > 0.3, "MMoE should retain efficiency, got {mmoe:.2}");
    }
}
