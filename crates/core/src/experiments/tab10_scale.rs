//! Table X: GPU-core-hours to train one year of accumulated data at model
//! scales from ~1B to ~1T parameters, XDL versus PICASSO, on 128 workers.

use crate::experiments::Scale;
use crate::report::TextTable;
use crate::{PicassoConfig, Session};
use picasso_data::DatasetSpec;
use picasso_exec::{Framework, ModelKind};

/// Instances accumulated over one year of the paper's streaming workloads.
pub const YEAR_INSTANCES: f64 = 30e9;

/// The model-scale points: a dataset scaled to the target parameter count.
pub fn scaled_dataset(target_params: f64) -> DatasetSpec {
    let mut data = DatasetSpec::product2();
    let factor = target_params / data.total_params();
    for f in &mut data.fields {
        f.vocab = ((f.vocab as f64 * factor).max(1.0)) as u64;
    }
    data.name = format!("product-2-{:.0e}p", target_params);
    data
}

/// Walltime in GPU-core-hours for one framework at one scale point.
pub fn core_hours(target_params: f64, fw: Framework, scale: Scale) -> f64 {
    let workers = match scale {
        Scale::Quick => 4,
        Scale::Full => 128,
    };
    let data = scaled_dataset(target_params).shared();
    let mut cfg: PicassoConfig = scale.eflops_config().machines(workers);
    cfg.batch_per_executor = scale.quick_batch();
    let r = Session::with_dataset(ModelKind::Can, data, cfg)
        .run_framework(fw)
        .report;
    r.gpu_core_hours(YEAR_INSTANCES)
}

/// Runs Table X.
pub fn run(scale: Scale) -> TextTable {
    let mut table = TextTable::new(
        "Tab. X — GPU-core-hours to train one year of data",
        &["model scale", "XDL", "PICASSO", "reduction"],
    );
    for (label, params) in [("~1B", 1e9), ("~10B", 1e10), ("~100B", 1e11), ("~1T", 1e12)] {
        let xdl = core_hours(params, Framework::Xdl, scale);
        let picasso = core_hours(params, Framework::Picasso, scale);
        table.row(vec![
            label.into(),
            format!("{xdl:.0}"),
            format!("{picasso:.0}"),
            format!("{:.1}x", xdl / picasso),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picasso_reduces_training_cost_at_every_scale() {
        for params in [1e9, 1e11] {
            let xdl = core_hours(params, Framework::Xdl, Scale::Quick);
            let picasso = core_hours(params, Framework::Picasso, Scale::Quick);
            assert!(
                xdl / picasso > 1.5,
                "at {params:.0e}: XDL {xdl:.0}h vs PICASSO {picasso:.0}h"
            );
        }
    }

    #[test]
    fn scaled_datasets_hit_their_parameter_targets() {
        for target in [1e9, 1e10, 1e12] {
            let d = scaled_dataset(target);
            let params = d.total_params();
            assert!(
                (0.5..2.0).contains(&(params / target)),
                "target {target:.0e} got {params:.2e}"
            );
        }
    }
}
