//! Fig. 5: worker-side time breakdown of the three representative WDL
//! workloads under PS and MP strategies.
//!
//! Reproduces the workload characterization: W&D is I/O & memory bound
//! (~20% exposed I/O+memory), CAN is communication bound (~60-70% exposed
//! communication), and MMoE is computation bound (~50% arithmetic).

use crate::experiments::Scale;
use crate::report::TextTable;
use crate::{PicassoConfig, Session};
use picasso_exec::{ModelKind, Optimizations, Strategy};
use picasso_sim::TaskCategory;

/// The three representative workloads (§II-D).
pub const WORKLOADS: [ModelKind; 3] = [ModelKind::WideDeep, ModelKind::Can, ModelKind::MMoe];

/// Runs the breakdown under PS and MP. Shares are each category's busy
/// time normalized over total busy time (concurrent activity on different
/// resources overlaps); the final column is the strictly *exposed*
/// communication — the period when communication blocks everything else.
pub fn run(scale: Scale) -> TextTable {
    let mut table = TextTable::new(
        "Fig. 5 — worker-side busy-time shares (exposed communication last)",
        &[
            "model",
            "strategy",
            "io",
            "memory",
            "communication",
            "computation",
            "exposed comm",
        ],
    );
    for kind in WORKLOADS {
        let mut cfg: PicassoConfig = scale.eflops_config();
        cfg.batch_per_executor = scale.quick_batch();
        let session = Session::new(kind, cfg);
        for (label, strategy) in [
            (
                "PS",
                Strategy::PsSync {
                    servers: scale.eflops_nodes().div_ceil(4),
                },
            ),
            ("MP", Strategy::ModelParallel),
        ] {
            let run = session.run_custom(strategy, Optimizations::none(), label);
            let b = &run.report.busy;
            let total: f64 = b.values().sum::<f64>().max(1e-12);
            let share = |cat: TaskCategory| b[&cat] / total * 100.0;
            table.row(vec![
                kind.name().into(),
                label.into(),
                format!("{:.0}%", share(TaskCategory::DataIo)),
                format!("{:.0}%", share(TaskCategory::Memory)),
                format!("{:.0}%", share(TaskCategory::Communication)),
                format!("{:.0}%", share(TaskCategory::Computation)),
                format!(
                    "{:.0}%",
                    run.report.exposed[&TaskCategory::Communication] * 100.0
                ),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(t: &TextTable, model: &str, strategy: &str, idx: usize) -> f64 {
        t.rows
            .iter()
            .find(|r| r[0] == model && r[1] == strategy)
            .unwrap()[idx]
            .trim_end_matches('%')
            .parse()
            .unwrap()
    }

    #[test]
    fn workload_characters_match_paper() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 6);
        // CAN is the communication-intensive workload: a larger comm share
        // than MMoE under both strategies.
        assert!(
            col(&t, "CAN", "MP", 4) > col(&t, "MMoE", "MP", 4),
            "CAN should spend a larger share communicating than MMoE"
        );
        // MMoE is the computation-intensive workload.
        assert!(
            col(&t, "MMoE", "MP", 5) > col(&t, "W&D", "MP", 5),
            "MMoE should spend a larger share computing than W&D"
        );
        assert!(
            col(&t, "MMoE", "MP", 5) > col(&t, "CAN", "MP", 5),
            "MMoE should out-compute CAN"
        );
        // W&D leans on memory more than MMoE does.
        assert!(
            col(&t, "W&D", "MP", 3) > col(&t, "MMoE", "MP", 3),
            "W&D is the memory-intensive workload"
        );
    }
}
