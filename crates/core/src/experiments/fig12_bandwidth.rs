//! Fig. 12: PCIe and NVLink bandwidth consumption while training DLRM under
//! each framework on a Gn6e node. TF-PS cannot use NVLink at all; PICASSO
//! should drive the interconnects hardest.

use crate::experiments::Scale;
use crate::report::TextTable;
use crate::{PicassoConfig, Session};
use picasso_exec::{Framework, ModelKind};

/// Runs the bandwidth comparison.
pub fn run(scale: Scale) -> TextTable {
    let mut table = TextTable::new(
        "Fig. 12 — interconnect bandwidth while training DLRM (mean GB/s)",
        &[
            "framework",
            "PCIe (GB/s)",
            "NVLink (GB/s)",
            "network (Gbps)",
        ],
    );
    let mut cfg: PicassoConfig = scale.gn6e_config();
    cfg.batch_per_executor = scale.quick_batch();
    let session = Session::new(ModelKind::Dlrm, cfg);
    for fw in Framework::BENCHMARK {
        let r = session.run_framework(fw).report;
        table.row(vec![
            fw.name().into(),
            format!("{:.2}", r.pcie_gbps),
            format!("{:.2}", r.nvlink_gbps),
            format!("{:.2}", r.network_gbps),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(t: &TextTable, fw: &str, idx: usize) -> f64 {
        t.rows.iter().find(|r| r[0] == fw).unwrap()[idx]
            .parse()
            .unwrap()
    }

    #[test]
    fn tfps_cannot_use_nvlink() {
        let t = run(Scale::Quick);
        assert_eq!(cell(&t, "TF-PS", 2), 0.0, "PS traffic bypasses NVLink");
        assert!(cell(&t, "PICASSO", 2) > 0.0, "PICASSO rides NVLink");
    }

    #[test]
    fn picasso_moves_at_least_as_much_nvlink_traffic_as_pytorch() {
        let t = run(Scale::Quick);
        assert!(cell(&t, "PICASSO", 2) >= cell(&t, "PyTorch", 2) * 0.5);
    }
}
