//! Fig. 3: distribution of categorical feature IDs across the datasets.
//!
//! Verifies that the synthetic generators reproduce the paper's skew: the
//! top 20% of IDs cover ~70% of the training data on average, up to 99%.

use crate::experiments::Scale;
use crate::report::TextTable;
use picasso_data::DatasetSpec;
use picasso_exec::run_warmup;

/// Coverage rows: analytic and empirical coverage of the top-k% of IDs.
pub fn run(scale: Scale) -> TextTable {
    let mut table = TextTable::new(
        "Fig. 3 — coverage of training data by the most frequent IDs",
        &[
            "dataset",
            "top 10%",
            "top 20% (analytic)",
            "top 20% (measured)",
            "top 50%",
        ],
    );
    let datasets = [
        DatasetSpec::criteo(),
        DatasetSpec::alibaba(),
        DatasetSpec::product1(),
        DatasetSpec::product2(),
        DatasetSpec::product3(),
    ];
    for data in datasets {
        let field = &data.fields[0];
        let vocab = field.vocab.min(scale.warmup().max_vocab);
        let sampler = picasso_data::IdSampler::new(vocab, field.dist);
        let shared = data.shared();
        let mut wcfg = scale.warmup();
        wcfg.hot_bytes = 0; // coverage only
        let warm = run_warmup(&shared, &wcfg);
        table.row(vec![
            shared.name.clone(),
            format!("{:.0}%", sampler.coverage_of_top(0.1) * 100.0),
            format!("{:.0}%", sampler.coverage_of_top(0.2) * 100.0),
            format!("{:.0}%", warm.coverage_top20 * 100.0),
            format!("{:.0}%", sampler.coverage_of_top(0.5) * 100.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_20_percent_covers_most_data() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 5);
        let mut avg = 0.0;
        for row in &t.rows {
            let cov: f64 = row[2].trim_end_matches('%').parse().unwrap();
            assert!(cov > 40.0, "{}: coverage {cov}%", row[0]);
            avg += cov / 5.0;
        }
        assert!(
            (55.0..=99.0).contains(&avg),
            "paper reports ~70% average coverage, got {avg:.0}%"
        );
    }
}
