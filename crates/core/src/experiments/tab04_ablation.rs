//! Table IV: the ablation study — full PICASSO versus PICASSO with each
//! optimization removed, on the three industrial workloads.

use crate::experiments::Scale;
use crate::report::{si, TextTable};
use crate::{PicassoConfig, Session};
use picasso_exec::{ModelKind, Optimizations, Strategy, TrainingReport};

/// The ablation rows of one model.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Configuration label.
    pub label: String,
    /// The run's report.
    pub report: TrainingReport,
}

/// Runs the ablation for one model.
pub fn ablate(kind: ModelKind, scale: Scale) -> Vec<AblationRow> {
    let mut cfg: PicassoConfig = scale.eflops_config();
    cfg.batch_per_executor = scale.quick_batch();
    let session = Session::new(kind, cfg);
    [
        ("PICASSO", Optimizations::all()),
        ("w/o Packing", Optimizations::without_packing()),
        ("w/o Interleaving", Optimizations::without_interleaving()),
        ("w/o Caching", Optimizations::without_caching()),
    ]
    .into_iter()
    .map(|(label, o)| AblationRow {
        label: label.into(),
        report: session.run_custom(Strategy::Hybrid, o, label).report,
    })
    .collect()
}

/// Runs the full Table IV.
pub fn run(scale: Scale) -> TextTable {
    let mut table = TextTable::new(
        "Tab. IV — ablation study",
        &[
            "model",
            "config",
            "IPS",
            "PCIe (GB/s)",
            "Comm (Gbps)",
            "SM util (%)",
        ],
    );
    for kind in [ModelKind::WideDeep, ModelKind::Can, ModelKind::MMoe] {
        for row in ablate(kind, scale) {
            table.row(vec![
                kind.name().into(),
                row.label.clone(),
                si(row.report.ips_per_node),
                format!("{:.2}", row.report.pcie_gbps),
                format!("{:.2}", row.report.network_gbps),
                format!("{:.0}", row.report.sm_util_pct),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_removed_optimization_costs_throughput() {
        // Packing and interleaving must pay off on every workload. Caching
        // is checked on the heavily skewed CAN workload; on flat-skew W&D it
        // is break-even in this reproduction (the paper's Tab. VI shows the
        // same saturation effect), so its row gets a loose tolerance.
        for kind in [ModelKind::WideDeep, ModelKind::Can, ModelKind::MMoe] {
            let rows = ablate(kind, Scale::Quick);
            let full = rows[0].report.ips_per_node;
            for row in &rows[1..3] {
                assert!(
                    row.report.ips_per_node < full,
                    "{}: {} {} should not beat full {full}",
                    kind.name(),
                    row.label,
                    row.report.ips_per_node
                );
            }
            let caching_tolerance = if kind == ModelKind::Can { 1.0 } else { 1.06 };
            assert!(
                rows[3].report.ips_per_node <= full * caching_tolerance,
                "{}: w/o caching {} vs full {full}",
                kind.name(),
                rows[3].report.ips_per_node
            );
        }
    }

    #[test]
    fn removing_interleaving_or_packing_costs_real_throughput() {
        // Paper: w/o interleaving costs 29-48%, w/o packing 12-30%.
        for kind in [ModelKind::WideDeep, ModelKind::Can] {
            let rows = ablate(kind, Scale::Quick);
            let full = rows[0].report.ips_per_node;
            let wo_packing = rows[1].report.ips_per_node;
            let wo_interleaving = rows[2].report.ips_per_node;
            assert!(
                wo_interleaving < full * 0.95,
                "{}: removing interleaving should cost >=5%: {wo_interleaving} vs {full}",
                kind.name()
            );
            assert!(
                wo_packing < full,
                "{}: removing packing should cost throughput",
                kind.name()
            );
        }
    }
}
