//! The experiment suite: one module per table/figure of the paper's
//! evaluation (§IV, §V).
//!
//! Every module exposes `run(scale) -> TextTable` (plus structured output
//! types where callers need the numbers). `Scale::Quick` shrinks cluster
//! sizes and warm-up volumes so Criterion benches and CI stay fast;
//! `Scale::Full` reproduces the paper's cluster shapes.

use crate::config::PicassoConfig;
use picasso_exec::WarmupConfig;
use picasso_sim::MachineSpec;

pub mod fig01_util_trend;
pub mod fig03_id_cdf;
pub mod fig05_breakdown;
pub mod fig10_walltime;
pub mod fig11_sm_cdf;
pub mod fig12_bandwidth;
pub mod fig13_ips;
pub mod fig14_groups;
pub mod fig15_scaling;
pub mod tab03_auc;
pub mod tab04_ablation;
pub mod tab05_opcount;
pub mod tab06_cache;
pub mod tab07_zoo;
pub mod tab08_fields;
pub mod tab09_production;
pub mod tab10_scale;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small clusters / few iterations: for benches and tests.
    Quick,
    /// Paper-shaped clusters (16 EFLOPS nodes, 128-worker scaling sweep).
    Full,
}

impl Scale {
    /// The EFLOPS cluster size used by the system-design evaluation
    /// (the paper uses 16 nodes).
    pub fn eflops_nodes(self) -> usize {
        match self {
            Scale::Quick => 4,
            Scale::Full => 16,
        }
    }

    /// Iterations simulated per run.
    pub fn iterations(self) -> usize {
        match self {
            Scale::Quick => 3,
            Scale::Full => 6,
        }
    }

    /// Scaling-sweep worker counts (Fig. 15 goes to 128).
    pub fn scaling_workers(self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![1, 2, 4, 8],
            Scale::Full => vec![1, 2, 4, 8, 16, 32, 64, 128],
        }
    }

    /// Warm-up measurement configuration.
    pub fn warmup(self) -> WarmupConfig {
        match self {
            Scale::Quick => WarmupConfig {
                batches: 4,
                batch_size: 256,
                max_vocab: 2_000,
                hot_bytes: 1 << 26,
                seed: 11,
            },
            Scale::Full => WarmupConfig {
                batches: 8,
                batch_size: 1024,
                max_vocab: 20_000,
                hot_bytes: 1 << 30,
                seed: 11,
            },
        }
    }

    /// Base config on the EFLOPS cluster at this scale.
    pub fn eflops_config(self) -> PicassoConfig {
        PicassoConfig {
            machines: self.eflops_nodes(),
            machine: MachineSpec::eflops(),
            iterations: self.iterations(),
            warmup: self.warmup(),
            ..PicassoConfig::default()
        }
    }

    /// Base config on one Gn6e node (the public-benchmark testbed).
    pub fn gn6e_config(self) -> PicassoConfig {
        PicassoConfig {
            machines: 1,
            machine: MachineSpec::gn6e(),
            iterations: self.iterations(),
            warmup: self.warmup(),
            ..PicassoConfig::default()
        }
    }

    /// Per-executor batch cap for the quick scale (keeps simulated batches
    /// small where the experiment fixes its own batch).
    pub fn quick_batch(self) -> Option<usize> {
        match self {
            Scale::Quick => Some(8192),
            Scale::Full => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_differ() {
        assert!(Scale::Full.eflops_nodes() > Scale::Quick.eflops_nodes());
        assert_eq!(Scale::Full.scaling_workers().last(), Some(&128));
        assert!(Scale::Quick.quick_batch().is_some());
        assert!(Scale::Full.quick_batch().is_none());
    }

    #[test]
    fn configs_carry_scale() {
        let c = Scale::Quick.eflops_config();
        assert_eq!(c.machines, 4);
        assert_eq!(c.iterations, 3);
        let g = Scale::Quick.gn6e_config();
        assert_eq!(g.machines, 1);
        assert_eq!(g.machine.gpus_per_node, 8);
    }
}
