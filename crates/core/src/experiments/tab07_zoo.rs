//! Table VII: the twelve AUC-prediction models on the Product-2 dataset —
//! batch size, GPU SM utilization, and IPS, in-house XDL versus PICASSO.

use crate::experiments::Scale;
use crate::report::{pct_delta, si, TextTable};
use crate::{PicassoConfig, Session};
use picasso_data::DatasetSpec;
use picasso_exec::{Framework, ModelKind};

/// The twelve models of Table VII, in paper order.
pub const MODELS: [ModelKind; 12] = [
    ModelKind::Lr,
    ModelKind::WideDeep,
    ModelKind::TwoTowerDnn,
    ModelKind::Dlrm,
    ModelKind::Dcn,
    ModelKind::XDeepFm,
    ModelKind::Atbrg,
    ModelKind::Din,
    ModelKind::Dien,
    ModelKind::Dsin,
    ModelKind::Can,
    ModelKind::Star,
];

/// One Table VII row.
#[derive(Debug, Clone)]
pub struct ZooRow {
    /// Model name.
    pub model: &'static str,
    /// XDL batch / PICASSO batch.
    pub batch: (usize, usize),
    /// XDL SM util / PICASSO SM util (%).
    pub sm_util: (f64, f64),
    /// XDL IPS / PICASSO IPS.
    pub ips: (f64, f64),
}

/// Runs one model through both frameworks.
pub fn compare(kind: ModelKind, scale: Scale) -> ZooRow {
    let data = DatasetSpec::product2().shared();
    let mut cfg: PicassoConfig = scale.eflops_config();
    if let Some(b) = scale.quick_batch() {
        // Quick mode fixes the XDL batch and lets PICASSO auto-derive only
        // the micro-batch multiplier.
        cfg.batch_per_executor = Some(b);
    }
    let session = Session::with_dataset(kind, data.clone(), cfg);
    let xdl = session.run_framework(Framework::Xdl).report;
    // PICASSO derives its own (larger) batch when not pinned.
    let mut pcfg: PicassoConfig = scale.eflops_config();
    if let Some(b) = scale.quick_batch() {
        pcfg.batch_per_executor = Some(b * 2);
        pcfg.micro_batches = Some(2);
    }
    let picasso = Session::with_dataset(kind, data, pcfg)
        .run_framework(Framework::Picasso)
        .report;
    ZooRow {
        model: kind.name(),
        batch: (xdl.batch_per_executor, picasso.batch_per_executor),
        sm_util: (xdl.sm_util_pct, picasso.sm_util_pct),
        ips: (xdl.ips_per_node, picasso.ips_per_node),
    }
}

/// Runs the full Table VII.
pub fn run(scale: Scale) -> TextTable {
    let mut table = TextTable::new(
        "Tab. VII — model zoo on Product-2, XDL -> PICASSO",
        &["model", "batch", "SM util (%)", "IPS", "IPS gain"],
    );
    for kind in MODELS {
        let r = compare(kind, scale);
        table.row(vec![
            r.model.into(),
            format!("{} -> {}", r.batch.0, r.batch.1),
            format!("{:.0} -> {:.0}", r.sm_util.0, r.sm_util.1),
            format!("{} -> {}", si(r.ips.0), si(r.ips.1)),
            pct_delta(r.ips.1, r.ips.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picasso_improves_every_zoo_model() {
        // Spot-check a cheap subset to keep the test fast.
        for kind in [ModelKind::Lr, ModelKind::Dcn, ModelKind::Din] {
            let r = compare(kind, Scale::Quick);
            assert!(
                r.ips.1 > r.ips.0,
                "{}: PICASSO {} <= XDL {}",
                r.model,
                r.ips.1,
                r.ips.0
            );
            assert!(
                r.sm_util.1 > r.sm_util.0 * 0.9,
                "{}: SM util should not collapse ({} -> {})",
                r.model,
                r.sm_util.0,
                r.sm_util.1
            );
        }
    }
}
