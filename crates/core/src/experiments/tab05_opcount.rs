//! Table V: number of graph operations and packed embeddings, baseline
//! versus PICASSO.

use crate::experiments::Scale;
use crate::report::TextTable;
use crate::{PicassoConfig, Session};
use picasso_exec::{Framework, ModelKind};

/// Structured row for one model.
#[derive(Debug, Clone, Copy)]
pub struct OpCountRow {
    /// Baseline total operations.
    pub baseline_ops: u64,
    /// PICASSO total operations.
    pub picasso_ops: u64,
    /// Baseline embedding chains (= tables).
    pub baseline_embeddings: usize,
    /// PICASSO packed embeddings.
    pub picasso_embeddings: usize,
}

/// Computes the counts for one model.
pub fn counts(kind: ModelKind, scale: Scale) -> OpCountRow {
    let mut cfg: PicassoConfig = scale.eflops_config().machines(2);
    cfg.batch_per_executor = scale.quick_batch();
    let session = Session::new(kind, cfg);
    let base = session
        .run_framework(Framework::PicassoBase)
        .report
        .op_stats;
    let full = session.run_framework(Framework::Picasso).report.op_stats;
    OpCountRow {
        baseline_ops: base.total_ops,
        picasso_ops: full.total_ops,
        baseline_embeddings: base.packed_embeddings,
        picasso_embeddings: full.packed_embeddings,
    }
}

/// Runs the full Table V.
pub fn run(scale: Scale) -> TextTable {
    let mut table = TextTable::new(
        "Tab. V — operations and packed embeddings, baseline vs PICASSO",
        &[
            "model",
            "ops (baseline)",
            "ops (PICASSO)",
            "ratio",
            "emb (baseline)",
            "emb (PICASSO)",
        ],
    );
    for kind in [ModelKind::WideDeep, ModelKind::Can, ModelKind::MMoe] {
        let c = counts(kind, scale);
        table.row(vec![
            kind.name().into(),
            c.baseline_ops.to_string(),
            c.picasso_ops.to_string(),
            format!(
                "{:.1}%",
                c.picasso_ops as f64 / c.baseline_ops as f64 * 100.0
            ),
            c.baseline_embeddings.to_string(),
            c.picasso_embeddings.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_reduces_ops_to_a_small_fraction() {
        // Paper: 14.9% / 17.8% / 25.0% of baseline operations remain.
        for kind in [ModelKind::WideDeep, ModelKind::Can, ModelKind::MMoe] {
            let c = counts(kind, Scale::Quick);
            let ratio = c.picasso_ops as f64 / c.baseline_ops as f64;
            assert!(
                (0.02..=0.45).contains(&ratio),
                "{}: ratio {ratio:.3} outside the paper's ballpark",
                kind.name()
            );
            assert!(c.picasso_embeddings < c.baseline_embeddings / 3);
        }
    }

    #[test]
    fn baseline_embedding_counts_equal_table_counts() {
        let c = counts(ModelKind::Can, Scale::Quick);
        assert_eq!(c.baseline_embeddings, 364);
        let w = counts(ModelKind::WideDeep, Scale::Quick);
        assert_eq!(w.baseline_embeddings, 204);
        let m = counts(ModelKind::MMoe, Scale::Quick);
        assert_eq!(m.baseline_embeddings, 94);
    }
}
