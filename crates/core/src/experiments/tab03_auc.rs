//! Table III: AUC of trained models by the four training systems.
//!
//! PICASSO / PyTorch / Horovod train synchronously (differing in feasible
//! batch size); TF-PS trains asynchronously with gradient staleness. The
//! paper's observation to reproduce: synchronous training matches or
//! slightly beats async PS, so PICASSO's throughput does not cost accuracy.

use crate::experiments::Scale;
use crate::report::TextTable;
use picasso_train::{auc_datasets, train_ctr, SyncMode, TrainConfig, Variant};

/// One system's training semantics for this experiment.
#[derive(Debug, Clone, Copy)]
pub struct SystemSetup {
    /// System name.
    pub name: &'static str,
    /// Batch size (PICASSO runs the largest, as in Tab. III).
    pub batch: usize,
    /// Update semantics.
    pub mode: SyncMode,
}

/// The four systems of Table III.
pub const SYSTEMS: [SystemSetup; 4] = [
    SystemSetup {
        name: "PICASSO",
        batch: 512,
        mode: SyncMode::Synchronous,
    },
    SystemSetup {
        name: "PyTorch",
        batch: 256,
        mode: SyncMode::Synchronous,
    },
    SystemSetup {
        name: "TF-PS",
        batch: 192,
        mode: SyncMode::AsyncStale { staleness: 4 },
    },
    SystemSetup {
        name: "Horovod",
        batch: 320,
        mode: SyncMode::Synchronous,
    },
];

/// The four benchmark models and their datasets.
pub fn models() -> [(
    &'static str,
    Variant,
    std::sync::Arc<picasso_data::DatasetSpec>,
); 4] {
    [
        ("DLRM", Variant::DotDeep, auc_datasets::criteo_like()),
        ("DeepFM", Variant::DotDeep, auc_datasets::criteo_like()),
        ("DIN", Variant::Attention, auc_datasets::alibaba_like()),
        ("DIEN", Variant::Evolution, auc_datasets::alibaba_like()),
    ]
}

/// Steps trained per run at each scale.
fn steps(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 60,
        Scale::Full => 240,
    }
}

/// Runs the AUC comparison.
pub fn run(scale: Scale) -> TextTable {
    let mut table = TextTable::new(
        "Tab. III — AUC by training system (batch size in parentheses)",
        &["model", "PICASSO", "PyTorch", "TF-PS", "Horovod"],
    );
    for (name, variant, data) in models() {
        let mut row = vec![name.to_string()];
        for sys in SYSTEMS {
            let cfg = TrainConfig {
                steps: steps(scale),
                batch: sys.batch,
                mode: sys.mode,
                seed: 42,
                ..TrainConfig::default()
            };
            let out = train_ctr(variant, &data, &cfg);
            row.push(format!("{:.4} ({})", out.auc, sys.batch));
        }
        table.row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn auc_of(cell: &str) -> f64 {
        cell.split(' ').next().unwrap().parse().unwrap()
    }

    #[test]
    fn synchronous_systems_match_or_beat_async_ps() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let picasso = auc_of(&row[1]);
            let tfps = auc_of(&row[3]);
            assert!(picasso > 0.55, "{}: PICASSO AUC {picasso}", row[0]);
            assert!(
                picasso >= tfps - 0.01,
                "{}: PICASSO {picasso} vs TF-PS {tfps}",
                row[0]
            );
        }
    }
}
