//! Table IX: production-cluster comparison — average daily-task walltime,
//! GPU SM utilization, and network bandwidth, XDL versus PICASSO, over a
//! mix of daily workloads.

use crate::experiments::Scale;
use crate::report::TextTable;
use crate::{PicassoConfig, Session};
use picasso_exec::{Framework, ModelKind, TrainingReport};

/// Instances a representative daily task processes.
pub const DAILY_INSTANCES: f64 = 2e9;

/// The daily workload mix (models weighted equally).
pub const MIX: [ModelKind; 4] = [
    ModelKind::WideDeep,
    ModelKind::Can,
    ModelKind::MMoe,
    ModelKind::Din,
];

/// Aggregated production metrics for one framework.
#[derive(Debug, Clone, Copy)]
pub struct ProductionStats {
    /// Average task walltime in hours.
    pub walltime_h: f64,
    /// Average GPU SM utilization (%).
    pub sm_util: f64,
    /// Average network bandwidth (Gbps).
    pub bandwidth_gbps: f64,
}

/// Runs the mix under one framework.
pub fn measure(fw: Framework, scale: Scale) -> ProductionStats {
    let mut wall = 0.0;
    let mut util = 0.0;
    let mut bw = 0.0;
    for kind in MIX {
        let mut cfg: PicassoConfig = scale.eflops_config();
        cfg.batch_per_executor = scale.quick_batch();
        let r: TrainingReport = Session::new(kind, cfg).run_framework(fw).report;
        let cluster_ips = r.ips_per_node * r.machines as f64;
        wall += DAILY_INSTANCES / cluster_ips / 3600.0;
        util += r.sm_util_pct;
        bw += r.network_gbps;
    }
    let n = MIX.len() as f64;
    ProductionStats {
        walltime_h: wall / n,
        sm_util: util / n,
        bandwidth_gbps: bw / n,
    }
}

/// Runs Table IX.
pub fn run(scale: Scale) -> TextTable {
    let mut table = TextTable::new(
        "Tab. IX — production cluster, daily workload mix",
        &[
            "framework",
            "avg task walltime (h)",
            "GPU SM util (%)",
            "bandwidth (Gbps)",
        ],
    );
    for fw in [Framework::Xdl, Framework::Picasso] {
        let s = measure(fw, scale);
        table.row(vec![
            fw.name().into(),
            format!("{:.1}", s.walltime_h),
            format!("{:.0}", s.sm_util),
            format!("{:.2}", s.bandwidth_gbps),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picasso_cuts_daily_walltime_substantially() {
        // Paper: 8.6h -> 1.4h (~6x) with much higher utilization.
        let xdl = measure(Framework::Xdl, Scale::Quick);
        let picasso = measure(Framework::Picasso, Scale::Quick);
        let speedup = xdl.walltime_h / picasso.walltime_h;
        assert!(speedup > 2.0, "walltime speedup {speedup:.1}x too small");
        assert!(picasso.sm_util > xdl.sm_util, "utilization should rise");
    }
}
