//! Table VIII: CAN throughput while duplicating the Product-2 feature
//! fields 1x-8x, compared against the arithmetic-progression (AP)
//! prediction. PICASSO stays slightly *above* AP (packing amortizes the
//! extra fragmentary work); the PS baseline falls increasingly below it.

use crate::experiments::Scale;
use crate::report::TextTable;
use crate::{PicassoConfig, Session};
use picasso_data::DatasetSpec;
use picasso_exec::{Framework, ModelKind};

/// IPS of CAN at `multiple` copies of the field set under `fw`.
pub fn ips_at(multiple: usize, fw: Framework, scale: Scale) -> f64 {
    let data = DatasetSpec::product2_duplicated(multiple).shared();
    let mut cfg: PicassoConfig = scale.eflops_config().machines(2);
    cfg.batch_per_executor = scale.quick_batch().map(|b| b / 2);
    Session::with_dataset(ModelKind::Can, data, cfg)
        .run_framework(fw)
        .report
        .ips_per_node
}

/// Multiples swept at each scale.
pub fn multiples(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![1, 2, 3],
        Scale::Full => vec![1, 2, 3, 4, 5, 6, 7, 8],
    }
}

/// Runs Table VIII.
pub fn run(scale: Scale) -> TextTable {
    let mut table = TextTable::new(
        "Tab. VIII — CAN IPS by feature-field multiple vs arithmetic progression",
        &["framework", "multiple", "IPS", "AP", "increment"],
    );
    for fw in [Framework::Picasso, Framework::Xdl] {
        let mut base = None;
        for &m in &multiples(scale) {
            let ips = ips_at(m, fw, scale);
            let b = *base.get_or_insert(ips);
            let ap = b / m as f64;
            table.row(vec![
                fw.name().into(),
                format!("{m}x"),
                format!("{ips:.0}"),
                format!("{ap:.0}"),
                format!("{:+.1}%", (ips / ap - 1.0) * 100.0),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picasso_tracks_ap_better_than_xdl() {
        let scale = Scale::Quick;
        let m = 3;
        let p1 = ips_at(1, Framework::Picasso, scale);
        let pm = ips_at(m, Framework::Picasso, scale);
        let x1 = ips_at(1, Framework::Xdl, scale);
        let xm = ips_at(m, Framework::Xdl, scale);
        let p_ratio = pm / (p1 / m as f64);
        let x_ratio = xm / (x1 / m as f64);
        // The PS baseline is bandwidth-bound, so it tracks AP closely here;
        // PICASSO must at least stay in AP's neighbourhood rather than
        // degrade superlinearly with the field count.
        assert!(
            p_ratio > x_ratio - 0.08,
            "PICASSO vs AP {p_ratio:.3} should not trail XDL vs AP {x_ratio:.3}"
        );
        assert!(
            p_ratio > 0.9,
            "PICASSO should stay near AP, got {p_ratio:.3}"
        );
    }
}
