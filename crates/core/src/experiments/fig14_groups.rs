//! Fig. 14: training throughput as a function of the number of
//! K-interleaving groups (1-11) and D-interleaving micro-batches.

use crate::experiments::Scale;
use crate::report::{si, TextTable};
use crate::{PicassoConfig, Session};
use picasso_exec::ModelKind;

/// The models swept (they own 16 / 19 / 11 packed embeddings in the paper).
pub const WORKLOADS: [ModelKind; 3] = [ModelKind::WideDeep, ModelKind::Can, ModelKind::MMoe];

/// IPS for one model at an explicit (groups, micro-batches) point.
pub fn ips_at(kind: ModelKind, groups: usize, micro: usize, scale: Scale) -> f64 {
    let mut cfg: PicassoConfig = scale
        .eflops_config()
        .interleaving_groups(groups)
        .micro_batches(micro);
    cfg.batch_per_executor = scale.quick_batch();
    Session::new(kind, cfg).report().ips_per_node
}

/// Group counts swept at each scale.
pub fn group_sweep(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Quick => vec![1, 3, 5],
        Scale::Full => vec![1, 3, 5, 7, 9, 11],
    }
}

/// Runs the sweep: the group knob is varied with micro-batching off
/// (isolating the Fig. 8c stagger), and the micro-batch knob with a single
/// group (isolating the Fig. 8a/b pipeline), mirroring the paper's two
/// interleaving strategies.
pub fn run(scale: Scale) -> TextTable {
    let mut table = TextTable::new(
        "Fig. 14 — IPS by interleaving configuration",
        &["model", "knob", "value", "IPS"],
    );
    for kind in WORKLOADS {
        for &g in &group_sweep(scale) {
            table.row(vec![
                kind.name().into(),
                "groups".into(),
                g.to_string(),
                si(ips_at(kind, g, 1, scale)),
            ]);
        }
        for m in 1..=3 {
            table.row(vec![
                kind.name().into(),
                "micro-batches".into(),
                m.to_string(),
                si(ips_at(kind, 1, m, scale)),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaving_groups_help_the_communication_heavy_model() {
        // Paper: W&D and CAN benefit from increased interleaving — the
        // grouped stagger paces the interconnect and avoids incast.
        let one = ips_at(ModelKind::Can, 1, 1, Scale::Quick);
        let three = ips_at(ModelKind::Can, 3, 1, Scale::Quick);
        assert!(
            three >= one,
            "groups should help CAN: 1 group {one}, 3 groups {three}"
        );
    }

    #[test]
    fn micro_batches_help_the_compute_heavy_model() {
        // Paper: utilizing more micro-batches greatly improves CAN and MMoE.
        let one = ips_at(ModelKind::MMoe, 1, 1, Scale::Quick);
        let three = ips_at(ModelKind::MMoe, 1, 3, Scale::Quick);
        assert!(
            three > one * 1.02,
            "micro-batching should raise MMoE throughput: {one} -> {three}"
        );
        let can_one = ips_at(ModelKind::Can, 1, 1, Scale::Quick);
        let can_two = ips_at(ModelKind::Can, 1, 2, Scale::Quick);
        assert!(
            can_two > can_one * 1.1,
            "micro-batching should raise CAN throughput: {can_one} -> {can_two}"
        );
    }
}
