//! Fig. 13: training throughput (IPS) of the three industrial workloads
//! under the Baseline (XDL-style sync PS), the pure hybrid strategy
//! ("PICASSO(Base)") and full PICASSO, on the EFLOPS cluster.

use crate::experiments::Scale;
use crate::report::{pct_delta, si, TextTable};
use crate::{PicassoConfig, Session};
use picasso_exec::{Framework, ModelKind};

/// The industrial workloads.
pub const WORKLOADS: [ModelKind; 3] = [ModelKind::WideDeep, ModelKind::Can, ModelKind::MMoe];

/// Runs the Fig. 13 comparison.
pub fn run(scale: Scale) -> TextTable {
    let mut table = TextTable::new(
        "Fig. 13 — IPS on the EFLOPS cluster",
        &[
            "model",
            "Baseline (XDL)",
            "PICASSO(Base)",
            "PICASSO",
            "speedup vs baseline",
        ],
    );
    for kind in WORKLOADS {
        let mut cfg: PicassoConfig = scale.eflops_config();
        cfg.batch_per_executor = scale.quick_batch();
        let session = Session::new(kind, cfg);
        let xdl = session.run_framework(Framework::Xdl).report.ips_per_node;
        let base = session
            .run_framework(Framework::PicassoBase)
            .report
            .ips_per_node;
        let full = session
            .run_framework(Framework::Picasso)
            .report
            .ips_per_node;
        table.row(vec![
            kind.name().into(),
            si(xdl),
            si(base),
            si(full),
            pct_delta(full, xdl),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picasso_orders_above_base_above_xdl() {
        let t = run(Scale::Quick);
        for row in &t.rows {
            let speedup: f64 = row[4]
                .trim_start_matches('+')
                .trim_end_matches('%')
                .parse()
                .unwrap();
            assert!(speedup > 50.0, "{}: speedup {speedup}% too small", row[0]);
        }
    }
}
