//! Fig. 1: GPU utilization across the evolution of WDL models when trained
//! by the canonical PS framework.
//!
//! The paper's motivating observation: as models evolve from LR/W&D toward
//! CAN/STAR (gaining feature fields and interaction modules), accuracy
//! rises but PS-strategy GPU utilization stays low and even degrades.

use crate::experiments::Scale;
use crate::report::TextTable;
use crate::{PicassoConfig, Session};
use picasso_exec::{Framework, ModelKind};

/// The model generations of Fig. 1, oldest first.
pub const GENERATIONS: [ModelKind; 6] = [
    ModelKind::Lr,
    ModelKind::WideDeep,
    ModelKind::DeepFm,
    ModelKind::Din,
    ModelKind::Dien,
    ModelKind::Can,
];

/// Runs the Fig. 1 sweep: each generation under the PS baseline.
pub fn run(scale: Scale) -> TextTable {
    let mut table = TextTable::new(
        "Fig. 1 — GPU SM utilization of WDL generations under PS training",
        &[
            "model",
            "feature fields",
            "interaction modules",
            "GPU SM util (%)",
        ],
    );
    for kind in GENERATIONS {
        let data = kind.default_dataset().shared();
        let mut cfg: PicassoConfig = scale.eflops_config().machines(2);
        cfg.batch_per_executor = scale.quick_batch();
        let session = Session::with_dataset(kind, data.clone(), cfg);
        let run = session.run_framework(Framework::TfPs);
        table.row(vec![
            kind.name().into(),
            data.sparse_field_count().to_string(),
            run.spec.modules.len().to_string(),
            format!("{:.0}", run.report.sm_util_pct),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ps_utilization_stays_low_across_generations() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 6);
        for row in &t.rows {
            let util: f64 = row[3].parse().unwrap();
            assert!(
                util < 60.0,
                "{}: PS training should underutilize the GPU, got {util}%",
                row[0]
            );
        }
    }
}
