//! Fig. 11: CDF of GPU SM utilization while training DLRM under each
//! framework. PICASSO should have barely any low-utilization area.

use crate::experiments::Scale;
use crate::report::TextTable;
use crate::{PicassoConfig, Session};
use picasso_exec::{Framework, ModelKind, TrainingReport};

/// Raw CDFs per framework, for plotting.
pub fn cdfs(scale: Scale) -> Vec<(String, Vec<(f64, f64)>)> {
    let mut cfg: PicassoConfig = scale.gn6e_config();
    cfg.batch_per_executor = scale.quick_batch();
    let session = Session::new(ModelKind::Dlrm, cfg);
    Framework::BENCHMARK
        .iter()
        .map(|&fw| {
            let report: TrainingReport = session.run_framework(fw).report;
            (fw.name().to_string(), report.sm_util_cdf)
        })
        .collect()
}

/// Summarizes each framework's CDF (fraction of time below thresholds).
pub fn run(scale: Scale) -> TextTable {
    let mut table = TextTable::new(
        "Fig. 11 — GPU SM utilization CDF while training DLRM",
        &[
            "framework",
            "time below 10% util",
            "time below 50% util",
            "mean util",
        ],
    );
    for (name, cdf) in cdfs(scale) {
        let frac_below = |threshold: f64| -> f64 {
            cdf.iter()
                .filter(|&&(u, _)| u < threshold)
                .map(|&(_, f)| f)
                .fold(0.0, f64::max)
        };
        let mean: f64 = if cdf.is_empty() {
            0.0
        } else {
            cdf.iter().map(|&(u, _)| u).sum::<f64>() / cdf.len() as f64
        };
        table.row(vec![
            name,
            format!("{:.0}%", frac_below(10.0) * 100.0),
            format!("{:.0}%", frac_below(50.0) * 100.0),
            format!("{mean:.0}%"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picasso_has_least_low_utilization_area() {
        let t = run(Scale::Quick);
        let low = |name: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == name).unwrap()[2]
                .trim_end_matches('%')
                .parse()
                .unwrap()
        };
        assert!(
            low("PICASSO") <= low("TF-PS"),
            "PICASSO should spend less time at low utilization than TF-PS"
        );
        assert!(low("PICASSO") <= low("Horovod") + 5.0);
    }
}
