//! Fig. 10: walltime in GPU-core-hours to train the four benchmark models
//! completely under each framework (one Gn6e node, one epoch).

use crate::experiments::Scale;
use crate::report::TextTable;
use crate::{PicassoConfig, Session};
use picasso_exec::{Framework, ModelKind};

/// The benchmark models with their dataset sizes (instances per epoch).
pub fn benchmarks() -> [(ModelKind, f64); 4] {
    [
        (ModelKind::Dlrm, 4e9),
        (ModelKind::DeepFm, 4e9),
        (ModelKind::Din, 13e6),
        (ModelKind::Dien, 13e6),
    ]
}

/// Runs the walltime comparison on one Gn6e node.
pub fn run(scale: Scale) -> TextTable {
    let mut table = TextTable::new(
        "Fig. 10 — walltime (GPU core hours) to train one epoch",
        &[
            "model",
            "PICASSO",
            "PyTorch",
            "TF-PS",
            "Horovod",
            "TF-PS / PICASSO",
        ],
    );
    for (kind, instances) in benchmarks() {
        let mut cfg: PicassoConfig = scale.gn6e_config();
        cfg.batch_per_executor = scale.quick_batch();
        let session = Session::new(kind, cfg);
        let mut cells = vec![kind.name().to_string()];
        let mut hours = Vec::new();
        for fw in Framework::BENCHMARK {
            let run = session.run_framework(fw);
            let h = run.report.gpu_core_hours(instances);
            hours.push(h);
            cells.push(format!("{h:.2}"));
        }
        cells.push(format!("{:.1}x", hours[2] / hours[0]));
        table.row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picasso_is_fastest_and_tfps_slowest() {
        let t = run(Scale::Quick);
        for row in &t.rows {
            let p: f64 = row[1].parse().unwrap();
            let torch: f64 = row[2].parse().unwrap();
            let tfps: f64 = row[3].parse().unwrap();
            assert!(p <= torch, "{}: PICASSO {p} vs PyTorch {torch}", row[0]);
            assert!(tfps > p, "{}: TF-PS must be slowest", row[0]);
            // The paper reports 1.9x-10x over TF-PS.
            let speedup: f64 = row[5].trim_end_matches('x').parse().unwrap();
            assert!(speedup > 1.5, "{}: speedup {speedup}", row[0]);
        }
    }
}
