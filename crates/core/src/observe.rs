//! Run-level observability: one-call exporters for a finished training run.
//!
//! Ties the layers of the observability stack together: simulator and
//! scheduler metrics ([`picasso_exec::observe`]), per-pass accounting
//! ([`picasso_graph::PassReport`]), the Chrome trace with counter lanes,
//! the Prometheus text rendering, and the versioned JSON run report that
//! `repro --report-json` writes.

use crate::report::TextTable;
use picasso_exec::RunArtifacts;
use picasso_obs::{prometheus, ChromeTrace, MetricsRegistry, RunReport};

/// Exports everything `artifacts` recorded into `registry`: simulator task
/// and timeline metrics, scheduler throughput gauges, per-pass graph
/// accounting, and the flight recorder's occupancy/drop gauges (a post-hoc
/// tap of the executed schedule, so the run itself stays unobserved).
pub fn export_metrics(artifacts: &RunArtifacts, registry: &MetricsRegistry) {
    picasso_exec::observe::export_metrics(&artifacts.output, registry);
    for pass in &artifacts.pass_reports {
        pass.export(registry);
    }
    for (table, cache) in &artifacts.warmup.caches {
        cache.export(&format!("table{table}"), registry);
    }
    picasso_exec::flight_record(&artifacts.output, &picasso_obs::FlightConfig::default())
        .export_metrics(registry);
}

/// Builds the full Chrome trace of a run — schedule spans, hardware lanes
/// with dependency flow arrows, per-iteration frame markers, and one
/// counter lane per exported time series. Load the JSON in
/// <https://ui.perfetto.dev>.
pub fn chrome_trace(artifacts: &RunArtifacts) -> ChromeTrace {
    let registry = MetricsRegistry::new();
    export_metrics(artifacts, &registry);
    let mut trace = picasso_exec::observe::chrome_trace(&artifacts.output);
    trace.add_counter_series(&registry.snapshot());
    trace
}

/// Renders the run's metrics in the Prometheus text exposition format.
pub fn prometheus_text(artifacts: &RunArtifacts) -> String {
    let registry = MetricsRegistry::new();
    export_metrics(artifacts, &registry);
    prometheus::render(&registry.snapshot())
}

/// Builds the versioned JSON run report for an experiment: every rendered
/// table as a payload document, plus (when a run is supplied) the full
/// telemetry report, any static-analysis findings the run survived with
/// (warnings — errors abort before a report exists), and the metrics dump.
pub fn run_report(
    experiment: &str,
    scale: &str,
    tables: &[TextTable],
    artifacts: Option<&RunArtifacts>,
) -> RunReport {
    let mut report = RunReport::new(experiment, scale);
    for table in tables {
        report.push(table.to_json());
    }
    if let Some(artifacts) = artifacts {
        report.push(artifacts.report.to_json());
        if !artifacts.lint.is_empty() {
            report.push(picasso_exec::LintReport::new(artifacts.lint.clone()).to_json());
        }
        let registry = MetricsRegistry::new();
        export_metrics(artifacts, &registry);
        report.set_metrics(&registry.snapshot());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PicassoConfig;
    use crate::session::Session;
    use picasso_exec::{ModelKind, WarmupConfig};
    use picasso_obs::Json;

    fn artifacts() -> RunArtifacts {
        let config = PicassoConfig {
            iterations: 3,
            warmup: WarmupConfig {
                batches: 4,
                batch_size: 256,
                max_vocab: 1000,
                hot_bytes: 1 << 24,
                seed: 1,
            },
            batch_per_executor: Some(1024),
            ..PicassoConfig::default()
        };
        Session::new(ModelKind::Dlrm, config).run_picasso()
    }

    #[test]
    fn trace_has_spans_counters_flows_and_frames() {
        let a = artifacts();
        let trace = chrome_trace(&a);
        let doc = picasso_obs::json::parse(&trace.to_json()).unwrap();
        let events = doc.get("traceEvents").and_then(Json::items).unwrap();
        let count = |ph: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
                .count()
        };
        assert!(count("X") > 0);
        assert!(count("C") > 0);
        assert!(count("s") > 0 && count("s") == count("f"));
        assert_eq!(
            events
                .iter()
                .filter(|e| e.get("s").and_then(Json::as_str) == Some("g"))
                .count(),
            3,
            "one frame marker per iteration"
        );
    }

    #[test]
    fn prometheus_output_round_trips() {
        let a = artifacts();
        let text = prometheus_text(&a);
        let doc = picasso_obs::prometheus::parse(&text).expect("valid exposition format");
        assert!(doc
            .find("sim_tasks_total", &[("category", "computation")])
            .is_some());
        assert!(doc.find("exec_ips_per_node", &[]).is_some());
        assert!(doc
            .find("graph_pass_packing_ratio", &[("pass", "d_packing")])
            .is_some());
        assert!(doc
            .find("embedding_lookups_total", &[("outcome", "hot")])
            .is_some());
        assert!(doc.find("flight_occupancy", &[]).is_some());
        assert!(doc
            .find("flight_events_seen_total", &[("category", "task")])
            .is_some());
    }

    #[test]
    fn run_report_validates_against_the_pinned_schema() {
        let a = artifacts();
        let mut table = TextTable::new("Fig. 11", &["framework", "sm%"]);
        table.row(vec!["PICASSO".into(), "88.0".into()]);
        let report = run_report("fig11", "quick", &[table], Some(&a));
        let text = report.to_json();
        let doc = RunReport::validate(&text).expect("document validates");
        let reports = doc.get("reports").and_then(Json::items).unwrap();
        // Table + telemetry, plus a lint payload when the run carried
        // warnings (errors never get this far).
        assert!(
            reports.len() == 2 + usize::from(!a.lint.is_empty()),
            "unexpected payload count {}",
            reports.len()
        );
        assert_eq!(
            reports[0].get("kind").and_then(Json::as_str),
            Some("picasso.table")
        );
        assert_eq!(reports[1].get("model").and_then(Json::as_str), Some("DLRM"));
        if let Some(lint) = reports.get(2) {
            assert_eq!(
                lint.get("kind").and_then(Json::as_str),
                Some("picasso.lint_report")
            );
        }
        assert!(doc.get("metrics").is_some());
    }

    #[test]
    fn run_report_carries_lint_warnings() {
        // A run that survives with warnings ships them in the report.
        let config = PicassoConfig {
            iterations: 3,
            warmup: WarmupConfig {
                batches: 4,
                batch_size: 256,
                max_vocab: 1000,
                hot_bytes: 1 << 24,
                seed: 1,
            },
            batch_per_executor: Some(1024),
            // Table 9999 backs no chain -> a guaranteed
            // `plan.excluded-unknown` warning that survives the run.
            excluded_tables: vec![9999],
            ..PicassoConfig::default()
        };
        let a = Session::new(ModelKind::Dlrm, config).run_picasso();
        assert!(!a.lint.is_empty(), "expected at least one finding");
        let report = run_report("lint", "quick", &[], Some(&a));
        let doc = RunReport::validate(&report.to_json()).unwrap();
        let reports = doc.get("reports").and_then(Json::items).unwrap();
        let lint = reports
            .iter()
            .find(|r| r.get("kind").and_then(Json::as_str) == Some("picasso.lint_report"))
            .expect("lint payload present");
        assert!(
            lint.get("diagnostics")
                .and_then(Json::items)
                .is_some_and(|d| !d.is_empty()),
            "diagnostics array populated"
        );
    }

    #[test]
    fn observability_does_not_perturb_the_run() {
        // Observation-only guarantee: a run exported three ways is
        // bit-identical to a run never observed at all.
        let plain = artifacts();
        let observed = artifacts();
        let _ = chrome_trace(&observed);
        let _ = prometheus_text(&observed);
        let _ = run_report("determinism", "quick", &[], Some(&observed));
        assert_eq!(
            plain.output.result.makespan,
            observed.output.result.makespan
        );
        assert_eq!(
            plain.output.result.records.len(),
            observed.output.result.records.len()
        );
        for (a, b) in plain
            .output
            .result
            .records
            .iter()
            .zip(&observed.output.result.records)
        {
            assert_eq!(a.start, b.start);
            assert_eq!(a.end, b.end);
            assert_eq!(a.resource, b.resource);
        }
        assert_eq!(plain.report.ips_per_node, observed.report.ips_per_node);
        assert_eq!(
            plain.report.cache_hit_ratio,
            observed.report.cache_hit_ratio
        );
    }
}
