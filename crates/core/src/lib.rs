//! # picasso-core
//!
//! The PICASSO library facade: configuration, high-level training sessions,
//! text reporting, and the full experiment suite reproducing every table
//! and figure of the paper's evaluation.
//!
//! ```no_run
//! use picasso_core::{PicassoConfig, Session};
//! use picasso_core::ModelKind;
//!
//! let session = Session::new(ModelKind::Can, PicassoConfig::new().machines(16));
//! let report = session.report();
//! println!("CAN trains at {:.0} instances/sec/node", report.ips_per_node);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod experiments;
pub mod observe;
pub mod report;
pub mod session;

pub use config::PicassoConfig;
pub use experiments::Scale;
pub use report::{pct_delta, si, TextTable};
pub use session::Session;

// Re-export the component crates so downstream users need one dependency.
pub use picasso_ckpt as ckpt;
pub use picasso_data as data;
pub use picasso_embedding as embedding;
pub use picasso_exec as exec;
pub use picasso_graph as graph;
pub use picasso_models as models;
pub use picasso_obs as obs;
pub use picasso_serve as serve;
pub use picasso_sim as sim;
pub use picasso_train as train;

pub use picasso_exec::{
    Diagnostic, Framework, LintReport, ModelKind, Optimizations, PassId, PipelineConfig,
    PipelineError, Severity, Strategy, TrainError, TrainingReport,
};
