//! High-level training sessions.

use crate::config::PicassoConfig;
use picasso_data::DatasetSpec;
use picasso_exec::{Framework, ModelKind, RunArtifacts, Strategy, TrainingReport};
use std::sync::Arc;

/// A configured model + dataset + cluster, ready to run under any
/// framework.
#[derive(Debug, Clone)]
pub struct Session {
    model: ModelKind,
    data: Arc<DatasetSpec>,
    config: PicassoConfig,
}

impl Session {
    /// Creates a session for `model` on its Table II default dataset.
    pub fn new(model: ModelKind, config: PicassoConfig) -> Session {
        Session {
            data: model.default_dataset().shared(),
            model,
            config,
        }
    }

    /// Creates a session with an explicit dataset.
    pub fn with_dataset(
        model: ModelKind,
        data: Arc<DatasetSpec>,
        config: PicassoConfig,
    ) -> Session {
        Session {
            model,
            data,
            config,
        }
    }

    /// The session's dataset.
    pub fn dataset(&self) -> &Arc<DatasetSpec> {
        &self.data
    }

    /// The session's config.
    pub fn config(&self) -> &PicassoConfig {
        &self.config
    }

    /// Trains under full PICASSO.
    pub fn run_picasso(&self) -> RunArtifacts {
        picasso_exec::run(
            self.model,
            &self.data,
            Strategy::Hybrid,
            self.config.optimizations,
            "PICASSO",
            &self.config.trainer_options(),
        )
    }

    /// Trains under a named framework preset (baselines ignore the
    /// session's optimization set).
    pub fn run_framework(&self, framework: Framework) -> RunArtifacts {
        picasso_exec::train(
            self.model,
            &self.data,
            framework,
            &self.config.trainer_options(),
        )
    }

    /// Trains with an explicit strategy + optimization combination.
    pub fn run_custom(
        &self,
        strategy: Strategy,
        optimizations: picasso_exec::Optimizations,
        label: &str,
    ) -> RunArtifacts {
        picasso_exec::run(
            self.model,
            &self.data,
            strategy,
            optimizations,
            label,
            &self.config.trainer_options(),
        )
    }

    /// Convenience: just the report of a full PICASSO run.
    pub fn report(&self) -> TrainingReport {
        self.run_picasso().report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picasso_exec::WarmupConfig;

    fn quick() -> PicassoConfig {
        PicassoConfig {
            iterations: 3,
            warmup: WarmupConfig {
                batches: 4,
                batch_size: 256,
                max_vocab: 1000,
                hot_bytes: 1 << 24,
                seed: 1,
            },
            batch_per_executor: Some(1024),
            ..PicassoConfig::default()
        }
    }

    #[test]
    fn session_runs_picasso_and_baseline() {
        let s = Session::new(ModelKind::Dlrm, quick());
        let p = s.run_picasso();
        let b = s.run_framework(Framework::TfPs);
        assert!(p.report.ips_per_node > b.report.ips_per_node);
        assert_eq!(p.report.model, "DLRM");
    }

    #[test]
    fn session_respects_custom_dataset() {
        let data = DatasetSpec::product1().shared();
        let s = Session::with_dataset(ModelKind::Lr, data, quick());
        assert_eq!(s.dataset().name, "product-1");
        let r = s.report();
        assert!(r.ips_per_node > 0.0);
    }
}
