//! High-level training sessions.

use crate::config::PicassoConfig;
use picasso_data::DatasetSpec;
use picasso_exec::{Framework, ModelKind, RunArtifacts, Strategy, TrainError, TrainingReport};
use std::sync::Arc;

/// A configured model + dataset + cluster, ready to run under any
/// framework.
#[derive(Debug, Clone)]
pub struct Session {
    model: ModelKind,
    data: Arc<DatasetSpec>,
    config: PicassoConfig,
}

impl Session {
    /// Creates a session for `model` on its Table II default dataset.
    pub fn new(model: ModelKind, config: PicassoConfig) -> Session {
        Session {
            data: model.default_dataset().shared(),
            model,
            config,
        }
    }

    /// Creates a session with an explicit dataset.
    pub fn with_dataset(
        model: ModelKind,
        data: Arc<DatasetSpec>,
        config: PicassoConfig,
    ) -> Session {
        Session {
            model,
            data,
            config,
        }
    }

    /// The session's dataset.
    pub fn dataset(&self) -> &Arc<DatasetSpec> {
        &self.data
    }

    /// The session's config.
    pub fn config(&self) -> &PicassoConfig {
        &self.config
    }

    /// Trains under full PICASSO, surfacing pipeline-validation and
    /// graph-lowering failures instead of panicking.
    pub fn try_run_picasso(&self) -> Result<RunArtifacts, TrainError> {
        picasso_exec::run(
            self.model,
            &self.data,
            Strategy::Hybrid,
            self.config.optimizations.clone(),
            "PICASSO",
            &self.config.trainer_options(),
        )
    }

    /// Trains under full PICASSO.
    ///
    /// Panics on an invalid pipeline or task graph; use
    /// [`Session::try_run_picasso`] to handle those as errors.
    pub fn run_picasso(&self) -> RunArtifacts {
        self.try_run_picasso()
            .unwrap_or_else(|e| panic!("PICASSO run failed: {e}"))
    }

    /// Trains under a named framework preset (baselines ignore the
    /// session's optimization pipeline), surfacing failures as errors.
    pub fn try_run_framework(&self, framework: Framework) -> Result<RunArtifacts, TrainError> {
        picasso_exec::train(
            self.model,
            &self.data,
            framework,
            &self.config.trainer_options(),
        )
    }

    /// Trains under a named framework preset (baselines ignore the
    /// session's optimization pipeline).
    ///
    /// Panics on an invalid pipeline or task graph; use
    /// [`Session::try_run_framework`] to handle those as errors.
    pub fn run_framework(&self, framework: Framework) -> RunArtifacts {
        self.try_run_framework(framework)
            .unwrap_or_else(|e| panic!("{} run failed: {e}", framework.name()))
    }

    /// Trains with an explicit strategy + pipeline combination, surfacing
    /// failures as errors.
    pub fn try_run_custom(
        &self,
        strategy: Strategy,
        optimizations: picasso_exec::Optimizations,
        label: &str,
    ) -> Result<RunArtifacts, TrainError> {
        picasso_exec::run(
            self.model,
            &self.data,
            strategy,
            optimizations,
            label,
            &self.config.trainer_options(),
        )
    }

    /// Runs the static analyzer over the session's planned PICASSO run
    /// without simulating: spec, plan, and stage surfaces, all severities.
    pub fn try_lint(&self) -> Result<Vec<picasso_exec::Diagnostic>, TrainError> {
        picasso_exec::lint(
            self.model,
            &self.data,
            Strategy::Hybrid,
            self.config.optimizations.clone(),
            &self.config.trainer_options(),
        )
    }

    /// Runs the static analyzer over the session's planned PICASSO run.
    ///
    /// Panics on an invalid pipeline; use [`Session::try_lint`] to handle
    /// that as an error.
    pub fn lint(&self) -> Vec<picasso_exec::Diagnostic> {
        self.try_lint()
            .unwrap_or_else(|e| panic!("lint failed: {e}"))
    }

    /// Trains with an explicit strategy + pipeline combination.
    ///
    /// Panics on an invalid pipeline or task graph; use
    /// [`Session::try_run_custom`] to handle those as errors.
    pub fn run_custom(
        &self,
        strategy: Strategy,
        optimizations: picasso_exec::Optimizations,
        label: &str,
    ) -> RunArtifacts {
        self.try_run_custom(strategy, optimizations, label)
            .unwrap_or_else(|e| panic!("{label} run failed: {e}"))
    }

    /// Convenience: just the report of a full PICASSO run.
    pub fn report(&self) -> TrainingReport {
        self.run_picasso().report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picasso_exec::WarmupConfig;

    fn quick() -> PicassoConfig {
        PicassoConfig {
            iterations: 3,
            warmup: WarmupConfig {
                batches: 4,
                batch_size: 256,
                max_vocab: 1000,
                hot_bytes: 1 << 24,
                seed: 1,
            },
            batch_per_executor: Some(1024),
            ..PicassoConfig::default()
        }
    }

    #[test]
    fn session_runs_picasso_and_baseline() {
        let s = Session::new(ModelKind::Dlrm, quick());
        let p = s.run_picasso();
        let b = s.run_framework(Framework::TfPs);
        assert!(p.report.ips_per_node > b.report.ips_per_node);
        assert_eq!(p.report.model, "DLRM");
    }

    #[test]
    fn invalid_pipelines_return_errors_instead_of_reports() {
        use picasso_exec::{Optimizations, PassId, Strategy, TrainError};
        let s = Session::new(ModelKind::Dlrm, quick());
        let bad = Optimizations::new(vec![PassId::Caching, PassId::Caching]);
        let err = s.try_run_custom(Strategy::Hybrid, bad, "dup").unwrap_err();
        assert!(matches!(err, TrainError::Pipeline(_)));
        assert!(s.try_run_picasso().is_ok());
    }

    #[test]
    fn lint_surfaces_cycles_the_run_would_reject() {
        use picasso_exec::{Optimizations, Severity};
        // Packing disabled so DLRM keeps all 26 chains and the 3 requested
        // groups all exist (a declared dep on a missing group is ignored).
        let mut cfg = quick()
            .optimizations(Optimizations::without_packing())
            .interleaving_groups(3);
        cfg.group_deps = vec![(2, 0)];
        let s = Session::new(ModelKind::Dlrm, cfg);
        let diags = s.lint();
        assert!(diags.iter().any(|d| d.rule == "stage.dependency-cycle"));
        let err = s.try_run_picasso().unwrap_err();
        assert!(matches!(err, TrainError::Lint(_)));
        // A healthy session lints clean of errors.
        let clean = Session::new(ModelKind::Dlrm, quick()).lint();
        assert!(
            clean.iter().all(|d| d.severity < Severity::Error),
            "{clean:?}"
        );
    }

    #[test]
    fn session_respects_custom_dataset() {
        let data = DatasetSpec::product1().shared();
        let s = Session::with_dataset(ModelKind::Lr, data, quick());
        assert_eq!(s.dataset().name, "product-1");
        let r = s.report();
        assert!(r.ips_per_node > 0.0);
    }
}
