//! PICASSO configuration: the user-facing knobs of §III.

use picasso_exec::{Optimizations, TrainerOptions, WarmupConfig};
use picasso_sim::MachineSpec;

/// Builder-style configuration of a PICASSO training session.
#[derive(Debug, Clone)]
pub struct PicassoConfig {
    /// The optimization pass pipeline to apply.
    pub optimizations: Optimizations,
    /// Hot-storage budget in bytes (HybridHash).
    pub hot_bytes: u64,
    /// Explicit K-interleaving group count (None = Eq. 3 auto).
    pub groups: Option<usize>,
    /// Explicit micro-batch count (None = heuristic).
    pub micro_batches: Option<usize>,
    /// Explicit per-executor batch (None = Eq. 2 auto).
    pub batch_per_executor: Option<usize>,
    /// Worker machines.
    pub machines: usize,
    /// Machine preset.
    pub machine: MachineSpec,
    /// Iterations to simulate per run.
    pub iterations: usize,
    /// Warm-up measurement configuration.
    pub warmup: WarmupConfig,
    /// Embedding tables excluded from K-interleaving ordering (the paper's
    /// *preset excluded embedding*).
    pub excluded_tables: Vec<usize>,
    /// Half-precision quantized communication (precision-lossy extension).
    pub quantized_comm: bool,
    /// Extra control-dependency edges between K-interleaving groups
    /// (layered over the implicit Fig. 8c stagger). Self/backward edges
    /// are rejected by static analysis before scheduling.
    pub group_deps: Vec<(u32, u32)>,
}

impl Default for PicassoConfig {
    fn default() -> Self {
        PicassoConfig {
            optimizations: Optimizations::all(),
            hot_bytes: 1 << 30,
            groups: None,
            micro_batches: None,
            batch_per_executor: None,
            machines: 1,
            machine: MachineSpec::eflops(),
            iterations: 6,
            warmup: WarmupConfig::default(),
            excluded_tables: Vec::new(),
            quantized_comm: false,
            group_deps: Vec::new(),
        }
    }
}

impl PicassoConfig {
    /// Full optimizations on one EFLOPS node.
    pub fn new() -> Self {
        PicassoConfig::default()
    }

    /// Sets the worker machine count.
    pub fn machines(mut self, machines: usize) -> Self {
        assert!(machines >= 1);
        self.machines = machines;
        self
    }

    /// Sets the machine preset.
    pub fn machine(mut self, machine: MachineSpec) -> Self {
        self.machine = machine;
        self
    }

    /// Sets the Hot-storage budget.
    pub fn hot_storage(mut self, bytes: u64) -> Self {
        self.hot_bytes = bytes;
        self
    }

    /// Overrides the K-interleaving group count.
    pub fn interleaving_groups(mut self, groups: usize) -> Self {
        self.groups = Some(groups);
        self
    }

    /// Overrides the micro-batch count.
    pub fn micro_batches(mut self, micro: usize) -> Self {
        self.micro_batches = Some(micro);
        self
    }

    /// Fixes the per-executor batch size.
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch_per_executor = Some(batch);
        self
    }

    /// Replaces the optimization pipeline (e.g. for ablations).
    pub fn optimizations(mut self, o: Optimizations) -> Self {
        self.optimizations = o;
        self
    }

    /// Excludes tables from K-interleaving control dependencies.
    pub fn exclude_tables(mut self, tables: Vec<usize>) -> Self {
        self.excluded_tables = tables;
        self
    }

    /// Enables half-precision quantized communication.
    pub fn quantized_communication(mut self, on: bool) -> Self {
        self.quantized_comm = on;
        self
    }

    /// Declares extra control-dependency edges between K-interleaving
    /// groups.
    pub fn group_dependencies(mut self, deps: Vec<(u32, u32)>) -> Self {
        self.group_deps = deps;
        self
    }

    /// Sets iterations simulated per run.
    pub fn iterations(mut self, iterations: usize) -> Self {
        assert!(iterations >= 1);
        self.iterations = iterations;
        self
    }

    /// Converts to the executor's option struct.
    pub fn trainer_options(&self) -> TrainerOptions {
        TrainerOptions {
            machines: self.machines,
            machine: self.machine.clone(),
            iterations: self.iterations,
            batch_per_executor: self.batch_per_executor,
            micro_batches: self.micro_batches,
            groups: self.groups,
            hot_bytes: self.hot_bytes,
            warmup: self.warmup.clone(),
            max_batch: 65_536,
            excluded_tables: self.excluded_tables.clone(),
            quantized_comm: self.quantized_comm,
            group_deps: self.group_deps.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let c = PicassoConfig::new()
            .machines(16)
            .hot_storage(2 << 30)
            .interleaving_groups(5)
            .micro_batches(3)
            .batch(4096)
            .iterations(4);
        assert_eq!(c.machines, 16);
        assert_eq!(c.hot_bytes, 2 << 30);
        let o = c.trainer_options();
        assert_eq!(o.groups, Some(5));
        assert_eq!(o.micro_batches, Some(3));
        assert_eq!(o.batch_per_executor, Some(4096));
        assert_eq!(o.iterations, 4);
    }

    #[test]
    fn extension_knobs_flow_through() {
        let c = PicassoConfig::new()
            .exclude_tables(vec![3, 7])
            .quantized_communication(true);
        let o = c.trainer_options();
        assert_eq!(o.excluded_tables, vec![3, 7]);
        assert!(o.quantized_comm);
    }

    #[test]
    fn defaults_enable_everything() {
        use picasso_exec::PassId;
        let c = PicassoConfig::default();
        assert!(c.optimizations.enables(PassId::DPacking));
        assert!(c.optimizations.enables(PassId::Caching));
        assert!(c.batch_per_executor.is_none());
    }
}
