//! Causal performance analysis over an executed task DAG.
//!
//! The scheduler records every executed stage as a [`DagNode`]: its true
//! dependency edges plus the start/end timestamps the engine observed. From
//! that executed DAG this module reconstructs *why the run took as long as
//! it did*:
//!
//! * [`ExecutedDag::analyze`] — the dependency-critical path with per-node
//!   slack, the *achieved* overlap ratio per resource pair (e.g.
//!   communication hidden under compute) against the pass pipeline's
//!   planned interleaving ([`PlannedInterleaving`]), and per-lane idle-gap
//!   attribution (which upstream node starved each gap).
//! * [`ExecutedDag::encode`] / [`ExecutedDag::decode`] — an exact binary
//!   round-trip of the event log (ids, edges, timestamps) with an FNV-1a
//!   checksum, so logs can be archived next to checkpoints and diffed.
//!
//! Everything here is pure: analysis consumes immutable node records and
//! never feeds back into scheduling, preserving the observation-only
//! guarantee of the rest of the crate.

use crate::json::Json;
use std::collections::BTreeMap;
use std::fmt;

/// One executed task: a node of the causal DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagNode {
    /// Stable node id (the engine task id).
    pub id: u64,
    /// Operator label, e.g. `Shuffle` or `launch:Gather`.
    pub op: String,
    /// Concrete resource lane the node ran on, e.g. `node0/gpu-sm`.
    pub lane: String,
    /// Hardware class of the lane, e.g. `gpu-sm` or `network`.
    pub res_kind: String,
    /// Attribution category, e.g. `communication` or `computation`.
    pub category: String,
    /// Observed start, simulated nanoseconds.
    pub start_ns: u64,
    /// Observed completion, simulated nanoseconds.
    pub end_ns: u64,
    /// Ids of the nodes this one waited for (true dependency edges).
    pub deps: Vec<u64>,
}

impl DagNode {
    /// Node duration in nanoseconds (zero when timestamps are inverted).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// The executed DAG of one run: every node with its edges and timestamps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutedDag {
    /// Executed nodes, in creation order.
    pub nodes: Vec<DagNode>,
}

/// Planned interleaving the pass pipeline set up: `micro_batches`
/// (Eq. 2 D-Interleaving) times `groups` (Eq. 3 K-Interleaving) slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedInterleaving {
    /// D-Interleaving micro-batches in effect.
    pub micro_batches: usize,
    /// K-Interleaving groups in effect.
    pub groups: usize,
}

impl PlannedInterleaving {
    /// Fraction of non-compute work the plan *could* hide: with `D x K`
    /// interleaving slots, all but one slot's worth of communication can
    /// run under another slot's compute, so the planned overlap is
    /// `1 - 1/(D*K)` (zero for the unoptimized single-slot graph).
    pub fn planned_overlap(&self) -> f64 {
        let slots = (self.micro_batches.max(1) * self.groups.max(1)) as f64;
        1.0 - 1.0 / slots
    }
}

/// Selects the "hidden" and "hiding" node sets of one overlap pair. A node
/// matches a side when its category is listed in `*_categories` or its
/// resource kind is listed in `*_kinds`.
#[derive(Debug, Clone, Default)]
pub struct PairSpec {
    /// Pair name, e.g. `comm_under_compute`.
    pub name: String,
    /// Categories of the work that should be hidden.
    pub under_categories: Vec<String>,
    /// Resource kinds of the work that should be hidden.
    pub under_kinds: Vec<String>,
    /// Categories of the work that does the hiding.
    pub over_categories: Vec<String>,
    /// Resource kinds of the work that does the hiding.
    pub over_kinds: Vec<String>,
}

/// Achieved-vs-planned overlap of one resource pair.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapReport {
    /// Pair name from the [`PairSpec`].
    pub pair: String,
    /// Fraction of the hidden side's busy time that ran concurrently with
    /// the hiding side (1.0 when the hidden side did no work at all).
    pub achieved: f64,
    /// The pass pipeline's planned overlap for comparison.
    pub planned: f64,
    /// Busy nanoseconds of the hidden side.
    pub under_busy_ns: u64,
    /// Nanoseconds of the hidden side that ran under the hiding side.
    pub hidden_ns: u64,
}

/// One idle gap on a lane, attributed to the upstream node that starved it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdleGap {
    /// Gap start, nanoseconds.
    pub start_ns: u64,
    /// Gap end (the starved node's start), nanoseconds.
    pub end_ns: u64,
    /// Node whose start ended the gap.
    pub starved: u64,
    /// The dependency the starved node was waiting for, when it had one.
    pub blocker: Option<u64>,
}

/// Busy/idle profile of one lane with its attributed gaps.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneIdle {
    /// Lane name.
    pub lane: String,
    /// Hardware class of the lane.
    pub res_kind: String,
    /// Busy nanoseconds (union of node intervals).
    pub busy_ns: u64,
    /// Idle nanoseconds within the makespan.
    pub idle_ns: u64,
    /// Gaps in start order, each attributed to its blocking upstream node.
    pub gaps: Vec<IdleGap>,
}

/// The full causal analysis of one executed DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct DagAnalysis {
    /// Latest completion over all nodes, nanoseconds.
    pub makespan_ns: u64,
    /// Node ids along the dependency-critical path, in execution order.
    pub critical_path: Vec<u64>,
    /// Summed duration of the critical-path nodes, nanoseconds.
    pub critical_len_ns: u64,
    /// `critical_len_ns / makespan_ns`: the fraction of the makespan
    /// explained by chained dependency work (the remainder is resource
    /// queueing and scheduling gaps).
    pub critical_path_frac: f64,
    /// Critical-path time share per category (sums to 1 when nonempty).
    pub critical_frac_by_category: Vec<(String, f64)>,
    /// Per-node slack: how much later each node could have finished without
    /// moving any dependent (dependency constraints only).
    pub slack_ns: BTreeMap<u64, u64>,
    /// Achieved overlap per requested resource pair.
    pub overlaps: Vec<OverlapReport>,
    /// Busy/idle profile and gap attribution per lane.
    pub lanes: Vec<LaneIdle>,
    /// FNV-1a digest over the critical path's `(id, start, end)` triples —
    /// bit-identical across repeated runs of a deterministic schedule.
    pub digest: u64,
}

impl DagAnalysis {
    /// The achieved overlap ratio of a pair, by name.
    pub fn overlap(&self, pair: &str) -> Option<f64> {
        self.overlaps
            .iter()
            .find(|o| o.pair == pair)
            .map(|o| o.achieved)
    }

    /// The lane with the most idle time, when any lane exists (ties break
    /// toward the lexicographically first lane, deterministically).
    pub fn dominant_idle_lane(&self) -> Option<&LaneIdle> {
        self.lanes
            .iter()
            .max_by(|a, b| a.idle_ns.cmp(&b.idle_ns).then(b.lane.cmp(&a.lane)))
    }

    /// Serializes the analysis as a JSON section. Gap lists are summarized
    /// per lane (count, longest, and nanoseconds attributed per blocking
    /// lane) to keep the document readable.
    pub fn to_json(&self, dag: &ExecutedDag) -> Json {
        let lane_of: BTreeMap<u64, &str> =
            dag.nodes.iter().map(|n| (n.id, n.lane.as_str())).collect();
        let lanes = self
            .lanes
            .iter()
            .map(|l| {
                let mut starved_by: BTreeMap<String, u64> = BTreeMap::new();
                let mut longest = 0u64;
                for g in &l.gaps {
                    let width = g.end_ns.saturating_sub(g.start_ns);
                    longest = longest.max(width);
                    let who = g
                        .blocker
                        .and_then(|b| lane_of.get(&b).copied())
                        .unwrap_or("(no dependency)");
                    *starved_by.entry(who.to_string()).or_insert(0) += width;
                }
                Json::obj([
                    ("lane", Json::str(&l.lane)),
                    ("res_kind", Json::str(&l.res_kind)),
                    ("busy_ns", Json::UInt(l.busy_ns)),
                    ("idle_ns", Json::UInt(l.idle_ns)),
                    ("gap_count", Json::UInt(l.gaps.len() as u64)),
                    ("longest_gap_ns", Json::UInt(longest)),
                    (
                        "starved_by",
                        Json::Obj(
                            starved_by
                                .into_iter()
                                .map(|(k, v)| (k, Json::UInt(v)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("makespan_ns", Json::UInt(self.makespan_ns)),
            (
                "critical_path",
                Json::Arr(self.critical_path.iter().map(|&id| id.into()).collect()),
            ),
            ("critical_len_ns", Json::UInt(self.critical_len_ns)),
            ("critical_path_frac", self.critical_path_frac.into()),
            (
                "critical_frac_by_category",
                Json::Obj(
                    self.critical_frac_by_category
                        .iter()
                        .map(|(cat, frac)| (cat.clone(), Json::from(*frac)))
                        .collect(),
                ),
            ),
            (
                "overlaps",
                Json::Arr(
                    self.overlaps
                        .iter()
                        .map(|o| {
                            Json::obj([
                                ("pair", Json::str(&o.pair)),
                                ("achieved", o.achieved.into()),
                                ("planned", o.planned.into()),
                                ("under_busy_ns", Json::UInt(o.under_busy_ns)),
                                ("hidden_ns", Json::UInt(o.hidden_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("lanes", Json::Arr(lanes)),
            ("digest", Json::str(format!("{:016x}", self.digest))),
        ])
    }
}

impl ExecutedDag {
    /// Latest completion over all nodes.
    pub fn makespan_ns(&self) -> u64 {
        self.nodes.iter().map(|n| n.end_ns).max().unwrap_or(0)
    }

    /// Runs the full causal analysis: critical path + slack, achieved
    /// overlap per `pairs` entry versus `planned`, and idle-gap
    /// attribution per lane.
    pub fn analyze(&self, pairs: &[PairSpec], planned: PlannedInterleaving) -> DagAnalysis {
        let makespan_ns = self.makespan_ns();
        let by_id: BTreeMap<u64, usize> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.id, i))
            .collect();

        let critical_path = self.critical_path(&by_id);
        let critical_len_ns: u64 = critical_path
            .iter()
            .filter_map(|id| by_id.get(id))
            .map(|&i| self.nodes[i].duration_ns())
            .sum();
        let mut by_cat: BTreeMap<&str, u64> = BTreeMap::new();
        for id in &critical_path {
            if let Some(&i) = by_id.get(id) {
                let n = &self.nodes[i];
                *by_cat.entry(n.category.as_str()).or_insert(0) += n.duration_ns();
            }
        }
        let critical_frac_by_category = by_cat
            .into_iter()
            .map(|(cat, ns)| (cat.to_string(), ns as f64 / (critical_len_ns.max(1)) as f64))
            .collect();

        let mut digest = FNV_OFFSET;
        for id in &critical_path {
            if let Some(&i) = by_id.get(id) {
                let n = &self.nodes[i];
                digest = fnv1a64_words(digest, &[n.id, n.start_ns, n.end_ns]);
            }
        }

        DagAnalysis {
            makespan_ns,
            critical_len_ns,
            critical_path_frac: critical_len_ns as f64 / (makespan_ns.max(1)) as f64,
            critical_frac_by_category,
            slack_ns: self.slack(&by_id, makespan_ns),
            overlaps: pairs
                .iter()
                .map(|p| self.overlap_pair(p, planned))
                .collect(),
            lanes: self.lane_idle(&by_id, makespan_ns),
            critical_path,
            digest,
        }
    }

    /// Walks the dependency chain back from the last-finishing node,
    /// following at each step the dependency that finished last (ties break
    /// toward the smaller id, which keeps the walk deterministic).
    fn critical_path(&self, by_id: &BTreeMap<u64, usize>) -> Vec<u64> {
        let Some(mut cur) = self
            .nodes
            .iter()
            .max_by(|a, b| (a.end_ns, b.id).cmp(&(b.end_ns, a.id)))
            .map(|n| n.id)
        else {
            return Vec::new();
        };
        let mut path = vec![cur];
        // Bounded by node count: even a corrupt decoded DAG cannot loop.
        for _ in 0..self.nodes.len() {
            let Some(&i) = by_id.get(&cur) else { break };
            let next = self.nodes[i]
                .deps
                .iter()
                .filter_map(|d| by_id.get(d).map(|&j| &self.nodes[j]))
                .max_by(|a, b| (a.end_ns, b.id).cmp(&(b.end_ns, a.id)))
                .map(|n| n.id);
            match next {
                Some(id) if !path.contains(&id) => {
                    path.push(id);
                    cur = id;
                }
                _ => break,
            }
        }
        path.reverse();
        path
    }

    /// Classic CPM backward pass over dependency edges only: a node's
    /// latest finish is the smallest latest-start among its dependents
    /// (makespan for sinks); slack is `latest_finish - end`.
    fn slack(&self, by_id: &BTreeMap<u64, usize>, makespan_ns: u64) -> BTreeMap<u64, u64> {
        let mut order: Vec<usize> = (0..self.nodes.len()).collect();
        order.sort_by_key(|&i| (self.nodes[i].start_ns, self.nodes[i].id));
        let mut latest: Vec<u64> = vec![makespan_ns; self.nodes.len()];
        for &i in order.iter().rev() {
            let n = &self.nodes[i];
            let latest_start = latest[i].saturating_sub(n.duration_ns());
            for d in &n.deps {
                if let Some(&j) = by_id.get(d) {
                    latest[j] = latest[j].min(latest_start);
                }
            }
        }
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.id, latest[i].saturating_sub(n.end_ns)))
            .collect()
    }

    fn overlap_pair(&self, pair: &PairSpec, planned: PlannedInterleaving) -> OverlapReport {
        let matches = |n: &DagNode, cats: &[String], kinds: &[String]| {
            cats.iter().any(|c| c == &n.category) || kinds.iter().any(|k| k == &n.res_kind)
        };
        let spans = |cats: &[String], kinds: &[String]| {
            union(
                self.nodes
                    .iter()
                    .filter(|n| matches(n, cats, kinds) && n.end_ns > n.start_ns)
                    .map(|n| (n.start_ns, n.end_ns))
                    .collect(),
            )
        };
        let under = spans(&pair.under_categories, &pair.under_kinds);
        let over = spans(&pair.over_categories, &pair.over_kinds);
        let under_busy_ns = measure(&under);
        let hidden_ns = measure(&intersect(&under, &over));
        OverlapReport {
            pair: pair.name.clone(),
            achieved: if under_busy_ns == 0 {
                1.0
            } else {
                hidden_ns as f64 / under_busy_ns as f64
            },
            planned: planned.planned_overlap(),
            under_busy_ns,
            hidden_ns,
        }
    }

    /// Per-lane gap walk: any instant a lane sat idle before a node started
    /// is attributed to the last-finishing dependency of that node — the
    /// upstream task that starved the gap.
    fn lane_idle(&self, by_id: &BTreeMap<u64, usize>, makespan_ns: u64) -> Vec<LaneIdle> {
        let mut lanes: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            lanes.entry(n.lane.as_str()).or_default().push(i);
        }
        lanes
            .into_iter()
            .map(|(lane, mut idx)| {
                idx.sort_by_key(|&i| (self.nodes[i].start_ns, self.nodes[i].end_ns));
                let mut gaps = Vec::new();
                let mut cover_end = 0u64;
                for &i in &idx {
                    let n = &self.nodes[i];
                    if n.start_ns > cover_end {
                        let blocker = n
                            .deps
                            .iter()
                            .filter_map(|d| by_id.get(d).map(|&j| &self.nodes[j]))
                            .max_by(|a, b| (a.end_ns, b.id).cmp(&(b.end_ns, a.id)))
                            .map(|b| b.id);
                        gaps.push(IdleGap {
                            start_ns: cover_end,
                            end_ns: n.start_ns,
                            starved: n.id,
                            blocker,
                        });
                    }
                    cover_end = cover_end.max(n.end_ns);
                }
                let busy_ns = measure(&union(
                    idx.iter()
                        .map(|&i| (self.nodes[i].start_ns, self.nodes[i].end_ns))
                        .filter(|(s, e)| e > s)
                        .collect(),
                ));
                LaneIdle {
                    lane: lane.to_string(),
                    res_kind: self.nodes[idx[0]].res_kind.clone(),
                    busy_ns,
                    idle_ns: makespan_ns.saturating_sub(busy_ns),
                    gaps,
                }
            })
            .collect()
    }

    /// Serializes the log to the exact binary format [`ExecutedDag::decode`]
    /// reads back: fixed-width little-endian fields framed by a magic word
    /// and sealed with an FNV-1a checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&(self.nodes.len() as u32).to_le_bytes());
        for n in &self.nodes {
            out.extend_from_slice(&n.id.to_le_bytes());
            out.extend_from_slice(&n.start_ns.to_le_bytes());
            out.extend_from_slice(&n.end_ns.to_le_bytes());
            for s in [&n.op, &n.lane, &n.res_kind, &n.category] {
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            out.extend_from_slice(&(n.deps.len() as u32).to_le_bytes());
            for d in &n.deps {
                out.extend_from_slice(&d.to_le_bytes());
            }
        }
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parses a log produced by [`ExecutedDag::encode`]. Truncated input,
    /// trailing bytes, a bad magic word, and checksum mismatches are all
    /// rejected; allocations stay bounded by the input length so corrupt
    /// counts cannot balloon memory.
    pub fn decode(bytes: &[u8]) -> Result<ExecutedDag, DagCodecError> {
        if bytes.len() < 16 {
            return Err(DagCodecError::UnexpectedEof {
                want: 16,
                have: bytes.len(),
            });
        }
        let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
        let want_sum = u64::from_le_bytes(sum_bytes.try_into().expect("8-byte tail"));
        if fnv1a64(body) != want_sum {
            return Err(DagCodecError::Invalid("checksum mismatch".into()));
        }
        let mut d = Cursor::new(body);
        if d.u64()? != MAGIC {
            return Err(DagCodecError::Invalid("bad magic word".into()));
        }
        let count = d.u32()? as usize;
        if count > body.len() {
            return Err(DagCodecError::Invalid(format!(
                "node count {count} exceeds payload size"
            )));
        }
        let mut nodes = Vec::with_capacity(count);
        for _ in 0..count {
            let id = d.u64()?;
            let start_ns = d.u64()?;
            let end_ns = d.u64()?;
            let op = d.string()?;
            let lane = d.string()?;
            let res_kind = d.string()?;
            let category = d.string()?;
            let dep_count = d.u32()? as usize;
            if dep_count > body.len() {
                return Err(DagCodecError::Invalid(format!(
                    "dep count {dep_count} exceeds payload size"
                )));
            }
            let mut deps = Vec::with_capacity(dep_count);
            for _ in 0..dep_count {
                deps.push(d.u64()?);
            }
            nodes.push(DagNode {
                id,
                op,
                lane,
                res_kind,
                category,
                start_ns,
                end_ns,
                deps,
            });
        }
        d.finish()?;
        Ok(ExecutedDag { nodes })
    }
}

/// Decoding failure of a causal event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagCodecError {
    /// The payload ended before a field could be read.
    UnexpectedEof {
        /// Bytes the field needed.
        want: usize,
        /// Bytes that were left.
        have: usize,
    },
    /// Bytes remained after the last node was decoded.
    TrailingBytes(usize),
    /// A structural check failed (magic word, checksum, counts, UTF-8).
    Invalid(String),
}

impl fmt::Display for DagCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagCodecError::UnexpectedEof { want, have } => {
                write!(f, "unexpected EOF: wanted {want} bytes, had {have}")
            }
            DagCodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after the log"),
            DagCodecError::Invalid(why) => write!(f, "invalid causal log: {why}"),
        }
    }
}

impl std::error::Error for DagCodecError {}

const MAGIC: u64 = 0x3147_4144_4c53_4143; // "CASLDAG1", little-endian.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv1a64_words(mut h: u64, words: &[u64]) -> u64 {
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DagCodecError> {
        let have = self.bytes.len() - self.at;
        if have < n {
            return Err(DagCodecError::UnexpectedEof { want: n, have });
        }
        let out = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, DagCodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4B")))
    }

    fn u64(&mut self) -> Result<u64, DagCodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }

    fn string(&mut self) -> Result<String, DagCodecError> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| DagCodecError::Invalid("non-UTF-8 string".into()))
    }

    fn finish(&self) -> Result<(), DagCodecError> {
        match self.bytes.len() - self.at {
            0 => Ok(()),
            n => Err(DagCodecError::TrailingBytes(n)),
        }
    }
}

/// Sorts and merges half-open spans into a disjoint union.
fn union(mut spans: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    spans.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(spans.len());
    for (s, e) in spans {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Total width of disjoint spans.
fn measure(spans: &[(u64, u64)]) -> u64 {
    spans.iter().map(|(s, e)| e - s).sum()
}

/// Intersection of two disjoint sorted span lists (two-pointer walk).
fn intersect(a: &[(u64, u64)], b: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        let s = a[i].0.max(b[j].0);
        let e = a[i].1.min(b[j].1);
        if s < e {
            out.push((s, e));
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: u64, lane: &str, cat: &str, start: u64, end: u64, deps: &[u64]) -> DagNode {
        DagNode {
            id,
            op: format!("op{id}"),
            lane: lane.to_string(),
            res_kind: lane.split('/').next_back().unwrap_or(lane).to_string(),
            category: cat.to_string(),
            start_ns: start,
            end_ns: end,
            deps: deps.to_vec(),
        }
    }

    fn pairs() -> Vec<PairSpec> {
        vec![PairSpec {
            name: "comm_under_compute".into(),
            under_categories: vec!["communication".into()],
            over_categories: vec!["computation".into()],
            ..PairSpec::default()
        }]
    }

    fn planned(d: usize, k: usize) -> PlannedInterleaving {
        PlannedInterleaving {
            micro_batches: d,
            groups: k,
        }
    }

    /// A(0-10 gpu) -> B(10-30 nic comm) -> C(30-40 gpu); D(0-40 gpu2) is
    /// independent compute that fully covers B.
    fn diamond() -> ExecutedDag {
        ExecutedDag {
            nodes: vec![
                node(0, "n0/gpu-sm", "computation", 0, 10, &[]),
                node(1, "n0/network", "communication", 10, 30, &[0]),
                node(2, "n0/gpu-sm", "computation", 30, 40, &[1]),
                node(3, "n1/gpu-sm", "computation", 0, 40, &[]),
            ],
        }
    }

    #[test]
    fn critical_path_follows_last_finishing_dependencies() {
        let a = diamond().analyze(&pairs(), planned(1, 1));
        assert_eq!(a.makespan_ns, 40);
        // Ties at end=40 break toward the smaller id: node 2's chain wins.
        assert_eq!(a.critical_path, vec![0, 1, 2]);
        assert_eq!(a.critical_len_ns, 40);
        assert!((a.critical_path_frac - 1.0).abs() < 1e-12);
        let by_cat: BTreeMap<_, _> = a.critical_frac_by_category.iter().cloned().collect();
        assert!((by_cat["communication"] - 0.5).abs() < 1e-12);
        assert!((by_cat["computation"] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn slack_is_zero_on_the_critical_path_and_positive_off_it() {
        let a = diamond().analyze(&pairs(), planned(1, 1));
        assert_eq!(a.slack_ns[&0], 0);
        assert_eq!(a.slack_ns[&1], 0);
        assert_eq!(a.slack_ns[&2], 0);
        // Node 3 ends exactly at the makespan: no slack either.
        assert_eq!(a.slack_ns[&3], 0);
        // Shrink node 3 so it ends early: it gains exactly the difference.
        let mut dag = diamond();
        dag.nodes[3].end_ns = 25;
        let a = dag.analyze(&pairs(), planned(1, 1));
        assert_eq!(a.slack_ns[&3], 15);
    }

    #[test]
    fn overlap_ratio_measures_hidden_communication() {
        let a = diamond().analyze(&pairs(), planned(2, 3));
        let o = &a.overlaps[0];
        // B (20 ns of comm) is fully covered by D's compute.
        assert_eq!(o.under_busy_ns, 20);
        assert_eq!(o.hidden_ns, 20);
        assert!((o.achieved - 1.0).abs() < 1e-12);
        assert!((o.planned - (1.0 - 1.0 / 6.0)).abs() < 1e-12);

        // Remove the covering compute: nothing hides the transfer.
        let mut dag = diamond();
        dag.nodes.remove(3);
        let a = dag.analyze(&pairs(), planned(1, 1));
        assert_eq!(a.overlaps[0].achieved, 0.0);
        assert_eq!(a.overlaps[0].planned, 0.0);

        // No communication at all: trivially fully hidden.
        let dag = ExecutedDag {
            nodes: vec![node(0, "g", "computation", 0, 10, &[])],
        };
        assert_eq!(
            dag.analyze(&pairs(), planned(1, 1)).overlaps[0].achieved,
            1.0
        );
    }

    #[test]
    fn idle_gaps_are_attributed_to_the_blocking_upstream_node() {
        let a = diamond().analyze(&pairs(), planned(1, 1));
        let gpu = a.lanes.iter().find(|l| l.lane == "n0/gpu-sm").unwrap();
        assert_eq!(gpu.busy_ns, 20);
        assert_eq!(gpu.idle_ns, 20);
        assert_eq!(gpu.gaps.len(), 1);
        let gap = &gpu.gaps[0];
        assert_eq!((gap.start_ns, gap.end_ns), (10, 30));
        assert_eq!(gap.starved, 2);
        assert_eq!(gap.blocker, Some(1), "the comm transfer starved the GPU");
        // The fully busy lane has no gaps and no idle time.
        let other = a.lanes.iter().find(|l| l.lane == "n1/gpu-sm").unwrap();
        assert!(other.gaps.is_empty());
        assert_eq!(other.idle_ns, 0);
        // n0/gpu-sm and n0/network tie at 20 ns idle; the lexicographic
        // tie-break picks the gpu lane deterministically.
        assert_eq!(a.dominant_idle_lane().unwrap().lane, "n0/gpu-sm");
    }

    #[test]
    fn digest_is_deterministic_and_sensitive_to_the_path() {
        let a1 = diamond().analyze(&pairs(), planned(1, 1));
        let a2 = diamond().analyze(&pairs(), planned(4, 2));
        assert_eq!(a1.digest, a2.digest, "planned factors do not move the path");
        let mut dag = diamond();
        dag.nodes[1].end_ns = 31;
        dag.nodes[2].start_ns = 31;
        let a3 = dag.analyze(&pairs(), planned(1, 1));
        assert_ne!(a1.digest, a3.digest);
    }

    #[test]
    fn empty_dag_analyzes_to_zeroes() {
        let a = ExecutedDag::default().analyze(&pairs(), planned(1, 1));
        assert_eq!(a.makespan_ns, 0);
        assert!(a.critical_path.is_empty());
        assert_eq!(a.critical_path_frac, 0.0);
        assert!(a.lanes.is_empty());
    }

    #[test]
    fn codec_round_trips_and_rejects_corruption() {
        let dag = diamond();
        let bytes = dag.encode();
        assert_eq!(ExecutedDag::decode(&bytes).unwrap(), dag);
        // Truncation anywhere fails.
        for cut in [0, 7, 15, bytes.len() / 2, bytes.len() - 1] {
            assert!(ExecutedDag::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Trailing bytes fail (checksum breaks first, which is fine).
        let mut long = bytes.clone();
        long.push(0);
        assert!(ExecutedDag::decode(&long).is_err());
        // A flipped byte breaks the checksum.
        let mut bad = bytes.clone();
        bad[20] ^= 0xff;
        assert!(matches!(
            ExecutedDag::decode(&bad),
            Err(DagCodecError::Invalid(_))
        ));
    }

    #[test]
    fn analysis_serializes_to_json() {
        let dag = diamond();
        let a = dag.analyze(&pairs(), planned(2, 2));
        let doc = crate::json::parse(&a.to_json(&dag).to_json()).unwrap();
        assert_eq!(doc.get("makespan_ns").and_then(Json::as_u64), Some(40));
        assert_eq!(
            doc.get("digest").and_then(Json::as_str),
            Some(format!("{:016x}", a.digest).as_str())
        );
        let lanes = doc.get("lanes").and_then(Json::items).unwrap();
        let gpu = lanes
            .iter()
            .find(|l| l.get("lane").and_then(Json::as_str) == Some("n0/gpu-sm"))
            .unwrap();
        assert_eq!(
            gpu.get("starved_by")
                .and_then(|s| s.get("n0/network"))
                .and_then(Json::as_u64),
            Some(20)
        );
    }
}
