//! Online anomaly detectors over the run-time metrics stream.
//!
//! These consume per-iteration observations *during* a run (the recovery
//! loop feeds them) and flag the three degradations a PICASSO-style
//! synchronous trainer cares about:
//!
//! * [`StragglerDetector`] — cross-worker z-score over per-worker stage
//!   latencies; a straggler drags every synchronous step, so one slow
//!   worker among healthy peers stands far outside the step's own spread.
//! * [`SlopeDetector`] — least-squares slope over a sliding window of
//!   collective latencies; a degrading NIC shows up as a sustained upward
//!   trend rather than a single spike.
//! * [`QueueDepthDetector`] — retry/queue-depth runaway; a partitioned
//!   network makes the collective retry queue grow past any healthy bound.
//!
//! Detectors are pure state machines over the numbers they are fed: no
//! clocks, no randomness, so detections are as deterministic as the
//! metrics stream itself.

use std::fmt;

/// What kind of degradation a detector flagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AnomalyKind {
    /// One worker's stage latency is a cross-worker outlier.
    Straggler,
    /// Collective latency is trending upward across the window.
    NicDegradation,
    /// The retry/backoff queue depth crossed its runaway limit.
    QueueRunaway,
}

impl fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AnomalyKind::Straggler => "straggler",
            AnomalyKind::NicDegradation => "nic-degradation",
            AnomalyKind::QueueRunaway => "queue-runaway",
        })
    }
}

/// One detection: what fired, where, and against which threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// Degradation class.
    pub kind: AnomalyKind,
    /// Iteration the detector fired at.
    pub at_iter: u64,
    /// Offending worker, when the signal is per-worker.
    pub worker: Option<usize>,
    /// Observed statistic (z-score, slope, or queue depth).
    pub value: f64,
    /// Threshold the statistic crossed.
    pub threshold: f64,
}

/// Cross-worker straggler detection by z-score.
///
/// Each step the caller feeds the per-worker latencies of one synchronous
/// stage. A worker fires when its z-score against that step's own
/// mean/stddev exceeds `z_threshold` *and* its latency exceeds the mean by
/// at least `min_rel` — the relative floor keeps numerically-tight steps
/// (where stddev is nearly zero) from flagging noise.
#[derive(Debug, Clone)]
pub struct StragglerDetector {
    /// Minimum z-score to fire.
    pub z_threshold: f64,
    /// Minimum relative excess over the mean to fire (0.2 = 20% slower).
    pub min_rel: f64,
}

impl Default for StragglerDetector {
    fn default() -> StragglerDetector {
        // One outlier among n workers has z = sqrt(n-1) against the
        // population stddev (1.73 at n=4); 1.5 catches it with margin
        // while two-sided noise stays well below.
        StragglerDetector {
            z_threshold: 1.5,
            min_rel: 0.2,
        }
    }
}

impl StragglerDetector {
    /// Scores one step's per-worker latencies; returns every worker that
    /// fired. Fewer than two workers can never fire (no spread to test).
    pub fn observe(&self, at_iter: u64, latencies: &[f64]) -> Vec<Anomaly> {
        let n = latencies.len();
        if n < 2 {
            return Vec::new();
        }
        let mean = latencies.iter().sum::<f64>() / n as f64;
        let var = latencies.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let sd = var.sqrt();
        if sd <= f64::EPSILON * mean.abs().max(1.0) {
            return Vec::new();
        }
        latencies
            .iter()
            .enumerate()
            .filter_map(|(w, &x)| {
                let z = (x - mean) / sd;
                let rel = if mean > 0.0 { x / mean - 1.0 } else { 0.0 };
                (z > self.z_threshold && rel >= self.min_rel).then_some(Anomaly {
                    kind: AnomalyKind::Straggler,
                    at_iter,
                    worker: Some(w),
                    value: z,
                    threshold: self.z_threshold,
                })
            })
            .collect()
    }
}

/// Trend detection by least-squares slope over a sliding window.
#[derive(Debug, Clone)]
pub struct SlopeDetector {
    /// Window length; the detector is silent until the window fills.
    pub window: usize,
    /// Minimum per-sample slope to fire.
    pub min_slope: f64,
    samples: Vec<f64>,
}

impl SlopeDetector {
    /// A detector firing when the latest `window` samples trend upward by
    /// more than `min_slope` per sample.
    pub fn new(window: usize, min_slope: f64) -> SlopeDetector {
        SlopeDetector {
            window: window.max(2),
            min_slope,
            samples: Vec::new(),
        }
    }

    /// Feeds one sample; fires once the window is full and trending.
    pub fn observe(&mut self, at_iter: u64, sample: f64) -> Option<Anomaly> {
        self.samples.push(sample);
        if self.samples.len() > self.window {
            self.samples.remove(0);
        }
        if self.samples.len() < self.window {
            return None;
        }
        let slope = least_squares_slope(&self.samples);
        (slope > self.min_slope).then_some(Anomaly {
            kind: AnomalyKind::NicDegradation,
            at_iter,
            worker: None,
            value: slope,
            threshold: self.min_slope,
        })
    }

    /// Drops buffered samples (e.g. across a recovery rewind, so the
    /// post-restore window is not polluted by pre-crash latencies).
    pub fn reset(&mut self) {
        self.samples.clear();
    }
}

/// Per-sample slope of the least-squares line through `ys` at x = 0..n.
fn least_squares_slope(ys: &[f64]) -> f64 {
    let n = ys.len() as f64;
    let mean_x = (n - 1.0) / 2.0;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, &y) in ys.iter().enumerate() {
        let dx = i as f64 - mean_x;
        num += dx * (y - mean_y);
        den += dx * dx;
    }
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Queue-depth runaway detection: fires whenever the observed depth
/// reaches `limit`.
#[derive(Debug, Clone)]
pub struct QueueDepthDetector {
    /// Depth at which the queue counts as running away.
    pub limit: u64,
}

impl QueueDepthDetector {
    /// A detector with the given runaway limit (at least 1).
    pub fn new(limit: u64) -> QueueDepthDetector {
        QueueDepthDetector {
            limit: limit.max(1),
        }
    }

    /// Feeds one depth observation.
    pub fn observe(&self, at_iter: u64, depth: u64) -> Option<Anomaly> {
        (depth >= self.limit).then_some(Anomaly {
            kind: AnomalyKind::QueueRunaway,
            at_iter,
            worker: None,
            value: depth as f64,
            threshold: self.limit as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straggler_fires_on_the_slow_worker_only() {
        let d = StragglerDetector::default();
        // Worker 2 at 2x among four: z = sqrt(3) > 1.5, rel = 60% > 20%.
        let hits = d.observe(7, &[0.05, 0.05, 0.10, 0.05]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].worker, Some(2));
        assert_eq!(hits[0].at_iter, 7);
        assert!(hits[0].value > 1.5);
    }

    #[test]
    fn straggler_is_silent_on_uniform_and_tiny_inputs() {
        let d = StragglerDetector::default();
        assert!(d.observe(0, &[0.05, 0.05, 0.05, 0.05]).is_empty());
        assert!(d.observe(0, &[0.05]).is_empty());
        assert!(d.observe(0, &[]).is_empty());
        // Jitter below the relative floor stays silent even if z is large.
        assert!(d.observe(0, &[0.050, 0.050, 0.055, 0.050]).is_empty());
    }

    #[test]
    fn slope_fires_on_a_sustained_rise_not_a_flat_line() {
        let mut d = SlopeDetector::new(4, 0.005);
        for (i, s) in [0.01, 0.01, 0.01, 0.01].iter().enumerate() {
            assert!(d.observe(i as u64, *s).is_none(), "flat baseline");
        }
        // Degrading NIC: latency climbs each iteration.
        let mut fired = None;
        for (i, s) in [0.01, 0.02, 0.03, 0.04].iter().enumerate() {
            if let Some(a) = d.observe(10 + i as u64, *s) {
                fired = Some(a);
            }
        }
        let a = fired.expect("rising window fires");
        assert_eq!(a.kind, AnomalyKind::NicDegradation);
        assert!(a.value > 0.005);
    }

    #[test]
    fn slope_is_silent_until_the_window_fills_and_after_reset() {
        let mut d = SlopeDetector::new(4, 0.001);
        assert!(d.observe(0, 0.0).is_none());
        assert!(d.observe(1, 1.0).is_none());
        assert!(d.observe(2, 2.0).is_none());
        assert!(d.observe(3, 3.0).is_some(), "window full and rising");
        d.reset();
        assert!(d.observe(4, 4.0).is_none(), "reset empties the window");
    }

    #[test]
    fn queue_depth_fires_at_the_limit() {
        let d = QueueDepthDetector::new(2);
        assert!(d.observe(0, 0).is_none());
        assert!(d.observe(0, 1).is_none());
        let a = d.observe(3, 2).expect("limit reached");
        assert_eq!(a.kind, AnomalyKind::QueueRunaway);
        assert_eq!(a.value, 2.0);
        assert!(d.observe(3, 5).is_some());
    }

    #[test]
    fn anomaly_kinds_render_stable_names() {
        assert_eq!(AnomalyKind::Straggler.to_string(), "straggler");
        assert_eq!(AnomalyKind::NicDegradation.to_string(), "nic-degradation");
        assert_eq!(AnomalyKind::QueueRunaway.to_string(), "queue-runaway");
    }
}
