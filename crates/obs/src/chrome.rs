//! Chrome trace-event exporter (Perfetto / `chrome://tracing` compatible).
//!
//! Builds a `{"traceEvents": [...]}` document from spans, instants, counter
//! samples, and flow edges. Tracks map to thread lanes: the first time a
//! track name is seen it is assigned a `tid` plus a `thread_name` metadata
//! event, and [`ChromeTrace::set_sort_index`] pins its position in the UI
//! with a `thread_sort_index` metadata event. Counter lanes use `"ph":"C"`
//! events, dependencies use `"ph":"s"`/`"ph":"f"` flow pairs, and frame
//! markers are global instants (`"ph":"i","s":"g"`).

use crate::json::Json;
use crate::metrics::MetricsSnapshot;
use crate::span::Tracer;
use crate::Clock;
use std::collections::BTreeMap;

const PID: u64 = 1;

/// Incrementally built Chrome trace document.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<Json>,
    tids: BTreeMap<String, u64>,
    next_flow_id: u64,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    /// The `tid` for a track, assigning one (with a `thread_name` metadata
    /// event) on first use. Tids start at 1 in first-seen order while the
    /// trace is being built; [`ChromeTrace::to_json`] remaps them so the
    /// serialized document numbers tracks by sorted lane name, making
    /// same-scenario traces diff cleanly regardless of insertion order.
    pub fn tid_for_track(&mut self, track: &str) -> u64 {
        if let Some(&tid) = self.tids.get(track) {
            return tid;
        }
        let tid = self.tids.len() as u64 + 1;
        self.tids.insert(track.to_string(), tid);
        self.events.push(Json::obj([
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::UInt(PID)),
            ("tid", Json::UInt(tid)),
            ("args", Json::obj([("name", Json::str(track))])),
        ]));
        tid
    }

    /// Pins a track's vertical position in the viewer.
    pub fn set_sort_index(&mut self, track: &str, sort_index: i64) {
        let tid = self.tid_for_track(track);
        self.events.push(Json::obj([
            ("name", Json::str("thread_sort_index")),
            ("ph", Json::str("M")),
            ("pid", Json::UInt(PID)),
            ("tid", Json::UInt(tid)),
            ("args", Json::obj([("sort_index", Json::Int(sort_index))])),
        ]));
    }

    /// Adds a complete (`"ph":"X"`) span.
    pub fn complete(
        &mut self,
        track: &str,
        name: &str,
        cat: &str,
        start_ns: u64,
        end_ns: u64,
        args: &[(&str, &str)],
    ) {
        let tid = self.tid_for_track(track);
        let mut fields = vec![
            ("name".to_string(), Json::str(name)),
            ("cat".to_string(), Json::str(cat)),
            ("ph".to_string(), Json::str("X")),
            ("pid".to_string(), Json::UInt(PID)),
            ("tid".to_string(), Json::UInt(tid)),
            ("ts".to_string(), Json::Num(start_ns as f64 / 1e3)),
            (
                "dur".to_string(),
                Json::Num(end_ns.saturating_sub(start_ns) as f64 / 1e3),
            ),
        ];
        if !args.is_empty() {
            fields.push((
                "args".to_string(),
                Json::Obj(
                    args.iter()
                        .map(|(k, v)| (k.to_string(), Json::str(*v)))
                        .collect(),
                ),
            ));
        }
        self.events.push(Json::Obj(fields));
    }

    /// Adds a thread-scoped instant event.
    pub fn instant(&mut self, track: &str, name: &str, t_ns: u64) {
        let tid = self.tid_for_track(track);
        self.events.push(Json::obj([
            ("name", Json::str(name)),
            ("ph", Json::str("i")),
            ("s", Json::str("t")),
            ("pid", Json::UInt(PID)),
            ("tid", Json::UInt(tid)),
            ("ts", Json::Num(t_ns as f64 / 1e3)),
        ]));
    }

    /// Adds a global frame marker (`"ph":"i","s":"g"`), e.g. an iteration
    /// boundary visible across every lane.
    pub fn frame_marker(&mut self, name: &str, t_ns: u64) {
        self.events.push(Json::obj([
            ("name", Json::str(name)),
            ("ph", Json::str("i")),
            ("s", Json::str("g")),
            ("pid", Json::UInt(PID)),
            ("tid", Json::UInt(0)),
            ("ts", Json::Num(t_ns as f64 / 1e3)),
        ]));
    }

    /// Adds a counter (`"ph":"C"`) sample; each entry of `values` becomes a
    /// stacked series of the lane named `name`.
    pub fn counter(&mut self, name: &str, t_ns: u64, values: &[(&str, f64)]) {
        self.events.push(Json::obj([
            ("name", Json::str(name)),
            ("ph", Json::str("C")),
            ("pid", Json::UInt(PID)),
            ("ts", Json::Num(t_ns as f64 / 1e3)),
            (
                "args",
                Json::Obj(
                    values
                        .iter()
                        .map(|(k, v)| (k.to_string(), Json::Num(*v)))
                        .collect(),
                ),
            ),
        ]));
    }

    /// Adds a flow arrow: an `"s"` event at the source and a matching `"f"`
    /// (binding enclosing slice) at the destination, sharing a fresh id.
    pub fn flow(&mut self, name: &str, from_track: &str, from_ns: u64, to_track: &str, to_ns: u64) {
        let id = self.next_flow_id;
        self.next_flow_id += 1;
        let from_tid = self.tid_for_track(from_track);
        let to_tid = self.tid_for_track(to_track);
        self.events.push(Json::obj([
            ("name", Json::str(name)),
            ("cat", Json::str("flow")),
            ("ph", Json::str("s")),
            ("id", Json::UInt(id)),
            ("pid", Json::UInt(PID)),
            ("tid", Json::UInt(from_tid)),
            ("ts", Json::Num(from_ns as f64 / 1e3)),
        ]));
        self.events.push(Json::obj([
            ("name", Json::str(name)),
            ("cat", Json::str("flow")),
            ("ph", Json::str("f")),
            ("bp", Json::str("e")),
            ("id", Json::UInt(id)),
            ("pid", Json::UInt(PID)),
            ("tid", Json::UInt(to_tid)),
            ("ts", Json::Num(to_ns as f64 / 1e3)),
        ]));
    }

    /// Imports everything a [`Tracer`] recorded: spans as `"X"`, instants as
    /// thread instants, and flows as `"s"/"f"` pairs.
    pub fn add_tracer<C: Clock>(&mut self, tracer: &Tracer<C>) {
        for span in tracer.spans() {
            let args: Vec<(&str, &str)> = span
                .args
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            self.complete(
                &span.track,
                &span.name,
                "span",
                span.start_ns,
                span.end_ns,
                &args,
            );
        }
        for instant in tracer.instants() {
            self.instant(&instant.track, &instant.name, instant.t_ns);
        }
        for flow in tracer.flows() {
            self.flow(
                &flow.name,
                &flow.from_track,
                flow.from_ns,
                &flow.to_track,
                flow.to_ns,
            );
        }
    }

    /// Exports every time series in a metrics snapshot as counter lanes.
    /// The lane is named after the metric; the series key within the lane
    /// comes from the label values (or `value` when unlabeled).
    pub fn add_counter_series(&mut self, snapshot: &MetricsSnapshot) {
        for ((name, labels), series) in &snapshot.series {
            let key = if labels.is_empty() {
                "value".to_string()
            } else {
                labels
                    .iter()
                    .map(|(_, v)| v.as_str())
                    .collect::<Vec<_>>()
                    .join("/")
            };
            for &(t_ns, value) in &series.samples {
                self.counter(name, t_ns, &[(key.as_str(), value)]);
            }
        }
    }

    /// Number of events added so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the document with deterministic track numbering: tids
    /// are remapped so track names in sorted order get tids 1, 2, ...
    /// (tid 0 — global frame markers — is left alone).
    pub fn to_json(&self) -> String {
        // self.tids is a BTreeMap, so iteration is already name-sorted.
        let remap: BTreeMap<u64, u64> = self
            .tids
            .values()
            .enumerate()
            .map(|(rank, &provisional)| (provisional, rank as u64 + 1))
            .collect();
        let events = self
            .events
            .iter()
            .map(|event| {
                let Json::Obj(pairs) = event else {
                    return event.clone();
                };
                Json::Obj(
                    pairs
                        .iter()
                        .map(|(k, v)| {
                            let v = match (k.as_str(), v) {
                                ("tid", Json::UInt(t)) if *t >= 1 => {
                                    Json::UInt(*remap.get(t).unwrap_or(t))
                                }
                                _ => v.clone(),
                            };
                            (k.clone(), v)
                        })
                        .collect(),
                )
            })
            .collect();
        Json::obj([
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::str("ms")),
        ])
        .to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::json;

    fn phase_count(doc: &Json, ph: &str) -> usize {
        doc.get("traceEvents")
            .and_then(Json::items)
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
            .count()
    }

    #[test]
    fn tracks_get_stable_tids_and_metadata() {
        let mut trace = ChromeTrace::new();
        assert_eq!(trace.tid_for_track("a"), 1);
        assert_eq!(trace.tid_for_track("b"), 2);
        assert_eq!(trace.tid_for_track("a"), 1);
        trace.set_sort_index("a", -1);
        let doc = json::parse(&trace.to_json()).unwrap();
        assert_eq!(phase_count(&doc, "M"), 3); // 2 names + 1 sort index
    }

    #[test]
    fn serialized_tids_are_name_sorted_regardless_of_insertion_order() {
        // Build two traces registering the same lanes in opposite orders;
        // the serialized documents must number tracks identically.
        let mut forward = ChromeTrace::new();
        forward.complete("alpha", "t", "span", 0, 10, &[]);
        forward.complete("beta", "t", "span", 0, 10, &[]);
        let mut reverse = ChromeTrace::new();
        reverse.complete("beta", "t", "span", 0, 10, &[]);
        reverse.complete("alpha", "t", "span", 0, 10, &[]);

        for text in [forward.to_json(), reverse.to_json()] {
            let doc = json::parse(&text).unwrap();
            let events = doc.get("traceEvents").and_then(Json::items).unwrap();
            let tid_of = |track: &str| {
                events
                    .iter()
                    .find(|e| {
                        e.get("ph").and_then(Json::as_str) == Some("M")
                            && e.get("args")
                                .and_then(|a| a.get("name"))
                                .and_then(Json::as_str)
                                == Some(track)
                    })
                    .and_then(|e| e.get("tid").and_then(Json::as_u64))
                    .unwrap()
            };
            assert_eq!(tid_of("alpha"), 1, "alpha sorts first");
            assert_eq!(tid_of("beta"), 2);
            // Slices follow their lane's remapped tid.
            let slice_tids: Vec<u64> = events
                .iter()
                .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
                .map(|e| e.get("tid").and_then(Json::as_u64).unwrap())
                .collect();
            let mut sorted = slice_tids.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![1, 2]);
        }
    }

    #[test]
    fn frame_marker_tid_zero_survives_the_remap() {
        let mut trace = ChromeTrace::new();
        trace.complete("zeta", "t", "span", 0, 10, &[]);
        trace.frame_marker("iteration 0", 0);
        let doc = json::parse(&trace.to_json()).unwrap();
        let events = doc.get("traceEvents").and_then(Json::items).unwrap();
        let frame = events
            .iter()
            .find(|e| e.get("s").and_then(Json::as_str) == Some("g"))
            .unwrap();
        assert_eq!(frame.get("tid").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn flows_pair_s_and_f_with_same_id() {
        let mut trace = ChromeTrace::new();
        trace.flow("dep", "a", 10, "b", 20);
        trace.flow("dep", "a", 30, "b", 40);
        let doc = json::parse(&trace.to_json()).unwrap();
        let events = doc.get("traceEvents").and_then(Json::items).unwrap();
        let flows: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.get("ph").and_then(Json::as_str), Some("s" | "f")))
            .collect();
        assert_eq!(flows.len(), 4);
        assert_eq!(
            flows[0].get("id").and_then(Json::as_u64),
            flows[1].get("id").and_then(Json::as_u64)
        );
        assert_ne!(
            flows[0].get("id").and_then(Json::as_u64),
            flows[2].get("id").and_then(Json::as_u64)
        );
        assert_eq!(flows[1].get("bp").and_then(Json::as_str), Some("e"));
    }

    #[test]
    fn counters_and_frames_export() {
        let mut trace = ChromeTrace::new();
        trace.counter("sm_busy", 1_000, &[("gpu0", 0.5)]);
        trace.frame_marker("iteration 0", 0);
        let doc = json::parse(&trace.to_json()).unwrap();
        assert_eq!(phase_count(&doc, "C"), 1);
        assert_eq!(phase_count(&doc, "i"), 1);
        let events = doc.get("traceEvents").and_then(Json::items).unwrap();
        let frame = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
            .unwrap();
        assert_eq!(frame.get("s").and_then(Json::as_str), Some("g"));
    }

    #[test]
    fn tracer_import_covers_all_record_kinds() {
        let tracer = Tracer::new(ManualClock::new());
        tracer.record_span("sched", "iteration", 0, 2_000, &[("iter", "0")]);
        tracer.instant_at("sched", "flush", 1_000);
        tracer.flow("dep", "sched", 2_000, "comm", 2_500);
        let mut trace = ChromeTrace::new();
        trace.add_tracer(&tracer);
        let doc = json::parse(&trace.to_json()).unwrap();
        assert_eq!(phase_count(&doc, "X"), 1);
        assert_eq!(phase_count(&doc, "i"), 1);
        assert_eq!(phase_count(&doc, "s"), 1);
        assert_eq!(phase_count(&doc, "f"), 1);
        // ns → µs conversion.
        let events = doc.get("traceEvents").and_then(Json::items).unwrap();
        let x = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .unwrap();
        assert_eq!(x.get("dur").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn counter_series_lane_naming() {
        use crate::metrics::MetricsRegistry;
        let reg = MetricsRegistry::new();
        reg.record_sample("link_bytes", &[("link", "pcie")], 0, 1.0);
        reg.record_sample("link_bytes", &[("link", "nvlink")], 0, 2.0);
        reg.record_sample("queue_depth", &[], 5, 3.0);
        let mut trace = ChromeTrace::new();
        trace.add_counter_series(&reg.snapshot());
        let doc = json::parse(&trace.to_json()).unwrap();
        assert_eq!(phase_count(&doc, "C"), 3);
        let events = doc.get("traceEvents").and_then(Json::items).unwrap();
        let unlabeled = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("queue_depth"))
            .unwrap();
        assert!(unlabeled.get("args").unwrap().get("value").is_some());
    }
}
