//! Span and instant-event tracing.
//!
//! A [`Tracer`] collects [`SpanRecord`]s on named tracks. Spans come from two
//! sources: live code uses the RAII [`SpanGuard`] returned by
//! [`Tracer::span`] (timed against the tracer's [`Clock`]); post-hoc
//! analysis (e.g. deriving iteration spans from simulator task records)
//! uses [`Tracer::record_span`] with explicit timestamps. Flow edges connect
//! spans across tracks — the Chrome exporter turns them into `"s"/"f"`
//! arrows.

use crate::clock::Clock;
use std::sync::Mutex;

/// A completed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name, e.g. `iteration` or `micro_batch`.
    pub name: String,
    /// Track (rendered as a thread lane) the span belongs to.
    pub track: String,
    /// Start time in nanoseconds.
    pub start_ns: u64,
    /// End time in nanoseconds (`>= start_ns`).
    pub end_ns: u64,
    /// Free-form key/value annotations.
    pub args: Vec<(String, String)>,
}

/// An instant event (zero duration).
#[derive(Debug, Clone, PartialEq)]
pub struct InstantRecord {
    /// Event name.
    pub name: String,
    /// Track the event belongs to.
    pub track: String,
    /// Timestamp in nanoseconds.
    pub t_ns: u64,
}

/// A directed dependency between two points in time, rendered as a flow
/// arrow from `(from_track, from_ns)` to `(to_track, to_ns)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowRecord {
    /// Source track.
    pub from_track: String,
    /// Source timestamp (typically a span end).
    pub from_ns: u64,
    /// Destination track.
    pub to_track: String,
    /// Destination timestamp (typically a span start).
    pub to_ns: u64,
    /// Flow name/category.
    pub name: String,
}

#[derive(Debug, Default)]
struct TraceStore {
    spans: Vec<SpanRecord>,
    instants: Vec<InstantRecord>,
    flows: Vec<FlowRecord>,
}

/// Collects spans, instants, and flows against an explicit clock.
pub struct Tracer<C: Clock> {
    clock: C,
    store: Mutex<TraceStore>,
}

impl<C: Clock> Tracer<C> {
    /// A tracer timing live spans against `clock`.
    pub fn new(clock: C) -> Tracer<C> {
        Tracer {
            clock,
            store: Mutex::new(TraceStore::default()),
        }
    }

    /// The tracer's clock.
    pub fn clock(&self) -> &C {
        &self.clock
    }

    /// Opens a live span; it is recorded when the guard drops.
    pub fn span(&self, track: &str, name: &str) -> SpanGuard<'_, C> {
        SpanGuard {
            tracer: self,
            name: name.to_string(),
            track: track.to_string(),
            start_ns: self.clock.now_ns(),
            args: Vec::new(),
        }
    }

    /// Records a span with explicit timestamps (post-hoc tracing).
    pub fn record_span(
        &self,
        track: &str,
        name: &str,
        start_ns: u64,
        end_ns: u64,
        args: &[(&str, &str)],
    ) {
        let mut store = self.store.lock().unwrap();
        store.spans.push(SpanRecord {
            name: name.to_string(),
            track: track.to_string(),
            start_ns,
            end_ns: end_ns.max(start_ns),
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
    }

    /// Records an instant event at the clock's current time.
    pub fn instant(&self, track: &str, name: &str) {
        let t_ns = self.clock.now_ns();
        self.instant_at(track, name, t_ns);
    }

    /// Records an instant event with an explicit timestamp.
    pub fn instant_at(&self, track: &str, name: &str, t_ns: u64) {
        let mut store = self.store.lock().unwrap();
        store.instants.push(InstantRecord {
            name: name.to_string(),
            track: track.to_string(),
            t_ns,
        });
    }

    /// Records a flow edge with explicit endpoints.
    pub fn flow(&self, name: &str, from_track: &str, from_ns: u64, to_track: &str, to_ns: u64) {
        let mut store = self.store.lock().unwrap();
        store.flows.push(FlowRecord {
            from_track: from_track.to_string(),
            from_ns,
            to_track: to_track.to_string(),
            to_ns,
            name: name.to_string(),
        });
    }

    /// All completed spans so far.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.store.lock().unwrap().spans.clone()
    }

    /// All instant events so far.
    pub fn instants(&self) -> Vec<InstantRecord> {
        self.store.lock().unwrap().instants.clone()
    }

    /// All flow edges so far.
    pub fn flows(&self) -> Vec<FlowRecord> {
        self.store.lock().unwrap().flows.clone()
    }
}

/// RAII handle for a live span; records on drop.
pub struct SpanGuard<'a, C: Clock> {
    tracer: &'a Tracer<C>,
    name: String,
    track: String,
    start_ns: u64,
    args: Vec<(String, String)>,
}

impl<C: Clock> SpanGuard<'_, C> {
    /// Attaches a key/value annotation to the span.
    pub fn arg(&mut self, key: &str, value: impl ToString) {
        self.args.push((key.to_string(), value.to_string()));
    }
}

impl<C: Clock> Drop for SpanGuard<'_, C> {
    fn drop(&mut self) {
        let end_ns = self.tracer.clock.now_ns();
        let mut store = self.tracer.store.lock().unwrap();
        store.spans.push(SpanRecord {
            name: std::mem::take(&mut self.name),
            track: std::mem::take(&mut self.track),
            start_ns: self.start_ns,
            end_ns: end_ns.max(self.start_ns),
            args: std::mem::take(&mut self.args),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn guard_records_on_drop_with_args() {
        let tracer = Tracer::new(ManualClock::new());
        tracer.clock().set_ns(100);
        {
            let mut span = tracer.span("scheduler", "iteration");
            span.arg("iter", 3);
            tracer.clock().set_ns(250);
        }
        let spans = tracer.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "iteration");
        assert_eq!(spans[0].track, "scheduler");
        assert_eq!(spans[0].start_ns, 100);
        assert_eq!(spans[0].end_ns, 250);
        assert_eq!(spans[0].args, vec![("iter".to_string(), "3".to_string())]);
    }

    #[test]
    fn explicit_records_clamp_backwards_spans() {
        let tracer = Tracer::new(ManualClock::new());
        tracer.record_span("t", "s", 50, 20, &[]);
        assert_eq!(tracer.spans()[0].end_ns, 50);
    }

    #[test]
    fn instants_and_flows_are_kept() {
        let tracer = Tracer::new(ManualClock::at(5));
        tracer.instant("frames", "iteration 0");
        tracer.instant_at("frames", "iteration 1", 9);
        tracer.flow("dep", "a", 1, "b", 2);
        assert_eq!(tracer.instants().len(), 2);
        assert_eq!(tracer.instants()[0].t_ns, 5);
        assert_eq!(tracer.flows()[0].to_ns, 2);
    }
}
