//! Append-only run-history store and cross-run trend detection.
//!
//! Perfgate judges a run against one pinned baseline; the observatory
//! judges it against *history*. [`HistoryStore`] persists one
//! [`RunRecord`] per `(run, scenario)` into append-only JSONL segments
//! under a checksummed manifest index, so ingestion never rewrites old
//! evidence and a truncated or edited segment is detected on load, not
//! silently averaged into a trend.
//!
//! On top of the store, [`cusum_change_point`] runs a two-sided CUSUM over
//! a metric's multi-run series (slack and decision threshold scale with
//! the baseline mean, so one detector fits seconds and ratios alike) and
//! [`mann_kendall`] gives a monotone-trend statistic. Both are pure
//! functions of the series: same history, same verdict.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::flight::fnv1a64;
use crate::json::{self, Json};

/// Schema identifier of the manifest document.
pub const HISTORY_MANIFEST_KIND: &str = "picasso.history_manifest";
/// Schema version of the manifest and record documents.
pub const HISTORY_SCHEMA_VERSION: u64 = 1;
/// Records per segment before the store rolls a new one.
pub const SEGMENT_MAX_RECORDS: usize = 256;

/// Why a store operation failed.
#[derive(Debug)]
pub enum HistoryError {
    /// The filesystem said no.
    Io(String),
    /// A manifest or segment failed validation (truncation, checksum
    /// mismatch, malformed JSON).
    Corrupt(String),
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::Io(m) => write!(f, "history io error: {m}"),
            HistoryError::Corrupt(m) => write!(f, "history store corrupt: {m}"),
        }
    }
}

impl std::error::Error for HistoryError {}

fn io_err<E: fmt::Display>(what: &str, e: E) -> HistoryError {
    HistoryError::Io(format!("{what}: {e}"))
}

/// One scenario's metrics from one ingested run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Monotone ingestion sequence; every record of one ingested run
    /// shares it, so it orders runs, not lines.
    pub seq: u64,
    /// Caller-chosen run identifier (commit, CI run id, "local").
    pub run_id: String,
    /// Scenario the metrics belong to.
    pub scenario: String,
    /// Metric name → value.
    pub metrics: BTreeMap<String, f64>,
}

impl RunRecord {
    fn canonical(&self) -> Json {
        Json::obj([
            ("seq", Json::UInt(self.seq)),
            ("run_id", Json::str(&self.run_id)),
            ("scenario", Json::str(&self.scenario)),
            (
                "metrics",
                Json::Obj(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    fn to_line(&self) -> String {
        let canonical = self.canonical();
        let fnv = fnv1a64(canonical.to_json().as_bytes());
        let Json::Obj(mut pairs) = canonical else {
            unreachable!("canonical is an object");
        };
        pairs.push(("fnv".to_string(), Json::str(format!("{fnv:016x}"))));
        Json::Obj(pairs).to_json()
    }

    fn from_line(line: &str) -> Result<RunRecord, HistoryError> {
        let doc = json::parse(line)
            .map_err(|e| HistoryError::Corrupt(format!("bad record line: {e}")))?;
        let str_field = |k: &str| {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| HistoryError::Corrupt(format!("record missing {k:?}")))
        };
        let mut metrics = BTreeMap::new();
        let metrics_doc = doc
            .get("metrics")
            .ok_or_else(|| HistoryError::Corrupt("record missing metrics".into()))?;
        if let Json::Obj(pairs) = metrics_doc {
            for (k, v) in pairs {
                let v = v
                    .as_f64()
                    .ok_or_else(|| HistoryError::Corrupt(format!("metric {k:?} not a number")))?;
                metrics.insert(k.clone(), v);
            }
        } else {
            return Err(HistoryError::Corrupt("record metrics not an object".into()));
        }
        let record = RunRecord {
            seq: doc
                .get("seq")
                .and_then(Json::as_u64)
                .ok_or_else(|| HistoryError::Corrupt("record missing seq".into()))?,
            run_id: str_field("run_id")?,
            scenario: str_field("scenario")?,
            metrics,
        };
        let want = str_field("fnv")?;
        let want = u64::from_str_radix(&want, 16)
            .map_err(|_| HistoryError::Corrupt("malformed record fnv".into()))?;
        let got = fnv1a64(record.canonical().to_json().as_bytes());
        if got != want {
            return Err(HistoryError::Corrupt(format!(
                "record fnv mismatch (line says {want:016x}, content hashes to {got:016x})"
            )));
        }
        Ok(record)
    }
}

#[derive(Debug, Clone)]
struct Segment {
    file: String,
    records: usize,
    fnv: u64,
}

/// The on-disk store: `manifest.json` plus `seg-<n>.jsonl` segments.
#[derive(Debug)]
pub struct HistoryStore {
    dir: PathBuf,
    next_seq: u64,
    segments: Vec<Segment>,
}

impl HistoryStore {
    /// Opens (creating if absent) the store under `dir` and reads its
    /// manifest. Segment contents are verified by [`HistoryStore::load`].
    pub fn open(dir: &Path) -> Result<HistoryStore, HistoryError> {
        fs::create_dir_all(dir).map_err(|e| io_err("create history dir", e))?;
        let manifest = dir.join("manifest.json");
        if !manifest.exists() {
            return Ok(HistoryStore {
                dir: dir.to_path_buf(),
                next_seq: 0,
                segments: Vec::new(),
            });
        }
        let text = fs::read_to_string(&manifest).map_err(|e| io_err("read manifest", e))?;
        let doc =
            json::parse(&text).map_err(|e| HistoryError::Corrupt(format!("bad manifest: {e}")))?;
        let kind = doc.get("kind").and_then(Json::as_str).unwrap_or_default();
        if kind != HISTORY_MANIFEST_KIND {
            return Err(HistoryError::Corrupt(format!(
                "not a history manifest (kind {kind:?})"
            )));
        }
        let version = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if version != HISTORY_SCHEMA_VERSION {
            return Err(HistoryError::Corrupt(format!(
                "unsupported history schema {version}"
            )));
        }
        let next_seq = doc
            .get("next_seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| HistoryError::Corrupt("manifest missing next_seq".into()))?;
        let mut segments = Vec::new();
        for seg in doc
            .get("segments")
            .and_then(Json::items)
            .ok_or_else(|| HistoryError::Corrupt("manifest missing segments".into()))?
        {
            let file = seg
                .get("file")
                .and_then(Json::as_str)
                .ok_or_else(|| HistoryError::Corrupt("segment missing file".into()))?;
            let records = seg
                .get("records")
                .and_then(Json::as_u64)
                .ok_or_else(|| HistoryError::Corrupt("segment missing records".into()))?;
            let fnv = seg
                .get("fnv")
                .and_then(Json::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or_else(|| HistoryError::Corrupt("segment missing fnv".into()))?;
            segments.push(Segment {
                file: file.to_string(),
                records: records as usize,
                fnv,
            });
        }
        Ok(HistoryStore {
            dir: dir.to_path_buf(),
            next_seq,
            segments,
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sequence number the next ingested run will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of runs ingested so far.
    pub fn runs(&self) -> u64 {
        self.next_seq
    }

    /// Appends one run's scenario metrics. Every record shares one new
    /// sequence number; returns it.
    pub fn ingest(
        &mut self,
        run_id: &str,
        scenarios: &[(String, BTreeMap<String, f64>)],
    ) -> Result<u64, HistoryError> {
        let seq = self.next_seq;
        for (scenario, metrics) in scenarios {
            let record = RunRecord {
                seq,
                run_id: run_id.to_string(),
                scenario: scenario.clone(),
                metrics: metrics.clone(),
            };
            self.append_record(&record)?;
        }
        self.next_seq = seq + 1;
        self.write_manifest()?;
        Ok(seq)
    }

    fn append_record(&mut self, record: &RunRecord) -> Result<(), HistoryError> {
        let needs_new = match self.segments.last() {
            Some(seg) => seg.records >= SEGMENT_MAX_RECORDS,
            None => true,
        };
        if needs_new {
            self.segments.push(Segment {
                file: format!("seg-{}.jsonl", self.segments.len()),
                records: 0,
                fnv: 0,
            });
        }
        let seg = self.segments.last_mut().expect("segment exists");
        let path = self.dir.join(&seg.file);
        let mut fh = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("open segment", e))?;
        let mut line = record.to_line();
        line.push('\n');
        fh.write_all(line.as_bytes())
            .map_err(|e| io_err("append record", e))?;
        drop(fh);
        seg.records += 1;
        seg.fnv = fnv1a64(&fs::read(&path).map_err(|e| io_err("re-read segment", e))?);
        Ok(())
    }

    fn write_manifest(&self) -> Result<(), HistoryError> {
        let doc = Json::obj([
            ("schema_version", Json::UInt(HISTORY_SCHEMA_VERSION)),
            ("kind", Json::str(HISTORY_MANIFEST_KIND)),
            ("next_seq", Json::UInt(self.next_seq)),
            (
                "segments",
                Json::Arr(
                    self.segments
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("file", Json::str(&s.file)),
                                ("records", Json::UInt(s.records as u64)),
                                ("fnv", Json::str(format!("{:016x}", s.fnv))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let tmp = self.dir.join("manifest.json.tmp");
        fs::write(&tmp, doc.to_json()).map_err(|e| io_err("write manifest", e))?;
        fs::rename(&tmp, self.dir.join("manifest.json"))
            .map_err(|e| io_err("commit manifest", e))?;
        Ok(())
    }

    /// Reads and fully verifies every segment: file checksum, per-record
    /// checksum, and record count must all match the manifest. Returns
    /// records in ingestion order.
    pub fn load(&self) -> Result<Vec<RunRecord>, HistoryError> {
        let mut records = Vec::new();
        for seg in &self.segments {
            let path = self.dir.join(&seg.file);
            let bytes = fs::read(&path).map_err(|e| {
                HistoryError::Corrupt(format!("segment {} unreadable: {e}", seg.file))
            })?;
            let got = fnv1a64(&bytes);
            if got != seg.fnv {
                return Err(HistoryError::Corrupt(format!(
                    "segment {} checksum mismatch (manifest says {:016x}, file hashes to \
                     {got:016x}) — truncated or edited",
                    seg.file, seg.fnv
                )));
            }
            let text = String::from_utf8(bytes)
                .map_err(|_| HistoryError::Corrupt(format!("segment {} not utf-8", seg.file)))?;
            let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
            if lines.len() != seg.records {
                return Err(HistoryError::Corrupt(format!(
                    "segment {} holds {} records, manifest says {}",
                    seg.file,
                    lines.len(),
                    seg.records
                )));
            }
            for line in lines {
                records.push(RunRecord::from_line(line)?);
            }
        }
        Ok(records)
    }
}

/// The multi-run series of one scenario/metric pair, ordered by run
/// sequence: `(seq, value)` per run that reported the metric.
pub fn series(records: &[RunRecord], scenario: &str, metric: &str) -> Vec<(u64, f64)> {
    let mut out: Vec<(u64, f64)> = records
        .iter()
        .filter(|r| r.scenario == scenario)
        .filter_map(|r| r.metrics.get(metric).map(|v| (r.seq, *v)))
        .collect();
    out.sort_by_key(|(seq, _)| *seq);
    out
}

/// Every `(scenario, metric)` pair present in the records, sorted.
pub fn keys(records: &[RunRecord]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = records
        .iter()
        .flat_map(|r| {
            r.metrics
                .keys()
                .map(|m| (r.scenario.clone(), m.clone()))
                .collect::<Vec<_>>()
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Which way a detected shift moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shift {
    /// The metric stepped up.
    Up,
    /// The metric stepped down.
    Down,
}

impl fmt::Display for Shift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Shift::Up => "up",
            Shift::Down => "down",
        })
    }
}

/// A detected mean shift in a multi-run series.
#[derive(Debug, Clone, PartialEq)]
pub struct ChangePoint {
    /// Index into the series where the shifted regime starts.
    pub at: usize,
    /// Direction of the shift.
    pub direction: Shift,
    /// Mean of the samples before the shift.
    pub mean_before: f64,
    /// Mean of the samples from the shift onward.
    pub mean_after: f64,
    /// `(mean_after - mean_before) / |mean_before|`.
    pub rel_change: f64,
    /// The CUSUM statistic at detection, in baseline-mean units.
    pub stat: f64,
}

/// Two-sided CUSUM parameters, relative to the baseline mean so the same
/// knobs fit seconds, ratios, and throughput alike.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CusumConfig {
    /// Samples forming the reference mean (clamped to the series).
    pub baseline: usize,
    /// Slack per sample, as a fraction of the baseline mean; deviations
    /// below it never accumulate.
    pub k_rel: f64,
    /// Decision threshold, as a fraction of the baseline mean.
    pub h_rel: f64,
}

impl Default for CusumConfig {
    fn default() -> CusumConfig {
        // A 20% step contributes 0.20 - 0.05 = 0.15 baseline-units per
        // sample, crossing h after two shifted samples — inside the
        // "three ingested runs" budget — while deterministic flat series
        // accumulate exactly zero.
        CusumConfig {
            baseline: 1,
            k_rel: 0.05,
            h_rel: 0.25,
        }
    }
}

/// Two-sided CUSUM over a series of values; returns the first detected
/// mean shift, or `None` when the series never leaves its baseline band.
pub fn cusum_change_point(values: &[f64], config: &CusumConfig) -> Option<ChangePoint> {
    if values.len() < 2 {
        return None;
    }
    let n_ref = config.baseline.clamp(1, values.len());
    let reference = values[..n_ref].iter().sum::<f64>() / n_ref as f64;
    let scale = reference.abs().max(f64::MIN_POSITIVE);
    let k = config.k_rel;
    let h = config.h_rel;
    let mut s_up = 0.0_f64;
    let mut s_down = 0.0_f64;
    // Onset of the current excursion on each side: the first index that
    // contributed to a nonzero statistic since its last reset.
    let mut up_onset = 0;
    let mut down_onset = 0;
    for (i, &v) in values.iter().enumerate() {
        let dev = (v - reference) / scale;
        if s_up <= 0.0 {
            up_onset = i;
        }
        s_up = (s_up + dev - k).max(0.0);
        if s_down <= 0.0 {
            down_onset = i;
        }
        s_down = (s_down - dev - k).max(0.0);
        let (fired, onset, direction, stat) = if s_up > h {
            (true, up_onset, Shift::Up, s_up)
        } else if s_down > h {
            (true, down_onset, Shift::Down, s_down)
        } else {
            (false, 0, Shift::Up, 0.0)
        };
        if fired {
            let at = onset.max(1);
            let mean_before = values[..at].iter().sum::<f64>() / at as f64;
            let after = &values[at..];
            let mean_after = after.iter().sum::<f64>() / after.len() as f64;
            let rel_change = (mean_after - mean_before) / mean_before.abs().max(f64::MIN_POSITIVE);
            return Some(ChangePoint {
                at,
                direction,
                mean_before,
                mean_after,
                rel_change,
                stat,
            });
        }
    }
    None
}

/// Mann-Kendall monotone-trend statistic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannKendall {
    /// Sum of pairwise sign comparisons; positive means rising.
    pub s: i64,
    /// Normal-approximation z-score with continuity correction.
    pub z: f64,
}

/// Mann-Kendall test over a series; `None` below three samples.
pub fn mann_kendall(values: &[f64]) -> Option<MannKendall> {
    let n = values.len();
    if n < 3 {
        return None;
    }
    let mut s: i64 = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            s += match values[j].partial_cmp(&values[i]) {
                Some(std::cmp::Ordering::Greater) => 1,
                Some(std::cmp::Ordering::Less) => -1,
                _ => 0,
            };
        }
    }
    let var = (n * (n - 1) * (2 * n + 5)) as f64 / 18.0;
    let z = if s > 0 {
        (s as f64 - 1.0) / var.sqrt()
    } else if s < 0 {
        (s as f64 + 1.0) / var.sqrt()
    } else {
        0.0
    };
    Some(MannKendall { s, z })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("picasso-history-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn metrics(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn ingest_reload_round_trip() {
        let dir = tmp_dir("roundtrip");
        let mut store = HistoryStore::open(&dir).expect("open");
        let seq0 = store
            .ingest(
                "run-a",
                &[
                    ("wdl_base".to_string(), metrics(&[("secs", 1.0)])),
                    ("wdl_pack".to_string(), metrics(&[("secs", 0.8)])),
                ],
            )
            .expect("ingest");
        let seq1 = store
            .ingest(
                "run-b",
                &[("wdl_base".to_string(), metrics(&[("secs", 1.1)]))],
            )
            .expect("ingest");
        assert_eq!((seq0, seq1), (0, 1));

        let reopened = HistoryStore::open(&dir).expect("reopen");
        assert_eq!(reopened.next_seq(), 2);
        let records = reopened.load().expect("load verifies");
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].run_id, "run-a");
        assert_eq!(
            series(&records, "wdl_base", "secs"),
            vec![(0, 1.0), (1, 1.1)]
        );
        assert_eq!(
            keys(&records),
            vec![
                ("wdl_base".to_string(), "secs".to_string()),
                ("wdl_pack".to_string(), "secs".to_string()),
            ]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_segment_is_rejected() {
        let dir = tmp_dir("truncate");
        let mut store = HistoryStore::open(&dir).expect("open");
        for i in 0..3 {
            store
                .ingest(
                    &format!("run-{i}"),
                    &[("s".to_string(), metrics(&[("m", i as f64)]))],
                )
                .expect("ingest");
        }
        // Truncate the segment behind the manifest's back.
        let seg = dir.join("seg-0.jsonl");
        let text = fs::read_to_string(&seg).unwrap();
        let keep: Vec<&str> = text.lines().take(2).collect();
        fs::write(&seg, format!("{}\n", keep.join("\n"))).unwrap();

        let store = HistoryStore::open(&dir).expect("manifest still opens");
        let err = store.load().expect_err("truncation detected");
        assert!(matches!(err, HistoryError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn edited_record_is_rejected_even_with_fixed_file_checksum() {
        let line = RunRecord {
            seq: 3,
            run_id: "r".into(),
            scenario: "s".into(),
            metrics: metrics(&[("m", 2.0)]),
        }
        .to_line();
        let edited = line.replace("2.0", "1.0");
        assert!(RunRecord::from_line(&line).is_ok());
        let err = RunRecord::from_line(&edited).expect_err("record fnv catches edits");
        assert!(err.to_string().contains("fnv mismatch"), "{err}");
    }

    #[test]
    fn segments_roll_at_the_record_cap() {
        let dir = tmp_dir("roll");
        let mut store = HistoryStore::open(&dir).expect("open");
        let one = |i: usize| vec![("s".to_string(), metrics(&[("m", i as f64)]))];
        for i in 0..(SEGMENT_MAX_RECORDS + 2) {
            store.ingest(&format!("r{i}"), &one(i)).expect("ingest");
        }
        assert!(dir.join("seg-1.jsonl").exists(), "second segment rolled");
        let records = HistoryStore::open(&dir).unwrap().load().expect("verifies");
        assert_eq!(records.len(), SEGMENT_MAX_RECORDS + 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cusum_flags_a_twenty_percent_step_within_two_shifted_samples() {
        // Clean history, then a 20% regression lands.
        let series = [1.0, 1.0, 1.0, 1.2, 1.2];
        let cp = cusum_change_point(&series, &CusumConfig::default()).expect("fires");
        assert_eq!(cp.direction, Shift::Up);
        assert_eq!(cp.at, 3, "shifted regime starts at the step");
        assert!((cp.rel_change - 0.2).abs() < 1e-9, "{:?}", cp);
        // Detection latency: fires on the second shifted sample.
        assert!(cusum_change_point(&series[..4], &CusumConfig::default()).is_none());
        assert!(cusum_change_point(&series[..5], &CusumConfig::default()).is_some());
    }

    #[test]
    fn cusum_is_silent_on_flat_and_mildly_noisy_series() {
        assert!(cusum_change_point(&[1.0; 8], &CusumConfig::default()).is_none());
        assert!(cusum_change_point(&[1.0], &CusumConfig::default()).is_none());
        let jitter = [1.0, 1.02, 0.99, 1.01, 1.0, 0.98, 1.03];
        assert!(cusum_change_point(&jitter, &CusumConfig::default()).is_none());
    }

    #[test]
    fn cusum_detects_downward_steps_too() {
        let series = [1.0, 1.0, 0.7, 0.7];
        let cp = cusum_change_point(&series, &CusumConfig::default()).expect("fires");
        assert_eq!(cp.direction, Shift::Down);
        assert!(cp.rel_change < -0.25);
    }

    #[test]
    fn mann_kendall_signs_match_the_trend() {
        let up = mann_kendall(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!(up.s > 0 && up.z > 0.0);
        let down = mann_kendall(&[4.0, 3.0, 2.0, 1.0]).unwrap();
        assert!(down.s < 0 && down.z < 0.0);
        let flat = mann_kendall(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(flat.s, 0);
        assert!(mann_kendall(&[1.0, 2.0]).is_none());
    }
}
