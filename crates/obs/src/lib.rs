//! Unified observability layer for the PICASSO reproduction.
//!
//! Everything the workspace records about a run flows through this crate:
//!
//! * [`metrics`] — a labeled metrics registry (counters, gauges, fixed-bucket
//!   histograms) plus a time-series recorder for values sampled against a
//!   clock (SM busy, per-link bytes, queue depths, ...).
//! * [`span`] — scoped span and instant-event tracing against an explicit
//!   [`clock::Clock`], so the simulator records in simulated nanoseconds while
//!   the real trainer records wall time through the same API.
//! * [`analysis`] — causal analysis over the executed task DAG: critical
//!   path + slack, achieved-vs-planned overlap ratios, idle-gap
//!   attribution, and an exact binary codec for the event log.
//! * [`detect`] — online anomaly detectors (straggler z-score, NIC
//!   degradation slope, queue-depth runaway) fed from the metrics stream.
//! * [`flight`] — an always-on bounded flight recorder: a fixed-capacity
//!   ring of compact structured events with per-category sampling and
//!   checksummed post-mortem dumps.
//! * [`history`] — an append-only run-history store (JSONL segments under
//!   a checksummed manifest) with CUSUM / Mann-Kendall change-point
//!   detection over multi-run metric series.
//! * Exporters — [`chrome`] (Chrome trace-event JSON with counter lanes and
//!   flow arrows, loadable in Perfetto), [`prometheus`] (text exposition
//!   format, with a parser for round-trip tests), and [`report`] (versioned
//!   JSON run reports).
//! * [`json`] — the dependency-free JSON document model and parser the
//!   exporters are built on.
//!
//! The crate has no dependencies and sits at the bottom of the workspace
//! graph; `sim`, `graph`, `embedding`, `exec`, and `core` all feed it.

#![warn(missing_docs)]

pub mod analysis;
pub mod chrome;
pub mod clock;
pub mod detect;
pub mod diff;
pub mod flight;
pub mod history;
pub mod json;
pub mod latency;
pub mod metrics;
pub mod prometheus;
pub mod report;
pub mod span;

pub use analysis::{DagAnalysis, DagNode, ExecutedDag, PairSpec, PlannedInterleaving};
pub use chrome::ChromeTrace;
pub use clock::{Clock, ManualClock, WallClock};
pub use detect::{Anomaly, AnomalyKind, QueueDepthDetector, SlopeDetector, StragglerDetector};
pub use diff::{snapshot_diff, MetricDelta};
pub use flight::{
    FlightCategory, FlightConfig, FlightDump, FlightEvent, FlightRecorder, FlightStats,
    SamplingConfig,
};
pub use history::{
    cusum_change_point, mann_kendall, ChangePoint, CusumConfig, HistoryError, HistoryStore,
    MannKendall, RunRecord, Shift,
};
pub use json::Json;
pub use latency::{exact_quantile, latency_bounds_ns, LatencyRecorder, SloTracker};
pub use metrics::{MetricKind, MetricsRegistry, MetricsSnapshot};
pub use report::{RunReport, RUN_REPORT_SCHEMA_VERSION};
pub use span::{SpanRecord, Tracer};
