//! Labeled metrics registry: counters, gauges, fixed-bucket histograms, and
//! clock-stamped time series.
//!
//! The registry is internally synchronized (`&self` methods) so one instance
//! can be threaded through the scheduler, the cache, and the graph passes
//! without plumbing `&mut`. All reads go through [`MetricsRegistry::snapshot`],
//! which exporters consume; the snapshot is an owned, deterministic
//! (name- and label-sorted) view.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// What a metric name measures; drives the Prometheus `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Fixed-bucket distribution.
    Histogram,
    /// Clock-stamped samples (exported as counter lanes in Chrome traces;
    /// rendered as a last-value gauge in Prometheus).
    TimeSeries,
}

/// Sorted `key=value` label pairs identifying one series of a metric.
pub type Labels = Vec<(String, String)>;

fn canon_labels(labels: &[(&str, &str)]) -> Labels {
    let mut out: Labels = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    out
}

/// A histogram with caller-fixed upper bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive upper bounds, ascending; an implicit `+Inf` bucket follows.
    pub bounds: Vec<f64>,
    /// `counts[i]` = observations `<= bounds[i]`, cumulative style is NOT
    /// used here: each slot counts its own bucket. `counts.len() ==
    /// bounds.len() + 1`, the last slot being the `+Inf` bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Total number of observations.
    pub count: u64,
}

impl Histogram {
    fn new(bounds: Vec<f64>) -> Histogram {
        let slots = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; slots],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Cumulative count of observations `<= bounds[i]`, Prometheus-style.
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0;
        self.counts
            .iter()
            .map(|&c| {
                acc += c;
                acc
            })
            .collect()
    }

    /// Mean of all observed values (exact — the registry tracks the sum),
    /// `0.0` for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 <= q <= 1.0`) by linear interpolation
    /// within the bucket containing the target rank, the standard
    /// fixed-bucket estimate. Observations in the `+Inf` bucket clamp to the
    /// largest finite bound; an empty histogram yields `0.0`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return 0.0;
        }
        let rank = q * self.count as f64;
        let mut seen = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = seen + c as f64;
            if next >= rank && c > 0 {
                let Some(&upper) = self.bounds.get(i) else {
                    // +Inf bucket: the best available point estimate.
                    return self.bounds.last().copied().unwrap_or(self.mean());
                };
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let within = ((rank - seen) / c as f64).clamp(0.0, 1.0);
                return lower + (upper - lower) * within;
            }
            seen = next;
        }
        self.bounds.last().copied().unwrap_or(self.mean())
    }
}

/// One clock-stamped sample stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    /// `(t_ns, value)` in recording order.
    pub samples: Vec<(u64, f64)>,
}

#[derive(Debug, Default)]
struct Inner {
    help: BTreeMap<String, (MetricKind, String)>,
    counters: BTreeMap<(String, Labels), u64>,
    gauges: BTreeMap<(String, Labels), f64>,
    histogram_bounds: BTreeMap<String, Vec<f64>>,
    histograms: BTreeMap<(String, Labels), Histogram>,
    series: BTreeMap<(String, Labels), TimeSeries>,
}

/// The registry. Cheap to create; share by reference.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

const DEFAULT_BOUNDS: [f64; 8] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Attaches help text to a metric name (shown in Prometheus output).
    pub fn describe(&self, name: &str, kind: MetricKind, help: &str) {
        let mut inner = self.inner.lock().unwrap();
        inner
            .help
            .insert(name.to_string(), (kind, help.to_string()));
    }

    /// Adds `delta` to a counter series, creating it at zero first.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let mut inner = self.inner.lock().unwrap();
        let key = (name.to_string(), canon_labels(labels));
        *inner.counters.entry(key).or_insert(0) += delta;
    }

    /// Reads a counter series (0 if never written).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let inner = self.inner.lock().unwrap();
        let key = (name.to_string(), canon_labels(labels));
        inner.counters.get(&key).copied().unwrap_or(0)
    }

    /// Sets a gauge series.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let mut inner = self.inner.lock().unwrap();
        let key = (name.to_string(), canon_labels(labels));
        inner.gauges.insert(key, value);
    }

    /// Reads a gauge series.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let inner = self.inner.lock().unwrap();
        let key = (name.to_string(), canon_labels(labels));
        inner.gauges.get(&key).copied()
    }

    /// Fixes the bucket upper bounds for a histogram name. Must be called
    /// before the first observation of that name; later calls are ignored.
    pub fn histogram_buckets(&self, name: &str, bounds: &[f64]) {
        let mut inner = self.inner.lock().unwrap();
        inner
            .histogram_bounds
            .entry(name.to_string())
            .or_insert_with(|| bounds.to_vec());
    }

    /// Records one observation into a histogram series. Names without
    /// declared buckets get a log-spaced default covering 1µs–10s.
    pub fn histogram_observe(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let mut inner = self.inner.lock().unwrap();
        let bounds = inner
            .histogram_bounds
            .entry(name.to_string())
            .or_insert_with(|| DEFAULT_BOUNDS.to_vec())
            .clone();
        let key = (name.to_string(), canon_labels(labels));
        inner
            .histograms
            .entry(key)
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Appends one `(t_ns, value)` sample to a time series.
    pub fn record_sample(&self, name: &str, labels: &[(&str, &str)], t_ns: u64, value: f64) {
        let mut inner = self.inner.lock().unwrap();
        let key = (name.to_string(), canon_labels(labels));
        inner
            .series
            .entry(key)
            .or_default()
            .samples
            .push((t_ns, value));
    }

    /// An owned, deterministic view of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            help: inner.help.clone(),
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            series: inner
                .series
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

/// Owned view of a registry; what exporters consume.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Help text and declared kind per metric name.
    pub help: BTreeMap<String, (MetricKind, String)>,
    /// Counter series, sorted by (name, labels).
    pub counters: Vec<((String, Labels), u64)>,
    /// Gauge series, sorted by (name, labels).
    pub gauges: Vec<((String, Labels), f64)>,
    /// Histogram series, sorted by (name, labels).
    pub histograms: Vec<((String, Labels), Histogram)>,
    /// Time series, sorted by (name, labels).
    pub series: Vec<((String, Labels), TimeSeries)>,
}

impl MetricsSnapshot {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.series.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let reg = MetricsRegistry::new();
        reg.counter_add("hits", &[("table", "user")], 2);
        reg.counter_add("hits", &[("table", "user")], 3);
        reg.counter_add("hits", &[("table", "item")], 1);
        assert_eq!(reg.counter_value("hits", &[("table", "user")]), 5);
        assert_eq!(reg.counter_value("hits", &[("table", "item")]), 1);
        assert_eq!(reg.counter_value("hits", &[("table", "absent")]), 0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = MetricsRegistry::new();
        reg.counter_add("c", &[("a", "1"), ("b", "2")], 1);
        reg.counter_add("c", &[("b", "2"), ("a", "1")], 1);
        assert_eq!(reg.counter_value("c", &[("a", "1"), ("b", "2")]), 2);
    }

    #[test]
    fn histogram_buckets_and_cumulative() {
        let reg = MetricsRegistry::new();
        reg.histogram_buckets("lat", &[1.0, 2.0]);
        for v in [0.5, 1.5, 1.5, 5.0] {
            reg.histogram_observe("lat", &[], v);
        }
        let snap = reg.snapshot();
        let (_, h) = &snap.histograms[0];
        assert_eq!(h.counts, vec![1, 2, 1]);
        assert_eq!(h.cumulative(), vec![1, 3, 4]);
        assert_eq!(h.count, 4);
        assert!((h.sum - 8.5).abs() < 1e-12);
    }

    #[test]
    fn boundary_values_fall_in_lower_bucket() {
        let reg = MetricsRegistry::new();
        reg.histogram_buckets("h", &[1.0]);
        reg.histogram_observe("h", &[], 1.0);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms[0].1.counts, vec![1, 0]);
    }

    #[test]
    fn histogram_summaries_mean_and_quantile() {
        let reg = MetricsRegistry::new();
        reg.histogram_buckets("lat", &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.5, 3.0] {
            reg.histogram_observe("lat", &[], v);
        }
        let snap = reg.snapshot();
        let h = &snap.histograms[0].1;
        assert!((h.mean() - 1.625).abs() < 1e-12);
        // Median rank 2.0 interpolates halfway into the (1, 2] bucket.
        assert!((h.quantile(0.5) - 1.5).abs() < 1e-12);
        // p100 interpolates to the top of the occupied (2, 4] bucket.
        assert!((h.quantile(1.0) - 4.0).abs() < 1e-12);
        assert_eq!(h.quantile(0.0), 0.0, "rank 0 sits at the bucket floor");

        // Overflow observations clamp to the largest finite bound.
        let reg = MetricsRegistry::new();
        reg.histogram_buckets("big", &[1.0]);
        reg.histogram_observe("big", &[], 50.0);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms[0].1.quantile(0.99), 1.0);

        // Empty histograms summarize to zero, not NaN.
        let empty = Histogram {
            bounds: vec![1.0],
            counts: vec![0, 0],
            sum: 0.0,
            count: 0,
        };
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.quantile(0.5), 0.0);
    }

    #[test]
    fn quantile_handles_empty_and_single_sample_histograms() {
        // Every quantile of an empty histogram is 0.0, never NaN, and no
        // quantile in [0, 1] panics.
        let empty = Histogram {
            bounds: vec![1.0, 2.0],
            counts: vec![0, 0, 0],
            sum: 0.0,
            count: 0,
        };
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(empty.quantile(q), 0.0, "q={q}");
        }

        // A single sample pins every nonzero quantile inside its bucket;
        // interpolation cannot escape the occupied bucket's bounds.
        let reg = MetricsRegistry::new();
        reg.histogram_buckets("one", &[1.0, 2.0]);
        reg.histogram_observe("one", &[], 1.5);
        let snap = reg.snapshot();
        let h = &snap.histograms[0].1;
        for q in [0.01, 0.5, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!((1.0..=2.0).contains(&v), "q={q} gave {v}");
        }
        assert_eq!(h.quantile(0.0), 1.0, "rank 0 sits at the bucket floor");
        assert!(
            (h.mean() - 1.5).abs() < 1e-12,
            "mean is exact, not bucketed"
        );

        // A single sample in the +Inf bucket with no finite bound at all:
        // the mean is the only available point estimate.
        let unbounded = Histogram {
            bounds: vec![],
            counts: vec![1],
            sum: 7.0,
            count: 1,
        };
        assert_eq!(unbounded.quantile(0.5), 7.0);
    }

    #[test]
    fn mean_saturates_instead_of_overflowing() {
        // Huge observations accumulate in an f64 sum: the mean loses
        // precision gracefully (IEEE saturation to +Inf at the extreme)
        // rather than wrapping the way an integer accumulator would.
        let mut h = Histogram {
            bounds: vec![1.0],
            counts: vec![0, 0],
            sum: 0.0,
            count: 0,
        };
        for _ in 0..4 {
            h.sum += f64::MAX / 2.0;
            h.count += 1;
            h.counts[1] += 1;
        }
        assert!(h.sum.is_infinite() && h.sum > 0.0);
        assert!(h.mean().is_infinite(), "mean follows the saturated sum");
        // And a count of u64::MAX with a finite sum stays finite and tiny.
        let wide = Histogram {
            bounds: vec![1.0],
            counts: vec![0, 0],
            sum: 1.0,
            count: u64::MAX,
        };
        let m = wide.mean();
        assert!(m.is_finite() && (0.0..1e-18).contains(&m));
    }

    #[test]
    fn series_keep_recording_order() {
        let reg = MetricsRegistry::new();
        reg.record_sample("sm_busy", &[("gpu", "0")], 10, 0.5);
        reg.record_sample("sm_busy", &[("gpu", "0")], 20, 0.9);
        let snap = reg.snapshot();
        assert_eq!(snap.series[0].1.samples, vec![(10, 0.5), (20, 0.9)]);
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let reg = MetricsRegistry::new();
        reg.gauge_set("z", &[], 1.0);
        reg.gauge_set("a", &[("k", "2")], 2.0);
        reg.gauge_set("a", &[("k", "1")], 3.0);
        let snap = reg.snapshot();
        let names: Vec<_> = snap
            .gauges
            .iter()
            .map(|((n, l), _)| (n.clone(), l.clone()))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(snap, reg.snapshot());
    }
}
