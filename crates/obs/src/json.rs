//! Dependency-free JSON document model, writer, and parser.
//!
//! The exporters in this crate hand-roll JSON because the build container has
//! no registry access (see `vendor/README.md`); this module centralizes the
//! escaping and number-formatting rules so every artifact stays valid. Object
//! keys preserve insertion order, which keeps exported documents stable for
//! golden tests.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer, written without a fraction (exact past 2^53,
    /// unlike `Num` — nanosecond timestamps need this).
    UInt(u64),
    /// Signed integer, written without a fraction.
    Int(i64),
    /// Finite float. Non-finite values are written as `null`.
    Num(f64),
    /// String (escaped on write).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion order is preserved on write.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content widened to `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(u) => Some(*u as f64),
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Unsigned integer content, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// Serializes to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => {
                out.push_str(&u.to_string());
            }
            Json::Int(i) => {
                out.push_str(&i.to_string());
            }
            Json::Num(x) => write_f64(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u32> for Json {
    fn from(u: u32) -> Json {
        Json::UInt(u as u64)
    }
}
impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::UInt(u)
    }
}
impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::UInt(u as u64)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

/// Writes a finite float with enough precision to round-trip; non-finite
/// values (which JSON cannot represent) become `null`.
fn write_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    if x == x.trunc() && x.abs() < 1e15 {
        // Integral floats print as `12.0` so they re-parse as floats.
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Intended for validating this crate's own
/// exports in tests; it accepts standard JSON, without extensions.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

/// Error from [`parse`], with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not needed for our exports.
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_parses_round_trip() {
        let doc = Json::obj([
            ("name", Json::str("fig11 \"quick\"\n")),
            ("count", Json::UInt(u64::MAX)),
            ("delta", Json::Int(-3)),
            ("ratio", Json::Num(0.25)),
            ("whole", Json::Num(2.0)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::Arr(vec![Json::UInt(1), Json::Num(1.5)])),
        ]);
        let text = doc.to_json();
        let back = parse(&text).expect("round trip");
        assert_eq!(back, doc);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_json(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn preserves_key_order() {
        let doc = Json::obj([("z", Json::UInt(1)), ("a", Json::UInt(2))]);
        assert_eq!(doc.to_json(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn parses_escapes_and_whitespace() {
        let doc = parse(" { \"k\" : [ \"a\\u0041\\n\" , -2.5e1 ] } ").unwrap();
        let items = doc.get("k").unwrap().items().unwrap();
        assert_eq!(items[0].as_str(), Some("aA\n"));
        assert_eq!(items[1].as_f64(), Some(-25.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn integral_float_keeps_fraction_marker() {
        assert_eq!(Json::Num(3.0).to_json(), "3.0");
        assert_eq!(Json::UInt(3).to_json(), "3");
    }
}
