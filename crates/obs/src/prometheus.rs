//! Prometheus text exposition format: renderer and (for round-trip tests)
//! parser.
//!
//! [`render`] turns a [`MetricsSnapshot`] into the `text/plain; version=0.0.4`
//! format: `# HELP`/`# TYPE` headers, one `name{labels} value` line per
//! series, and the `_bucket`/`_sum`/`_count` expansion for histograms
//! (cumulative `le` buckets ending in `+Inf`). Time series are flattened to
//! their final value and exposed as gauges, since the exposition format is a
//! point-in-time scrape.
//!
//! Label cardinality is capped per metric family ([`RenderOptions`],
//! default 256 series): snapshot sections are sorted, so the surviving
//! series are deterministic, and every eviction is counted in an
//! `obs_dropped_series_total{family=...}` counter instead of silently
//! growing the scrape without bound.

use crate::metrics::{Labels, MetricKind, MetricsSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renderer knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenderOptions {
    /// Maximum series rendered per metric family (at least 1); the rest
    /// are evicted and counted in `obs_dropped_series_total`.
    pub max_series_per_family: usize,
}

impl Default for RenderOptions {
    fn default() -> RenderOptions {
        RenderOptions {
            max_series_per_family: 256,
        }
    }
}

/// Renders a snapshot with the default [`RenderOptions`].
pub fn render(snapshot: &MetricsSnapshot) -> String {
    render_with(snapshot, &RenderOptions::default())
}

/// Renders a snapshot in Prometheus text exposition format.
pub fn render_with(snapshot: &MetricsSnapshot, options: &RenderOptions) -> String {
    let cap = options.max_series_per_family.max(1);
    let mut out = String::new();
    let mut last_header: Option<String> = None;
    let mut header = |out: &mut String, name: &str, default_kind: MetricKind| {
        if last_header.as_deref() == Some(name) {
            return;
        }
        last_header = Some(name.to_string());
        let (kind, help) = snapshot
            .help
            .get(name)
            .cloned()
            .unwrap_or((default_kind, String::new()));
        if !help.is_empty() {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&help));
        }
        let _ = writeln!(out, "# TYPE {name} {}", kind_str(kind));
    };
    // Per-family admission: sections are sorted maps, so the first `cap`
    // series of a family (by label order) survive deterministically.
    let mut kept: BTreeMap<String, usize> = BTreeMap::new();
    let mut dropped: BTreeMap<String, u64> = BTreeMap::new();
    let mut admit = |name: &str| -> bool {
        let n = kept.entry(name.to_string()).or_insert(0);
        if *n < cap {
            *n += 1;
            true
        } else {
            *dropped.entry(name.to_string()).or_insert(0) += 1;
            false
        }
    };

    for ((name, labels), value) in &snapshot.counters {
        if !admit(name) {
            continue;
        }
        header(&mut out, name, MetricKind::Counter);
        let _ = writeln!(out, "{name}{} {value}", render_labels(labels, &[]));
    }
    for ((name, labels), value) in &snapshot.gauges {
        if !admit(name) {
            continue;
        }
        header(&mut out, name, MetricKind::Gauge);
        let _ = writeln!(
            out,
            "{name}{} {}",
            render_labels(labels, &[]),
            render_value(*value)
        );
    }
    for ((name, labels), series) in &snapshot.series {
        if !admit(name) {
            continue;
        }
        header(&mut out, name, MetricKind::Gauge);
        let last = series.samples.last().map(|&(_, v)| v).unwrap_or(0.0);
        let _ = writeln!(
            out,
            "{name}{} {}",
            render_labels(labels, &[]),
            render_value(last)
        );
    }
    for ((name, labels), histogram) in &snapshot.histograms {
        if !admit(name) {
            continue;
        }
        header(&mut out, name, MetricKind::Histogram);
        let cumulative = histogram.cumulative();
        for (i, &bound) in histogram.bounds.iter().enumerate() {
            let _ = writeln!(
                out,
                "{name}_bucket{} {}",
                render_labels(labels, &[("le", &render_value(bound))]),
                cumulative[i]
            );
        }
        let _ = writeln!(
            out,
            "{name}_bucket{} {}",
            render_labels(labels, &[("le", "+Inf")]),
            histogram.count
        );
        let _ = writeln!(
            out,
            "{name}_sum{} {}",
            render_labels(labels, &[]),
            render_value(histogram.sum)
        );
        let _ = writeln!(
            out,
            "{name}_count{} {}",
            render_labels(labels, &[]),
            histogram.count
        );
    }
    if !dropped.is_empty() {
        let _ = writeln!(
            out,
            "# HELP obs_dropped_series_total Series evicted by the per-family cardinality cap"
        );
        let _ = writeln!(out, "# TYPE obs_dropped_series_total counter");
        for (family, count) in &dropped {
            let _ = writeln!(
                out,
                "obs_dropped_series_total{} {count}",
                render_labels(&Labels::default(), &[("family", family)])
            );
        }
    }
    out
}

fn kind_str(kind: MetricKind) -> &'static str {
    match kind {
        MetricKind::Counter => "counter",
        MetricKind::Gauge | MetricKind::TimeSeries => "gauge",
        MetricKind::Histogram => "histogram",
    }
}

fn render_value(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_string()
    } else if x == f64::INFINITY {
        "+Inf".to_string()
    } else if x == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{x}")
    }
}

fn render_labels(labels: &Labels, extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    parts.extend(
        extra
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))),
    );
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name (including `_bucket`/`_sum`/`_count` suffixes).
    pub name: String,
    /// Label pairs in appearance order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// A parsed exposition document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PromDoc {
    /// `# TYPE` declarations in order.
    pub types: Vec<(String, String)>,
    /// Sample lines in order.
    pub samples: Vec<PromSample>,
}

impl PromDoc {
    /// First sample with this exact name and label subset.
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&PromSample> {
        self.samples.iter().find(|s| {
            s.name == name
                && labels
                    .iter()
                    .all(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
        })
    }
}

/// Parses the text exposition format produced by [`render`]. Strict enough
/// to catch malformed output in round-trip tests.
pub fn parse(input: &str) -> Result<PromDoc, String> {
    let mut doc = PromDoc::default();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or("").to_string();
            let kind = parts.next().unwrap_or("").trim().to_string();
            if name.is_empty() || kind.is_empty() {
                return Err(format!("line {}: malformed TYPE", lineno + 1));
            }
            doc.types.push((name, kind));
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        doc.samples.push(parse_sample(line, lineno + 1)?);
    }
    Ok(doc)
}

fn parse_sample(line: &str, lineno: usize) -> Result<PromSample, String> {
    let err = |msg: &str| format!("line {lineno}: {msg}");
    let (name_and_labels, value_text) = match line.find('}') {
        Some(close) => {
            let (head, tail) = line.split_at(close + 1);
            (head, tail.trim())
        }
        None => {
            let mut parts = line.splitn(2, ' ');
            (
                parts.next().unwrap(),
                parts.next().ok_or_else(|| err("missing value"))?.trim(),
            )
        }
    };
    let (name, labels) = match name_and_labels.find('{') {
        Some(open) => {
            if !name_and_labels.ends_with('}') {
                return Err(err("unterminated label set"));
            }
            let name = &name_and_labels[..open];
            let body = &name_and_labels[open + 1..name_and_labels.len() - 1];
            (name.to_string(), parse_labels(body, lineno)?)
        }
        None => (name_and_labels.to_string(), Vec::new()),
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(err("bad metric name"));
    }
    let value = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        text => text.parse::<f64>().map_err(|_| err("bad value"))?,
    };
    Ok(PromSample {
        name,
        labels,
        value,
    })
}

fn parse_labels(body: &str, lineno: usize) -> Result<Vec<(String, String)>, String> {
    let err = |msg: &str| format!("line {lineno}: {msg}");
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or_else(|| err("label missing '='"))?;
        let key = rest[..eq].trim().to_string();
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(err("label value must be quoted"));
        }
        rest = &rest[1..];
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut consumed = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    _ => return Err(err("bad escape in label value")),
                },
                '"' => {
                    consumed = Some(i + 1);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = consumed.ok_or_else(|| err("unterminated label value"))?;
        labels.push((key, value));
        rest = rest[end..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err(err("expected ',' between labels"));
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn renders_and_parses_all_metric_kinds() {
        let reg = MetricsRegistry::new();
        reg.describe("cache_hits_total", MetricKind::Counter, "HybridHash hits");
        reg.counter_add("cache_hits_total", &[("storage", "hot")], 42);
        reg.gauge_set("hot_occupancy", &[], 0.75);
        reg.histogram_buckets("task_secs", &[0.001, 0.01]);
        reg.histogram_observe("task_secs", &[("kind", "comm")], 0.005);
        reg.histogram_observe("task_secs", &[("kind", "comm")], 0.5);
        reg.record_sample("sm_busy", &[("gpu", "0")], 10, 0.25);
        reg.record_sample("sm_busy", &[("gpu", "0")], 20, 0.5);

        let text = render(&reg.snapshot());
        let doc = parse(&text).expect("round trip");

        assert!(doc
            .types
            .contains(&("cache_hits_total".to_string(), "counter".to_string())));
        assert!(text.contains("# HELP cache_hits_total HybridHash hits"));
        let hits = doc
            .find("cache_hits_total", &[("storage", "hot")])
            .expect("counter present");
        assert_eq!(hits.value, 42.0);
        assert_eq!(doc.find("hot_occupancy", &[]).unwrap().value, 0.75);
        // Time series flatten to their last value.
        assert_eq!(doc.find("sm_busy", &[("gpu", "0")]).unwrap().value, 0.5);
        // Histogram: cumulative buckets with +Inf, sum, count.
        let inf = doc
            .find("task_secs_bucket", &[("le", "+Inf")])
            .expect("+Inf bucket");
        assert_eq!(inf.value, 2.0);
        assert_eq!(
            doc.find("task_secs_bucket", &[("le", "0.01")])
                .unwrap()
                .value,
            1.0
        );
        assert_eq!(doc.find("task_secs_count", &[]).unwrap().value, 2.0);
        assert!((doc.find("task_secs_sum", &[]).unwrap().value - 0.505).abs() < 1e-12);
    }

    #[test]
    fn labeled_histogram_series_round_trip_independently() {
        // One histogram name, three label sets (two labels each): every
        // series keeps its own buckets/sum/count through render + parse, and
        // the TYPE header is emitted exactly once.
        let reg = MetricsRegistry::new();
        reg.describe("stage_secs", MetricKind::Histogram, "Stage durations");
        reg.histogram_buckets("stage_secs", &[0.1, 1.0]);
        reg.histogram_observe("stage_secs", &[("class", "compute"), ("node", "0")], 0.05);
        reg.histogram_observe("stage_secs", &[("class", "compute"), ("node", "0")], 0.5);
        reg.histogram_observe("stage_secs", &[("class", "comm"), ("node", "0")], 2.0);
        reg.histogram_observe("stage_secs", &[("class", "comm"), ("node", "1")], 0.5);

        let text = render(&reg.snapshot());
        let doc = parse(&text).expect("round trip");

        assert_eq!(
            text.matches("# TYPE stage_secs histogram").count(),
            1,
            "one TYPE header for all series of a name"
        );
        let compute_count = doc
            .find("stage_secs_count", &[("class", "compute"), ("node", "0")])
            .unwrap();
        assert_eq!(compute_count.value, 2.0);
        let comm0_inf = doc
            .find(
                "stage_secs_bucket",
                &[("class", "comm"), ("node", "0"), ("le", "+Inf")],
            )
            .unwrap();
        assert_eq!(comm0_inf.value, 1.0);
        // The 2.0 observation overflows every finite bucket of comm/node=0.
        assert_eq!(
            doc.find(
                "stage_secs_bucket",
                &[("class", "comm"), ("node", "0"), ("le", "1")],
            )
            .unwrap()
            .value,
            0.0
        );
        assert_eq!(
            doc.find(
                "stage_secs_bucket",
                &[("class", "comm"), ("node", "1"), ("le", "1")],
            )
            .unwrap()
            .value,
            1.0
        );
        let comm1_sum = doc
            .find("stage_secs_sum", &[("class", "comm"), ("node", "1")])
            .unwrap();
        assert!((comm1_sum.value - 0.5).abs() < 1e-12);
        // Exactly 3 series x (2 finite + 1 inf bucket + sum + count) lines.
        let lines = doc
            .samples
            .iter()
            .filter(|s| s.name.starts_with("stage_secs"))
            .count();
        assert_eq!(lines, 15);
    }

    #[test]
    fn label_escaping_round_trips() {
        let reg = MetricsRegistry::new();
        reg.counter_add("c", &[("model", "w\"d\\l\nx")], 1);
        let text = render(&reg.snapshot());
        let doc = parse(&text).unwrap();
        assert_eq!(doc.samples[0].labels[0].1, "w\"d\\l\nx");
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse("name{le=0.5} 1").is_err()); // unquoted label
        assert!(parse("na me 1").is_err()); // space in name
        assert!(parse("name abc").is_err()); // bad value
        assert!(parse("name{k=\"v\"").is_err()); // unterminated
    }

    #[test]
    fn per_family_cap_evicts_and_counts_drops() {
        let reg = MetricsRegistry::new();
        for i in 0..10 {
            reg.gauge_set("wide_family", &[("shard", &format!("{i:02}"))], i as f64);
        }
        reg.gauge_set("small_family", &[], 1.0);

        let text = render_with(
            &reg.snapshot(),
            &RenderOptions {
                max_series_per_family: 4,
            },
        );
        let doc = parse(&text).expect("round trip");
        let wide = doc
            .samples
            .iter()
            .filter(|s| s.name == "wide_family")
            .count();
        assert_eq!(wide, 4, "first four series by label order survive");
        assert!(doc.find("wide_family", &[("shard", "03")]).is_some());
        assert!(doc.find("wide_family", &[("shard", "04")]).is_none());
        assert_eq!(
            doc.find("obs_dropped_series_total", &[("family", "wide_family")])
                .expect("drop counter present")
                .value,
            6.0
        );
        assert!(
            doc.find("small_family", &[]).is_some(),
            "other families untouched"
        );
        assert!(doc.types.contains(&(
            "obs_dropped_series_total".to_string(),
            "counter".to_string()
        )));
    }

    #[test]
    fn default_cap_is_256_series_per_family() {
        let reg = MetricsRegistry::new();
        for i in 0..300 {
            reg.counter_add("big", &[("k", &format!("{i:04}"))], 1);
        }
        let doc = parse(&render(&reg.snapshot())).unwrap();
        assert_eq!(doc.samples.iter().filter(|s| s.name == "big").count(), 256);
        assert_eq!(
            doc.find("obs_dropped_series_total", &[("family", "big")])
                .unwrap()
                .value,
            44.0
        );
    }

    #[test]
    fn cap_is_absent_when_nothing_drops() {
        let reg = MetricsRegistry::new();
        reg.gauge_set("g", &[], 1.0);
        let text = render(&reg.snapshot());
        assert!(!text.contains("obs_dropped_series_total"));
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        let reg = MetricsRegistry::new();
        let text = render(&reg.snapshot());
        assert!(text.is_empty());
        assert_eq!(parse(&text).unwrap().samples.len(), 0);
    }
}
