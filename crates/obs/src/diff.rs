//! Snapshot diffing: relative deltas between two metric snapshots.
//!
//! The perf-gate compares a fresh run against a committed baseline; this
//! module provides the value-level comparison primitives it (and any other
//! regression tooling) builds on. A diff is computed over the *union* of the
//! two snapshots' counter and gauge series, so metrics that appear or
//! disappear between runs are surfaced rather than silently dropped.

use crate::metrics::{Labels, MetricsSnapshot};
use std::collections::BTreeMap;

/// Relative change `new / old - 1`, or `None` when the baseline is zero or
/// either side is non-finite (a ratio against zero is meaningless, not
/// infinite regression).
pub fn rel_change(old: f64, new: f64) -> Option<f64> {
    if old == 0.0 || !old.is_finite() || !new.is_finite() {
        return None;
    }
    Some(new / old - 1.0)
}

/// One metric series' before/after values.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name.
    pub name: String,
    /// Label set of the series.
    pub labels: Labels,
    /// Baseline value (`None` when the series is new).
    pub old: Option<f64>,
    /// Current value (`None` when the series disappeared).
    pub new: Option<f64>,
}

impl MetricDelta {
    /// Relative change of the series, when both sides exist and the
    /// baseline is nonzero.
    pub fn rel_change(&self) -> Option<f64> {
        match (self.old, self.new) {
            (Some(o), Some(n)) => rel_change(o, n),
            _ => None,
        }
    }
}

fn scalar_series(snapshot: &MetricsSnapshot) -> BTreeMap<(String, Labels), f64> {
    let mut out: BTreeMap<(String, Labels), f64> = BTreeMap::new();
    for ((name, labels), value) in &snapshot.counters {
        out.insert((name.clone(), labels.clone()), *value as f64);
    }
    for ((name, labels), value) in &snapshot.gauges {
        out.insert((name.clone(), labels.clone()), *value);
    }
    // Distributions participate by observation count: a histogram or time
    // series present in only one run must show up as added/removed rather
    // than vanish from the diff, and a count change flags drift worth a
    // closer look even though the shape itself is not a scalar.
    for ((name, labels), hist) in &snapshot.histograms {
        out.insert((name.clone(), labels.clone()), hist.count as f64);
    }
    for ((name, labels), series) in &snapshot.series {
        out.insert((name.clone(), labels.clone()), series.samples.len() as f64);
    }
    out
}

/// Diffs the series of two snapshots over their union, sorted by `(name,
/// labels)`. Counters and gauges compare by value; histograms and time
/// series compare by observation count, so a distribution that appears,
/// disappears, or changes population between runs is surfaced (summarize
/// via [`crate::metrics::Histogram::mean`] and a gauge when the diff should
/// track a distribution's *value* instead).
pub fn snapshot_diff(old: &MetricsSnapshot, new: &MetricsSnapshot) -> Vec<MetricDelta> {
    let old_vals = scalar_series(old);
    let new_vals = scalar_series(new);
    let mut keys: Vec<&(String, Labels)> = old_vals.keys().chain(new_vals.keys()).collect();
    keys.sort();
    keys.dedup();
    keys.into_iter()
        .map(|key| MetricDelta {
            name: key.0.clone(),
            labels: key.1.clone(),
            old: old_vals.get(key).copied(),
            new: new_vals.get(key).copied(),
        })
        .collect()
}

/// The deltas whose absolute relative change exceeds `threshold`, plus every
/// series that appeared or disappeared (those have no ratio but always
/// deserve attention).
pub fn changed(deltas: &[MetricDelta], threshold: f64) -> Vec<MetricDelta> {
    deltas
        .iter()
        .filter(|d| match (d.old, d.new) {
            (Some(_), Some(_)) => d.rel_change().is_none_or(|r| r.abs() > threshold),
            _ => true,
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn rel_change_guards_zero_and_non_finite() {
        assert_eq!(rel_change(100.0, 110.0), Some(0.10000000000000009));
        assert_eq!(rel_change(0.0, 5.0), None);
        assert_eq!(rel_change(f64::NAN, 5.0), None);
        assert_eq!(rel_change(5.0, f64::INFINITY), None);
        assert!((rel_change(200.0, 100.0).unwrap() + 0.5).abs() < 1e-12);
    }

    #[test]
    fn diff_covers_union_of_series() {
        let a = MetricsRegistry::new();
        a.gauge_set("ips", &[], 100.0);
        a.counter_add("tasks", &[("kind", "gpu-sm")], 10);
        a.gauge_set("gone", &[], 1.0);
        let b = MetricsRegistry::new();
        b.gauge_set("ips", &[], 90.0);
        b.counter_add("tasks", &[("kind", "gpu-sm")], 12);
        b.gauge_set("fresh", &[], 2.0);

        let deltas = snapshot_diff(&a.snapshot(), &b.snapshot());
        assert_eq!(deltas.len(), 4);
        let by_name = |n: &str| deltas.iter().find(|d| d.name == n).unwrap();
        assert_eq!(by_name("fresh").old, None);
        assert_eq!(by_name("gone").new, None);
        assert!((by_name("ips").rel_change().unwrap() + 0.1).abs() < 1e-12);
        assert!((by_name("tasks").rel_change().unwrap() - 0.2).abs() < 1e-12);
        // Deterministically sorted by (name, labels).
        let names: Vec<_> = deltas.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["fresh", "gone", "ips", "tasks"]);
    }

    #[test]
    fn distributions_present_in_only_one_run_are_reported() {
        let a = MetricsRegistry::new();
        a.histogram_buckets("latency", &[0.1, 1.0]);
        a.histogram_observe("latency", &[], 0.05);
        a.histogram_observe("latency", &[], 0.5);
        a.record_sample("sm_busy", &[], 10, 0.8);
        let b = MetricsRegistry::new();
        b.histogram_buckets("retries", &[1.0, 4.0]);
        b.histogram_observe("retries", &[], 2.0);

        let deltas = snapshot_diff(&a.snapshot(), &b.snapshot());
        let names: Vec<_> = deltas.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["latency", "retries", "sm_busy"]);
        let by_name = |n: &str| deltas.iter().find(|d| d.name == n).unwrap();
        // Removed histogram and series: old observation count, no new side.
        assert_eq!(by_name("latency").old, Some(2.0));
        assert_eq!(by_name("latency").new, None);
        assert_eq!(by_name("sm_busy").old, Some(1.0));
        assert_eq!(by_name("sm_busy").new, None);
        // Added histogram: no baseline, new observation count.
        assert_eq!(by_name("retries").old, None);
        assert_eq!(by_name("retries").new, Some(1.0));
        // All three survive the changed() filter as births/deaths.
        assert_eq!(changed(&deltas, 0.5).len(), 3);
    }

    #[test]
    fn changed_filters_by_threshold_and_keeps_births_and_deaths() {
        let a = MetricsRegistry::new();
        a.gauge_set("stable", &[], 100.0);
        a.gauge_set("moved", &[], 100.0);
        a.gauge_set("gone", &[], 1.0);
        let b = MetricsRegistry::new();
        b.gauge_set("stable", &[], 100.5);
        b.gauge_set("moved", &[], 120.0);
        let deltas = snapshot_diff(&a.snapshot(), &b.snapshot());
        let hot = changed(&deltas, 0.05);
        let names: Vec<_> = hot.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["gone", "moved"]);
    }
}
