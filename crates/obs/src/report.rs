//! Versioned JSON run reports.
//!
//! A [`RunReport`] is the machine-readable artifact of one reproduction run:
//! an envelope (schema version, experiment, scale) around arbitrary payload
//! documents (e.g. `TrainingReport::to_json` output per framework) and an
//! optional metrics dump. The schema is pinned by [`RunReport::validate`],
//! which both the exporter tests and downstream consumers use; bump
//! [`RUN_REPORT_SCHEMA_VERSION`] whenever a required field changes shape.

use crate::json::{self, Json};
use crate::metrics::{MetricsSnapshot, TimeSeries};

/// Version of the envelope layout produced by [`RunReport::to_json`].
pub const RUN_REPORT_SCHEMA_VERSION: u64 = 1;

/// Identifies run-report documents among other JSON artifacts.
pub const RUN_REPORT_KIND: &str = "picasso.run_report";

/// One run's machine-readable report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Experiment name, e.g. `fig11`.
    pub experiment: String,
    /// Scale label, e.g. `quick` or `full`.
    pub scale: String,
    /// Payload documents, one per framework/model measured.
    pub reports: Vec<Json>,
    /// Optional metrics dump for the run.
    pub metrics: Option<Json>,
}

impl RunReport {
    /// An empty report for an experiment.
    pub fn new(experiment: impl Into<String>, scale: impl Into<String>) -> RunReport {
        RunReport {
            experiment: experiment.into(),
            scale: scale.into(),
            reports: Vec::new(),
            metrics: None,
        }
    }

    /// Appends one payload document.
    pub fn push(&mut self, payload: Json) {
        self.reports.push(payload);
    }

    /// Attaches a metrics snapshot dump.
    pub fn set_metrics(&mut self, snapshot: &MetricsSnapshot) {
        self.metrics = Some(metrics_json(snapshot));
    }

    /// Serializes the versioned envelope.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            (
                "schema_version".to_string(),
                Json::UInt(RUN_REPORT_SCHEMA_VERSION),
            ),
            ("kind".to_string(), Json::str(RUN_REPORT_KIND)),
            ("experiment".to_string(), Json::str(&self.experiment)),
            ("scale".to_string(), Json::str(&self.scale)),
            ("reports".to_string(), Json::Arr(self.reports.clone())),
        ];
        if let Some(metrics) = &self.metrics {
            fields.push(("metrics".to_string(), metrics.clone()));
        }
        Json::Obj(fields).to_json()
    }

    /// Checks that `text` is a valid run-report document of the current
    /// schema version. Returns the parsed document on success.
    pub fn validate(text: &str) -> Result<Json, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        let version = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version")?;
        if version != RUN_REPORT_SCHEMA_VERSION {
            return Err(format!(
                "schema_version {version} != supported {RUN_REPORT_SCHEMA_VERSION}"
            ));
        }
        match doc.get("kind").and_then(Json::as_str) {
            Some(RUN_REPORT_KIND) => {}
            other => return Err(format!("bad kind: {other:?}")),
        }
        for key in ["experiment", "scale"] {
            if doc.get(key).and_then(Json::as_str).is_none() {
                return Err(format!("missing string field '{key}'"));
            }
        }
        let reports = doc
            .get("reports")
            .and_then(Json::items)
            .ok_or("missing reports array")?;
        for (i, payload) in reports.iter().enumerate() {
            if !matches!(payload, Json::Obj(_)) {
                return Err(format!("reports[{i}] is not an object"));
            }
        }
        Ok(doc)
    }
}

/// Serializes a metrics snapshot as a JSON object with one section per
/// metric family.
pub fn metrics_json(snapshot: &MetricsSnapshot) -> Json {
    fn labels_json(labels: &[(String, String)]) -> Json {
        Json::Obj(
            labels
                .iter()
                .map(|(k, v)| (k.clone(), Json::str(v.as_str())))
                .collect(),
        )
    }
    fn series_json(series: &TimeSeries) -> Json {
        Json::Arr(
            series
                .samples
                .iter()
                .map(|&(t, v)| Json::Arr(vec![Json::UInt(t), Json::Num(v)]))
                .collect(),
        )
    }
    Json::obj([
        (
            "counters",
            Json::Arr(
                snapshot
                    .counters
                    .iter()
                    .map(|((name, labels), value)| {
                        Json::obj([
                            ("name", Json::str(name.as_str())),
                            ("labels", labels_json(labels)),
                            ("value", Json::UInt(*value)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "gauges",
            Json::Arr(
                snapshot
                    .gauges
                    .iter()
                    .map(|((name, labels), value)| {
                        Json::obj([
                            ("name", Json::str(name.as_str())),
                            ("labels", labels_json(labels)),
                            ("value", Json::Num(*value)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "histograms",
            Json::Arr(
                snapshot
                    .histograms
                    .iter()
                    .map(|((name, labels), h)| {
                        Json::obj([
                            ("name", Json::str(name.as_str())),
                            ("labels", labels_json(labels)),
                            (
                                "bounds",
                                Json::Arr(h.bounds.iter().map(|&b| Json::Num(b)).collect()),
                            ),
                            (
                                "counts",
                                Json::Arr(h.counts.iter().map(|&c| Json::UInt(c)).collect()),
                            ),
                            ("sum", Json::Num(h.sum)),
                            ("count", Json::UInt(h.count)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "series",
            Json::Arr(
                snapshot
                    .series
                    .iter()
                    .map(|((name, labels), series)| {
                        Json::obj([
                            ("name", Json::str(name.as_str())),
                            ("labels", labels_json(labels)),
                            ("samples", series_json(series)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn envelope_round_trips_and_validates() {
        let mut report = RunReport::new("fig11", "quick");
        report.push(Json::obj([("framework", Json::str("Picasso"))]));
        let reg = MetricsRegistry::new();
        reg.counter_add("hits", &[], 3);
        reg.record_sample("busy", &[], 7, 0.5);
        report.set_metrics(&reg.snapshot());

        let text = report.to_json();
        let doc = RunReport::validate(&text).expect("valid document");
        assert_eq!(doc.get("experiment").and_then(Json::as_str), Some("fig11"));
        let metrics = doc.get("metrics").expect("metrics present");
        let counters = metrics.get("counters").and_then(Json::items).unwrap();
        assert_eq!(counters[0].get("value").and_then(Json::as_u64), Some(3));
        let series = metrics.get("series").and_then(Json::items).unwrap();
        let samples = series[0].get("samples").and_then(Json::items).unwrap();
        assert_eq!(samples[0].items().unwrap()[0].as_u64(), Some(7));
    }

    #[test]
    fn validate_pins_the_schema() {
        assert!(RunReport::validate("not json").is_err());
        assert!(RunReport::validate("{}").is_err());
        let wrong_version = r#"{"schema_version":999,"kind":"picasso.run_report","experiment":"e","scale":"s","reports":[]}"#;
        assert!(RunReport::validate(wrong_version)
            .unwrap_err()
            .contains("schema_version"));
        let wrong_kind =
            r#"{"schema_version":1,"kind":"other","experiment":"e","scale":"s","reports":[]}"#;
        assert!(RunReport::validate(wrong_kind)
            .unwrap_err()
            .contains("kind"));
        let bad_payload = r#"{"schema_version":1,"kind":"picasso.run_report","experiment":"e","scale":"s","reports":[1]}"#;
        assert!(RunReport::validate(bad_payload)
            .unwrap_err()
            .contains("reports[0]"));
        let minimal = r#"{"schema_version":1,"kind":"picasso.run_report","experiment":"e","scale":"s","reports":[]}"#;
        assert!(RunReport::validate(minimal).is_ok());
    }
}
