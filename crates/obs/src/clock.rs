//! Explicit clocks for span timing.
//!
//! Spans are always timed against a [`Clock`] passed in by the caller rather
//! than an ambient time source: the discrete-event simulator stamps spans
//! with *simulated* nanoseconds via [`ManualClock`], while the real CPU
//! trainer uses [`WallClock`]. Keeping the clock explicit is what lets the
//! same tracing code produce deterministic output under simulation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond clock.
pub trait Clock {
    /// Current time in nanoseconds since the clock's origin.
    fn now_ns(&self) -> u64;
}

/// Wall time relative to clock construction.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose origin is now.
    pub fn new() -> WallClock {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A clock advanced explicitly by its owner — the simulator sets it to the
/// current event time before recording spans.
#[derive(Debug, Default)]
pub struct ManualClock {
    ns: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// A manual clock starting at `ns`.
    pub fn at(ns: u64) -> ManualClock {
        ManualClock {
            ns: AtomicU64::new(ns),
        }
    }

    /// Moves the clock to `ns`. Monotonicity is the caller's contract;
    /// moving backwards is permitted (e.g. replaying a second run) but spans
    /// straddling the jump will be nonsensical.
    pub fn set_ns(&self, ns: u64) {
        self.ns.store(ns, Ordering::Relaxed);
    }

    /// Advances the clock by `delta` nanoseconds.
    pub fn advance_ns(&self, delta: u64) {
        self.ns.fetch_add(delta, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }
}

impl<C: Clock + ?Sized> Clock for &C {
    fn now_ns(&self) -> u64 {
        (**self).now_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_settable() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_ns(), 0);
        clock.set_ns(42);
        assert_eq!(clock.now_ns(), 42);
        clock.advance_ns(8);
        assert_eq!(clock.now_ns(), 50);
        assert_eq!(ManualClock::at(7).now_ns(), 7);
    }

    #[test]
    fn wall_clock_moves_forward() {
        let clock = WallClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }
}
