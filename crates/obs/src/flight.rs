//! Always-on bounded flight recorder.
//!
//! A [`FlightRecorder`] keeps the last moments of a run in a fixed-capacity
//! ring buffer of compact structured events — span open/close, metric
//! samples, causal tasks, and fault/recovery transitions — so a crash
//! leaves evidence behind without the run ever paying for unbounded
//! telemetry. Recording is observation-only bookkeeping: event timestamps
//! come from the caller's (usually simulated) clock, admission is decided
//! by a seeded hash, and nothing the recorder does feeds back into the
//! run. The only wall-clock state is the self-measured overhead counter,
//! which is excluded from every checksum and digest so dumps stay
//! deterministic.
//!
//! [`FlightDump`] freezes the last N events into a checksummed post-mortem
//! artifact (`picasso.flight_dump`): the FNV-1a 64 checksum covers the
//! canonical payload, and [`FlightDump::validate`] rejects documents whose
//! recomputed checksum disagrees — a truncated or hand-edited dump cannot
//! masquerade as evidence.

use crate::json::{self, Json};
use crate::metrics::{MetricKind, MetricsRegistry};

/// Schema identifier of the post-mortem dump document.
pub const FLIGHT_DUMP_KIND: &str = "picasso.flight_dump";
/// Schema version of the post-mortem dump document.
pub const FLIGHT_DUMP_SCHEMA_VERSION: u64 = 1;

/// FNV-1a 64-bit hash (the workspace's standard content checksum).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Deterministic admission hash (splitmix64).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// What kind of moment an event captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlightCategory {
    /// A span opening or closing (iterations, phases).
    Span,
    /// A sampled metric value (loss, latency).
    Metric,
    /// A causal task the schedule executed (compute, collective).
    Task,
    /// A fault transition (crash, NIC degradation, straggler window).
    Fault,
    /// A recovery transition (restore, checkpoint commit).
    Recovery,
}

impl FlightCategory {
    /// Every category, in stable serialization order.
    pub const ALL: [FlightCategory; 5] = [
        FlightCategory::Span,
        FlightCategory::Metric,
        FlightCategory::Task,
        FlightCategory::Fault,
        FlightCategory::Recovery,
    ];

    /// Stable lower-case name (the JSON `cat` field and metric label).
    pub fn name(&self) -> &'static str {
        match self {
            FlightCategory::Span => "span",
            FlightCategory::Metric => "metric",
            FlightCategory::Task => "task",
            FlightCategory::Fault => "fault",
            FlightCategory::Recovery => "recovery",
        }
    }

    /// Parses a name produced by [`FlightCategory::name`].
    pub fn parse(s: &str) -> Option<FlightCategory> {
        FlightCategory::ALL.into_iter().find(|c| c.name() == s)
    }

    fn index(self) -> usize {
        match self {
            FlightCategory::Span => 0,
            FlightCategory::Metric => 1,
            FlightCategory::Task => 2,
            FlightCategory::Fault => 3,
            FlightCategory::Recovery => 4,
        }
    }
}

/// One compact recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Admission sequence number (gaps mark sampled-out events).
    pub seq: u64,
    /// Event timestamp on the caller's clock, nanoseconds.
    pub t_ns: u64,
    /// Event category.
    pub category: FlightCategory,
    /// Short code naming the event (`"iteration"`, `"collective"`,
    /// `"crash"`, ...).
    pub code: String,
    /// Iteration the event belongs to.
    pub iter: u64,
    /// Payload value (duration, metric sample, or `0.0`).
    pub value: f64,
}

impl FlightEvent {
    fn to_json(&self) -> Json {
        Json::obj([
            ("seq", Json::UInt(self.seq)),
            ("t_ns", Json::UInt(self.t_ns)),
            ("cat", Json::str(self.category.name())),
            ("code", Json::str(&self.code)),
            ("iter", Json::UInt(self.iter)),
            ("value", Json::Num(self.value)),
        ])
    }

    fn from_json(doc: &Json) -> Result<FlightEvent, String> {
        let field = |k: &str| doc.get(k).ok_or_else(|| format!("event missing {k:?}"));
        let cat = field("cat")?.as_str().ok_or("event cat not a string")?;
        Ok(FlightEvent {
            seq: field("seq")?.as_u64().ok_or("bad event seq")?,
            t_ns: field("t_ns")?.as_u64().ok_or("bad event t_ns")?,
            category: FlightCategory::parse(cat)
                .ok_or_else(|| format!("unknown event category {cat:?}"))?,
            code: field("code")?
                .as_str()
                .ok_or("event code not a string")?
                .to_string(),
            iter: field("iter")?.as_u64().ok_or("bad event iter")?,
            value: field("value")?.as_f64().ok_or("bad event value")?,
        })
    }
}

/// Per-category admission sampling: keep one event in `keep_1_in[cat]`,
/// decided by a seeded hash of the event's sequence number so the kept set
/// is a pure function of `(seed, sequence)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Hash seed; two recorders with the same seed keep the same events.
    pub seed: u64,
    /// Per-category keep rate, indexed like [`FlightCategory::ALL`];
    /// `0` and `1` both mean "keep everything".
    pub keep_1_in: [u32; 5],
}

impl Default for SamplingConfig {
    fn default() -> SamplingConfig {
        SamplingConfig {
            seed: 0,
            keep_1_in: [1; 5],
        }
    }
}

impl SamplingConfig {
    /// Whether the event with this sequence number is admitted.
    pub fn keep(&self, category: FlightCategory, seq: u64) -> bool {
        let n = self.keep_1_in[category.index()] as u64;
        if n <= 1 {
            return true;
        }
        splitmix64(self.seed ^ seq.wrapping_mul(0x9e37_79b9) ^ (category.index() as u64) << 56)
            .is_multiple_of(n)
    }
}

/// Recorder shape: ring capacity, post-mortem length, and sampling knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightConfig {
    /// Ring-buffer capacity in events (at least 1).
    pub capacity: usize,
    /// How many trailing events a post-mortem dump keeps.
    pub dump_last: usize,
    /// Per-category admission sampling.
    pub sampling: SamplingConfig,
}

impl Default for FlightConfig {
    fn default() -> FlightConfig {
        FlightConfig {
            capacity: 512,
            dump_last: 64,
            sampling: SamplingConfig::default(),
        }
    }
}

/// Lifetime accounting of one recorder, overhead included.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlightStats {
    /// Ring capacity.
    pub capacity: usize,
    /// Events currently held.
    pub occupancy: usize,
    /// Events offered per category (admitted or not).
    pub seen: [u64; 5],
    /// Events rejected by sampling, per category.
    pub sampled_out: [u64; 5],
    /// Events admitted to the ring over the recorder's lifetime.
    pub recorded: u64,
    /// Admitted events later overwritten by ring wraparound.
    pub overwritten: u64,
    /// Self-measured wall-clock cost of every `record` call, nanoseconds.
    /// Volatile: excluded from dumps, checksums, and digests.
    pub overhead_ns: u64,
}

impl FlightStats {
    /// Total events offered across categories.
    pub fn seen_total(&self) -> u64 {
        self.seen.iter().sum()
    }

    /// Total events rejected by sampling.
    pub fn sampled_out_total(&self) -> u64 {
        self.sampled_out.iter().sum()
    }

    /// JSON payload (`overhead_ns` included — callers embedding this in
    /// deterministic artifacts should use the dump instead).
    pub fn to_json(&self) -> Json {
        let per_cat = |xs: &[u64; 5]| {
            Json::Obj(
                FlightCategory::ALL
                    .iter()
                    .map(|c| (c.name().to_string(), Json::UInt(xs[c.index()])))
                    .collect(),
            )
        };
        Json::obj([
            ("capacity", Json::UInt(self.capacity as u64)),
            ("occupancy", Json::UInt(self.occupancy as u64)),
            ("seen", per_cat(&self.seen)),
            ("sampled_out", per_cat(&self.sampled_out)),
            ("recorded", Json::UInt(self.recorded)),
            ("overwritten", Json::UInt(self.overwritten)),
            ("overhead_ns", Json::UInt(self.overhead_ns)),
        ])
    }
}

/// The bounded ring-buffer recorder.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    config: FlightConfig,
    ring: Vec<FlightEvent>,
    head: usize,
    next_seq: u64,
    seen: [u64; 5],
    sampled_out: [u64; 5],
    recorded: u64,
    overwritten: u64,
    overhead_ns: u64,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::with_config(&FlightConfig::default())
    }
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events, no sampling.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder::with_config(&FlightConfig {
            capacity,
            ..FlightConfig::default()
        })
    }

    /// A recorder with explicit capacity, dump length, and sampling.
    pub fn with_config(config: &FlightConfig) -> FlightRecorder {
        let config = FlightConfig {
            capacity: config.capacity.max(1),
            dump_last: config.dump_last.max(1),
            sampling: config.sampling,
        };
        FlightRecorder {
            ring: Vec::with_capacity(config.capacity),
            config,
            head: 0,
            next_seq: 0,
            seen: [0; 5],
            sampled_out: [0; 5],
            recorded: 0,
            overwritten: 0,
            overhead_ns: 0,
        }
    }

    /// The recorder's configuration.
    pub fn config(&self) -> &FlightConfig {
        &self.config
    }

    /// Offers one event; sampling decides admission, wraparound evicts the
    /// oldest admitted event once the ring is full.
    pub fn record(
        &mut self,
        category: FlightCategory,
        code: &str,
        iter: u64,
        t_ns: u64,
        value: f64,
    ) {
        let t0 = std::time::Instant::now();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.seen[category.index()] += 1;
        if !self.config.sampling.keep(category, seq) {
            self.sampled_out[category.index()] += 1;
            self.overhead_ns += t0.elapsed().as_nanos() as u64;
            return;
        }
        let event = FlightEvent {
            seq,
            t_ns,
            category,
            code: code.to_string(),
            iter,
            value,
        };
        if self.ring.len() < self.config.capacity {
            self.ring.push(event);
        } else {
            self.ring[self.head] = event;
            self.head = (self.head + 1) % self.config.capacity;
            self.overwritten += 1;
        }
        self.recorded += 1;
        self.overhead_ns += t0.elapsed().as_nanos() as u64;
    }

    /// Records a span opening.
    pub fn span_open(&mut self, code: &str, iter: u64, t_ns: u64) {
        self.record(FlightCategory::Span, code, iter, t_ns, 0.0);
    }

    /// Records a span closing; `dur_s` is the span's length in seconds.
    pub fn span_close(&mut self, code: &str, iter: u64, t_ns: u64, dur_s: f64) {
        self.record(FlightCategory::Span, code, iter, t_ns, dur_s);
    }

    /// Records a metric sample.
    pub fn metric(&mut self, code: &str, iter: u64, t_ns: u64, value: f64) {
        self.record(FlightCategory::Metric, code, iter, t_ns, value);
    }

    /// Records a causal task completion; `dur_s` is its service time.
    pub fn task(&mut self, code: &str, iter: u64, t_ns: u64, dur_s: f64) {
        self.record(FlightCategory::Task, code, iter, t_ns, dur_s);
    }

    /// Records a fault transition.
    pub fn fault(&mut self, code: &str, iter: u64, t_ns: u64) {
        self.record(FlightCategory::Fault, code, iter, t_ns, 0.0);
    }

    /// Records a recovery transition (restore, checkpoint commit).
    pub fn recovery(&mut self, code: &str, iter: u64, t_ns: u64, value: f64) {
        self.record(FlightCategory::Recovery, code, iter, t_ns, value);
    }

    /// Events currently held.
    pub fn occupancy(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The held events, oldest first.
    pub fn events(&self) -> Vec<&FlightEvent> {
        let (tail, head) = self.ring.split_at(self.head);
        head.iter().chain(tail.iter()).collect()
    }

    /// Lifetime accounting.
    pub fn stats(&self) -> FlightStats {
        FlightStats {
            capacity: self.config.capacity,
            occupancy: self.ring.len(),
            seen: self.seen,
            sampled_out: self.sampled_out,
            recorded: self.recorded,
            overwritten: self.overwritten,
            overhead_ns: self.overhead_ns,
        }
    }

    /// Freezes the last `last_n` events into a checksummed post-mortem.
    pub fn dump(&self, last_n: usize) -> FlightDump {
        let events = self.events();
        let skip = events.len().saturating_sub(last_n.max(1));
        FlightDump::new(
            events[skip..].iter().map(|e| (*e).clone()).collect(),
            self.recorded,
            self.overwritten,
            self.sampled_out_total(),
        )
    }

    /// Freezes the configured post-mortem window ([`FlightConfig::dump_last`]).
    pub fn post_mortem(&self) -> FlightDump {
        self.dump(self.config.dump_last)
    }

    fn sampled_out_total(&self) -> u64 {
        self.sampled_out.iter().sum()
    }

    /// Publishes occupancy and drop accounting into a metrics registry.
    pub fn export_metrics(&self, m: &MetricsRegistry) {
        self.stats().export_metrics(m);
    }
}

impl FlightStats {
    /// Publishes this accounting snapshot into a metrics registry:
    /// occupancy/capacity gauges, per-category seen/sampled-out counters,
    /// the wraparound-drop counter, and the (volatile) overhead gauge.
    pub fn export_metrics(&self, m: &MetricsRegistry) {
        m.describe(
            "flight_capacity",
            MetricKind::Gauge,
            "Flight-recorder ring capacity in events",
        );
        m.describe(
            "flight_occupancy",
            MetricKind::Gauge,
            "Events currently held by the flight recorder",
        );
        m.describe(
            "flight_events_seen_total",
            MetricKind::Counter,
            "Events offered to the flight recorder, by category",
        );
        m.describe(
            "flight_events_sampled_out_total",
            MetricKind::Counter,
            "Events rejected by admission sampling, by category",
        );
        m.describe(
            "flight_events_overwritten_total",
            MetricKind::Counter,
            "Admitted events evicted by ring wraparound",
        );
        m.describe(
            "flight_overhead_ns",
            MetricKind::Gauge,
            "Self-measured wall-clock recording overhead, nanoseconds (volatile)",
        );
        m.gauge_set("flight_capacity", &[], self.capacity as f64);
        m.gauge_set("flight_occupancy", &[], self.occupancy as f64);
        for c in FlightCategory::ALL {
            let labels = [("category", c.name())];
            if self.seen[c.index()] > 0 {
                m.counter_add("flight_events_seen_total", &labels, self.seen[c.index()]);
            }
            if self.sampled_out[c.index()] > 0 {
                m.counter_add(
                    "flight_events_sampled_out_total",
                    &labels,
                    self.sampled_out[c.index()],
                );
            }
        }
        m.counter_add("flight_events_overwritten_total", &[], self.overwritten);
        m.gauge_set("flight_overhead_ns", &[], self.overhead_ns as f64);
    }
}

/// A checksummed post-mortem artifact: the recorder's trailing events plus
/// enough lifetime accounting to judge how much history was lost.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// Trailing events, oldest first.
    pub events: Vec<FlightEvent>,
    /// Events admitted over the recorder's lifetime.
    pub recorded_total: u64,
    /// Admitted events lost to ring wraparound.
    pub dropped: u64,
    /// Events rejected by sampling.
    pub sampled_out: u64,
    /// FNV-1a 64 over the canonical payload.
    pub checksum: u64,
}

impl FlightDump {
    /// Builds a dump, computing its checksum.
    pub fn new(
        events: Vec<FlightEvent>,
        recorded_total: u64,
        dropped: u64,
        sampled_out: u64,
    ) -> FlightDump {
        let mut dump = FlightDump {
            events,
            recorded_total,
            dropped,
            sampled_out,
            checksum: 0,
        };
        dump.checksum = fnv1a64(dump.payload().to_json().as_bytes());
        dump
    }

    /// The deterministic checksum (also the scenario digest).
    pub fn digest(&self) -> u64 {
        self.checksum
    }

    /// The last event of a category, if any.
    pub fn last_of(&self, category: FlightCategory) -> Option<&FlightEvent> {
        self.events.iter().rev().find(|e| e.category == category)
    }

    fn payload(&self) -> Json {
        Json::obj([
            ("schema_version", Json::UInt(FLIGHT_DUMP_SCHEMA_VERSION)),
            ("kind", Json::str(FLIGHT_DUMP_KIND)),
            ("recorded_total", Json::UInt(self.recorded_total)),
            ("dropped", Json::UInt(self.dropped)),
            ("sampled_out", Json::UInt(self.sampled_out)),
            (
                "events",
                Json::Arr(self.events.iter().map(FlightEvent::to_json).collect()),
            ),
        ])
    }

    /// The full document, checksum included.
    pub fn to_json(&self) -> Json {
        let Json::Obj(mut pairs) = self.payload() else {
            unreachable!("payload is an object");
        };
        pairs.push((
            "checksum".to_string(),
            Json::str(format!("{:016x}", self.checksum)),
        ));
        Json::Obj(pairs)
    }

    /// Parses and checksum-validates a dump document.
    pub fn validate(doc: &Json) -> Result<FlightDump, String> {
        let kind = doc.get("kind").and_then(Json::as_str).unwrap_or_default();
        if kind != FLIGHT_DUMP_KIND {
            return Err(format!("not a flight dump (kind {kind:?})"));
        }
        let version = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version")?;
        if version != FLIGHT_DUMP_SCHEMA_VERSION {
            return Err(format!("unsupported flight-dump schema {version}"));
        }
        let want = doc
            .get("checksum")
            .and_then(Json::as_str)
            .ok_or("missing checksum")?;
        let want = u64::from_str_radix(want, 16).map_err(|_| "malformed checksum".to_string())?;
        let mut events = Vec::new();
        for e in doc
            .get("events")
            .and_then(Json::items)
            .ok_or("missing events")?
        {
            events.push(FlightEvent::from_json(e)?);
        }
        let take = |k: &str| {
            doc.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing {k}"))
        };
        let rebuilt = FlightDump::new(
            events,
            take("recorded_total")?,
            take("dropped")?,
            take("sampled_out")?,
        );
        if rebuilt.checksum != want {
            return Err(format!(
                "flight-dump checksum mismatch: document says {want:016x}, \
                 payload hashes to {:016x}",
                rebuilt.checksum
            ));
        }
        Ok(rebuilt)
    }

    /// Parses and validates a serialized dump.
    pub fn from_text(text: &str) -> Result<FlightDump, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        FlightDump::validate(&doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(rec: &mut FlightRecorder, n: u64) {
        for i in 0..n {
            rec.task("compute", i, i * 1_000, 0.05);
        }
    }

    #[test]
    fn ring_keeps_the_latest_capacity_events() {
        let mut rec = FlightRecorder::new(4);
        fill(&mut rec, 10);
        assert_eq!(rec.occupancy(), 4);
        let seqs: Vec<u64> = rec.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [6, 7, 8, 9], "oldest-first, trailing window");
        let stats = rec.stats();
        assert_eq!(stats.recorded, 10);
        assert_eq!(stats.overwritten, 6);
        assert_eq!(stats.seen_total(), 10);
        assert_eq!(stats.sampled_out_total(), 0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed_and_counts_rejects() {
        let config = FlightConfig {
            capacity: 1024,
            dump_last: 64,
            sampling: SamplingConfig {
                seed: 7,
                keep_1_in: [1, 1, 4, 1, 1],
            },
        };
        let mut a = FlightRecorder::with_config(&config);
        let mut b = FlightRecorder::with_config(&config);
        fill(&mut a, 200);
        fill(&mut b, 200);
        let sa: Vec<u64> = a.events().iter().map(|e| e.seq).collect();
        let sb: Vec<u64> = b.events().iter().map(|e| e.seq).collect();
        assert_eq!(sa, sb, "same seed keeps the same events");
        let stats = a.stats();
        assert!(stats.sampled_out[FlightCategory::Task.index()] > 0);
        assert_eq!(
            stats.recorded + stats.sampled_out_total(),
            stats.seen_total()
        );
    }

    #[test]
    fn dump_round_trips_and_validates() {
        let mut rec = FlightRecorder::new(8);
        fill(&mut rec, 20);
        rec.fault("crash", 20, 20_000);
        let dump = rec.dump(5);
        assert_eq!(dump.events.len(), 5);
        assert_eq!(dump.recorded_total, 21);
        let text = dump.to_json().to_json();
        let back = FlightDump::from_text(&text).expect("validates");
        assert_eq!(back, dump);
        assert_eq!(back.digest(), dump.digest());
        assert_eq!(
            back.last_of(FlightCategory::Fault).map(|e| e.iter),
            Some(20)
        );
    }

    #[test]
    fn tampered_dump_is_rejected() {
        let mut rec = FlightRecorder::new(8);
        fill(&mut rec, 4);
        let text = rec.dump(4).to_json().to_json();
        let tampered = text.replace("\"iter\":3", "\"iter\":4");
        assert_ne!(tampered, text, "tampering changed the payload");
        let err = FlightDump::from_text(&tampered).expect_err("checksum catches it");
        assert!(err.contains("checksum mismatch"), "{err}");
        assert!(FlightDump::from_text("{\"kind\":\"nope\"}").is_err());
    }

    #[test]
    fn overhead_is_accounted_but_not_checksummed() {
        let mut a = FlightRecorder::new(8);
        let mut b = FlightRecorder::new(8);
        fill(&mut a, 8);
        fill(&mut b, 8);
        assert!(a.stats().overhead_ns > 0, "recording costs something");
        // Overhead differs run to run; digests must not.
        assert_eq!(a.dump(8).digest(), b.dump(8).digest());
    }

    #[test]
    fn export_metrics_publishes_occupancy_and_drops() {
        let mut rec = FlightRecorder::new(2);
        fill(&mut rec, 5);
        let m = MetricsRegistry::new();
        rec.export_metrics(&m);
        assert_eq!(m.gauge_value("flight_occupancy", &[]), Some(2.0));
        assert_eq!(m.gauge_value("flight_capacity", &[]), Some(2.0));
        assert_eq!(
            m.counter_value("flight_events_seen_total", &[("category", "task")]),
            5
        );
        assert_eq!(m.counter_value("flight_events_overwritten_total", &[]), 3);
    }

    #[test]
    fn category_names_round_trip() {
        for c in FlightCategory::ALL {
            assert_eq!(FlightCategory::parse(c.name()), Some(c));
        }
        assert_eq!(FlightCategory::parse("nope"), None);
    }
}
