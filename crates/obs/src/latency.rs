//! Request-latency measurement for the serving path: exact quantiles over
//! collected samples, log-spaced latency histograms for export, SLO-violation
//! tracking, and queue-depth timelines.
//!
//! Serving reports tail latency (p50/p95/p99), not throughput, so precision
//! at the tail matters. The recorder therefore keeps every sample (serving
//! scenarios observe tens of thousands of requests — cheap) and computes
//! *exact* nearest-rank quantiles; the fixed-bucket [`crate::metrics::Histogram`]
//! is only an export format for Prometheus/Chrome, never the source of truth.

use crate::metrics::MetricsRegistry;

/// Log-spaced latency bucket upper bounds in nanoseconds: 1µs → 100s at four
/// buckets per decade (×~1.78 steps). Suitable for the export histogram of
/// any latency whose interesting range spans microseconds to seconds.
pub fn latency_bounds_ns() -> Vec<f64> {
    // Each bound computed independently (no accumulated multiplication
    // error): 10^(3 + k/4) for k = 0..=32, i.e. 1e3 .. 1e11 ns.
    (0..=32)
        .map(|k| 10f64.powf(3.0 + 0.25 * k as f64))
        .collect()
}

/// Exact `q`-quantile (`0.0 <= q <= 1.0`) of a **sorted ascending** slice via
/// the nearest-rank method: the smallest element such that at least
/// `ceil(q * n)` elements are `<=` it. `q = 0` yields the minimum, `q = 1`
/// the maximum; an empty slice yields 0.
///
/// Nearest-rank (rather than interpolation) keeps the result an actually
/// observed integer sample, which is what makes serving reports bit-stable
/// across runs.
pub fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if sorted.is_empty() {
        return 0;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
    let n = sorted.len();
    let rank = (q * n as f64).ceil() as usize;
    sorted[rank.max(1).min(n) - 1]
}

/// Tracks violations of a single latency SLO budget.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SloTracker {
    /// Latency budget in nanoseconds; anything strictly above violates.
    pub budget_ns: u64,
    /// Number of observed requests.
    pub total: u64,
    /// Number of requests whose latency exceeded the budget.
    pub violations: u64,
}

impl SloTracker {
    /// A tracker with the given budget and no observations.
    pub fn new(budget_ns: u64) -> SloTracker {
        SloTracker {
            budget_ns,
            total: 0,
            violations: 0,
        }
    }

    /// Record one request latency.
    pub fn observe(&mut self, latency_ns: u64) {
        self.total += 1;
        if latency_ns > self.budget_ns {
            self.violations += 1;
        }
    }

    /// Fraction of observed requests violating the budget (0 when empty).
    pub fn violation_ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.violations as f64 / self.total as f64
        }
    }
}

/// Collects per-request latencies plus a queue-depth timeline, and exports
/// both into a [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples: Vec<u64>,
    queue_depth: Vec<(u64, u32)>,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> LatencyRecorder {
        LatencyRecorder::default()
    }

    /// Record one completed request's end-to-end latency.
    pub fn observe(&mut self, latency_ns: u64) {
        self.samples.push(latency_ns);
    }

    /// Record the pending-queue depth at a point in virtual time.
    pub fn sample_queue_depth(&mut self, t_ns: u64, depth: u32) {
        self.queue_depth.push((t_ns, depth));
    }

    /// Number of recorded latencies.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no latency has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All recorded latencies, sorted ascending — the reference distribution
    /// exact quantiles are computed from.
    pub fn sorted_ns(&self) -> Vec<u64> {
        let mut v = self.samples.clone();
        v.sort_unstable();
        v
    }

    /// The queue-depth timeline in recording order.
    pub fn queue_depth(&self) -> &[(u64, u32)] {
        &self.queue_depth
    }

    /// Maximum queue depth ever sampled (0 when never sampled).
    pub fn max_queue_depth(&self) -> u32 {
        self.queue_depth.iter().map(|&(_, d)| d).max().unwrap_or(0)
    }

    /// Exact nearest-rank quantile of the recorded latencies.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        exact_quantile(&self.sorted_ns(), q)
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().map(|&s| s as f64).sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Export the latency distribution, summary quantiles, and queue-depth
    /// timeline under `prefix` (e.g. `srv`) into `registry`:
    ///
    /// * `<prefix>_latency_ns` — fixed-bucket histogram over
    ///   [`latency_bounds_ns`];
    /// * `<prefix>_latency_p50_ns` / `_p95_ns` / `_p99_ns` — exact-quantile
    ///   gauges;
    /// * `<prefix>_queue_depth` — time series of sampled depths.
    pub fn export_metrics(&self, prefix: &str, registry: &MetricsRegistry) {
        let hist = format!("{prefix}_latency_ns");
        registry.describe(
            &hist,
            crate::metrics::MetricKind::Histogram,
            "End-to-end request latency in nanoseconds",
        );
        let bounds = latency_bounds_ns();
        registry.histogram_buckets(&hist, &bounds);
        for &s in &self.samples {
            registry.histogram_observe(&hist, &[], s as f64);
        }
        let sorted = self.sorted_ns();
        for (q, tag) in [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")] {
            let name = format!("{prefix}_latency_{tag}_ns");
            registry.describe(
                &name,
                crate::metrics::MetricKind::Gauge,
                "Exact nearest-rank latency quantile in nanoseconds",
            );
            registry.gauge_set(&name, &[], exact_quantile(&sorted, q) as f64);
        }
        let depth = format!("{prefix}_queue_depth");
        registry.describe(
            &depth,
            crate::metrics::MetricKind::TimeSeries,
            "Pending-request queue depth over virtual time",
        );
        for &(t, d) in &self.queue_depth {
            registry.record_sample(&depth, &[], t, d as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn bounds_are_sorted_log_spaced_and_span_the_range() {
        let b = latency_bounds_ns();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert!(b[0] <= 1e3 + 1.0);
        assert!(*b.last().unwrap() >= 1e11);
        // Four buckets per decade: ratio ~10^0.25.
        let ratio = b[1] / b[0];
        assert!((ratio - 10f64.powf(0.25)).abs() < 1e-9);
    }

    #[test]
    fn exact_quantile_matches_nearest_rank_definition() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(exact_quantile(&v, 0.0), 1);
        assert_eq!(exact_quantile(&v, 0.5), 50);
        assert_eq!(exact_quantile(&v, 0.95), 95);
        assert_eq!(exact_quantile(&v, 0.99), 99);
        assert_eq!(exact_quantile(&v, 1.0), 100);
        assert_eq!(exact_quantile(&[], 0.5), 0);
        assert_eq!(exact_quantile(&[42], 0.01), 42);
        assert_eq!(exact_quantile(&[42], 0.99), 42);
    }

    #[test]
    fn slo_tracker_counts_strict_excess_only() {
        let mut slo = SloTracker::new(1_000);
        slo.observe(999);
        slo.observe(1_000);
        slo.observe(1_001);
        slo.observe(5_000);
        assert_eq!(slo.total, 4);
        assert_eq!(slo.violations, 2);
        assert!((slo.violation_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(SloTracker::new(1).violation_ratio(), 0.0);
    }

    #[test]
    fn recorder_quantiles_and_depth_summary() {
        let mut rec = LatencyRecorder::new();
        for s in [300u64, 100, 200, 500, 400] {
            rec.observe(s);
        }
        rec.sample_queue_depth(0, 1);
        rec.sample_queue_depth(10, 7);
        rec.sample_queue_depth(20, 3);
        assert_eq!(rec.len(), 5);
        assert_eq!(rec.quantile_ns(0.5), 300);
        assert_eq!(rec.quantile_ns(1.0), 500);
        assert_eq!(rec.max_queue_depth(), 7);
        assert!((rec.mean_ns() - 300.0).abs() < 1e-12);
    }

    #[test]
    fn export_writes_histogram_quantiles_and_timeline() {
        let mut rec = LatencyRecorder::new();
        for i in 1..=1000u64 {
            rec.observe(i * 1_000); // 1µs .. 1ms
        }
        rec.sample_queue_depth(5, 2);
        let reg = MetricsRegistry::new();
        rec.export_metrics("srv", &reg);
        let snap = reg.snapshot();
        let hist = snap
            .histograms
            .iter()
            .find(|((name, _), _)| name == "srv_latency_ns")
            .map(|(_, h)| h)
            .expect("histogram exported");
        assert_eq!(hist.count, 1000);
        let p99 = snap
            .gauges
            .iter()
            .find(|((name, _), _)| name == "srv_latency_p99_ns")
            .map(|(_, v)| *v)
            .expect("p99 gauge exported");
        assert_eq!(p99, 990_000.0);
        assert!(snap
            .series
            .iter()
            .any(|((name, _), _)| name == "srv_queue_depth"));
    }

    /// Satellite: the fixed-bucket histogram estimator must agree with the
    /// exact sorted-reference model to within one bucket's width.
    #[test]
    fn bucket_quantile_tracks_exact_reference_within_bucket_resolution() {
        let reg = MetricsRegistry::new();
        let bounds = latency_bounds_ns();
        reg.histogram_buckets("lat", &bounds);
        // Deterministic skewed sample: quadratic ramp, 1µs .. ~400ms.
        let mut samples: Vec<u64> = (1..=2000u64).map(|i| i * i * 100).collect();
        for &s in &samples {
            reg.histogram_observe("lat", &[], s as f64);
        }
        samples.sort_unstable();
        let snap = reg.snapshot();
        let hist = snap
            .histograms
            .iter()
            .find(|((name, _), _)| name == "lat")
            .map(|(_, h)| h)
            .unwrap();
        for q in [0.5, 0.9, 0.95, 0.99] {
            let exact = exact_quantile(&samples, q) as f64;
            let est = hist.quantile(q);
            // The estimate must land inside the bucket holding the exact
            // value: within a ×10^0.25 log-spacing factor on either side.
            let factor = 10f64.powf(0.25);
            assert!(
                est >= exact / factor && est <= exact * factor,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }
}
