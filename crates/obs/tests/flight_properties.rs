//! Property tests for the flight recorder: ring wraparound, sampling
//! determinism under a fixed seed, overhead-counter accounting, and
//! dump checksum integrity.

use picasso_obs::flight::{
    FlightCategory, FlightConfig, FlightDump, FlightRecorder, SamplingConfig,
};
use proptest::prelude::*;

/// Drives a recorder with a reproducible event stream.
fn drive(rec: &mut FlightRecorder, events: &[(u8, u64)]) {
    for (i, &(cat, iter)) in events.iter().enumerate() {
        let category = FlightCategory::ALL[cat as usize % FlightCategory::ALL.len()];
        rec.record(category, "e", iter, i as u64 * 100, i as f64 * 0.5);
    }
}

proptest! {
    /// After any stream, the ring holds exactly the trailing admitted
    /// events, oldest first, and never exceeds capacity.
    #[test]
    fn ring_wraparound_keeps_the_trailing_window(
        capacity in 1usize..32,
        events in proptest::collection::vec((0u8..5, 0u64..100), 0..200),
    ) {
        let mut rec = FlightRecorder::new(capacity);
        drive(&mut rec, &events);
        let stats = rec.stats();
        prop_assert!(rec.occupancy() <= capacity);
        prop_assert_eq!(stats.occupancy, rec.occupancy());
        prop_assert_eq!(stats.seen_total(), events.len() as u64);
        prop_assert_eq!(stats.sampled_out_total(), 0, "no sampling configured");
        prop_assert_eq!(stats.recorded, events.len() as u64);
        prop_assert_eq!(
            stats.overwritten,
            (events.len() as u64).saturating_sub(capacity as u64)
        );
        // Held events are exactly the trailing window, in order.
        let seqs: Vec<u64> = rec.events().iter().map(|e| e.seq).collect();
        let first = (events.len()).saturating_sub(capacity) as u64;
        let expect: Vec<u64> = (first..events.len() as u64).collect();
        prop_assert_eq!(seqs, expect);
    }

    /// Sampling is a pure function of (seed, sequence): two recorders with
    /// the same config admit the same events; admitted + rejected = seen.
    #[test]
    fn sampling_is_deterministic_and_accounted(
        seed in 0u64..u64::MAX,
        rates in proptest::collection::vec(0u32..6, 5..6),
        events in proptest::collection::vec((0u8..5, 0u64..100), 0..200),
    ) {
        let keep_1_in: [u32; 5] = rates.clone().try_into().unwrap();
        let config = FlightConfig {
            capacity: 64,
            dump_last: 16,
            sampling: SamplingConfig { seed, keep_1_in },
        };
        let mut a = FlightRecorder::with_config(&config);
        let mut b = FlightRecorder::with_config(&config);
        drive(&mut a, &events);
        drive(&mut b, &events);
        let ea: Vec<_> = a.events().into_iter().cloned().collect();
        let eb: Vec<_> = b.events().into_iter().cloned().collect();
        prop_assert_eq!(ea, eb, "same seed, same kept set");
        let stats = a.stats();
        prop_assert_eq!(
            stats.recorded + stats.sampled_out_total(),
            stats.seen_total()
        );
        for c in FlightCategory::ALL {
            let i = FlightCategory::ALL.iter().position(|x| *x == c).unwrap();
            prop_assert!(stats.sampled_out[i] <= stats.seen[i]);
        }
    }

    /// A different seed with real sampling rates is allowed to keep a
    /// different set, but accounting invariants still hold.
    #[test]
    fn overhead_counts_every_record_call(
        events in proptest::collection::vec((0u8..5, 0u64..100), 1..100),
    ) {
        let mut rec = FlightRecorder::new(8);
        let mut last = 0u64;
        for (i, &(cat, iter)) in events.iter().enumerate() {
            let category = FlightCategory::ALL[cat as usize % FlightCategory::ALL.len()];
            rec.record(category, "e", iter, i as u64, 0.0);
            let now = rec.stats().overhead_ns;
            prop_assert!(now >= last, "overhead accumulates monotonically");
            last = now;
        }
        prop_assert!(rec.stats().overhead_ns > 0, "work is never free");
    }

    /// Dumps round-trip through serialization and validation, and any
    /// single-byte corruption of a digit is caught by the checksum (or the
    /// parser) — never silently accepted with different content.
    #[test]
    fn dump_validation_rejects_corruption(
        events in proptest::collection::vec((0u8..5, 0u64..100), 1..50),
        last_n in 1usize..64,
        flip in 0usize..1_000_000,
    ) {
        let mut rec = FlightRecorder::new(32);
        drive(&mut rec, &events);
        let dump = rec.dump(last_n);
        let text = dump.to_json().to_json();
        let back = FlightDump::from_text(&text).expect("clean dump validates");
        prop_assert_eq!(&back, &dump);

        // Flip one digit somewhere in the document.
        let bytes = text.as_bytes();
        let digit_positions: Vec<usize> = bytes
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_ascii_digit())
            .map(|(i, _)| i)
            .collect();
        let pos = digit_positions[flip % digit_positions.len()];
        let mut corrupted = text.clone().into_bytes();
        corrupted[pos] = if corrupted[pos] == b'9' { b'8' } else { b'9' };
        let corrupted = String::from_utf8(corrupted).unwrap();
        // Accepting is only sound if the parse normalized back to the
        // exact same dump (e.g. a flipped digit inside the checksum
        // field itself can never do that; a value digit changes the
        // payload hash).
        if let Ok(reparsed) = FlightDump::from_text(&corrupted) {
            prop_assert_eq!(reparsed, dump);
        }
    }
}
