//! Property tests for the run-history store and change-point detection:
//! append/reload round-trips, truncated-segment rejection, and CUSUM
//! firing on seeded step regressions while staying silent on flat series.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use picasso_obs::history::{
    cusum_change_point, series, CusumConfig, HistoryError, HistoryStore, Shift,
};
use proptest::prelude::*;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "picasso-history-prop-{tag}-{}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn metrics(value: f64) -> BTreeMap<String, f64> {
    BTreeMap::from([("secs_per_iteration".to_string(), value)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever is ingested comes back verbatim after reopen + verified
    /// load, in ingestion order with per-run sequence numbers.
    #[test]
    fn append_reload_round_trip(
        values in proptest::collection::vec(0.001f64..1000.0, 1..20),
    ) {
        let dir = tmp_dir("roundtrip");
        let mut store = HistoryStore::open(&dir).unwrap();
        for (i, &v) in values.iter().enumerate() {
            let seq = store
                .ingest(&format!("run-{i}"), &[("wdl_base".to_string(), metrics(v))])
                .unwrap();
            prop_assert_eq!(seq, i as u64);
        }
        let reopened = HistoryStore::open(&dir).unwrap();
        prop_assert_eq!(reopened.next_seq(), values.len() as u64);
        let records = reopened.load().expect("verified load");
        prop_assert_eq!(records.len(), values.len());
        let got = series(&records, "wdl_base", "secs_per_iteration");
        let want: Vec<(u64, f64)> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as u64, v))
            .collect();
        prop_assert_eq!(got, want);
        let _ = fs::remove_dir_all(&dir);
    }

    /// Chopping any suffix off a segment (even one byte) is detected as
    /// corruption on load.
    #[test]
    fn truncated_segments_are_rejected(
        values in proptest::collection::vec(0.001f64..1000.0, 2..10),
        cut in 1usize..64,
    ) {
        let dir = tmp_dir("truncate");
        let mut store = HistoryStore::open(&dir).unwrap();
        for (i, &v) in values.iter().enumerate() {
            store
                .ingest(&format!("run-{i}"), &[("s".to_string(), metrics(v))])
                .unwrap();
        }
        let seg = dir.join("seg-0.jsonl");
        let bytes = fs::read(&seg).unwrap();
        let keep = bytes.len().saturating_sub(cut.min(bytes.len() - 1));
        fs::write(&seg, &bytes[..keep]).unwrap();

        let store = HistoryStore::open(&dir).unwrap();
        let err = store.load().expect_err("truncation must not load");
        prop_assert!(matches!(err, HistoryError::Corrupt(_)));
        let _ = fs::remove_dir_all(&dir);
    }

    /// A seeded step regression of >= 20% fires within two shifted samples
    /// (so within three ingested runs of the step landing), upward for a
    /// lower-is-better metric.
    #[test]
    fn change_point_fires_on_seeded_step(
        base in 0.01f64..100.0,
        clean_runs in 2usize..8,
        step_rel in 0.2f64..0.8,
    ) {
        let mut series: Vec<f64> = vec![base; clean_runs];
        let shifted = base * (1.0 + step_rel);
        series.push(shifted);
        series.push(shifted);
        series.push(shifted);
        let cp = cusum_change_point(&series, &CusumConfig::default())
            .expect("step must be flagged");
        prop_assert_eq!(cp.direction, Shift::Up);
        prop_assert_eq!(cp.at, clean_runs, "regime starts at the step");
        prop_assert!((cp.rel_change - step_rel).abs() < 1e-6);
        // Detection latency: at most two shifted samples were needed.
        let within_two = cusum_change_point(
            &series[..clean_runs + 2],
            &CusumConfig::default(),
        );
        prop_assert!(within_two.is_some(), "fires within two shifted runs");
    }

    /// Flat series never fire, whatever their level or length: zero false
    /// positives on clean history.
    #[test]
    fn change_point_is_silent_on_flat_series(
        level in 0.001f64..1000.0,
        runs in 1usize..50,
    ) {
        let series = vec![level; runs];
        prop_assert!(cusum_change_point(&series, &CusumConfig::default()).is_none());
    }

    /// Jitter inside the slack band never fires either.
    #[test]
    fn change_point_tolerates_sub_slack_jitter(
        level in 0.01f64..100.0,
        signs in proptest::collection::vec(proptest::bool::ANY, 3..30),
    ) {
        // +/- 2% jitter: under the 5% slack, so nothing accumulates.
        let series: Vec<f64> = signs
            .iter()
            .map(|&up| if up { level * 1.02 } else { level * 0.98 })
            .collect();
        prop_assert!(cusum_change_point(&series, &CusumConfig::default()).is_none());
    }
}
