//! Causal event-log codec property tests, mirroring the `picasso-ckpt`
//! codec suite: `decode(encode(dag)) == dag` bit for bit across arbitrary
//! node shapes (ids, edges, timestamps, labels), and truncation anywhere
//! is rejected rather than misread.

use picasso_obs::analysis::{DagNode, ExecutedDag};
use proptest::collection::vec;
use proptest::prelude::*;

const LABEL_CHARS: &[u8] = b"abcxyz09_:/-";

fn label(picks: Vec<usize>) -> String {
    picks
        .into_iter()
        .map(|i| LABEL_CHARS[i % LABEL_CHARS.len()] as char)
        .collect()
}

fn arb_node() -> impl Strategy<Value = DagNode> {
    (
        0u64..u64::MAX,
        vec(0usize..LABEL_CHARS.len(), 0..12),
        vec(0usize..LABEL_CHARS.len(), 0..12),
        0u64..u64::MAX,
        0u64..u64::MAX,
        vec(0u64..u64::MAX, 0..5),
    )
        .prop_map(|(id, op, lane, start_ns, end_ns, deps)| {
            let lane = label(lane);
            DagNode {
                id,
                op: label(op),
                res_kind: lane.split('/').next_back().unwrap_or("").to_string(),
                category: "computation".to_string(),
                lane,
                start_ns,
                end_ns,
                deps,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every field of every node — ids, dependency edges, timestamps, and
    /// string labels — survives an encode/decode cycle exactly, and
    /// re-encoding reproduces the identical payload.
    #[test]
    fn causal_log_round_trips_bit_for_bit(
        nodes in vec(arb_node(), 0..20),
    ) {
        let dag = ExecutedDag { nodes };
        let bytes = dag.encode();
        let back = ExecutedDag::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&back, &dag);
        prop_assert_eq!(back.encode(), bytes);
    }

    /// Any strict prefix of a valid log is rejected: the checksum tail (or
    /// an earlier field read) catches the truncation, and no prefix ever
    /// decodes to a *different* DAG silently.
    #[test]
    fn truncated_logs_are_rejected(
        nodes in vec(arb_node(), 1..12),
        frac in 0.0f64..1.0,
    ) {
        let dag = ExecutedDag { nodes };
        let bytes = dag.encode();
        let cut = ((bytes.len() as f64 * frac) as usize).min(bytes.len() - 1);
        prop_assert!(ExecutedDag::decode(&bytes[..cut]).is_err(), "cut at {}", cut);
        // Appending garbage is caught too (trailing bytes break the frame).
        let mut long = bytes.clone();
        long.extend_from_slice(&[0xab, 0xcd]);
        prop_assert!(ExecutedDag::decode(&long).is_err());
    }
}
