//! Property and end-to-end tests of the serving subsystem: batcher
//! invariants under random arrival sequences, replica determinism, the
//! batch-size-vs-latency tradeoff, and deterministic shedding.

use picasso_data::DatasetSpec;
use picasso_exec::{prepare_serving, ModelKind, ServingPlan, TrainerOptions};
use picasso_serve::{serve, BatchPolicy, Batcher, QueuedRequest, ReplicaConfig};
use picasso_sim::TrafficPlan;
use proptest::prelude::*;

/// One dispatched request as observed by [`drive`]: `(seq, arrival,
/// dispatched_at, batch_len, server_free_at)`, where `server_free_at` is
/// the time the server last became free before this dispatch.
type DriveRow = (u64, u64, u64, usize, u64);

/// Drives a batcher through a full arrival sequence the way the replica
/// event loop does: batches are formed at dispatch time, the instant the
/// (simulated) server is idle and the batcher is ready. `service_ns`
/// models the server occupancy per dispatched batch.
fn drive(policy: BatchPolicy, arrivals: &[(u64, u64)], service_ns: u64) -> Vec<DriveRow> {
    let mut b = Batcher::new(policy);
    let mut out = Vec::new();
    let mut busy_until: Option<u64> = None;
    let mut free_at = 0u64; // when the server last became free
    let mut i = 0;
    loop {
        let t_done = busy_until;
        let t_deadline = if busy_until.is_none() {
            b.deadline_ns()
        } else {
            None
        };
        let t_arrival = arrivals.get(i).map(|&(_, at)| at);
        let Some(t) = [t_done, t_deadline, t_arrival]
            .iter()
            .flatten()
            .min()
            .copied()
        else {
            break;
        };
        // Completion before deadline before arrival on ties, mirroring the
        // replica loop.
        if t_done == Some(t) {
            busy_until = None;
            free_at = t;
        } else if t_deadline != Some(t) {
            let (seq, at) = arrivals[i];
            i += 1;
            b.push(QueuedRequest {
                seq,
                at_ns: at,
                ids: vec![seq],
            });
        }
        if busy_until.is_none() && b.ready(t) {
            let batch = b.take(t).expect("ready implies pending");
            for r in &batch.requests {
                out.push((r.seq, r.at_ns, t, batch.len(), free_at));
            }
            busy_until = Some(t + service_ns);
        }
    }
    out
}

fn arrival_strategy() -> impl Strategy<Value = Vec<u64>> {
    // Inter-arrival gaps; cumulative sum gives nondecreasing arrival times.
    proptest::collection::vec(0u64..2_000, 1..300)
}

proptest! {
    /// Batcher invariants: a batch never exceeds `max_batch`; no request
    /// is dispatched before it arrived; once the server is free, no
    /// request lingers beyond its bound (with an always-free server —
    /// `service_ns == 0` is in range — that is exactly "no request waits
    /// longer than the linger bound"); every request is dispatched exactly
    /// once, in arrival order.
    #[test]
    fn batcher_honors_size_and_linger_bounds(
        gaps in arrival_strategy(),
        max_batch in 1usize..32,
        linger in 1u64..5_000,
        service_ns in 0u64..20_000,
    ) {
        let mut at = 0u64;
        let arrivals: Vec<(u64, u64)> = gaps
            .iter()
            .enumerate()
            .map(|(i, &g)| {
                at += g;
                (i as u64, at)
            })
            .collect();
        let rows = drive(
            BatchPolicy { max_batch, max_linger_ns: linger },
            &arrivals,
            service_ns,
        );
        prop_assert_eq!(rows.len(), arrivals.len(), "every request dispatched once");
        let mut seen: Vec<u64> = rows.iter().map(|&(seq, ..)| seq).collect();
        let sorted = { let mut s = seen.clone(); s.sort_unstable(); s };
        prop_assert_eq!(&seen, &sorted, "dispatched in arrival order");
        seen.dedup();
        prop_assert_eq!(seen.len(), arrivals.len());
        for &(seq, arrived, dispatched, n, free_at) in &rows {
            prop_assert!(n <= max_batch, "batch of {n} exceeds max {max_batch}");
            prop_assert!(dispatched >= arrived, "request {seq} dispatched before arrival");
            let bound = (arrived + linger).max(free_at);
            prop_assert!(
                dispatched <= bound,
                "request {seq} (arrived {}) dispatched at {} past its bound {} \
                 (linger {}, server free at {})",
                arrived,
                dispatched,
                bound,
                linger,
                free_at
            );
        }
    }
}

fn plan(queue_capacity: Option<usize>) -> ServingPlan {
    let data = DatasetSpec::criteo().shared();
    let opts = TrainerOptions {
        batch_per_executor: Some(256),
        ..Default::default()
    };
    prepare_serving(
        ModelKind::WideDeep,
        &data,
        picasso_exec::Strategy::Hybrid,
        &opts,
        queue_capacity,
    )
    .expect("serving plan")
}

fn traffic(seed: u64) -> TrafficPlan {
    format!("seed={seed};poisson@20000;users=200000;zipf=105;ids=8;reqs=4000")
        .parse()
        .expect("valid plan")
}

#[test]
fn same_seed_runs_produce_bit_identical_reports() {
    let plan = plan(Some(4096));
    let cfg = ReplicaConfig::default();
    let a = serve(&plan, &traffic(7), &cfg, "det");
    let b = serve(&plan, &traffic(7), &cfg, "det");
    assert_eq!(a.report, b.report);
    assert_eq!(a.report.digest(), b.report.digest());
    assert_eq!(
        a.report.to_json().to_string(),
        b.report.to_json().to_string()
    );
    let c = serve(&plan, &traffic(8), &cfg, "det");
    assert_ne!(a.report.digest(), c.report.digest(), "seed must matter");
}

#[test]
fn larger_batches_raise_tail_latency_and_service_capacity() {
    let plan = plan(Some(4096));
    // The analytic forward latency has a ~46 ms per-batch launch-overhead
    // floor, so capacity ≈ batch / 46 ms. At 2 500 rps both operating
    // points below are queue-stable (capacities ~5 500 and ~21 000 rps),
    // which is what makes the comparison meaningful: the long-linger
    // config trades tail latency for bigger batches rather than simply
    // melting down.
    let tradeoff_traffic: TrafficPlan =
        "seed=17;poisson@2500;users=200000;zipf=105;ids=8;reqs=6000"
            .parse()
            .unwrap();
    let small = ReplicaConfig {
        policy: BatchPolicy {
            max_batch: 256,
            max_linger_ns: 1_000_000, // 1 ms
        },
        ..ReplicaConfig::default()
    };
    let large = ReplicaConfig {
        policy: BatchPolicy {
            max_batch: 1024,
            max_linger_ns: 100_000_000, // 100 ms
        },
        ..ReplicaConfig::default()
    };
    let s = serve(&plan, &tradeoff_traffic, &small, "small").report;
    let l = serve(&plan, &tradeoff_traffic, &large, "large").report;
    assert!(
        l.p99_ns > s.p99_ns,
        "large-batch p99 {} must exceed small-batch p99 {}",
        l.p99_ns,
        s.p99_ns
    );
    assert!(
        l.capacity_rps() > s.capacity_rps(),
        "large-batch capacity {:.0} rps must exceed small-batch {:.0} rps",
        l.capacity_rps(),
        s.capacity_rps()
    );
    assert!(l.mean_batch() > s.mean_batch());
    assert_eq!(s.shed, 0);
    assert_eq!(l.shed, 0);
}

#[test]
fn tiny_admission_bound_sheds_deterministically_and_caps_the_queue() {
    let plan = plan(Some(16));
    let cfg = ReplicaConfig {
        queue_capacity: Some(16),
        policy: BatchPolicy {
            max_batch: 4,
            max_linger_ns: 1_000_000,
        },
        ..ReplicaConfig::default()
    };
    // Offered load far above capacity at this batch size.
    let t: TrafficPlan = "seed=3;poisson@200000;users=50000;zipf=105;ids=8;reqs=4000"
        .parse()
        .unwrap();
    let a = serve(&plan, &t, &cfg, "shed").report;
    let b = serve(&plan, &t, &cfg, "shed").report;
    assert_eq!(a, b, "shedding must be deterministic");
    assert!(a.shed > 0, "overload must shed");
    assert_eq!(a.served + a.shed, a.requests);
    assert!(
        a.max_queue_depth <= 16,
        "queue depth {} exceeded admission bound",
        a.max_queue_depth
    );
    assert_eq!(a.slo_ns, cfg.slo_ns);
}

#[test]
fn serving_cache_serves_hot_traffic_from_hot_storage() {
    let plan = plan(Some(4096));
    let cfg = ReplicaConfig::default();
    // Heavily skewed users: the hot set fits the 4 MB cache easily.
    let t: TrafficPlan = "seed=11;poisson@20000;users=1000000;zipf=120;ids=8;reqs=6000"
        .parse()
        .unwrap();
    let r = serve(&plan, &t, &cfg, "cache").report;
    assert!(r.cache_hot_hits + r.cache_cold_hits > 0, "cache exercised");
    assert!(
        r.cache_hit_ratio() > 0.3,
        "skewed traffic should hit hot storage, got {:.3}",
        r.cache_hit_ratio()
    );
}
