//! Dynamic request batching: the max-batch-size + max-linger-delay policy.
//!
//! Batches are formed at *dispatch time*: while the server is free, the
//! oldest pending request is dispatched no later than `max_linger_ns`
//! after it arrived (the linger bound), and the dispatched batch coalesces
//! every pending request up to `max_batch` (the size bound). Forming the
//! batch at pick-up rather than at linger expiry is what lets batch size
//! adapt to load — under pressure the backlog rides out in `max_batch`
//! chunks instead of freezing into whatever happened to arrive within one
//! linger window. Larger batches amortize per-batch launch overheads
//! (higher service capacity) at the price of lingering — the
//! batch-size-vs-latency tradeoff the `srv_*` bench scenarios measure.

use std::collections::VecDeque;

/// The two-knob batching policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// A batch never holds more than this many requests.
    pub max_batch: usize,
    /// The oldest pending request is released at most this long after it
    /// arrived, full batch or not.
    pub max_linger_ns: u64,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 64,
            max_linger_ns: 1_000_000, // 1 ms
        }
    }
}

/// One admitted request waiting for (or riding in) a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedRequest {
    /// Admission sequence number (deterministic tiebreaker).
    pub seq: u64,
    /// Arrival time in virtual nanoseconds.
    pub at_ns: u64,
    /// Embedding IDs the request looks up (`ids[0]` is the user ID).
    pub ids: Vec<u64>,
}

/// A formed batch, ready for service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// When the batcher released it.
    pub formed_at_ns: u64,
    /// The coalesced requests, in arrival order.
    pub requests: Vec<QueuedRequest>,
}

impl Batch {
    /// Number of coalesced requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True for an (impossible by construction) empty batch.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// All embedding IDs of the batch, flattened in arrival order — the
    /// batched gather through `EmbeddingTable`/`HybridHash`.
    pub fn gather_ids(&self) -> Vec<u64> {
        self.requests
            .iter()
            .flat_map(|r| r.ids.iter().copied())
            .collect()
    }
}

/// The dynamic batcher: a FIFO of pending requests plus the policy.
#[derive(Debug, Clone)]
pub struct Batcher {
    policy: BatchPolicy,
    pending: VecDeque<QueuedRequest>,
}

impl Batcher {
    /// An empty batcher under `policy`.
    pub fn new(policy: BatchPolicy) -> Batcher {
        assert!(policy.max_batch >= 1, "max_batch must be at least 1");
        Batcher {
            policy,
            pending: VecDeque::new(),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Requests currently waiting.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Admit one request. Requests must arrive in nondecreasing `at_ns`
    /// order (the event loop's virtual clock guarantees this).
    pub fn push(&mut self, req: QueuedRequest) {
        debug_assert!(self
            .pending
            .back()
            .map(|b| b.at_ns <= req.at_ns)
            .unwrap_or(true));
        self.pending.push_back(req);
    }

    /// The virtual time at which the oldest pending request's linger bound
    /// expires — the batcher's next self-imposed deadline. `None` when
    /// nothing is pending.
    pub fn deadline_ns(&self) -> Option<u64> {
        self.pending
            .front()
            .map(|r| r.at_ns + self.policy.max_linger_ns)
    }

    /// True when a full batch can form right now.
    pub fn is_full(&self) -> bool {
        self.pending.len() >= self.policy.max_batch
    }

    /// True when the policy mandates a dispatch at `now` (to a free
    /// server): a full batch is waiting, or the oldest pending request's
    /// linger bound has expired.
    pub fn ready(&self, now: u64) -> bool {
        self.is_full() || self.deadline_ns().map(|d| now >= d).unwrap_or(false)
    }

    /// Form a batch right now from the oldest pending requests (at most
    /// `max_batch` of them), regardless of readiness. The replica calls
    /// this the moment its server is free and [`Batcher::ready`] holds, so
    /// the batch coalesces everything that queued up while the server was
    /// busy. `None` when nothing is pending.
    pub fn take(&mut self, now: u64) -> Option<Batch> {
        if self.pending.is_empty() {
            return None;
        }
        let n = self.pending.len().min(self.policy.max_batch);
        let requests: Vec<QueuedRequest> = self.pending.drain(..n).collect();
        Some(Batch {
            formed_at_ns: now,
            requests,
        })
    }

    /// [`Batcher::take`] gated on [`Batcher::ready`]: release a batch only
    /// if the policy requires one at `now`.
    pub fn pop_ready(&mut self, now: u64) -> Option<Batch> {
        if self.ready(now) {
            self.take(now)
        } else {
            None
        }
    }

    /// Release everything still pending (end-of-stream drain), in batches
    /// of at most `max_batch`.
    pub fn drain_all(&mut self, now: u64) -> Vec<Batch> {
        let mut out = Vec::new();
        while !self.pending.is_empty() {
            let n = self.pending.len().min(self.policy.max_batch);
            let requests: Vec<QueuedRequest> = self.pending.drain(..n).collect();
            out.push(Batch {
                formed_at_ns: now,
                requests,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(seq: u64, at_ns: u64) -> QueuedRequest {
        QueuedRequest {
            seq,
            at_ns,
            ids: vec![seq, 100 + seq],
        }
    }

    #[test]
    fn full_batch_releases_immediately_and_never_exceeds_max() {
        let mut b = Batcher::new(BatchPolicy {
            max_batch: 4,
            max_linger_ns: 1_000_000,
        });
        for i in 0..9 {
            b.push(req(i, 10 * i));
        }
        let batch = b.pop_ready(90).expect("full");
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.requests[0].seq, 0);
        let batch = b.pop_ready(90).expect("still full");
        assert_eq!(batch.len(), 4);
        // One request left: not full, linger not expired.
        assert!(b.pop_ready(90).is_none());
        assert_eq!(b.pending_len(), 1);
    }

    #[test]
    fn linger_expiry_releases_a_partial_batch() {
        let mut b = Batcher::new(BatchPolicy {
            max_batch: 64,
            max_linger_ns: 500,
        });
        b.push(req(0, 100));
        b.push(req(1, 300));
        assert_eq!(b.deadline_ns(), Some(600));
        assert!(b.pop_ready(599).is_none());
        let batch = b.pop_ready(600).expect("linger expired");
        assert_eq!(batch.len(), 2);
        assert!(b.deadline_ns().is_none());
    }

    #[test]
    fn gather_ids_flatten_in_arrival_order() {
        let mut b = Batcher::new(BatchPolicy {
            max_batch: 2,
            max_linger_ns: 1,
        });
        b.push(req(7, 0));
        b.push(req(9, 0));
        let batch = b.pop_ready(0).unwrap();
        assert_eq!(batch.gather_ids(), vec![7, 107, 9, 109]);
    }

    #[test]
    fn drain_all_chunks_by_max_batch() {
        let mut b = Batcher::new(BatchPolicy {
            max_batch: 3,
            max_linger_ns: u64::MAX / 2,
        });
        for i in 0..7 {
            b.push(req(i, i));
        }
        let batches = b.drain_all(1_000);
        assert_eq!(
            batches.iter().map(Batch::len).collect::<Vec<_>>(),
            vec![3, 3, 1]
        );
        assert_eq!(b.pending_len(), 0);
    }
}
