//! The serving run report: tail latency, queue depth, cache effectiveness,
//! SLO violations, and throughput/capacity — with a bit-stable digest.

use picasso_obs::Json;

/// The `kind` discriminator of a serialized serve report.
pub const SERVE_REPORT_KIND: &str = "picasso.serve_report";

/// Schema version of [`ServeReport::to_json`].
pub const SERVE_REPORT_SCHEMA_VERSION: u64 = 1;

/// Everything one deterministic serving run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Scenario label.
    pub scenario: String,
    /// The traffic plan, in its exact-round-trip grammar.
    pub traffic: String,
    /// Batching policy: size bound.
    pub max_batch: u64,
    /// Batching policy: linger bound in nanoseconds.
    pub max_linger_ns: u64,
    /// Admission bound on admitted-but-unserved requests; `None` when
    /// unbounded.
    pub queue_capacity: Option<u64>,
    /// Latency SLO budget in nanoseconds.
    pub slo_ns: u64,
    /// Requests the traffic plan generated.
    pub requests: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Batches executed.
    pub batches: u64,
    /// Exact p50 end-to-end latency in nanoseconds.
    pub p50_ns: u64,
    /// Exact p95 end-to-end latency in nanoseconds.
    pub p95_ns: u64,
    /// Exact p99 end-to-end latency in nanoseconds.
    pub p99_ns: u64,
    /// Mean end-to-end latency in nanoseconds (rounded).
    pub mean_ns: u64,
    /// Highest sampled waiting-request count.
    pub max_queue_depth: u64,
    /// Requests whose latency exceeded the SLO budget.
    pub slo_violations: u64,
    /// Serving-cache hot hits (post-warm-up).
    pub cache_hot_hits: u64,
    /// Serving-cache cold hits (post-warm-up).
    pub cache_cold_hits: u64,
    /// Virtual time from first arrival to last completion, nanoseconds.
    pub duration_ns: u64,
    /// Total busy service time across all batches, nanoseconds.
    pub service_ns: u64,
}

impl ServeReport {
    /// Post-warm-up cache hit ratio in `[0, 1]`.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache_hot_hits + self.cache_cold_hits;
        if total == 0 {
            0.0
        } else {
            self.cache_hot_hits as f64 / total as f64
        }
    }

    /// Mean executed batch size.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.served as f64 / self.batches as f64
        }
    }

    /// Sustainable service capacity in requests/second: served requests
    /// over *busy* service time. Larger batches amortize per-batch launch
    /// overheads, so capacity grows with batch size — the other side of
    /// the latency tradeoff.
    pub fn capacity_rps(&self) -> f64 {
        if self.service_ns == 0 {
            0.0
        } else {
            self.served as f64 / (self.service_ns as f64 / 1e9)
        }
    }

    /// Achieved throughput in requests/second: served requests over the
    /// full run duration. In an open loop this tracks the offered rate
    /// (minus shed), regardless of batching.
    pub fn achieved_rps(&self) -> f64 {
        if self.duration_ns == 0 {
            0.0
        } else {
            self.served as f64 / (self.duration_ns as f64 / 1e9)
        }
    }

    /// FNV-1a digest over every field — two runs of the same seeded
    /// scenario must agree bit-for-bit.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        eat(self.scenario.as_bytes());
        eat(self.traffic.as_bytes());
        for v in [
            self.max_batch,
            self.max_linger_ns,
            self.queue_capacity.map(|c| c + 1).unwrap_or(0),
            self.slo_ns,
            self.requests,
            self.served,
            self.shed,
            self.batches,
            self.p50_ns,
            self.p95_ns,
            self.p99_ns,
            self.mean_ns,
            self.max_queue_depth,
            self.slo_violations,
            self.cache_hot_hits,
            self.cache_cold_hits,
            self.duration_ns,
            self.service_ns,
        ] {
            eat(&v.to_le_bytes());
        }
        h
    }

    /// The versioned JSON document (`kind` = [`SERVE_REPORT_KIND`]).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::str(SERVE_REPORT_KIND)),
            ("schema_version", Json::UInt(SERVE_REPORT_SCHEMA_VERSION)),
            ("scenario", Json::str(&self.scenario)),
            ("traffic", Json::str(&self.traffic)),
            ("max_batch", Json::UInt(self.max_batch)),
            ("max_linger_ns", Json::UInt(self.max_linger_ns)),
            (
                "queue_capacity",
                match self.queue_capacity {
                    Some(c) => Json::UInt(c),
                    None => Json::Null,
                },
            ),
            ("slo_ns", Json::UInt(self.slo_ns)),
            ("requests", Json::UInt(self.requests)),
            ("served", Json::UInt(self.served)),
            ("shed", Json::UInt(self.shed)),
            ("batches", Json::UInt(self.batches)),
            ("p50_ns", Json::UInt(self.p50_ns)),
            ("p95_ns", Json::UInt(self.p95_ns)),
            ("p99_ns", Json::UInt(self.p99_ns)),
            ("mean_ns", Json::UInt(self.mean_ns)),
            ("max_queue_depth", Json::UInt(self.max_queue_depth)),
            ("slo_violations", Json::UInt(self.slo_violations)),
            ("cache_hot_hits", Json::UInt(self.cache_hot_hits)),
            ("cache_cold_hits", Json::UInt(self.cache_cold_hits)),
            ("cache_hit_ratio", Json::Num(self.cache_hit_ratio())),
            ("mean_batch", Json::Num(self.mean_batch())),
            ("capacity_rps", Json::Num(self.capacity_rps())),
            ("achieved_rps", Json::Num(self.achieved_rps())),
            ("duration_ns", Json::UInt(self.duration_ns)),
            ("service_ns", Json::UInt(self.service_ns)),
            ("digest", Json::str(format!("{:016x}", self.digest()))),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ServeReport {
        ServeReport {
            scenario: "srv_test".into(),
            traffic: "seed=7;poisson@1000;users=10;zipf=0;ids=2;reqs=100".into(),
            max_batch: 16,
            max_linger_ns: 1_000_000,
            queue_capacity: Some(512),
            slo_ns: 5_000_000,
            requests: 100,
            served: 98,
            shed: 2,
            batches: 10,
            p50_ns: 900_000,
            p95_ns: 2_000_000,
            p99_ns: 4_000_000,
            mean_ns: 1_000_000,
            max_queue_depth: 17,
            slo_violations: 1,
            cache_hot_hits: 150,
            cache_cold_hits: 46,
            duration_ns: 100_000_000,
            service_ns: 40_000_000,
        }
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let r = report();
        assert_eq!(r.digest(), r.digest());
        let mut r2 = r.clone();
        r2.p99_ns += 1;
        assert_ne!(r.digest(), r2.digest());
        // Unbounded vs zero-capacity queues must not collide.
        let mut r3 = r.clone();
        r3.queue_capacity = None;
        let mut r4 = r.clone();
        r4.queue_capacity = Some(0);
        assert_ne!(r3.digest(), r4.digest());
    }

    #[test]
    fn derived_rates_follow_their_definitions() {
        let r = report();
        assert!((r.mean_batch() - 9.8).abs() < 1e-12);
        assert!((r.capacity_rps() - 98.0 / 0.04).abs() < 1e-6);
        assert!((r.achieved_rps() - 980.0).abs() < 1e-6);
        assert!((r.cache_hit_ratio() - 150.0 / 196.0).abs() < 1e-12);
    }

    #[test]
    fn json_round_trips_the_kind_and_digest() {
        let r = report();
        let doc = r.to_json();
        assert_eq!(
            doc.get("kind").and_then(Json::as_str),
            Some(SERVE_REPORT_KIND)
        );
        assert_eq!(
            doc.get("digest").and_then(Json::as_str),
            Some(format!("{:016x}", r.digest()).as_str())
        );
        let text = doc.to_string();
        let back = picasso_obs::json::parse(&text).expect("valid json");
        assert_eq!(back.get("p99_ns").and_then(Json::as_u64), Some(4_000_000));
    }
}
