//! The deterministic event-loop replica serving model.
//!
//! One replica = one admission gate, one dynamic batcher, one server.
//! Batches are formed at dispatch time — the instant the server is free
//! and the batcher is ready — so batch size adapts to load instead of
//! freezing at linger expiry. Virtual time advances from event to event
//! (arrival, linger deadline, batch completion) with a fixed tie-break
//! order, so a seeded traffic plan produces a bit-identical report every
//! run.
//!
//! Per-batch service time is the analytic forward latency of the serving
//! plan ([`picasso_exec::forward_latency_ns`]), memoized per batch size;
//! embedding lookups additionally run through a real
//! [`HybridHash`] instance so cache hit/miss statistics reflect the actual
//! Zipf request stream rather than an analytic estimate.

use crate::batcher::{Batch, BatchPolicy, Batcher, QueuedRequest};
use crate::report::ServeReport;
use picasso_embedding::{EmbeddingTable, HybridHash, HybridHashConfig};
use picasso_exec::{forward_latency_ns, ServingPlan};
use picasso_obs::{LatencyRecorder, SloTracker};
use picasso_sim::TrafficPlan;

/// Configuration of one serving replica.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Dynamic batching policy.
    pub policy: BatchPolicy,
    /// Admission bound: maximum admitted-but-unserved requests (pending in
    /// the batcher or in service). Arrivals past the bound are shed
    /// deterministically. `None` = unbounded (draws the
    /// `run.serve-no-admission` lint).
    pub queue_capacity: Option<usize>,
    /// Latency SLO budget in nanoseconds.
    pub slo_ns: u64,
    /// Serving-cache (HybridHash) configuration. Warm-up/flush intervals
    /// count *batches* here, not training iterations.
    pub cache: HybridHashConfig,
    /// Embedding dimension of the serving-cache table.
    pub cache_dim: usize,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            policy: BatchPolicy::default(),
            queue_capacity: Some(4096),
            slo_ns: 5_000_000, // 5 ms
            cache: HybridHashConfig {
                warmup_iters: 10,
                flush_iters: 50,
                hot_bytes: 1 << 22, // 4 MB
            },
            cache_dim: 32,
        }
    }
}

/// A finished serving run: the report plus the raw latency recorder (for
/// metrics export and timeline inspection).
#[derive(Debug)]
pub struct ServeRun {
    /// The summary report.
    pub report: ServeReport,
    /// Every recorded latency and queue-depth sample.
    pub latency: LatencyRecorder,
}

/// Memoized analytic service times per batch size.
struct ServiceModel<'a> {
    plan: &'a ServingPlan,
    memo: Vec<Option<u64>>,
}

impl<'a> ServiceModel<'a> {
    fn new(plan: &'a ServingPlan, max_batch: usize) -> Self {
        ServiceModel {
            plan,
            memo: vec![None; max_batch + 1],
        }
    }

    fn service_ns(&mut self, batch: usize) -> u64 {
        let slot = batch.min(self.memo.len() - 1);
        *self.memo[slot].get_or_insert_with(|| {
            forward_latency_ns(&self.plan.spec, self.plan.strategy, &self.plan.cfg, batch)
        })
    }
}

/// Drives `traffic` through a replica serving `plan` under `cfg`,
/// returning the deterministic run summary labeled `scenario`.
pub fn serve(
    plan: &ServingPlan,
    traffic: &TrafficPlan,
    cfg: &ReplicaConfig,
    scenario: &str,
) -> ServeRun {
    let mut gen = traffic.generator();
    let mut next_arrival = gen.next();

    let mut batcher = Batcher::new(cfg.policy);
    let mut in_service: Option<(u64, Batch)> = None;
    let mut admitted_unserved: usize = 0;

    let mut svc = ServiceModel::new(plan, cfg.policy.max_batch);
    let mut recorder = LatencyRecorder::new();
    let mut slo = SloTracker::new(cfg.slo_ns);
    let cache_dim = cfg.cache_dim.max(1);
    let mut cache = HybridHash::new(
        EmbeddingTable::new(cache_dim, traffic.seed),
        cfg.cache.clone(),
    );
    let mut gather_out: Vec<f32> = Vec::new();

    let mut seq: u64 = 0;
    let mut shed: u64 = 0;
    let mut served: u64 = 0;
    let mut batches: u64 = 0;
    let mut total_service_ns: u64 = 0;
    let mut last_completion_ns: u64 = 0;
    let mut now: u64 = 0;

    // Dispatches a batch if the server is idle and the policy mandates one
    // (full batch waiting, or the oldest request's linger bound expired).
    // The batch is formed here, at pick-up, from everything pending.
    macro_rules! maybe_dispatch {
        ($now:expr) => {
            if in_service.is_none() && batcher.ready($now) {
                if let Some(batch) = batcher.take($now) {
                    let ids = batch.gather_ids();
                    gather_out.clear();
                    cache.lookup_batch(&ids, &mut gather_out);
                    let t = svc.service_ns(batch.len());
                    total_service_ns += t;
                    in_service = Some(($now + t, batch));
                }
            }
        };
    }

    loop {
        let t_done = in_service.as_ref().map(|&(end, _)| end);
        // The linger deadline only drives dispatch while the server is
        // idle; when it is busy, expired requests ride the next batch
        // formed at completion time.
        let t_deadline = if in_service.is_none() {
            batcher.deadline_ns()
        } else {
            None
        };
        let t_arrival = next_arrival.as_ref().map(|r| r.at_ns);
        // Next event; fixed tie-break order: completion, then linger
        // deadline, then arrival.
        let Some(t) = [t_done, t_deadline, t_arrival]
            .iter()
            .flatten()
            .min()
            .copied()
        else {
            break;
        };
        now = now.max(t);

        if t_done == Some(t) {
            let (end, batch) = in_service.take().unwrap();
            for req in &batch.requests {
                let latency = end - req.at_ns;
                recorder.observe(latency);
                slo.observe(latency);
            }
            served += batch.len() as u64;
            batches += 1;
            admitted_unserved -= batch.len();
            last_completion_ns = end;
            maybe_dispatch!(now);
        } else if t_deadline == Some(t) {
            maybe_dispatch!(now);
        } else {
            let req = next_arrival.take().unwrap();
            next_arrival = gen.next();
            let over = cfg
                .queue_capacity
                .map(|cap| admitted_unserved >= cap)
                .unwrap_or(false);
            if over {
                shed += 1;
            } else {
                admitted_unserved += 1;
                batcher.push(QueuedRequest {
                    seq,
                    at_ns: req.at_ns,
                    ids: req.ids,
                });
                seq += 1;
                maybe_dispatch!(now);
            }
        }
        recorder.sample_queue_depth(now, batcher.pending_len().min(u32::MAX as usize) as u32);
    }

    let stats = cache.stats();
    let sorted = recorder.sorted_ns();
    let report = ServeReport {
        scenario: scenario.to_string(),
        traffic: traffic.to_string(),
        max_batch: cfg.policy.max_batch as u64,
        max_linger_ns: cfg.policy.max_linger_ns,
        queue_capacity: cfg.queue_capacity.map(|c| c as u64),
        slo_ns: cfg.slo_ns,
        requests: traffic.requests,
        served,
        shed,
        batches,
        p50_ns: picasso_obs::exact_quantile(&sorted, 0.50),
        p95_ns: picasso_obs::exact_quantile(&sorted, 0.95),
        p99_ns: picasso_obs::exact_quantile(&sorted, 0.99),
        mean_ns: recorder.mean_ns().round() as u64,
        max_queue_depth: recorder.max_queue_depth() as u64,
        slo_violations: slo.violations,
        cache_hot_hits: stats.hot_hits,
        cache_cold_hits: stats.cold_hits,
        duration_ns: last_completion_ns,
        service_ns: total_service_ns,
    };
    ServeRun {
        report,
        latency: recorder,
    }
}
