//! # picasso-serve
//!
//! Forward-only inference for the PICASSO reproduction: the serving half
//! of the train→serve unification.
//!
//! A production wide-and-deep recommender spends most of its life serving,
//! and its serving-side economics are dominated by *tail latency* under a
//! skewed, bursty request stream — not by training throughput. This crate
//! models that regime end to end, deterministically:
//!
//! * [`batcher`] — dynamic request batching under a max-batch-size +
//!   max-linger-delay policy: the knob that trades per-request latency for
//!   amortized launch overhead (the same effect D/K-packing exploits in
//!   training).
//! * [`replica`] — a virtual-time event-loop replica: admission control
//!   (bounded queue with deterministic shedding), the batcher, a FIFO
//!   batch queue, and one server whose per-batch service time is the
//!   analytic forward latency of a [`picasso_exec::ServingPlan`].
//!   Embedding lookups run through a real
//!   [`picasso_embedding::HybridHash`], so cache hit/miss statistics
//!   reflect the actual Zipf request stream.
//! * [`report`] — the `picasso.serve_report` summary: exact p50/p95/p99
//!   latency, queue depth, SLO violations, cache hit rate, shed count, and
//!   capacity vs. achieved throughput, under an FNV-1a digest that two
//!   same-seed runs must reproduce bit-for-bit.
//!
//! Traffic comes from [`picasso_sim::TrafficPlan`] (seeded Poisson or
//! bursty MMPP arrivals over Zipf-distributed users); the forward-only
//! lowering, its effect-checked stage graph, and the serving lint rules
//! live in [`picasso_exec::serving`].
//!
//! ```
//! use picasso_data::DatasetSpec;
//! use picasso_exec::{prepare_serving, ModelKind, Strategy, TrainerOptions};
//! use picasso_serve::{serve, ReplicaConfig};
//! use picasso_sim::TrafficPlan;
//!
//! let data = DatasetSpec::criteo().shared();
//! let opts = TrainerOptions {
//!     batch_per_executor: Some(256),
//!     ..Default::default()
//! };
//! let cfg = ReplicaConfig::default();
//! let plan = prepare_serving(
//!     ModelKind::WideDeep, &data, Strategy::Hybrid, &opts,
//!     cfg.queue_capacity,
//! ).unwrap();
//! let traffic: TrafficPlan = "seed=7;poisson@20000;users=100000;zipf=105;ids=8;reqs=2000"
//!     .parse().unwrap();
//! let run = serve(&plan, &traffic, &cfg, "quickstart");
//! assert!(run.report.p99_ns >= run.report.p50_ns);
//! ```

#![warn(missing_docs)]

pub mod batcher;
pub mod replica;
pub mod report;

pub use batcher::{Batch, BatchPolicy, Batcher, QueuedRequest};
pub use replica::{serve, ReplicaConfig, ServeRun};
pub use report::{ServeReport, SERVE_REPORT_KIND, SERVE_REPORT_SCHEMA_VERSION};
