//! End-to-end acceptance criteria of the observatory: the seeded crash
//! leaves a checksummed post-mortem that pins the crashed iteration's
//! final causal task, and the cross-run store flags a 20% step regression
//! within three ingested runs while staying silent on clean history.

use picasso_bench::observatory::{
    has_regression, ingest_document, snapshot_records, trend_report, TrendVerdict,
};
use picasso_bench::recovery::run_scenario;
use picasso_bench::scenarios::recovery_scenarios;
use picasso_bench::snapshot::{BenchSnapshot, ScenarioResult};
use picasso_core::obs::flight::{FlightCategory, FlightDump};
use picasso_core::obs::history::HistoryStore;
use picasso_core::obs::json::Json;
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "picasso-bench-observatory-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn seeded_crash_leaves_a_validating_post_mortem_with_the_final_causal_task() {
    let ckpt = tmp_dir("ckpt");
    let sc = recovery_scenarios()
        .into_iter()
        .next()
        .expect("the suite registers a recovery scenario");
    let crash_at = 13; // pinned by the scenario's "seed=41;crash@13" plan
    let outcome = run_scenario(&sc, Some(&ckpt)).expect("scenario runs");

    // The post-mortem artifact exists, serializes, and survives the full
    // checksum validation round trip.
    let dump = outcome.post_mortem();
    assert!(!dump.events.is_empty(), "post-mortem captured events");
    let text = dump.to_json().to_json() + "\n";
    let back = FlightDump::from_text(&text).expect("checksum validates");
    assert_eq!(&back, dump);

    // It pins the crash: the last fault event is the crash at iteration
    // 13, and the last causal task is the collective of iteration 12 —
    // the final task that completed before the crash fired.
    let fault = dump.last_of(FlightCategory::Fault).expect("fault recorded");
    assert_eq!(fault.code, "crash");
    assert_eq!(fault.iter, crash_at);
    let task = dump.last_of(FlightCategory::Task).expect("task recorded");
    assert_eq!(task.code, "collective");
    assert_eq!(task.iter, crash_at - 1);

    // Same plan, same dump: the artifact is deterministic.
    let ckpt2 = tmp_dir("ckpt2");
    let again = run_scenario(&sc, Some(&ckpt2)).expect("scenario reruns");
    assert_eq!(again.post_mortem().digest(), dump.digest());

    let _ = fs::remove_dir_all(&ckpt);
    let _ = fs::remove_dir_all(&ckpt2);
}

fn synthetic_snapshot(secs: f64) -> Json {
    let mut metrics = BTreeMap::new();
    metrics.insert("secs_per_iteration".to_string(), secs);
    BenchSnapshot {
        version: 0,
        generated_unix_ms: 0,
        embedding_rows_per_sec: BTreeMap::new(),
        scenarios: vec![ScenarioResult {
            name: "wdl_base".into(),
            metrics,
            report: Json::Null,
            pass_wall_ns: BTreeMap::new(),
            analyze_wall_ns: 0,
            flight_wall_ns: 0,
        }],
    }
    .to_json()
}

#[test]
fn step_regression_is_flagged_within_three_runs_across_store_reopens() {
    // Each ingest reopens the store from disk, exactly like successive CI
    // runs would; the detector must flag a 20% secs_per_iteration step
    // within three ingested runs of the step landing, with zero false
    // positives while the series is clean.
    let dir = tmp_dir("history");
    for i in 0..5 {
        let mut store = HistoryStore::open(&dir).unwrap();
        ingest_document(&mut store, &format!("clean-{i}"), &synthetic_snapshot(0.5)).unwrap();
        let findings = trend_report(&store.load().unwrap());
        assert!(
            !has_regression(&findings),
            "false positive on clean run {i}: {findings:?}"
        );
    }
    let mut flagged_after = None;
    for i in 0..3 {
        let mut store = HistoryStore::open(&dir).unwrap();
        ingest_document(
            &mut store,
            &format!("shifted-{i}"),
            &synthetic_snapshot(0.6),
        )
        .unwrap();
        let findings = trend_report(&store.load().unwrap());
        if has_regression(&findings) {
            let f = findings
                .iter()
                .find(|f| f.verdict == TrendVerdict::Regressing)
                .unwrap();
            assert_eq!(f.scenario, "wdl_base");
            assert_eq!(f.metric, "secs_per_iteration");
            assert_eq!(f.change.at, 5, "regime starts at the first shifted run");
            assert!((f.change.rel_change - 0.2).abs() < 1e-9);
            flagged_after = Some(i + 1);
            break;
        }
    }
    assert!(
        flagged_after.is_some_and(|n| n <= 3),
        "the step must be flagged within three ingested runs"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn real_suite_snapshots_ingest_and_stay_trend_clean() {
    // Two identical captures of the real perf suite: everything ingests
    // under the pinned scenario names and the trend sweep stays silent.
    let dir = tmp_dir("real");
    let snap = BenchSnapshot::capture(0, 0);
    let records = snapshot_records(&snap);
    assert_eq!(
        records.len(),
        11,
        "one record per perf scenario plus one per serving scenario"
    );
    let mut store = HistoryStore::open(&dir).unwrap();
    for run in ["a", "b", "c"] {
        ingest_document(&mut store, run, &snap.to_json()).unwrap();
    }
    let loaded = store.load().unwrap();
    assert_eq!(loaded.len(), 33);
    let findings = trend_report(&loaded);
    assert!(
        findings.is_empty(),
        "identical captures cannot produce change-points: {findings:?}"
    );
    let _ = fs::remove_dir_all(&dir);
}
