//! End-to-end guarantees of the perf-gate suite: two captures of the same
//! code produce byte-identical canonical snapshots, a saved baseline
//! round-trips through disk and passes the gate against a fresh run, and a
//! doctored baseline is caught as a regression.

use picasso_bench::snapshot::{compare, BenchSnapshot};
use std::fs;

#[test]
fn suite_is_deterministic_and_gates_round_trip() {
    // Byte-identical modulo the volatile section (timestamp + pass wall
    // times), which canonical_json() nulls out.
    let a = BenchSnapshot::capture(0, 111);
    let b = BenchSnapshot::capture(0, 222);
    assert_eq!(
        a.canonical_json().to_json(),
        b.canonical_json().to_json(),
        "two runs of the suite must serialize byte-identically"
    );
    assert_eq!(a.scenarios.len(), 11, "8 training rows + 3 serving rows");
    let (train, srv): (Vec<_>, Vec<_>) = a
        .scenarios
        .iter()
        .partition(|sc| !sc.name.starts_with("srv_"));
    assert_eq!((train.len(), srv.len()), (8, 3));
    for sc in &train {
        assert!(
            sc.metrics["ips_per_node"] > 0.0,
            "{}: throughput must be positive",
            sc.name
        );
        // The run report rides along with calibration + utilization intact.
        let report = &sc.report;
        assert!(report.get("calibration").is_some(), "{}", sc.name);
        assert!(
            !report
                .get("utilization")
                .and_then(picasso_core::obs::Json::items)
                .unwrap()
                .is_empty(),
            "{}",
            sc.name
        );
    }
    for sc in &srv {
        assert!(
            sc.metrics["srv_p99_ns"] >= sc.metrics["srv_p50_ns"],
            "{}: quantiles must be ordered",
            sc.name
        );
        assert!(sc.metrics["srv_capacity_rps"] > 0.0, "{}", sc.name);
        // The full serve report rides along as the row's report document.
        assert_eq!(
            sc.report
                .get("kind")
                .and_then(picasso_core::obs::Json::as_str),
            Some("picasso.serve_report"),
            "{}",
            sc.name
        );
    }
    // Caching scenarios actually cache; the ladder is ordered by speedup.
    let by_name = |name: &str| &a.scenarios.iter().find(|s| s.name == name).unwrap().metrics;
    assert!(by_name("wdl_cache")["cache_hit_ratio"] > 0.0);
    assert_eq!(by_name("wdl_base")["cache_hit_ratio"], 0.0);
    assert!(by_name("wdl_cache")["ips_per_node"] > by_name("wdl_base")["ips_per_node"]);

    // Save/load round-trip, then gate the second capture against it.
    let dir = std::env::temp_dir().join(format!("perfgate-e2e-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let path = a.save(&dir).unwrap();
    let baseline = BenchSnapshot::load(&path).unwrap();
    let cmp = compare(&baseline, &b);
    assert!(cmp.passed(), "identical code must pass its own gate");

    // Synthetic regression: a baseline claiming 1.5x the real throughput.
    let mut doctored = baseline.clone();
    for sc in &mut doctored.scenarios {
        if let Some(&ips) = sc.metrics.get("ips_per_node") {
            sc.metrics.insert("ips_per_node".into(), ips * 1.5);
        }
    }
    let cmp = compare(&doctored, &b);
    assert!(!cmp.passed(), "a 33% throughput drop must fail the gate");
    // Only the training rows carry ips_per_node; the serving rows are
    // untouched by the doctoring and must not fail.
    assert_eq!(cmp.regressions().len(), 8);
    fs::remove_dir_all(&dir).unwrap();
}
