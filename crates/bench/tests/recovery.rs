//! End-to-end crash-and-recover guarantee of the bench suite: the
//! registered recovery scenario checkpoints, crashes, restores, and
//! finishes in bit-identical model state to an uninterrupted run.

use picasso_bench::recovery::{run_scenario, RECOVERY_REPORT_KIND};
use picasso_bench::scenarios::recovery_scenarios;
use picasso_core::obs::json::Json;

#[test]
fn suite_recovery_scenario_recovers_bit_identically() {
    let dir = std::env::temp_dir().join(format!("picasso-bench-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let scenarios = recovery_scenarios();
    assert!(
        !scenarios.is_empty(),
        "the suite registers a recovery scenario"
    );
    for sc in &scenarios {
        let outcome = run_scenario(sc, Some(&dir)).expect("scenario runs");
        // The crash actually happened, was recovered from a checkpoint,
        // and cost a bounded amount of work.
        assert!(!outcome.recovered.recoveries.is_empty(), "{}", sc.name);
        let rec = &outcome.recovered.recoveries[0];
        assert!(
            !rec.from_scratch,
            "{}: recovery must restore a checkpoint",
            sc.name
        );
        assert!(rec.restored_step > 0);
        assert!(rec.time_to_recover_s > 0.0);
        assert!(
            outcome.bit_identical(),
            "{}: recovered digest {:016x} != baseline {:016x}",
            sc.name,
            outcome.recovered.final_digest,
            outcome.baseline.final_digest
        );

        // The CI artifact carries the headline recovery metrics.
        let report = outcome.report_json();
        assert_eq!(
            report.get("kind").and_then(Json::as_str),
            Some(RECOVERY_REPORT_KIND)
        );
        assert_eq!(report.get("bit_identical"), Some(&Json::Bool(true)));
        let recovered = report.get("recovered").expect("recovered section");
        for key in ["time_to_recover_s", "lost_iterations", "ckpt_bytes"] {
            assert!(recovered.get(key).is_some(), "{key} missing from report");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
