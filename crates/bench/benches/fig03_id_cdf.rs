//! Bench target for fig03_id_cdf: regenerates the table once, then measures a
//! representative training-simulation unit.

use criterion::{criterion_group, criterion_main, Criterion};
use picasso_core::experiments::{fig03_id_cdf, Scale};

fn bench(c: &mut Criterion) {
    // Regenerate the paper artifact (captured by `cargo bench | tee ...`).
    println!("{}", fig03_id_cdf::run(Scale::Quick));
    let mut group = c.benchmark_group("fig03_id_cdf");
    group.sample_size(10);
    group.bench_function("regenerate", |b| b.iter(|| fig03_id_cdf::run(Scale::Quick)));
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows: each measured unit is a full multi-iteration training
    // simulation, so run-to-run variance is already low.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
