//! Bench target for tab03_auc: regenerates the table once, then measures a
//! representative training-simulation unit.

use criterion::{criterion_group, criterion_main, Criterion};
use picasso_core::experiments::{tab03_auc, Scale};

fn bench(c: &mut Criterion) {
    // Regenerate the paper artifact (captured by `cargo bench | tee ...`).
    println!("{}", tab03_auc::run(Scale::Quick));
    let mut group = c.benchmark_group("tab03_auc");
    group.sample_size(10);
    group.bench_function("regenerate", |b| b.iter(|| tab03_auc::run(Scale::Quick)));
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows: each measured unit is a full multi-iteration training
    // simulation, so run-to-run variance is already low.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
