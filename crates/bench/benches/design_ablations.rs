//! Ablation benches for the simulator's design choices (see DESIGN.md §4):
//! the framework op-dispatch cost (which packing amortizes) and interconnect
//! burst congestion (which interleaving paces). Each bench prints a small
//! comparison table showing that the modeled mechanism is load-bearing —
//! removing it collapses the corresponding optimization's benefit — then
//! measures the simulation under each variant.

use criterion::{criterion_group, criterion_main, Criterion};
use picasso_core::experiments::Scale;
use picasso_core::sim::MachineSpec;
use picasso_core::{Framework, ModelKind, PicassoConfig, Session};

fn ips(kind: ModelKind, machine: MachineSpec, fw: Framework) -> f64 {
    let mut cfg: PicassoConfig = Scale::Quick.eflops_config();
    cfg.machine = machine;
    cfg.machines = 2;
    cfg.batch_per_executor = Some(8192);
    Session::new(kind, cfg)
        .run_framework(fw)
        .report
        .ips_per_node
}

fn bench(c: &mut Criterion) {
    // Packing's benefit rests on the op-dispatch cost model: without it,
    // the baseline's fragmentary operations are free to launch and the
    // packing speedup should collapse toward the pipeline-granularity
    // effects only.
    let with_dispatch = ips(
        ModelKind::WideDeep,
        MachineSpec::eflops(),
        Framework::Picasso,
    ) / ips(
        ModelKind::WideDeep,
        MachineSpec::eflops(),
        Framework::PicassoBase,
    );
    let no_dispatch = ips(
        ModelKind::WideDeep,
        MachineSpec::eflops().without_dispatch_cost(),
        Framework::Picasso,
    ) / ips(
        ModelKind::WideDeep,
        MachineSpec::eflops().without_dispatch_cost(),
        Framework::PicassoBase,
    );
    println!("## design ablation — op-dispatch cost (W&D, PICASSO vs hybrid base)");
    println!("   with dispatch model: {with_dispatch:.2}x");
    println!("   without            : {no_dispatch:.2}x");
    assert!(
        with_dispatch > no_dispatch,
        "dispatch model must be load-bearing for packing"
    );

    // Interleaving's benefit is partly the congestion pacing.
    let m = MachineSpec::eflops();
    let with_c = ips(ModelKind::Can, m.clone(), Framework::Picasso);
    let no_c = ips(ModelKind::Can, m.without_congestion(), Framework::Picasso);
    println!("## design ablation — burst congestion (CAN under full PICASSO)");
    println!("   with congestion model: {with_c:.0} IPS");
    println!("   without              : {no_c:.0} IPS (idealized interconnect)");

    let mut group = c.benchmark_group("design_ablations");
    group.sample_size(10);
    group.bench_function("picasso_with_all_models", |b| {
        b.iter(|| {
            ips(
                ModelKind::WideDeep,
                MachineSpec::eflops(),
                Framework::Picasso,
            )
        })
    });
    group.bench_function("picasso_idealized_hardware", |b| {
        b.iter(|| {
            ips(
                ModelKind::WideDeep,
                MachineSpec::eflops()
                    .without_congestion()
                    .without_dispatch_cost(),
                Framework::Picasso,
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows: each measured unit is a full multi-iteration training
    // simulation, so run-to-run variance is already low.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
