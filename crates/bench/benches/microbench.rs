//! Microbenchmarks of the core data structures and passes: HybridHash
//! lookups, the embedding operator pipeline, the Zipf sampler, the packing
//! planner, and the event engine itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use picasso_core::data::{DatasetSpec, IdDistribution, IdSampler};
use picasso_core::embedding::{
    unique, EmbeddingTable, HybridHash, HybridHashConfig, PackPlan, PlannerConfig,
};
use picasso_core::graph::{d_packing, graph_stats, k_packing};
use picasso_core::models::ModelKind;
use picasso_core::sim::{Engine, ResourceKind, ResourceSpec, Task, TaskCategory};
use rand_ids::ids;

mod rand_ids {
    use super::*;
    /// Deterministic skewed ID stream for the microbenches.
    pub fn ids(n: usize) -> Vec<u64> {
        let sampler = IdSampler::new(50_000, IdDistribution::Zipf { s: 1.2 });
        let mut rng = <rand_impl::Pcg as rand_impl::Rng>::seeded(7);
        (0..n).map(|_| sampler_sample(&sampler, &mut rng)).collect()
    }
    fn sampler_sample(s: &IdSampler, rng: &mut rand_impl::Pcg) -> u64 {
        use rand_impl::Rng;
        let u = rng.next_f64();
        // Inverse-CDF via the sampler's public probability interface would
        // be slow; emulate by rank-skewed power draw.
        let v = (u.powf(3.0) * s.vocab() as f64) as u64;
        v.min(s.vocab() - 1)
    }
    pub mod rand_impl {
        pub trait Rng {
            fn seeded(seed: u64) -> Self;
            fn next_f64(&mut self) -> f64;
        }
        pub struct Pcg(u64);
        impl Rng for Pcg {
            fn seeded(seed: u64) -> Self {
                Pcg(seed.wrapping_mul(6364136223846793005).wrapping_add(1))
            }
            fn next_f64(&mut self) -> f64 {
                self.0 = self
                    .0
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (self.0 >> 11) as f64 / (1u64 << 53) as f64
            }
        }
    }
}

fn bench(c: &mut Criterion) {
    let stream = ids(16_384);

    c.bench_function("hybridhash_lookup_16k", |b| {
        let mut cache = HybridHash::new(
            EmbeddingTable::new(16, 1),
            HybridHashConfig {
                warmup_iters: 1,
                flush_iters: 64,
                hot_bytes: 8 << 20,
            },
        );
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            cache.lookup_batch(black_box(&stream), &mut out);
            out.len()
        })
    });

    c.bench_function("unique_16k", |b| {
        b.iter(|| unique(black_box(&stream)).0.unique_ids.len())
    });

    c.bench_function("pack_planner_product2", |b| {
        let data = DatasetSpec::product2();
        b.iter(|| PackPlan::plan(black_box(&data), &PlannerConfig::default()).pack_count())
    });

    c.bench_function("graph_passes_can", |b| {
        let data = DatasetSpec::product2();
        let spec = ModelKind::Can.build(&data);
        let plan = PackPlan::plan(&data, &PlannerConfig::default());
        let assign: std::collections::BTreeMap<usize, usize> = plan
            .packs
            .iter()
            .enumerate()
            .flat_map(|(p, pack)| pack.tables.iter().map(move |&t| (t, p)))
            .collect();
        b.iter(|| {
            let packed = k_packing::apply(&d_packing::apply(black_box(&spec), &assign));
            graph_stats(&packed).total_ops
        })
    });

    c.bench_function("event_engine_10k_tasks", |b| {
        b.iter(|| {
            let mut e = Engine::new();
            let g = e.add_resource(ResourceSpec::new("g", ResourceKind::GpuSm, 1e12, 0));
            let n = e.add_resource(ResourceSpec::new("n", ResourceKind::Network, 1e10, 0));
            let mut prev = None;
            for i in 0..10_000usize {
                let r = if i % 2 == 0 { g } else { n };
                let mut t = Task::new(r, 1e5, TaskCategory::Computation);
                if let Some(p) = prev {
                    if i % 3 == 0 {
                        t = t.after([p]);
                    }
                }
                prev = Some(e.add_task(t).unwrap());
            }
            e.run().unwrap().makespan
        })
    });
}

criterion_group! {
    name = benches;
    // Short windows: each measured unit is a full multi-iteration training
    // simulation, so run-to-run variance is already low.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
