//! Bench target for tab10_scale: regenerates the table once, then measures a
//! representative training-simulation unit.

use criterion::{criterion_group, criterion_main, Criterion};
use picasso_bench::{measured_baseline_run, measured_picasso_run};
use picasso_core::experiments::{tab10_scale, Scale};
use picasso_core::{Framework, ModelKind};

fn bench(c: &mut Criterion) {
    // Regenerate the paper artifact (captured by `cargo bench | tee ...`).
    println!("{}", tab10_scale::run(Scale::Quick));
    let mut group = c.benchmark_group("tab10_scale");
    group.sample_size(10);
    group.bench_function("picasso_unit", |b| {
        b.iter(|| measured_picasso_run(ModelKind::Can))
    });
    group.bench_function("baseline_unit", |b| {
        b.iter(|| measured_baseline_run(ModelKind::Can, Framework::Xdl))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows: each measured unit is a full multi-iteration training
    // simulation, so run-to-run variance is already low.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_millis(1500))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
