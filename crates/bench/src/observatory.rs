//! The flight-recorder and cross-run observatory bench suite.
//!
//! Two halves, one goal: catching what single-run gates miss.
//!
//! The **flight half** runs every [`FlightScenario`] — each perf scenario
//! of the snapshot suite — and taps the finished simulation through
//! [`picasso_core::exec::flight_record`]. The recorder inherits the
//! simulator's determinism, so the dump digest of every scenario is
//! bit-identical across repeated runs; a digest drift means the event
//! stream (and therefore any post-mortem built from it) changed.
//!
//! The **history half** is the cross-run observatory: run reports and
//! perfgate snapshots are ingested into an append-only
//! [`HistoryStore`], keyed by (scenario, metric), and every gated metric's
//! multi-run series is swept by the CUSUM change-point detector. A
//! change-point in the bad direction of a gate — slow drift the per-run
//! tolerance band absorbs run by run — surfaces as a
//! `run.regressing-trend` diagnostic and fails `repro --history-dir trend`
//! with exit code 4. The pinned [`HistoryScenario`] series prove the
//! detector fires on sustained steps in either direction and stays silent
//! on clean or sub-slack-jittery history.

use crate::scenarios::{suite_config, FlightScenario, HistoryScenario};
use crate::snapshot::{BenchSnapshot, Direction, GATES, SERVE_GATES};
use picasso_core::exec::flight_record;
use picasso_core::graph::{Diagnostic, Severity, Span};
use picasso_core::obs::flight::{FlightConfig, FlightStats};
use picasso_core::obs::history::{
    cusum_change_point, keys, series, ChangePoint, CusumConfig, HistoryStore, RunRecord, Shift,
};
use picasso_core::obs::json::Json;
use picasso_core::obs::RunReport;
use picasso_core::{Session, Strategy, TextTable};
use std::collections::BTreeMap;

/// Capacity of the tap recorder: comfortably above the event count of any
/// suite scenario, so the digest covers the *complete* stream.
const TAP_CAPACITY: usize = 1 << 14;

/// The flight tap of one scenario's finished simulation.
#[derive(Debug, Clone)]
pub struct FlightOutcome {
    /// Scenario name (`flt_*`).
    pub scenario: String,
    /// FNV-1a digest of the full-window dump (deterministic).
    pub digest: u64,
    /// Recorder accounting after the tap.
    pub stats: FlightStats,
    /// Tap wall time, nanoseconds (volatile — never compared).
    pub flight_wall_ns: u64,
}

/// Runs one flight scenario: simulate the wrapped perf scenario, tap the
/// executed schedule through the flight recorder, and digest the full
/// event window.
pub fn run_flight_scenario(sc: &FlightScenario) -> FlightOutcome {
    let session = Session::new(sc.perf.model, suite_config());
    let artifacts = session.run_custom(Strategy::Hybrid, sc.perf.pipeline.clone(), &sc.name);
    let config = FlightConfig {
        capacity: TAP_CAPACITY,
        ..FlightConfig::default()
    };
    let t0 = std::time::Instant::now();
    let rec = flight_record(&artifacts.output, &config);
    let flight_wall_ns = t0.elapsed().as_nanos() as u64;
    let dump = rec.dump(rec.occupancy());
    FlightOutcome {
        scenario: sc.name.clone(),
        digest: dump.digest(),
        stats: rec.stats(),
        flight_wall_ns,
    }
}

/// Human-readable flight-suite summary.
pub fn flight_table(outcomes: &[FlightOutcome]) -> TextTable {
    let mut t = TextTable::new(
        "Flight recorder: deterministic taps of the perf suite".to_string(),
        &["scenario", "digest", "events", "overwritten"],
    );
    for o in outcomes {
        t.row(vec![
            o.scenario.clone(),
            format!("{:016x}", o.digest),
            o.stats.recorded.to_string(),
            o.stats.overwritten.to_string(),
        ]);
    }
    t
}

/// One run of the change-point detector over a pinned synthetic series.
#[derive(Debug, Clone)]
pub struct HistoryOutcome {
    /// Scenario name (`hist_*`).
    pub scenario: String,
    /// What the scenario pins.
    pub expect: Option<Shift>,
    /// What the detector reported.
    pub detected: Option<Shift>,
}

impl HistoryOutcome {
    /// Whether the detector matched the pinned expectation.
    pub fn passed(&self) -> bool {
        self.expect == self.detected
    }
}

/// Runs one history scenario through the detector.
pub fn run_history_scenario(sc: &HistoryScenario) -> HistoryOutcome {
    let detected = cusum_change_point(&sc.values, &CusumConfig::default()).map(|cp| cp.direction);
    HistoryOutcome {
        scenario: sc.name.clone(),
        expect: sc.expect,
        detected,
    }
}

/// The per-run metric records one ingested document contributes: one
/// `(scenario, metrics)` pair per scenario the document covers.
pub type IngestRecords = Vec<(String, BTreeMap<String, f64>)>;

/// Extracts history records from a perfgate snapshot: one record per suite
/// scenario, carrying its gated headline metrics.
pub fn snapshot_records(snap: &BenchSnapshot) -> IngestRecords {
    snap.scenarios
        .iter()
        .map(|s| (s.name.clone(), s.metrics.clone()))
        .collect()
}

/// Extracts history records from a `picasso.run_report` document: the
/// experiment name becomes the scenario, and every label-free `exec_*`
/// gauge becomes a metric (prefix stripped, so `exec_secs_per_iteration`
/// lands under the same key a perfgate snapshot uses).
pub fn report_records(doc: &Json) -> Result<IngestRecords, String> {
    let experiment = doc
        .get("experiment")
        .and_then(Json::as_str)
        .ok_or("run report missing experiment")?
        .to_string();
    let gauges = doc
        .get("metrics")
        .and_then(|m| m.get("gauges"))
        .and_then(Json::items)
        .ok_or("run report missing metrics.gauges")?;
    let mut metrics = BTreeMap::new();
    for g in gauges {
        let Some(name) = g.get("name").and_then(Json::as_str) else {
            continue;
        };
        let labeled = g
            .get("labels")
            .is_some_and(|l| matches!(l, Json::Obj(pairs) if !pairs.is_empty()));
        if labeled {
            continue;
        }
        if let (Some(stripped), Some(value)) = (
            name.strip_prefix("exec_"),
            g.get("value").and_then(Json::as_f64),
        ) {
            metrics.insert(stripped.to_string(), value);
        }
    }
    if metrics.is_empty() {
        return Err("run report carries no label-free exec_* gauges".into());
    }
    Ok(vec![(experiment, metrics)])
}

/// Ingests one JSON document into the store, dispatching on its `kind`:
/// `picasso.bench_snapshot` contributes every suite scenario,
/// `picasso.run_report` its instrumented run. Returns the sequence number
/// the run received.
pub fn ingest_document(store: &mut HistoryStore, run_id: &str, doc: &Json) -> Result<u64, String> {
    let kind = doc.get("kind").and_then(Json::as_str).unwrap_or_default();
    let records = match kind {
        "picasso.bench_snapshot" => snapshot_records(&BenchSnapshot::from_json(doc)?),
        k if k == picasso_core::obs::report::RUN_REPORT_KIND => report_records(doc)?,
        other => return Err(format!("cannot ingest documents of kind {other:?}")),
    };
    store
        .ingest(run_id, &records)
        .map_err(|e| format!("history ingest: {e}"))
}

/// Minimum series length before the trend sweep consults the detector:
/// with fewer runs a single outlier *is* the history.
pub const MIN_TREND_RUNS: usize = 3;

/// Which way a detected change-point moved relative to its gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrendVerdict {
    /// The shift moves the metric in the gate's bad direction.
    Regressing,
    /// The shift moves the metric in the gate's good direction.
    Improving,
}

/// One sustained change-point found by the cross-run sweep.
#[derive(Debug, Clone)]
pub struct TrendFinding {
    /// Scenario the series belongs to.
    pub scenario: String,
    /// Gated metric key.
    pub metric: String,
    /// Number of runs in the series.
    pub runs: usize,
    /// The detected change-point.
    pub change: ChangePoint,
    /// Regressing or improving, per the gate's direction.
    pub verdict: TrendVerdict,
}

/// Sweeps every gated (scenario, metric) series of the history for
/// sustained change-points. Ungated metrics are skipped — the observatory
/// only alarms on what the perf gate guards.
pub fn trend_report(records: &[RunRecord]) -> Vec<TrendFinding> {
    let mut out = Vec::new();
    for (scenario, metric) in keys(records) {
        let Some(gate) = GATES
            .iter()
            .chain(&SERVE_GATES)
            .find(|g| g.metric == metric)
        else {
            continue;
        };
        let s = series(records, &scenario, &metric);
        if s.len() < MIN_TREND_RUNS {
            continue;
        }
        let values: Vec<f64> = s.iter().map(|&(_, v)| v).collect();
        let Some(change) = cusum_change_point(&values, &CusumConfig::default()) else {
            continue;
        };
        let bad = match gate.direction {
            Direction::HigherIsBetter => change.direction == Shift::Down,
            Direction::LowerIsBetter => change.direction == Shift::Up,
        };
        out.push(TrendFinding {
            scenario,
            metric,
            runs: s.len(),
            change,
            verdict: if bad {
                TrendVerdict::Regressing
            } else {
                TrendVerdict::Improving
            },
        });
    }
    out
}

/// True when any finding regresses (the `trend` action's failure
/// condition).
pub fn has_regression(findings: &[TrendFinding]) -> bool {
    findings
        .iter()
        .any(|f| f.verdict == TrendVerdict::Regressing)
}

/// Human-readable trend summary (printed by `repro --history-dir trend`).
pub fn trend_table(findings: &[TrendFinding]) -> TextTable {
    let mut t = TextTable::new(
        "Cross-run observatory: sustained change-points".to_string(),
        &[
            "scenario", "metric", "runs", "at", "shift", "delta", "verdict",
        ],
    );
    for f in findings {
        t.row(vec![
            f.scenario.clone(),
            f.metric.clone(),
            f.runs.to_string(),
            f.change.at.to_string(),
            f.change.direction.to_string(),
            format!("{:+.1}%", f.change.rel_change * 100.0),
            format!("{:?}", f.verdict),
        ]);
    }
    t
}

/// Lowers regressing findings into `run.regressing-trend` diagnostics.
pub fn trend_diagnostics(findings: &[TrendFinding]) -> Vec<Diagnostic> {
    findings
        .iter()
        .filter(|f| f.verdict == TrendVerdict::Regressing)
        .map(|f| {
            Diagnostic::new(
                "run.regressing-trend",
                Severity::Warn,
                Span::Run(format!("{}/{}", f.scenario, f.metric)),
                format!(
                    "{}: {} shifted {} by {:+.1}% at run {} of {} — a sustained \
                     change-point in the regressing direction",
                    f.scenario,
                    f.metric,
                    f.change.direction,
                    f.change.rel_change * 100.0,
                    f.change.at,
                    f.runs
                ),
            )
            .with_hint(
                "bisect the runs around the change-point; per-run perf gates \
                 absorb drift this slow",
            )
        })
        .collect()
}

/// The JSON artifact the `observatory` CI job uploads: flight digests plus
/// the trend findings of the scratch store.
pub fn observatory_report_json(flights: &[FlightOutcome], findings: &[TrendFinding]) -> Json {
    Json::obj([
        ("kind", Json::str("picasso.observatory_report")),
        (
            "flights",
            Json::Arr(
                flights
                    .iter()
                    .map(|o| {
                        Json::obj([
                            ("scenario", Json::str(&o.scenario)),
                            ("digest", Json::str(format!("{:016x}", o.digest))),
                            ("recorded", Json::UInt(o.stats.recorded)),
                            ("overwritten", Json::UInt(o.stats.overwritten)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "trends",
            Json::Arr(
                findings
                    .iter()
                    .map(|f| {
                        Json::obj([
                            ("scenario", Json::str(&f.scenario)),
                            ("metric", Json::str(&f.metric)),
                            ("runs", Json::UInt(f.runs as u64)),
                            ("at", Json::UInt(f.change.at as u64)),
                            ("shift", Json::str(f.change.direction.to_string())),
                            ("rel_change", Json::Num(f.change.rel_change)),
                            ("verdict", Json::str(format!("{:?}", f.verdict))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Parses a run-report text (as written by `repro --report-json`) for
/// ingestion, validating it against the pinned schema first.
pub fn parse_run_report(text: &str) -> Result<Json, String> {
    RunReport::validate(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{flight_scenarios, history_scenarios};
    use crate::snapshot::ScenarioResult;
    use std::fs;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("picasso-observatory-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn scenario(name: &str) -> FlightScenario {
        flight_scenarios()
            .into_iter()
            .find(|sc| sc.name == name)
            .expect("registered flight scenario")
    }

    #[test]
    fn flight_digests_are_bit_identical_across_runs() {
        let sc = scenario("flt_wdl_base");
        let a = run_flight_scenario(&sc);
        let b = run_flight_scenario(&sc);
        assert_eq!(
            a.digest, b.digest,
            "the tap must inherit the simulator's determinism"
        );
        assert!(a.stats.recorded > 0);
        assert_eq!(a.stats.overwritten, 0, "tap capacity must hold the suite");
        let table = flight_table(std::slice::from_ref(&a)).to_string();
        assert!(table.contains("flt_wdl_base"));
        assert!(table.contains(&format!("{:016x}", a.digest)));
    }

    #[test]
    fn history_suite_verdicts_match_their_pins() {
        for sc in history_scenarios() {
            let o = run_history_scenario(&sc);
            assert!(
                o.passed(),
                "{}: expected {:?}, detected {:?}",
                o.scenario,
                o.expect,
                o.detected
            );
        }
    }

    fn synthetic_snapshot(secs: f64) -> BenchSnapshot {
        let mut metrics = BTreeMap::new();
        metrics.insert("secs_per_iteration".to_string(), secs);
        metrics.insert("ips_per_node".to_string(), 1000.0 / secs);
        BenchSnapshot {
            version: 0,
            generated_unix_ms: 0,
            embedding_rows_per_sec: BTreeMap::new(),
            scenarios: vec![ScenarioResult {
                name: "wdl_base".into(),
                metrics,
                report: Json::Null,
                pass_wall_ns: BTreeMap::new(),
                analyze_wall_ns: 0,
                flight_wall_ns: 0,
            }],
        }
    }

    #[test]
    fn synthetic_step_regression_is_flagged_within_three_runs() {
        // The acceptance invariant: a 20% secs_per_iteration step lands as
        // a Regressing finding within three ingested runs of the step, and
        // a clean series of the same length never fires.
        let dir = tmp_dir("step");
        let mut store = HistoryStore::open(&dir).unwrap();
        for i in 0..4 {
            let doc = synthetic_snapshot(0.5).to_json();
            ingest_document(&mut store, &format!("clean-{i}"), &doc).unwrap();
        }
        let clean = trend_report(&store.load().unwrap());
        assert!(
            !has_regression(&clean),
            "zero false positives on flat history: {clean:?}"
        );

        for i in 0..3 {
            let doc = synthetic_snapshot(0.6).to_json();
            ingest_document(&mut store, &format!("shifted-{i}"), &doc).unwrap();
        }
        let findings = trend_report(&store.load().unwrap());
        let f = findings
            .iter()
            .find(|f| f.metric == "secs_per_iteration")
            .expect("the step must be flagged");
        assert_eq!(f.verdict, TrendVerdict::Regressing);
        assert_eq!(f.change.at, 4, "regime starts at the first shifted run");
        assert!((f.change.rel_change - 0.2).abs() < 1e-9);
        // The throughput drop is flagged too (HigherIsBetter, Shift::Down).
        assert!(findings
            .iter()
            .any(|f| f.metric == "ips_per_node" && f.verdict == TrendVerdict::Regressing));

        let diags = trend_diagnostics(&findings);
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.rule == "run.regressing-trend"));
        let table = trend_table(&findings).to_string();
        assert!(table.contains("secs_per_iteration"));
        assert!(table.contains("Regressing"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn improvements_report_but_never_fail() {
        let dir = tmp_dir("improve");
        let mut store = HistoryStore::open(&dir).unwrap();
        for (i, secs) in [0.6, 0.6, 0.6, 0.4, 0.4, 0.4].iter().enumerate() {
            let doc = synthetic_snapshot(*secs).to_json();
            ingest_document(&mut store, &format!("run-{i}"), &doc).unwrap();
        }
        let findings = trend_report(&store.load().unwrap());
        assert!(!findings.is_empty(), "the improvement is still reported");
        assert!(findings
            .iter()
            .all(|f| f.verdict == TrendVerdict::Improving));
        assert!(!has_regression(&findings));
        assert!(trend_diagnostics(&findings).is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_series_and_unknown_kinds_are_rejected_or_skipped() {
        let dir = tmp_dir("short");
        let mut store = HistoryStore::open(&dir).unwrap();
        // Two runs with a huge step: below MIN_TREND_RUNS, so no finding.
        for (i, secs) in [0.5, 5.0].iter().enumerate() {
            let doc = synthetic_snapshot(*secs).to_json();
            ingest_document(&mut store, &format!("run-{i}"), &doc).unwrap();
        }
        assert!(trend_report(&store.load().unwrap()).is_empty());
        // Unknown document kinds never ingest.
        let err = ingest_document(
            &mut store,
            "bad",
            &Json::obj([("kind", Json::str("picasso.mystery"))]),
        )
        .expect_err("unknown kind");
        assert!(err.contains("picasso.mystery"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_reports_ingest_under_snapshot_metric_keys() {
        let doc = Json::obj([
            ("kind", Json::str("picasso.run_report")),
            ("experiment", Json::str("fig13")),
            (
                "metrics",
                Json::obj([(
                    "gauges",
                    Json::Arr(vec![
                        Json::obj([
                            ("name", Json::str("exec_secs_per_iteration")),
                            ("labels", Json::obj([])),
                            ("value", Json::Num(0.5)),
                        ]),
                        Json::obj([
                            ("name", Json::str("exec_ips_per_node")),
                            ("labels", Json::obj([("model", Json::str("dlrm"))])),
                            ("value", Json::Num(9.0)),
                        ]),
                        Json::obj([
                            ("name", Json::str("flight_occupancy")),
                            ("labels", Json::obj([])),
                            ("value", Json::Num(3.0)),
                        ]),
                    ]),
                )]),
            ),
        ]);
        let records = report_records(&doc).unwrap();
        assert_eq!(records.len(), 1);
        let (scenario, metrics) = &records[0];
        assert_eq!(scenario, "fig13");
        assert_eq!(metrics.get("secs_per_iteration"), Some(&0.5));
        assert!(
            !metrics.contains_key("ips_per_node"),
            "labeled gauges stay out"
        );
        assert!(
            !metrics.contains_key("occupancy"),
            "non-exec gauges stay out"
        );
    }
}
