//! Ad-hoc inspection of busy/exposed fractions (development aid).
use picasso_core::experiments::Scale;
use picasso_core::{ModelKind, Optimizations, PicassoConfig, Session, Strategy};

fn main() {
    for kind in [ModelKind::WideDeep, ModelKind::Can, ModelKind::MMoe] {
        let mut cfg: PicassoConfig = Scale::Quick.eflops_config();
        cfg.batch_per_executor = Some(8192);
        let s = Session::new(kind, cfg);
        for (label, strat) in [
            ("PS", Strategy::PsSync { servers: 1 }),
            ("MP", Strategy::ModelParallel),
        ] {
            let r = s.run_custom(strat, Optimizations::none(), label).report;
            println!(
                "{} {}: iter={:.3}s ips={:.0}",
                kind.name(),
                label,
                r.secs_per_iteration,
                r.ips_per_node
            );
            for (cat, busy) in &r.busy {
                println!("   {cat:>14}: busy {busy:.2} exposed {:.2}", r.exposed[cat]);
            }
        }
    }
}
