//! Performance-regression gate over versioned benchmark snapshots.
//!
//! ```text
//! perfgate --check [--dir DIR] [--delta-out PATH] [--quiet]
//! perfgate --update-baseline [--dir DIR] [--quiet]
//! perfgate --check-improvement [--dir DIR] [--quiet]
//! ```
//!
//! `--check` runs the deterministic scenario suite, compares it against the
//! newest `BENCH_<n>.json` in `--dir` (default `.`), prints the delta table,
//! and exits 1 on any gated regression (2 when no baseline exists).
//! `--update-baseline` runs the suite and writes the next `BENCH_<n>.json`.
//! `--check-improvement` runs no scenario at all: it reads the committed
//! `BENCH_0.json` and the newest committed snapshot and exits 1 unless the
//! newest one's worst per-pass planning wall time strictly decreased — the
//! CI assertion that a claimed planning-hot-path optimization actually
//! landed in the committed baseline.

use picasso_bench::snapshot::{
    compare, latest_snapshot, next_version, worst_pass_wall, BenchSnapshot,
};
use std::path::PathBuf;
use std::time::{SystemTime, UNIX_EPOCH};

const USAGE: &str = "\
perfgate: benchmark snapshot + regression gate

USAGE:
    perfgate --check [--dir DIR] [--delta-out PATH] [--quiet]
    perfgate --update-baseline [--dir DIR] [--quiet]
    perfgate --check-improvement [--dir DIR] [--quiet]

FLAGS:
    --check             Run the suite and gate it against the newest
                        BENCH_<n>.json in --dir. Exit 0 when the gate
                        passes, 1 on regression, 2 when no baseline exists.
    --update-baseline   Run the suite and write the next BENCH_<n>.json.
    --check-improvement Compare the committed BENCH_0.json against the
                        newest committed snapshot (no scenario runs) and
                        exit 1 unless the worst per-pass planning wall
                        time strictly decreased.
    --dir DIR           Snapshot directory (default: current directory).
    --delta-out PATH    Also write the delta table to PATH (CI job summary).
    --quiet             Suppress everything except errors and the verdict.
    --help              Print this help.
";

struct Cli {
    dir: PathBuf,
    check: bool,
    update_baseline: bool,
    check_improvement: bool,
    delta_out: Option<String>,
    quiet: bool,
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        dir: PathBuf::from("."),
        check: false,
        update_baseline: false,
        check_improvement: false,
        delta_out: None,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} requires an argument");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--check" => cli.check = true,
            "--update-baseline" => cli.update_baseline = true,
            "--check-improvement" => cli.check_improvement = true,
            "--dir" => cli.dir = PathBuf::from(value("--dir")),
            "--delta-out" => cli.delta_out = Some(value("--delta-out")),
            "--quiet" => cli.quiet = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            flag => {
                eprintln!("unknown argument '{flag}'\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if [cli.check, cli.update_baseline, cli.check_improvement]
        .iter()
        .filter(|&&f| f)
        .count()
        != 1
    {
        eprintln!(
            "pass exactly one of --check / --update-baseline / --check-improvement\n\n{USAGE}"
        );
        std::process::exit(2);
    }
    cli
}

fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// `--check-improvement`: both snapshots come from disk, so this is a pure
/// assertion over committed artifacts — re-baselining without an actual
/// planning-time win fails here even though `--check`'s loose wall gate
/// would wave it through.
fn check_improvement(cli: &Cli) -> Result<i32, String> {
    let seed_path = cli.dir.join("BENCH_0.json");
    let seed = BenchSnapshot::load(&seed_path)?;
    let Some((version, path)) = latest_snapshot(&cli.dir) else {
        return Err(format!("no BENCH_<n>.json in {}", cli.dir.display()));
    };
    if version == 0 {
        return Err(
            "only BENCH_0.json is committed; re-baseline (--update-baseline) after a \
             planning-time improvement before asserting one"
                .into(),
        );
    }
    let latest = BenchSnapshot::load(&path)?;
    let (seed_sc, seed_pass, seed_ns) =
        worst_pass_wall(&seed).ok_or("BENCH_0.json has no pass_wall_ns records")?;
    let (cur_sc, cur_pass, cur_ns) = worst_pass_wall(&latest)
        .ok_or_else(|| format!("BENCH_{version}.json has no pass_wall_ns records"))?;
    if !cli.quiet {
        println!("worst pass wall time, BENCH_0 -> BENCH_{version}:");
        println!("  BENCH_0:        {seed_ns} ns ({seed_sc}/{seed_pass})");
        println!("  BENCH_{version}:        {cur_ns} ns ({cur_sc}/{cur_pass})");
    }
    if cur_ns < seed_ns {
        println!(
            "perf improvement HELD: {:.2}x faster worst pass vs BENCH_0",
            seed_ns as f64 / cur_ns.max(1) as f64
        );
        Ok(0)
    } else {
        println!(
            "perf improvement LOST: BENCH_{version} worst pass ({cur_ns} ns) is not below \
             BENCH_0 ({seed_ns} ns)"
        );
        Ok(1)
    }
}

fn run(cli: &Cli) -> Result<i32, String> {
    if cli.check_improvement {
        return check_improvement(cli);
    }
    if cli.update_baseline {
        let version = next_version(&cli.dir);
        if !cli.quiet {
            println!("running suite for BENCH_{version}.json ...");
        }
        let snap = BenchSnapshot::capture(version, now_unix_ms());
        let path = snap.save(&cli.dir)?;
        if !cli.quiet {
            println!("baseline written to {}", path.display());
        }
        return Ok(0);
    }

    let Some((version, path)) = latest_snapshot(&cli.dir) else {
        return Err(format!(
            "no BENCH_<n>.json baseline in {} (run --update-baseline first)",
            cli.dir.display()
        ));
    };
    let baseline = BenchSnapshot::load(&path)?;
    if !cli.quiet {
        println!("gating against BENCH_{version}.json ...");
    }
    let current = BenchSnapshot::capture(version + 1, now_unix_ms());
    let cmp = compare(&baseline, &current);
    let table = cmp.delta_table();
    if !cli.quiet {
        println!("{table}");
    }
    if let Some(out) = &cli.delta_out {
        std::fs::write(out, table.to_string()).map_err(|e| format!("{out}: {e}"))?;
    }
    if cmp.passed() {
        println!("perf gate PASSED against BENCH_{version}.json");
        Ok(0)
    } else {
        let failing = cmp.regressions();
        println!("perf gate FAILED: {} regression(s)", failing.len());
        for row in failing {
            println!(
                "  {} / {}: {:?} (baseline {:?}, current {:?})",
                row.scenario, row.metric, row.verdict, row.old, row.new
            );
        }
        Ok(1)
    }
}

fn main() {
    let cli = parse_args();
    match run(&cli) {
        Ok(code) => std::process::exit(code),
        Err(err) => {
            eprintln!("perfgate: {err}");
            std::process::exit(2);
        }
    }
}
