//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro <experiment|all> [quick|full]
//! ```
//!
//! Experiments: fig1 fig3 fig5 fig10 fig11 fig12 fig13 fig14 fig15
//!              tab3 tab4 tab5 tab6 tab7 tab8 tab9 tab10

use picasso_core::experiments::{
    fig01_util_trend, fig03_id_cdf, fig05_breakdown, fig10_walltime, fig11_sm_cdf,
    fig12_bandwidth, fig13_ips, fig14_groups, fig15_scaling, tab03_auc, tab04_ablation,
    tab05_opcount, tab06_cache, tab07_zoo, tab08_fields, tab09_production, tab10_scale, Scale,
};
use picasso_core::TextTable;
use std::time::Instant;

type Runner = fn(Scale) -> TextTable;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let scale = match args.get(1).map(String::as_str) {
        Some("full") => Scale::Full,
        _ => Scale::Quick,
    };

    let experiments: Vec<(&str, Runner)> = vec![
        ("fig1", fig01_util_trend::run),
        ("fig3", fig03_id_cdf::run),
        ("fig5", fig05_breakdown::run),
        ("tab3", tab03_auc::run),
        ("fig10", fig10_walltime::run),
        ("fig11", fig11_sm_cdf::run),
        ("fig12", fig12_bandwidth::run),
        ("fig13", fig13_ips::run),
        ("tab4", tab04_ablation::run),
        ("tab5", tab05_opcount::run),
        ("fig14", fig14_groups::run),
        ("tab6", tab06_cache::run),
        ("fig15", fig15_scaling::run),
        ("tab7", tab07_zoo::run),
        ("tab8", tab08_fields::run),
        ("tab9", tab09_production::run),
        ("tab10", tab10_scale::run),
    ];

    let mut ran = 0;
    for (name, run) in &experiments {
        if which != "all" && which != *name {
            continue;
        }
        let t0 = Instant::now();
        let table = run(scale);
        println!("{table}");
        println!("  [{name} regenerated in {:.1}s]\n", t0.elapsed().as_secs_f64());
        ran += 1;
    }
    if ran == 0 {
        eprintln!("unknown experiment '{which}'");
        eprintln!("known: fig1 fig3 fig5 fig10 fig11 fig12 fig13 fig14 fig15");
        eprintln!("       tab3 tab4 tab5 tab6 tab7 tab8 tab9 tab10 | all");
        std::process::exit(2);
    }
}
