//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro <experiment|all> [quick|full]
//!       [--trace-out PATH] [--metrics-out PATH] [--report-json PATH]
//!       [--lint] [--lint-json PATH] [--quiet]
//! ```
//!
//! Experiments: fig1 fig3 fig5 fig10 fig11 fig12 fig13 fig14 fig15
//!              tab3 tab4 tab5 tab6 tab7 tab8 tab9 tab10
//!
//! The `--*-out` flags run one instrumented PICASSO session (DLRM at the
//! selected scale) alongside the requested experiments and export it:
//! a Chrome trace for <https://ui.perfetto.dev>, a Prometheus text
//! exposition, and the versioned JSON run report (which also embeds every
//! regenerated table).
//!
//! `--lint` skips the experiments and instead runs the static analyzer
//! over every bench-suite scenario (spec, plan, lowered stage graph, and
//! the run surface of the recovery scenarios), printing the aggregated
//! report; `--lint-json PATH` (which implies `--lint`) also writes the
//! structured `picasso.lint_report` document.
//!
//! `--analyze` skips the experiments and instead runs the causal analyzer
//! over every perf scenario's executed DAG: critical path, achieved
//! overlap per resource pair versus the planned D×K interleaving, and
//! idle-gap attribution; `--analyze-json PATH` (which implies `--analyze`)
//! also writes the aggregated `picasso.analysis_suite` document, one
//! `picasso.analysis_report` per scenario.
//!
//! `--races` skips the experiments and instead runs the effect-based
//! concurrency analyzer over every perf scenario: static
//! may-happen-in-parallel race detection on the lowered stage graph, then
//! a trace cross-check of the declared effects against observed task
//! overlap across several seeded runs; `--races-json PATH` (which implies
//! `--races`) also writes the aggregated `picasso.race_suite` document.
//! Exit 4 when a static race or an undeclared overlap is found.
//!
//! `--serve` skips the experiments and instead drives every registered
//! serving scenario — a seeded open-loop traffic plan through the
//! forward-only replica with dynamic batching and admission control —
//! printing the latency/SLO summary; `--serve-plan SPEC` replaces the
//! suite with one ad-hoc scenario under the given traffic plan, and
//! `--serve-json PATH` (which implies `--serve`) writes the aggregated
//! `picasso.serve_report` document. Exit 4 when the serving plan's static
//! analysis finds error-severity diagnostics.
//!
//! `--fault-plan SPEC` (and/or `--ckpt-dir DIR`) switches to the
//! crash-and-recover mode: the real trainer runs once uninterrupted and
//! once under the fault plan with checkpointing against `--ckpt-dir`
//! (interval `--ckpt-every`, default from the suite scenario), then the
//! two final model states are compared bit for bit. `--report-json`
//! exports the `picasso.recovery_report` document and `--trace-out` the
//! recovered run's Chrome trace.
//!
//! `--flight-out PATH` exports a checksummed `picasso.flight_dump`: in
//! crash-and-recover mode the post-mortem ring captured at the first
//! crash, otherwise a post-hoc flight tap of the instrumented run.
//!
//! `--history-dir DIR` switches to the cross-run observatory. The first
//! positional becomes the action: `ingest [FILE]` appends a run (the file
//! may be a perfgate `picasso.bench_snapshot` or a `picasso.run_report`;
//! without a file the perf suite is captured fresh), `trend` sweeps every
//! gated (scenario, metric) series for sustained change-points (exit 4
//! when one regresses), and `query SCENARIO METRIC` prints one series.
//!
//! Exit codes: 0 on success, 1 when an export fails to write, 2 on bad
//! arguments or an unknown experiment (so scripts can tell usage errors
//! from runtime failures), 3 when the instrumented training run itself
//! fails (an invalid optimization pipeline, a task graph the engine
//! rejects, or an unrecoverable/diverging fault run), 4 when static
//! analysis finds error-severity diagnostics — either under `--lint` or
//! when the instrumented run is rejected before scheduling. `--quiet`
//! suppresses the tables and progress lines, leaving only errors and the
//! export confirmations.

use picasso_bench::recovery::run_scenario;
use picasso_bench::scenarios::{analysis_scenarios, race_scenarios, recovery_scenarios};
use picasso_bench::snapshot::{lint_suite, BenchSnapshot};
use picasso_bench::{analysis, observatory, races, serve as bench_serve};
use picasso_core::exec::{flight_record, lint_flight, lint_recovery};
use picasso_core::exec::{ModelKind, RunArtifacts, WarmupConfig};
use picasso_core::experiments::{
    fig01_util_trend, fig03_id_cdf, fig05_breakdown, fig10_walltime, fig11_sm_cdf, fig12_bandwidth,
    fig13_ips, fig14_groups, fig15_scaling, tab03_auc, tab04_ablation, tab05_opcount, tab06_cache,
    tab07_zoo, tab08_fields, tab09_production, tab10_scale, Scale,
};
use picasso_core::obs::flight::FlightConfig;
use picasso_core::obs::history::HistoryStore;
use picasso_core::sim::FaultPlan;
use picasso_core::{observe, PicassoConfig, Session, TextTable, TrainError};
use std::time::Instant;

type Runner = fn(Scale) -> TextTable;

const USAGE: &str = "\
repro: regenerate the paper's tables and figures

USAGE:
    repro <experiment|all> [quick|full]
          [--trace-out PATH] [--metrics-out PATH] [--report-json PATH]
          [--flight-out PATH] [--lint] [--lint-json PATH]
          [--analyze] [--analyze-json PATH]
          [--races] [--races-json PATH]
          [--serve] [--serve-plan SPEC] [--serve-json PATH] [--quiet]
    repro --fault-plan SPEC [--ckpt-dir DIR] [--ckpt-every N]
          [--report-json PATH] [--trace-out PATH] [--flight-out PATH]
          [--quiet]
    repro --history-dir DIR ingest [FILE]
    repro --history-dir DIR trend
    repro --history-dir DIR query SCENARIO METRIC

EXPERIMENTS:
    fig1 fig3 fig5 fig10 fig11 fig12 fig13 fig14 fig15
    tab3 tab4 tab5 tab6 tab7 tab8 tab9 tab10

FLAGS:
    --trace-out PATH    Export a Chrome trace of one instrumented run.
    --metrics-out PATH  Export the Prometheus text exposition.
    --report-json PATH  Export the versioned JSON run report.
    --lint              Statically analyze the bench suite instead of
                        running experiments; exit 4 on error findings.
    --lint-json PATH    Also write the structured lint report (implies
                        --lint).
    --analyze           Causal analysis of the bench suite: rebuild every
                        perf scenario's executed DAG and report critical
                        path, achieved vs planned overlap, and idle gaps.
    --analyze-json PATH Also write the aggregated analysis-suite document
                        (implies --analyze).
    --races             Effect-based concurrency analysis: static MHP race
                        detection over every scenario's stage graph plus a
                        trace cross-check of declared effects against
                        observed overlap; exit 4 on a race or an
                        undeclared overlap.
    --races-json PATH   Also write the aggregated race-suite document
                        (implies --races).
    --serve             Serving mode: drive every registered srv_* traffic
                        scenario through the forward-only replica (dynamic
                        batching, admission control) and print the
                        latency/SLO summary; exit 4 on error-severity
                        serving diagnostics.
    --serve-plan SPEC   Replace the suite with one ad-hoc scenario under
                        this traffic plan, e.g.
                        \"seed=7;poisson@2500;users=200000;zipf=105;ids=8;reqs=6000\"
                        (implies --serve).
    --serve-json PATH   Also write the aggregated picasso.serve_report
                        document (implies --serve).
    --fault-plan SPEC   Crash-and-recover mode: train under this fault
                        plan (e.g. \"seed=41;crash@13\") and verify the
                        recovered run is bit-identical to an uninterrupted
                        one.
    --ckpt-dir DIR      Checkpoint directory for the fault run; without it
                        checkpointing is disabled and a crash restarts
                        training from scratch.
    --ckpt-every N      Checkpoint interval in iterations (needs
                        --ckpt-dir; default from the suite scenario).
    --flight-out PATH   Export the checksummed flight-recorder dump: the
                        crash post-mortem in crash-and-recover mode, a
                        post-hoc tap of the instrumented run otherwise.
    --history-dir DIR   Cross-run observatory mode against this run-history
                        store; the positional arguments select the action
                        (ingest [FILE] | trend | query SCENARIO METRIC).
    --quiet             Suppress tables and progress lines.
    --help              Print this help.

EXIT CODES:
    0  success
    1  an export failed to write
    2  bad arguments or unknown experiment
    3  the instrumented training run failed (invalid pipeline, task graph,
       or an unrecoverable/diverging fault run)
    4  static analysis found error-severity diagnostics, or the trend
       sweep found a sustained regression
";

struct Cli {
    which: String,
    scale: Scale,
    positionals: Vec<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    report_json: Option<String>,
    flight_out: Option<String>,
    history_dir: Option<String>,
    lint: bool,
    lint_json: Option<String>,
    analyze: bool,
    analyze_json: Option<String>,
    races: bool,
    races_json: Option<String>,
    serve: bool,
    serve_plan: Option<String>,
    serve_json: Option<String>,
    fault_plan: Option<String>,
    ckpt_dir: Option<String>,
    ckpt_every: Option<u64>,
    quiet: bool,
}

fn parse_args() -> Cli {
    let mut cli = Cli {
        which: "all".into(),
        scale: Scale::Quick,
        positionals: Vec::new(),
        trace_out: None,
        metrics_out: None,
        report_json: None,
        flight_out: None,
        history_dir: None,
        lint: false,
        lint_json: None,
        analyze: false,
        analyze_json: None,
        races: false,
        races_json: None,
        serve: false,
        serve_plan: None,
        serve_json: None,
        fault_plan: None,
        ckpt_dir: None,
        ckpt_every: None,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a path argument");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--trace-out" => cli.trace_out = Some(value("--trace-out")),
            "--metrics-out" => cli.metrics_out = Some(value("--metrics-out")),
            "--report-json" => cli.report_json = Some(value("--report-json")),
            "--flight-out" => cli.flight_out = Some(value("--flight-out")),
            "--history-dir" => cli.history_dir = Some(value("--history-dir")),
            "--lint" => cli.lint = true,
            "--lint-json" => {
                cli.lint = true;
                cli.lint_json = Some(value("--lint-json"));
            }
            "--analyze" => cli.analyze = true,
            "--analyze-json" => {
                cli.analyze = true;
                cli.analyze_json = Some(value("--analyze-json"));
            }
            "--races" => cli.races = true,
            "--races-json" => {
                cli.races = true;
                cli.races_json = Some(value("--races-json"));
            }
            "--serve" => cli.serve = true,
            "--serve-plan" => {
                cli.serve = true;
                cli.serve_plan = Some(value("--serve-plan"));
            }
            "--serve-json" => {
                cli.serve = true;
                cli.serve_json = Some(value("--serve-json"));
            }
            "--fault-plan" => cli.fault_plan = Some(value("--fault-plan")),
            "--ckpt-dir" => cli.ckpt_dir = Some(value("--ckpt-dir")),
            "--ckpt-every" => {
                let raw = value("--ckpt-every");
                cli.ckpt_every = Some(raw.parse().unwrap_or_else(|_| {
                    eprintln!("--ckpt-every expects an iteration count, got '{raw}'");
                    std::process::exit(2);
                }));
            }
            "--quiet" => cli.quiet = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag '{flag}'\n\n{USAGE}");
                std::process::exit(2);
            }
            _ => cli.positionals.push(arg),
        }
    }
    // Outside observatory mode the positionals keep their historical
    // meaning: <experiment|all> [quick|full].
    if cli.history_dir.is_none() {
        if cli.positionals.len() > 2 {
            eprintln!("unexpected argument '{}'", cli.positionals[2]);
            std::process::exit(2);
        }
        if let Some(which) = cli.positionals.first() {
            cli.which = which.clone();
        }
        if let Some(scale) = cli.positionals.get(1) {
            cli.scale = if scale == "full" {
                Scale::Full
            } else {
                Scale::Quick
            };
        }
    }
    cli
}

/// One representative instrumented run feeding the exported artifacts.
/// A failed run (invalid pipeline or task graph) exits with code 3.
fn observed_run(scale: Scale) -> RunArtifacts {
    let config = match scale {
        Scale::Quick => PicassoConfig {
            iterations: scale.iterations(),
            warmup: WarmupConfig {
                batches: 4,
                batch_size: 256,
                max_vocab: 1000,
                hot_bytes: 1 << 24,
                seed: 1,
            },
            batch_per_executor: Some(1024),
            ..PicassoConfig::default()
        },
        Scale::Full => PicassoConfig::new()
            .machines(scale.eflops_nodes())
            .iterations(scale.iterations()),
    };
    Session::new(ModelKind::Dlrm, config)
        .try_run_picasso()
        .unwrap_or_else(|err| {
            eprintln!("instrumented training run failed: {err}");
            // Lint rejections get their own exit code so CI can tell a
            // broken invariant from a broken engine.
            std::process::exit(if matches!(err, TrainError::Lint(_)) {
                4
            } else {
                3
            });
        })
}

/// `--lint` mode: statically analyze every bench-suite scenario, render
/// the aggregated report, optionally export it, and exit — 4 when any
/// error-severity diagnostic exists, 0 otherwise.
fn lint_mode(cli: &Cli) -> ! {
    let report = lint_suite().unwrap_or_else(|err| {
        eprintln!("lint planning failed: {err}");
        std::process::exit(3);
    });
    if !cli.quiet || !report.is_clean() {
        print!("{}", report.render_text("bench suite"));
    }
    if let Some(path) = &cli.lint_json {
        write(path, "lint report", &(report.to_json().to_json() + "\n"));
    }
    std::process::exit(if report.is_clean() { 0 } else { 4 });
}

/// `--analyze` mode: run the causal analyzer over every perf scenario's
/// executed DAG, print the overlap/critical-path summary, optionally
/// export the aggregated suite document, and exit.
fn analyze_mode(cli: &Cli) -> ! {
    let mut outcomes = Vec::new();
    for sc in analysis_scenarios() {
        let t0 = Instant::now();
        let outcome = analysis::run_scenario(&sc);
        if !cli.quiet {
            println!(
                "  [{} analyzed in {:.1}s]",
                outcome.scenario,
                t0.elapsed().as_secs_f64()
            );
        }
        outcomes.push(outcome);
    }
    println!("{}", analysis::summary_table(&outcomes));
    if let Some(path) = &cli.analyze_json {
        write(
            path,
            "analysis suite report",
            &(analysis::suite_report_json(&outcomes).to_json() + "\n"),
        );
    }
    std::process::exit(0);
}

/// `--races` mode: run the effect-based concurrency analyzer over every
/// perf scenario — static MHP races on the lowered stage graph, then the
/// trace cross-check over seeded runs — print the summary, optionally
/// export the aggregated suite document, and exit — 4 when any scenario
/// has a static race or an undeclared observed overlap, 0 otherwise.
fn races_mode(cli: &Cli) -> ! {
    let mut outcomes = Vec::new();
    for sc in race_scenarios() {
        let t0 = Instant::now();
        let outcome = races::run_scenario(&sc);
        if !cli.quiet {
            println!(
                "  [{} race-checked in {:.1}s]",
                outcome.scenario,
                t0.elapsed().as_secs_f64()
            );
        }
        outcomes.push(outcome);
    }
    for o in &outcomes {
        for d in &o.diagnostics {
            eprintln!("{d}");
        }
    }
    println!("{}", races::summary_table(&outcomes));
    if let Some(path) = &cli.races_json {
        write(
            path,
            "race suite report",
            &(races::suite_report_json(&outcomes).to_json() + "\n"),
        );
    }
    std::process::exit(if outcomes.iter().all(races::RaceOutcome::is_clean) {
        0
    } else {
        4
    });
}

/// `--serve` mode: drive the registered serving scenarios (or one ad-hoc
/// `--serve-plan` scenario) through the forward-only replica, print the
/// latency/SLO summary, optionally export the aggregated
/// `picasso.serve_report` document, and exit — 2 on a bad traffic plan,
/// 3 when serving planning fails, 4 when the plan's static analysis has
/// error-severity diagnostics, 0 otherwise.
fn serve_mode(cli: &Cli) -> ! {
    use picasso_bench::scenarios::ServeScenario;
    let scenarios = match &cli.serve_plan {
        Some(spec) => {
            // Validate the grammar up front so a typo is a usage error
            // (exit 2), not a runtime failure.
            if let Err(err) = spec.parse::<picasso_core::sim::TrafficPlan>() {
                eprintln!("bad --serve-plan: {err}");
                std::process::exit(2);
            }
            vec![ServeScenario {
                name: "cli".into(),
                traffic: spec.clone(),
                max_batch: 256,
                max_linger_ns: 1_000_000,
                queue_capacity: Some(4096),
            }]
        }
        None => picasso_bench::scenarios::serve_scenarios(),
    };
    // One plan check up front: every suite scenario shares the serving
    // lowering, so its diagnostics (including the serving lint rules)
    // print once.
    let plan = bench_serve::serving_plan(scenarios[0].queue_capacity).unwrap_or_else(|err| {
        eprintln!("serving planning failed: {err}");
        std::process::exit(3);
    });
    for d in &plan.diagnostics {
        eprintln!("{d}");
    }
    let mut reports = Vec::new();
    for sc in &scenarios {
        let t0 = Instant::now();
        let report = bench_serve::run_scenario(sc).unwrap_or_else(|err| {
            eprintln!("serve scenario failed: {err}");
            std::process::exit(3);
        });
        if !cli.quiet {
            println!(
                "  [{} served {} requests in {:.1}s]",
                report.scenario,
                report.served,
                t0.elapsed().as_secs_f64()
            );
        }
        reports.push(report);
    }
    println!("{}", bench_serve::summary_table(&reports));
    if let Some(path) = &cli.serve_json {
        write(
            path,
            "serve report",
            &(bench_serve::suite_report_json(&reports).to_json() + "\n"),
        );
    }
    std::process::exit(if bench_serve::has_errors(&plan) { 4 } else { 0 });
}

/// `--history-dir` mode: the cross-run observatory. Dispatches on the
/// first positional — `ingest [FILE]`, `trend`, or
/// `query SCENARIO METRIC`.
fn history_mode(cli: &Cli, dir: &str) -> ! {
    let mut store = HistoryStore::open(std::path::Path::new(dir)).unwrap_or_else(|err| {
        eprintln!("history store {dir}: {err}");
        std::process::exit(3);
    });
    let action = cli.positionals.first().map(String::as_str).unwrap_or("");
    match action {
        "ingest" => {
            let seq = match cli.positionals.get(1) {
                Some(file) => {
                    let text = std::fs::read_to_string(file).unwrap_or_else(|err| {
                        eprintln!("{file}: {err}");
                        std::process::exit(3);
                    });
                    let doc = picasso_core::obs::json::parse(&text).unwrap_or_else(|err| {
                        eprintln!("{file}: {err}");
                        std::process::exit(3);
                    });
                    observatory::ingest_document(&mut store, file, &doc)
                }
                None => {
                    // No document given: capture the perf suite fresh and
                    // ingest its gated metrics directly.
                    if !cli.quiet {
                        println!("  [capturing the perf suite for ingestion]");
                    }
                    let snap = BenchSnapshot::capture(0, 0);
                    store
                        .ingest("suite", &observatory::snapshot_records(&snap))
                        .map_err(|e| e.to_string())
                }
            }
            .unwrap_or_else(|err| {
                eprintln!("ingest failed: {err}");
                std::process::exit(3);
            });
            println!(
                "ingested run {seq} into {dir} ({} runs total)",
                store.runs()
            );
            std::process::exit(0);
        }
        "trend" => {
            let records = store.load().unwrap_or_else(|err| {
                eprintln!("history store {dir}: {err}");
                std::process::exit(3);
            });
            let findings = observatory::trend_report(&records);
            for d in observatory::trend_diagnostics(&findings) {
                eprintln!("{d}");
            }
            if !cli.quiet || observatory::has_regression(&findings) {
                println!("{}", observatory::trend_table(&findings));
            }
            if observatory::has_regression(&findings) {
                eprintln!("sustained regression in the run history");
                std::process::exit(4);
            }
            println!(
                "trend OK: {} change-point(s), none regressing, {} runs on record",
                findings.len(),
                store.runs()
            );
            std::process::exit(0);
        }
        "query" => {
            let (Some(scenario), Some(metric)) = (cli.positionals.get(1), cli.positionals.get(2))
            else {
                eprintln!("query needs SCENARIO and METRIC\n\n{USAGE}");
                std::process::exit(2);
            };
            let records = store.load().unwrap_or_else(|err| {
                eprintln!("history store {dir}: {err}");
                std::process::exit(3);
            });
            for (seq, value) in picasso_core::obs::history::series(&records, scenario, metric) {
                println!("{seq}\t{value}");
            }
            std::process::exit(0);
        }
        other => {
            eprintln!("unknown observatory action '{other}'\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}

/// `--fault-plan` / `--ckpt-dir` mode: run the crash-and-recover scenario
/// and verify the recovered run matches the uninterrupted one bit for bit.
fn recovery_mode(cli: &Cli) -> ! {
    // Start from the suite's registered scenario so the CLI and the
    // `recovery` CI job exercise the same configuration by default.
    let mut sc = recovery_scenarios()
        .into_iter()
        .next()
        .expect("the suite registers a recovery scenario");
    if let Some(spec) = &cli.fault_plan {
        sc.opts.fault_plan = FaultPlan::parse(spec).unwrap_or_else(|err| {
            eprintln!("bad --fault-plan: {err}");
            std::process::exit(2);
        });
        sc.opts.seed = sc.opts.fault_plan.seed;
        sc.name = "cli".into();
    }
    if let Some(every) = cli.ckpt_every {
        sc.opts.ckpt_every = every;
    }
    if cli.ckpt_dir.is_none() {
        // Checkpointing is enabled iff a directory is given; the run
        // lint below flags crash plans left without one.
        sc.opts.ckpt_every = 0;
    }
    for d in lint_recovery(&sc.opts) {
        eprintln!("{d}");
    }
    let outcome = run_scenario(&sc, cli.ckpt_dir.as_deref().map(std::path::Path::new))
        .unwrap_or_else(|err| {
            eprintln!("crash-and-recover run failed: {err}");
            std::process::exit(3);
        });
    for d in lint_flight(&outcome.recovered.flight) {
        eprintln!("{d}");
    }
    if !cli.quiet {
        println!("{}", outcome.summary_table());
    }
    if let Some(path) = &cli.flight_out {
        write(
            path,
            "flight post-mortem",
            &(outcome.post_mortem().to_json().to_json() + "\n"),
        );
    }
    if let Some(path) = &cli.report_json {
        write(
            path,
            "recovery report",
            &(outcome.report_json().to_json() + "\n"),
        );
    }
    if let Some(path) = &cli.trace_out {
        write(
            path,
            "chrome trace",
            &outcome.recovered.chrome_trace().to_json(),
        );
    }
    if !outcome.bit_identical() {
        eprintln!(
            "recovered model state diverged from the uninterrupted run \
             ({:016x} != {:016x})",
            outcome.recovered.final_digest, outcome.baseline.final_digest
        );
        std::process::exit(3);
    }
    println!(
        "recovery OK: {} crash(es), {} lost iteration(s), bit-identical final state",
        outcome.recovered.recoveries.len(),
        outcome.recovered.lost_iterations()
    );
    std::process::exit(0);
}

fn write(path: &str, what: &str, contents: &str) {
    match std::fs::write(path, contents) {
        Ok(()) => println!("  [{what} written to {path}]"),
        Err(err) => {
            eprintln!("failed to write {what} to {path}: {err}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let cli = parse_args();
    if let Some(dir) = cli.history_dir.clone() {
        history_mode(&cli, &dir);
    }
    if cli.lint {
        lint_mode(&cli);
    }
    if cli.analyze {
        analyze_mode(&cli);
    }
    if cli.races {
        races_mode(&cli);
    }
    if cli.serve {
        serve_mode(&cli);
    }
    if cli.ckpt_every.is_some() && cli.ckpt_dir.is_none() && cli.fault_plan.is_none() {
        eprintln!("--ckpt-every needs --ckpt-dir or --fault-plan\n\n{USAGE}");
        std::process::exit(2);
    }
    if cli.fault_plan.is_some() || cli.ckpt_dir.is_some() {
        recovery_mode(&cli);
    }
    let scale_name = match cli.scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    };

    let experiments: Vec<(&str, Runner)> = vec![
        ("fig1", fig01_util_trend::run),
        ("fig3", fig03_id_cdf::run),
        ("fig5", fig05_breakdown::run),
        ("tab3", tab03_auc::run),
        ("fig10", fig10_walltime::run),
        ("fig11", fig11_sm_cdf::run),
        ("fig12", fig12_bandwidth::run),
        ("fig13", fig13_ips::run),
        ("tab4", tab04_ablation::run),
        ("tab5", tab05_opcount::run),
        ("fig14", fig14_groups::run),
        ("tab6", tab06_cache::run),
        ("fig15", fig15_scaling::run),
        ("tab7", tab07_zoo::run),
        ("tab8", tab08_fields::run),
        ("tab9", tab09_production::run),
        ("tab10", tab10_scale::run),
    ];

    let mut tables: Vec<TextTable> = Vec::new();
    let mut ran = 0;
    for (name, run) in &experiments {
        if cli.which != "all" && cli.which != *name {
            continue;
        }
        let t0 = Instant::now();
        let table = run(cli.scale);
        if !cli.quiet {
            println!("{table}");
            println!(
                "  [{name} regenerated in {:.1}s]\n",
                t0.elapsed().as_secs_f64()
            );
        }
        tables.push(table);
        ran += 1;
    }
    if ran == 0 {
        eprintln!("unknown experiment '{}'\n\n{USAGE}", cli.which);
        std::process::exit(2);
    }

    if cli.trace_out.is_some()
        || cli.metrics_out.is_some()
        || cli.report_json.is_some()
        || cli.flight_out.is_some()
    {
        let artifacts = observed_run(cli.scale);
        if let Some(path) = &cli.trace_out {
            write(
                path,
                "chrome trace",
                &observe::chrome_trace(&artifacts).to_json(),
            );
        }
        if let Some(path) = &cli.metrics_out {
            write(
                path,
                "prometheus metrics",
                &observe::prometheus_text(&artifacts),
            );
        }
        if let Some(path) = &cli.report_json {
            let report = observe::run_report(&cli.which, scale_name, &tables, Some(&artifacts));
            write(path, "run report", &report.to_json());
        }
        if let Some(path) = &cli.flight_out {
            let rec = flight_record(&artifacts.output, &FlightConfig::default());
            for d in lint_flight(&rec.stats()) {
                eprintln!("{d}");
            }
            let dump = rec.dump(rec.occupancy());
            write(path, "flight dump", &(dump.to_json().to_json() + "\n"));
        }
    }
}
