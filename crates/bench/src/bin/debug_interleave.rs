//! Ad-hoc inspection of interleaving effects (development aid).
use picasso_core::experiments::{fig14_groups, Scale};
use picasso_core::ModelKind;

fn main() {
    for kind in [ModelKind::MMoe, ModelKind::Can, ModelKind::WideDeep] {
        for (g, m) in [(1, 1), (1, 2), (1, 4), (3, 1), (3, 4), (5, 4)] {
            let ips = fig14_groups::ips_at(kind, g, m, Scale::Quick);
            println!("{} groups={g} micro={m}: {ips:.0}", kind.name());
        }
        println!();
    }
}
