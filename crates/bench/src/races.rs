//! The race-analysis bench suite.
//!
//! Runs every [`RaceScenario`] — each perf scenario of the snapshot suite
//! — through both halves of the effect-based concurrency analyzer:
//!
//! 1. **Static**: lower the post-pass spec to its stage graph and compute
//!    the may-happen-in-parallel races over the declared effect sets. The
//!    acceptance invariant is *zero findings on every suite scenario* —
//!    every conflicting stage pair of a real lowering has an ordering
//!    path, so any finding is a genuine modeling bug.
//! 2. **Dynamic**: simulate [`RACE_CHECK_RUNS`] seeded runs (the suite
//!    warm-up seed plus run index) and extract every observed conflicting
//!    task overlap from the causal event log, then cross-check the two
//!    sides with [`crosscheck_races`]: an observed conflict the static
//!    side never declared is a hard `race.undeclared-overlap` error; a
//!    static race that never manifests in any run is an informational
//!    `race.mhp-imprecision` note.
//!
//! The `races` CI leg runs this through `repro --races` and uploads
//! [`suite_report_json`] as its artifact. Determinism is anchored the same
//! way as the causal-analysis suite: the race digest of every scenario is
//! bit-identical across repeated invocations.

use crate::scenarios::{suite_config, RaceScenario};
use picasso_core::exec::{
    crosscheck_races, observed_conflicts, stage_graph, Diagnostic, ObservedOverlap, SimConfig,
    StaticRace, RACE_CHECK_RUNS,
};
use picasso_core::obs::json::Json;
use picasso_core::{Session, Severity, Strategy, TextTable};

/// Schema identifier of the aggregated race-suite document.
pub const RACE_SUITE_KIND: &str = "picasso.race_suite";

/// The race analysis of one scenario.
#[derive(Debug, Clone)]
pub struct RaceOutcome {
    /// Scenario name (`race_*`).
    pub scenario: String,
    /// Statically-detected MHP races of the lowered stage graph.
    pub static_races: Vec<StaticRace>,
    /// Observed conflicting overlaps, one list per seeded run.
    pub observed: Vec<Vec<ObservedOverlap>>,
    /// Cross-check verdicts (undeclared overlaps, imprecision notes).
    pub diagnostics: Vec<Diagnostic>,
    /// FNV-1a digest over every static and observed signature, pinned
    /// bit-identical across repeated runs.
    pub digest: u64,
}

impl RaceOutcome {
    /// True when neither half found an error-severity problem.
    pub fn is_clean(&self) -> bool {
        self.static_races.is_empty()
            && self
                .diagnostics
                .iter()
                .all(|d| d.severity < Severity::Error)
    }
}

fn fnv1a(digest: u64, bytes: &[u8]) -> u64 {
    let mut h = if digest == 0 {
        0xcbf2_9ce4_8422_2325
    } else {
        digest
    };
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Runs one race scenario: lower the scenario's pipeline once for the
/// static half, then simulate [`RACE_CHECK_RUNS`] seeded runs for the
/// dynamic half. The first run reuses the suite's canonical seed, so run 0
/// is exactly the configuration the perf gate measures.
pub fn run_scenario(sc: &RaceScenario) -> RaceOutcome {
    let mut observed = Vec::with_capacity(RACE_CHECK_RUNS);
    let mut static_races = Vec::new();
    for run in 0..RACE_CHECK_RUNS {
        let mut config = suite_config();
        config.warmup.seed = config.warmup.seed.wrapping_add(run as u64);
        let session = Session::new(sc.perf.model, config.clone());
        let artifacts = session.run_custom(Strategy::Hybrid, sc.perf.pipeline.clone(), &sc.name);
        if run == 0 {
            // The static half analyzes the lowering of the canonical run:
            // the post-pass spec under the simulation shape it actually ran.
            let cfg = SimConfig {
                batch_per_executor: artifacts.output.batch,
                iterations: artifacts.output.iterations,
                machines: artifacts.output.machines,
                machine: config.machine.clone(),
                quantized_comm: config.quantized_comm,
            };
            let g = stage_graph(&artifacts.spec, Strategy::Hybrid, &cfg);
            static_races = g.static_races();
        }
        observed.push(observed_conflicts(&artifacts.output));
    }
    let diagnostics = crosscheck_races(&static_races, &observed);
    let mut digest = 0u64;
    for r in &static_races {
        digest = fnv1a(digest, r.sig.to_string().as_bytes());
    }
    for (run, obs) in observed.iter().enumerate() {
        digest = fnv1a(digest, &[run as u8]);
        for o in obs {
            digest = fnv1a(digest, o.sig.to_string().as_bytes());
        }
    }
    RaceOutcome {
        scenario: sc.name.clone(),
        static_races,
        observed,
        diagnostics,
        digest,
    }
}

fn race_json(r: &StaticRace) -> Json {
    Json::obj([
        ("rule", Json::str(&r.sig.rule)),
        ("resource", Json::str(&r.sig.resource)),
        ("stage_a", Json::str(&r.labels.0)),
        ("stage_b", Json::str(&r.labels.1)),
    ])
}

/// The JSON artifact the `races` CI leg uploads: per scenario, the static
/// race list, per-run observed-overlap counts, and the cross-check
/// verdicts. A separate document kind from the run report, so the pinned
/// `BENCH_<n>.json` baselines are untouched by construction.
pub fn suite_report_json(outcomes: &[RaceOutcome]) -> Json {
    Json::obj([
        ("kind", Json::str(RACE_SUITE_KIND)),
        ("runs_per_scenario", Json::UInt(RACE_CHECK_RUNS as u64)),
        (
            "scenarios",
            Json::Arr(
                outcomes
                    .iter()
                    .map(|o| {
                        Json::obj([
                            ("scenario", Json::str(&o.scenario)),
                            ("digest", Json::str(format!("{:016x}", o.digest))),
                            (
                                "static_races",
                                Json::Arr(o.static_races.iter().map(race_json).collect()),
                            ),
                            (
                                "observed_overlaps",
                                Json::Arr(
                                    o.observed
                                        .iter()
                                        .map(|run| Json::UInt(run.len() as u64))
                                        .collect(),
                                ),
                            ),
                            (
                                "diagnostics",
                                Json::Arr(o.diagnostics.iter().map(|d| d.to_json()).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Human-readable summary (printed by `repro --races`).
pub fn summary_table(outcomes: &[RaceOutcome]) -> TextTable {
    let mut t = TextTable::new(
        "Race analysis: static MHP conflicts vs observed trace overlap".to_string(),
        &[
            "scenario", "digest", "static", "observed", "verdicts", "status",
        ],
    );
    for o in outcomes {
        let observed: usize = o.observed.iter().map(Vec::len).sum();
        t.row(vec![
            o.scenario.clone(),
            format!("{:016x}", o.digest),
            o.static_races.len().to_string(),
            observed.to_string(),
            o.diagnostics.len().to_string(),
            if o.is_clean() { "clean" } else { "RACE" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::race_scenarios;

    fn scenario(name: &str) -> RaceScenario {
        race_scenarios()
            .into_iter()
            .find(|sc| sc.name == name)
            .expect("registered race scenario")
    }

    #[test]
    fn cached_scenario_is_race_free_and_deterministic() {
        // The caching rung exercises the full effect surface (hot-storage
        // reads and reduce-adds on top of shards, dirty sets, collectives).
        let sc = scenario("race_wdl_cache");
        let a = run_scenario(&sc);
        assert!(a.is_clean(), "{:?}", a.diagnostics);
        assert!(
            a.static_races.is_empty(),
            "suite lowerings must have ordering paths for every conflicting \
             pair: {:?}",
            a.static_races
        );
        assert_eq!(a.observed.len(), RACE_CHECK_RUNS);
        for (run, obs) in a.observed.iter().enumerate() {
            assert!(obs.is_empty(), "run {run} observed conflicts: {obs:?}");
        }
        let b = run_scenario(&sc);
        assert_eq!(a.digest, b.digest, "race digest must be deterministic");
    }

    #[test]
    fn baseline_scenario_is_race_free() {
        let a = run_scenario(&scenario("race_wdl_base"));
        assert!(a.is_clean(), "{:?}", a.diagnostics);
        assert!(a.static_races.is_empty());
    }

    #[test]
    fn suite_report_names_every_scenario_and_verdict() {
        let o = run_scenario(&scenario("race_wdl_base"));
        let doc = suite_report_json(std::slice::from_ref(&o));
        let text = doc.to_json();
        let parsed = picasso_core::obs::json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("kind").and_then(Json::as_str),
            Some(RACE_SUITE_KIND)
        );
        assert_eq!(
            parsed.get("runs_per_scenario").and_then(Json::as_u64),
            Some(RACE_CHECK_RUNS as u64)
        );
        let scenarios = parsed.get("scenarios").and_then(Json::items).unwrap();
        assert_eq!(scenarios.len(), 1);
        assert_eq!(
            scenarios[0].get("scenario").and_then(Json::as_str),
            Some("race_wdl_base")
        );
        let table = summary_table(std::slice::from_ref(&o)).to_string();
        assert!(table.contains("race_wdl_base"));
        assert!(table.contains("clean"));
    }
}
