//! Benchmark snapshots and the performance-regression gate.
//!
//! A snapshot runs a fixed suite of deterministic simulator scenarios —
//! baseline, +packing, +interleaving, +caching, over a small and a large
//! model — one thread per scenario, and records the headline metrics plus
//! the full run report of each. The serving suite's `srv_*` rows (latency
//! quantiles, service capacity, cache hit rate from the forward-only
//! replica) ride behind the training rows and are gated by their own
//! [`SERVE_GATES`] metric family. Snapshots serialize to versioned
//! `BENCH_<n>.json` files; the `perfgate` binary compares a fresh run
//! against the newest committed snapshot and fails when any gated metric
//! moves past its threshold in the bad direction. Everything under the
//! `volatile` key (wall-clock timestamps, optimization-pass wall times,
//! causal-analyzer runtimes, flight-recorder tap times, and the embedding
//! micro-bench) is excluded from the determinism guarantee; the rest of
//! the document is byte-reproducible. One volatile family *is* still
//! gated: per-pass planning wall time, compared per scenario on its worst
//! pass under the deliberately loose [`PASS_WALL_GATE`] so a planning-cost
//! blowup fails CI without wall-clock noise doing the same.

use crate::scenarios::{perf_scenarios, recovery_scenarios, serve_scenarios, suite_config};
use picasso_core::exec::lint_recovery;
use picasso_core::obs::diff::rel_change;
use picasso_core::obs::flight::FlightConfig;
use picasso_core::obs::json::{self, Json};
use picasso_core::serve::ServeReport;
use picasso_core::{si, LintReport, Session, Strategy, TextTable};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

pub use crate::scenarios::Scenario;

/// Schema version of the `BENCH_<n>.json` document.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// The perf suite the snapshot captures (see [`crate::scenarios`] — the
/// shared table both `perfgate` and `repro --lint` register from).
pub fn scenarios() -> Vec<Scenario> {
    perf_scenarios()
}

/// Runs the static analyzer over every suite scenario without simulating.
///
/// Perf scenarios are analyzed over the spec, plan, and lowered-stage-graph
/// surfaces; recovery scenarios over the run surface (fault plan +
/// checkpoint policy). Each diagnostic message is prefixed with its
/// scenario name so one aggregated report stays attributable. Planning
/// failures (an invalid pass list) surface as `Err` rather than
/// diagnostics.
pub fn lint_suite() -> Result<LintReport, String> {
    let mut all = Vec::new();
    for sc in perf_scenarios() {
        let config = suite_config().optimizations(sc.pipeline.clone());
        let diags = Session::new(sc.model, config)
            .try_lint()
            .map_err(|e| format!("{}: {e}", sc.name))?;
        for mut d in diags {
            d.message = format!("[{}] {}", sc.name, d.message);
            all.push(d);
        }
    }
    for sc in recovery_scenarios() {
        for mut d in lint_recovery(&sc.opts) {
            d.message = format!("[{}] {}", sc.name, d.message);
            all.push(d);
        }
    }
    Ok(LintReport::new(all))
}

/// Micro-benchmark of the SoA embedding arena hot path: batched gather and
/// scatter over a fixed skewed ID set, reported as rows per second. The
/// numbers land in the snapshot's volatile section — recorded for
/// observability across baselines, never gated and never canonical.
pub fn embedding_microbench() -> BTreeMap<String, f64> {
    use picasso_core::embedding::EmbeddingTable;
    const DIM: usize = 32;
    const ROWS: usize = 4096;
    const REPS: usize = 64;
    let mut table = EmbeddingTable::new(DIM, 7);
    // A skewed, duplicate-bearing stream (multiplicative hash mod a vocab
    // smaller than the draw range), deterministic so both sides of any
    // comparison measure the same access pattern.
    let ids: Vec<u64> = (0..ROWS as u64)
        .map(|i| i.wrapping_mul(2654435761) % 3000)
        .collect();
    let mut out = Vec::new();
    // Materialize every row outside the timed region: the timed loops
    // measure the steady-state gather/scatter paths, not first-touch init.
    table.gather_rows(&ids, &mut out);

    let t0 = std::time::Instant::now();
    for _ in 0..REPS {
        table.gather_rows(&ids, &mut out);
        std::hint::black_box(out.last());
    }
    let gather = (ROWS * REPS) as f64 / t0.elapsed().as_secs_f64().max(1e-12);

    let grads = vec![0.01f32; ids.len() * DIM];
    let t0 = std::time::Instant::now();
    for _ in 0..REPS {
        table.scatter_grads(&ids, &grads, 1e-4);
    }
    let scatter = (ROWS * REPS) as f64 / t0.elapsed().as_secs_f64().max(1e-12);

    let mut out = BTreeMap::new();
    out.insert("gather_rows_per_sec".into(), gather);
    out.insert("scatter_rows_per_sec".into(), scatter);
    out
}

/// Results of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario name.
    pub name: String,
    /// Gated headline metrics (deterministic).
    pub metrics: BTreeMap<String, f64>,
    /// The full run report (deterministic).
    pub report: Json,
    /// Wall-clock time of each optimization pass, nanoseconds (volatile).
    pub pass_wall_ns: BTreeMap<String, u64>,
    /// Wall-clock time of the causal analyzer over the executed DAG,
    /// nanoseconds (volatile).
    pub analyze_wall_ns: u64,
    /// Wall-clock time of the flight-recorder tap over the executed
    /// schedule, nanoseconds (volatile).
    pub flight_wall_ns: u64,
}

/// Converts one serving report into its snapshot row. Serving metrics are
/// `srv_`-prefixed so the training gates ([`GATES`]) and the serving gates
/// ([`SERVE_GATES`]) skip each other's rows by key absence; the volatile
/// wall-time records stay empty (the replica runs in virtual time).
pub fn serve_result(report: &ServeReport) -> ScenarioResult {
    let mut metrics = BTreeMap::new();
    metrics.insert("srv_p50_ns".into(), report.p50_ns as f64);
    metrics.insert("srv_p95_ns".into(), report.p95_ns as f64);
    metrics.insert("srv_p99_ns".into(), report.p99_ns as f64);
    metrics.insert("srv_capacity_rps".into(), report.capacity_rps());
    metrics.insert("srv_cache_hit_ratio".into(), report.cache_hit_ratio());
    metrics.insert("srv_mean_batch".into(), report.mean_batch());
    metrics.insert("srv_shed".into(), report.shed as f64);
    metrics.insert("srv_slo_violations".into(), report.slo_violations as f64);
    metrics.insert("srv_max_queue_depth".into(), report.max_queue_depth as f64);
    ScenarioResult {
        name: report.scenario.clone(),
        metrics,
        report: report.to_json(),
        pass_wall_ns: BTreeMap::new(),
        analyze_wall_ns: 0,
        flight_wall_ns: 0,
    }
}

/// Runs one scenario and extracts its snapshot record.
pub fn run_scenario(sc: &Scenario) -> ScenarioResult {
    let session = Session::new(sc.model, suite_config());
    let artifacts = session.run_custom(Strategy::Hybrid, sc.pipeline.clone(), &sc.name);
    let t0 = std::time::Instant::now();
    let _ = picasso_core::exec::analyze_run(
        &artifacts.output,
        artifacts.spec.micro_batches.max(1),
        artifacts.spec.group_count().max(1),
    );
    let analyze_wall_ns = t0.elapsed().as_nanos() as u64;
    let t0 = std::time::Instant::now();
    let _ = picasso_core::exec::flight_record(&artifacts.output, &FlightConfig::default());
    let flight_wall_ns = t0.elapsed().as_nanos() as u64;
    let mut metrics = BTreeMap::new();
    metrics.insert("ips_per_node".into(), artifacts.report.ips_per_node);
    metrics.insert(
        "secs_per_iteration".into(),
        artifacts.report.secs_per_iteration,
    );
    metrics.insert(
        "makespan_secs".into(),
        artifacts.output.result.makespan.as_secs_f64(),
    );
    metrics.insert("cache_hit_ratio".into(), artifacts.report.cache_hit_ratio);
    metrics.insert("sm_util_pct".into(), artifacts.report.sm_util_pct);
    let mut pass_wall_ns = BTreeMap::new();
    for p in &artifacts.pass_reports {
        pass_wall_ns.insert(p.pass.clone(), p.duration_ns);
    }
    ScenarioResult {
        name: sc.name.clone(),
        metrics,
        report: artifacts.report.to_json(),
        pass_wall_ns,
        analyze_wall_ns,
        flight_wall_ns,
    }
}

/// A versioned benchmark snapshot.
#[derive(Debug, Clone)]
pub struct BenchSnapshot {
    /// Snapshot version (`BENCH_<version>.json`).
    pub version: u64,
    /// Wall-clock capture time, milliseconds since the Unix epoch (volatile).
    pub generated_unix_ms: u64,
    /// Embedding gather/scatter micro-bench, rows per second (volatile).
    pub embedding_rows_per_sec: BTreeMap<String, f64>,
    /// One result per suite scenario, in suite order.
    pub scenarios: Vec<ScenarioResult>,
}

impl BenchSnapshot {
    /// Runs the whole suite, one thread per scenario. `generated_unix_ms`
    /// is stamped by the caller (it lives in the volatile section either
    /// way).
    ///
    /// Scenarios are independent by construction — each thread builds its
    /// own `Session` and simulator — so they fan out across cores and land
    /// in their preassigned slots, keeping the result order (and therefore
    /// the serialized document) identical to a serial run. A panicking
    /// scenario propagates out of the scope join, exactly like the serial
    /// loop it replaces.
    pub fn capture(version: u64, generated_unix_ms: u64) -> BenchSnapshot {
        let suite = scenarios();
        let mut slots: Vec<Option<ScenarioResult>> = Vec::with_capacity(suite.len());
        slots.resize_with(suite.len(), || None);
        std::thread::scope(|scope| {
            for (slot, sc) in slots.iter_mut().zip(&suite) {
                scope.spawn(move || *slot = Some(run_scenario(sc)));
            }
        });
        let mut scenarios: Vec<ScenarioResult> = slots
            .into_iter()
            .map(|r| r.expect("scenario thread ran to completion"))
            .collect();
        // The serving suite rides behind the perf rows: the replica runs in
        // virtual time (milliseconds of wall clock per scenario), so a
        // serial pass keeps the document order fixed at no real cost.
        for sc in serve_scenarios() {
            let report = crate::serve::run_scenario(&sc)
                .unwrap_or_else(|e| panic!("serve scenario {}: {e}", sc.name));
            scenarios.push(serve_result(&report));
        }
        BenchSnapshot {
            version,
            generated_unix_ms,
            embedding_rows_per_sec: embedding_microbench(),
            scenarios,
        }
    }

    /// Full JSON document, including the volatile section.
    pub fn to_json(&self) -> Json {
        let volatile = Json::obj([
            ("generated_unix_ms", self.generated_unix_ms.into()),
            (
                "pass_wall_ns",
                Json::Obj(
                    self.scenarios
                        .iter()
                        .map(|s| {
                            (
                                s.name.clone(),
                                Json::Obj(
                                    s.pass_wall_ns
                                        .iter()
                                        .map(|(k, &v)| (k.clone(), Json::UInt(v)))
                                        .collect(),
                                ),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "analyze_wall_ns",
                Json::Obj(
                    self.scenarios
                        .iter()
                        .map(|s| (s.name.clone(), Json::UInt(s.analyze_wall_ns)))
                        .collect(),
                ),
            ),
            (
                "flight_wall_ns",
                Json::Obj(
                    self.scenarios
                        .iter()
                        .map(|s| (s.name.clone(), Json::UInt(s.flight_wall_ns)))
                        .collect(),
                ),
            ),
            (
                "embedding_rows_per_sec",
                Json::Obj(
                    self.embedding_rows_per_sec
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::Num(v)))
                        .collect(),
                ),
            ),
        ]);
        self.json_with_volatile(volatile)
    }

    /// JSON with the volatile section nulled: two captures of the same code
    /// serialize to byte-identical canonical documents.
    pub fn canonical_json(&self) -> Json {
        self.json_with_volatile(Json::Null)
    }

    fn json_with_volatile(&self, volatile: Json) -> Json {
        Json::obj([
            ("schema_version", BENCH_SCHEMA_VERSION.into()),
            ("kind", Json::str("picasso.bench_snapshot")),
            ("version", self.version.into()),
            ("volatile", volatile),
            (
                "scenarios",
                Json::Arr(
                    self.scenarios
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("name", Json::str(&s.name)),
                                (
                                    "metrics",
                                    Json::Obj(
                                        s.metrics
                                            .iter()
                                            .map(|(k, &v)| (k.clone(), Json::Num(v)))
                                            .collect(),
                                    ),
                                ),
                                ("report", s.report.clone()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a snapshot document (the inverse of [`BenchSnapshot::to_json`];
    /// the volatile section is optional so canonical documents parse too).
    pub fn from_json(doc: &Json) -> Result<BenchSnapshot, String> {
        let kind = doc.get("kind").and_then(Json::as_str).unwrap_or_default();
        if kind != "picasso.bench_snapshot" {
            return Err(format!("not a bench snapshot (kind {kind:?})"));
        }
        let version = doc
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("missing version")?;
        let generated_unix_ms = doc
            .get("volatile")
            .and_then(|v| v.get("generated_unix_ms"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        let mut embedding_rows_per_sec = BTreeMap::new();
        if let Some(Json::Obj(pairs)) = doc
            .get("volatile")
            .and_then(|v| v.get("embedding_rows_per_sec"))
        {
            for (k, v) in pairs {
                embedding_rows_per_sec.insert(k.clone(), v.as_f64().unwrap_or(0.0));
            }
        }
        let pass_walls = doc.get("volatile").and_then(|v| v.get("pass_wall_ns"));
        let analyze_walls = doc.get("volatile").and_then(|v| v.get("analyze_wall_ns"));
        let flight_walls = doc.get("volatile").and_then(|v| v.get("flight_wall_ns"));
        let mut out = Vec::new();
        for sc in doc
            .get("scenarios")
            .and_then(Json::items)
            .ok_or("missing scenarios")?
        {
            let name = sc
                .get("name")
                .and_then(Json::as_str)
                .ok_or("scenario missing name")?
                .to_string();
            let Some(Json::Obj(metric_pairs)) = sc.get("metrics") else {
                return Err(format!("scenario {name} missing metrics"));
            };
            let mut metrics = BTreeMap::new();
            for (k, v) in metric_pairs {
                metrics.insert(
                    k.clone(),
                    v.as_f64().ok_or_else(|| format!("bad metric {k}"))?,
                );
            }
            let mut pass_wall_ns = BTreeMap::new();
            if let Some(Json::Obj(walls)) = pass_walls.and_then(|w| w.get(&name)) {
                for (k, v) in walls {
                    pass_wall_ns.insert(k.clone(), v.as_u64().unwrap_or(0));
                }
            }
            let analyze_wall_ns = analyze_walls
                .and_then(|w| w.get(&name))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            let flight_wall_ns = flight_walls
                .and_then(|w| w.get(&name))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            out.push(ScenarioResult {
                name,
                metrics,
                report: sc.get("report").cloned().unwrap_or(Json::Null),
                pass_wall_ns,
                analyze_wall_ns,
                flight_wall_ns,
            });
        }
        Ok(BenchSnapshot {
            version,
            generated_unix_ms,
            embedding_rows_per_sec,
            scenarios: out,
        })
    }

    /// Reads `BENCH_<n>.json` from disk.
    pub fn load(path: &Path) -> Result<BenchSnapshot, String> {
        let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        BenchSnapshot::from_json(&doc)
    }

    /// Writes the snapshot to `dir/BENCH_<version>.json`.
    pub fn save(&self, dir: &Path) -> Result<PathBuf, String> {
        let path = dir.join(format!("BENCH_{}.json", self.version));
        fs::write(&path, self.to_json().to_json() + "\n")
            .map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(path)
    }
}

/// Lists `(version, path)` of every `BENCH_<n>.json` in `dir`, sorted by
/// version.
pub fn snapshot_files(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(version) = name
            .strip_prefix("BENCH_")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|num| num.parse::<u64>().ok())
        else {
            continue;
        };
        out.push((version, entry.path()));
    }
    out.sort();
    out
}

/// The newest committed snapshot in `dir`, if any.
pub fn latest_snapshot(dir: &Path) -> Option<(u64, PathBuf)> {
    snapshot_files(dir).into_iter().next_back()
}

/// The version a fresh snapshot in `dir` should get.
pub fn next_version(dir: &Path) -> u64 {
    latest_snapshot(dir).map(|(v, _)| v + 1).unwrap_or(0)
}

/// Which way a gated metric is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger is better (throughput, hit ratios, utilization).
    HigherIsBetter,
    /// Smaller is better (latencies, makespans).
    LowerIsBetter,
}

/// A gated metric with its per-metric relative threshold.
#[derive(Debug, Clone, Copy)]
pub struct Gate {
    /// Metric key inside [`ScenarioResult::metrics`].
    pub metric: &'static str,
    /// Good direction.
    pub direction: Direction,
    /// Maximum tolerated relative move in the bad direction.
    pub threshold: f64,
}

/// The gated metric set. Simulated metrics are deterministic, so thresholds
/// guard against model changes, not noise; they stay small.
pub const GATES: [Gate; 5] = [
    Gate {
        metric: "ips_per_node",
        direction: Direction::HigherIsBetter,
        threshold: 0.05,
    },
    Gate {
        metric: "secs_per_iteration",
        direction: Direction::LowerIsBetter,
        threshold: 0.05,
    },
    Gate {
        metric: "makespan_secs",
        direction: Direction::LowerIsBetter,
        threshold: 0.05,
    },
    Gate {
        metric: "cache_hit_ratio",
        direction: Direction::HigherIsBetter,
        threshold: 0.05,
    },
    Gate {
        metric: "sm_util_pct",
        direction: Direction::HigherIsBetter,
        threshold: 0.10,
    },
];

/// The serving gates over the `srv_*` rows of the snapshot. The replica's
/// virtual-time event loop is deterministic, so — like [`GATES`] — the
/// thresholds guard model changes, not noise. Scenarios missing a serving
/// metric on both sides (every training row) are skipped by key absence,
/// and a baseline predating the serving suite compares as `Added`, never
/// as a failure.
pub const SERVE_GATES: [Gate; 3] = [
    Gate {
        metric: "srv_p99_ns",
        direction: Direction::LowerIsBetter,
        threshold: 0.05,
    },
    Gate {
        metric: "srv_capacity_rps",
        direction: Direction::HigherIsBetter,
        threshold: 0.05,
    },
    Gate {
        metric: "srv_cache_hit_ratio",
        direction: Direction::HigherIsBetter,
        threshold: 0.05,
    },
];

/// The planning-time gate: each scenario's worst (maximum) per-pass wall
/// time, read from the volatile `pass_wall_ns` records. Unlike the
/// simulated [`GATES`], this is real wall-clock time, so the threshold is
/// generous — the gate exists to catch a pass whose planning cost blows up
/// asymptotically (the historical quadratic affinity scan), not to police
/// scheduler jitter. Scenarios missing pass-wall records on either side
/// (canonical documents, synthetic snapshots) are skipped, never failed.
pub const PASS_WALL_GATE: Gate = Gate {
    metric: "worst_pass_wall_ns",
    direction: Direction::LowerIsBetter,
    threshold: 3.0,
};

/// The worst `(scenario, pass, wall ns)` across a snapshot's volatile
/// planning-time records, if any were captured.
pub fn worst_pass_wall(snap: &BenchSnapshot) -> Option<(String, String, u64)> {
    snap.scenarios
        .iter()
        .flat_map(|s| {
            s.pass_wall_ns
                .iter()
                .map(move |(p, &ns)| (s.name.clone(), p.clone(), ns))
        })
        .max_by_key(|&(_, _, ns)| ns)
}

/// Verdict for one (scenario, metric) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within threshold.
    Ok,
    /// Moved past threshold in the good direction.
    Improved,
    /// Moved past threshold in the bad direction — fails the gate.
    Regressed,
    /// Present now, absent in the baseline — informational.
    Added,
    /// Present in the baseline, absent now — fails the gate.
    Missing,
}

/// One row of the delta report.
#[derive(Debug, Clone)]
pub struct DeltaRow {
    /// Scenario name.
    pub scenario: String,
    /// Metric key.
    pub metric: String,
    /// Baseline value.
    pub old: Option<f64>,
    /// Current value.
    pub new: Option<f64>,
    /// Relative change, when defined.
    pub rel: Option<f64>,
    /// Gate verdict.
    pub verdict: Verdict,
}

/// Result of comparing a fresh run against a baseline snapshot.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Baseline snapshot version.
    pub baseline_version: u64,
    /// One row per gated (scenario, metric) pair.
    pub rows: Vec<DeltaRow>,
}

impl Comparison {
    /// Rows that fail the gate.
    pub fn regressions(&self) -> Vec<&DeltaRow> {
        self.rows
            .iter()
            .filter(|r| matches!(r.verdict, Verdict::Regressed | Verdict::Missing))
            .collect()
    }

    /// True when no gated metric regressed or went missing.
    pub fn passed(&self) -> bool {
        self.regressions().is_empty()
    }

    /// Human-readable delta table (also the CI job-summary artifact).
    pub fn delta_table(&self) -> TextTable {
        let mut t = TextTable::new(
            format!("Perf gate vs BENCH_{}", self.baseline_version),
            &[
                "scenario", "metric", "baseline", "current", "delta", "verdict",
            ],
        );
        let fmt = |v: Option<f64>| v.map(si).unwrap_or_else(|| "-".into());
        for row in &self.rows {
            t.row(vec![
                row.scenario.clone(),
                row.metric.clone(),
                fmt(row.old),
                fmt(row.new),
                row.rel
                    .map(|r| format!("{:+.1}%", r * 100.0))
                    .unwrap_or_else(|| "n/a".into()),
                format!("{:?}", row.verdict),
            ]);
        }
        t
    }
}

fn judge(gate: &Gate, old: f64, new: f64) -> (Option<f64>, Verdict) {
    match rel_change(old, new) {
        None => {
            // Zero/degenerate baseline: only an exact match is comparable.
            if old == new {
                (None, Verdict::Ok)
            } else if matches!(gate.direction, Direction::HigherIsBetter) == (new > old) {
                (None, Verdict::Improved)
            } else {
                (None, Verdict::Regressed)
            }
        }
        Some(rel) => {
            let bad = match gate.direction {
                Direction::HigherIsBetter => rel < -gate.threshold,
                Direction::LowerIsBetter => rel > gate.threshold,
            };
            let good = match gate.direction {
                Direction::HigherIsBetter => rel > gate.threshold,
                Direction::LowerIsBetter => rel < -gate.threshold,
            };
            let verdict = if bad {
                Verdict::Regressed
            } else if good {
                Verdict::Improved
            } else {
                Verdict::Ok
            };
            (Some(rel), verdict)
        }
    }
}

/// Compares `current` against `baseline` over every gated metric of every
/// scenario in either snapshot.
pub fn compare(baseline: &BenchSnapshot, current: &BenchSnapshot) -> Comparison {
    let old_by_name: BTreeMap<&str, &ScenarioResult> = baseline
        .scenarios
        .iter()
        .map(|s| (s.name.as_str(), s))
        .collect();
    let new_by_name: BTreeMap<&str, &ScenarioResult> = current
        .scenarios
        .iter()
        .map(|s| (s.name.as_str(), s))
        .collect();
    let mut names: Vec<&str> = old_by_name
        .keys()
        .chain(new_by_name.keys())
        .copied()
        .collect();
    names.sort();
    names.dedup();

    let mut rows = Vec::new();
    for name in names {
        let old = old_by_name.get(name);
        let new = new_by_name.get(name);
        for gate in GATES.iter().chain(&SERVE_GATES) {
            let old_v = old.and_then(|s| s.metrics.get(gate.metric)).copied();
            let new_v = new.and_then(|s| s.metrics.get(gate.metric)).copied();
            let (rel, verdict) = match (old_v, new_v) {
                (Some(o), Some(n)) => judge(gate, o, n),
                (Some(_), None) => (None, Verdict::Missing),
                (None, Some(_)) => (None, Verdict::Added),
                // Absent on both sides: the metric belongs to the other
                // family (training gates on a serving row or vice versa).
                (None, None) => continue,
            };
            rows.push(DeltaRow {
                scenario: name.to_string(),
                metric: gate.metric.to_string(),
                old: old_v,
                new: new_v,
                rel,
                verdict,
            });
        }
        // Planning wall time, gated per scenario on the worst pass. Only
        // when both sides carry volatile pass-wall records: a canonical
        // document (or a synthetic test snapshot) has none, and wall time
        // absent on one side is not a regression.
        let worst = |s: &&ScenarioResult| s.pass_wall_ns.values().copied().max();
        if let (Some(o), Some(n)) = (
            old.and_then(worst).map(|v| v as f64),
            new.and_then(worst).map(|v| v as f64),
        ) {
            let (rel, verdict) = judge(&PASS_WALL_GATE, o, n);
            rows.push(DeltaRow {
                scenario: name.to_string(),
                metric: PASS_WALL_GATE.metric.to_string(),
                old: Some(o),
                new: Some(n),
                rel,
                verdict,
            });
        }
    }
    Comparison {
        baseline_version: baseline.version,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use picasso_core::Optimizations;

    fn synthetic(name: &str, ips: f64, secs: f64) -> ScenarioResult {
        let mut metrics = BTreeMap::new();
        metrics.insert("ips_per_node".into(), ips);
        metrics.insert("secs_per_iteration".into(), secs);
        metrics.insert("makespan_secs".into(), secs * 2.0);
        metrics.insert("cache_hit_ratio".into(), 0.0);
        metrics.insert("sm_util_pct".into(), 40.0);
        ScenarioResult {
            name: name.into(),
            metrics,
            report: Json::Null,
            pass_wall_ns: BTreeMap::new(),
            analyze_wall_ns: 0,
            flight_wall_ns: 0,
        }
    }

    fn synthetic_snapshot(version: u64, ips: f64) -> BenchSnapshot {
        BenchSnapshot {
            version,
            generated_unix_ms: 123,
            embedding_rows_per_sec: BTreeMap::new(),
            scenarios: vec![synthetic("wdl_cache", ips, 0.5)],
        }
    }

    #[test]
    fn identical_snapshots_pass_the_gate() {
        let a = synthetic_snapshot(0, 1000.0);
        let b = synthetic_snapshot(1, 1000.0);
        let cmp = compare(&a, &b);
        assert!(cmp.passed());
        assert!(cmp.rows.iter().all(|r| r.verdict == Verdict::Ok));
    }

    #[test]
    fn synthetic_regression_fails_the_gate() {
        // Baseline claims 1.5x the throughput the current run achieves:
        // a -33% move on a HigherIsBetter gate with a 5% threshold.
        let baseline = synthetic_snapshot(0, 1500.0);
        let current = synthetic_snapshot(1, 1000.0);
        let cmp = compare(&baseline, &current);
        assert!(!cmp.passed());
        let regressed: Vec<_> = cmp.regressions();
        assert_eq!(regressed.len(), 1);
        assert_eq!(regressed[0].metric, "ips_per_node");
        assert!((regressed[0].rel.unwrap() + 1.0 / 3.0).abs() < 1e-9);
        // The improvement direction does not fail.
        let cmp_up = compare(&current, &baseline);
        assert!(cmp_up.passed());
        assert!(cmp_up
            .rows
            .iter()
            .any(|r| r.verdict == Verdict::Improved && r.metric == "ips_per_node"));
    }

    #[test]
    fn missing_scenarios_fail_and_added_ones_inform() {
        let mut baseline = synthetic_snapshot(0, 1000.0);
        baseline.scenarios.push(synthetic("can_cache", 500.0, 1.0));
        let mut current = synthetic_snapshot(1, 1000.0);
        current.scenarios.push(synthetic("dlrm_new", 700.0, 1.0));
        let cmp = compare(&baseline, &current);
        assert!(!cmp.passed(), "a vanished scenario must fail the gate");
        assert!(cmp
            .rows
            .iter()
            .any(|r| r.scenario == "can_cache" && r.verdict == Verdict::Missing));
        assert!(cmp
            .rows
            .iter()
            .any(|r| r.scenario == "dlrm_new" && r.verdict == Verdict::Added));
    }

    #[test]
    fn zero_baseline_metrics_only_flag_real_moves() {
        // cache_hit_ratio is 0 in non-caching scenarios; 0 -> 0 must be Ok,
        // 0 -> positive on a HigherIsBetter gate is an improvement.
        let baseline = synthetic_snapshot(0, 1000.0);
        let mut current = synthetic_snapshot(1, 1000.0);
        current.scenarios[0]
            .metrics
            .insert("cache_hit_ratio".into(), 0.4);
        let cmp = compare(&baseline, &current);
        assert!(cmp.passed());
        assert!(cmp
            .rows
            .iter()
            .any(|r| r.metric == "cache_hit_ratio" && r.verdict == Verdict::Improved));
    }

    #[test]
    fn snapshot_json_round_trips() {
        let snap = synthetic_snapshot(3, 42.0);
        let doc = snap.to_json();
        let back = BenchSnapshot::from_json(&doc).unwrap();
        assert_eq!(back.version, 3);
        assert_eq!(back.generated_unix_ms, 123);
        assert_eq!(back.scenarios.len(), 1);
        assert_eq!(back.scenarios[0].metrics, snap.scenarios[0].metrics);
        // Canonical documents (no volatile section) parse too.
        let canon = BenchSnapshot::from_json(&snap.canonical_json()).unwrap();
        assert_eq!(canon.generated_unix_ms, 0);
        assert_eq!(canon.scenarios[0].metrics, snap.scenarios[0].metrics);
        // Wrong kind is rejected.
        assert!(BenchSnapshot::from_json(&Json::obj([("kind", Json::str("nope"))])).is_err());
    }

    #[test]
    fn suite_pipelines_validate_and_ladder_monotonically() {
        let suite = scenarios();
        assert_eq!(suite.len(), 8);
        for sc in &suite {
            sc.pipeline.validate().unwrap();
        }
        // Each rung adds passes on top of the previous one.
        for pair in suite[..4].windows(2) {
            let (prev, next) = (&pair[0].pipeline, &pair[1].pipeline);
            assert!(prev.passes.len() < next.passes.len());
            assert!(prev.passes.iter().all(|id| next.enables(*id)));
        }
        assert_eq!(suite[3].pipeline, Optimizations::all());
    }

    /// The refactored default pipeline must reproduce the committed
    /// baseline byte-identically (outside the volatile section): the pass
    /// pipeline is a pure restructuring of the trainer, not a behavior
    /// change.
    #[test]
    fn default_suite_reproduces_committed_baseline_byte_identically() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../benchmarks");
        let (version, path) = latest_snapshot(&dir).expect("a committed BENCH_<n>.json");
        let committed = BenchSnapshot::load(&path).unwrap();
        let fresh = BenchSnapshot::capture(version, 0);
        let want = committed.canonical_json().to_json();
        let got = fresh.canonical_json().to_json();
        if want != got {
            let at = want
                .bytes()
                .zip(got.bytes())
                .position(|(a, b)| a != b)
                .unwrap_or(want.len().min(got.len()));
            let ctx = |s: &str| s[at.saturating_sub(80)..(at + 80).min(s.len())].to_string();
            panic!(
                "canonical snapshot diverged from {} at byte {at}:\n  committed: …{}…\n  fresh:     …{}…",
                path.display(),
                ctx(&want),
                ctx(&got),
            );
        }
    }

    #[test]
    fn suite_lints_clean_of_errors() {
        // `repro --lint` gates CI on this exact report: every committed
        // scenario must plan without error-severity findings.
        let report = lint_suite().expect("suite plans cleanly");
        assert!(
            report.is_clean(),
            "error diagnostics in the bench suite:\n{}",
            report.render_text("bench suite")
        );
    }

    #[test]
    fn snapshot_files_sort_and_version() {
        let dir = std::env::temp_dir().join(format!("perfgate-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(next_version(&dir), 0);
        for v in [2u64, 0, 1] {
            synthetic_snapshot(v, 100.0).save(&dir).unwrap();
        }
        fs::write(dir.join("BENCH_x.json"), "junk").unwrap();
        fs::write(dir.join("notes.txt"), "junk").unwrap();
        let files = snapshot_files(&dir);
        assert_eq!(files.iter().map(|(v, _)| *v).collect::<Vec<_>>(), [0, 1, 2]);
        let (latest, path) = latest_snapshot(&dir).unwrap();
        assert_eq!(latest, 2);
        assert_eq!(next_version(&dir), 3);
        let loaded = BenchSnapshot::load(&path).unwrap();
        assert_eq!(loaded.version, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pass_wall_gate_skips_absent_records_and_flags_blowups() {
        // No pass-wall records on either side: no gate row at all.
        let a = synthetic_snapshot(0, 1000.0);
        let b = synthetic_snapshot(1, 1000.0);
        assert!(compare(&a, &b)
            .rows
            .iter()
            .all(|r| r.metric != "worst_pass_wall_ns"));
        // Records on one side only: still no row (volatile data is optional).
        let mut with_walls = synthetic_snapshot(1, 1000.0);
        with_walls.scenarios[0]
            .pass_wall_ns
            .insert("k_interleaving".into(), 1_000_000);
        assert!(compare(&a, &with_walls)
            .rows
            .iter()
            .all(|r| r.metric != "worst_pass_wall_ns"));
        // Within the generous threshold (2x on a 3.0 gate): Ok, gate passes.
        let mut doubled = with_walls.clone();
        doubled.scenarios[0]
            .pass_wall_ns
            .insert("k_interleaving".into(), 2_000_000);
        let cmp = compare(&with_walls, &doubled);
        assert!(cmp.passed());
        assert!(cmp
            .rows
            .iter()
            .any(|r| r.metric == "worst_pass_wall_ns" && r.verdict == Verdict::Ok));
        // A 5x planning blowup fails the gate; the worst pass wins even
        // when another pass stayed flat.
        let mut blown = with_walls.clone();
        blown.scenarios[0]
            .pass_wall_ns
            .insert("d_packing".into(), 10);
        blown.scenarios[0]
            .pass_wall_ns
            .insert("k_interleaving".into(), 5_000_000);
        let cmp = compare(&with_walls, &blown);
        assert!(!cmp.passed());
        let row = cmp
            .rows
            .iter()
            .find(|r| r.metric == "worst_pass_wall_ns")
            .unwrap();
        assert_eq!(row.verdict, Verdict::Regressed);
        assert_eq!(row.new, Some(5_000_000.0));
    }

    #[test]
    fn worst_pass_wall_finds_the_global_maximum() {
        assert!(worst_pass_wall(&synthetic_snapshot(0, 1.0)).is_none());
        let mut snap = synthetic_snapshot(0, 1.0);
        snap.scenarios.push(synthetic("can_inter", 2.0, 0.5));
        snap.scenarios[0]
            .pass_wall_ns
            .insert("d_packing".into(), 40);
        snap.scenarios[1]
            .pass_wall_ns
            .insert("k_interleaving".into(), 900);
        let (sc, pass, ns) = worst_pass_wall(&snap).unwrap();
        assert_eq!(
            (sc.as_str(), pass.as_str(), ns),
            ("can_inter", "k_interleaving", 900)
        );
    }

    #[test]
    fn serve_gates_skip_training_rows_and_flag_serving_regressions() {
        // Training rows carry no srv_* metrics: the serving gates emit no
        // rows for them (skip-if-absent on both sides).
        let a = synthetic_snapshot(0, 1000.0);
        let b = synthetic_snapshot(1, 1000.0);
        assert!(compare(&a, &b)
            .rows
            .iter()
            .all(|r| !r.metric.starts_with("srv_")));
        // A serving row appearing against a pre-serving baseline is
        // informational, never a failure.
        let srv = |p99: f64, cap: f64| {
            let mut metrics = BTreeMap::new();
            metrics.insert("srv_p99_ns".into(), p99);
            metrics.insert("srv_capacity_rps".into(), cap);
            metrics.insert("srv_cache_hit_ratio".into(), 0.5);
            ScenarioResult {
                name: "srv_b256".into(),
                metrics,
                report: Json::Null,
                pass_wall_ns: BTreeMap::new(),
                analyze_wall_ns: 0,
                flight_wall_ns: 0,
            }
        };
        let mut with_srv = synthetic_snapshot(1, 1000.0);
        with_srv.scenarios.push(srv(90e6, 2500.0));
        let cmp = compare(&a, &with_srv);
        assert!(cmp.passed(), "new serving rows must not fail the gate");
        assert!(cmp
            .rows
            .iter()
            .any(|r| r.metric == "srv_p99_ns" && r.verdict == Verdict::Added));
        // A tail-latency blowup against a serving baseline fails.
        let mut regressed = synthetic_snapshot(2, 1000.0);
        regressed.scenarios.push(srv(150e6, 2500.0));
        let cmp = compare(&with_srv, &regressed);
        assert!(!cmp.passed());
        let row = cmp.rows.iter().find(|r| r.metric == "srv_p99_ns").unwrap();
        assert_eq!(row.verdict, Verdict::Regressed);
        // The capacity gate guards the other direction of the tradeoff.
        let mut slower = synthetic_snapshot(3, 1000.0);
        slower.scenarios.push(srv(90e6, 1500.0));
        assert!(!compare(&with_srv, &slower).passed());
    }

    #[test]
    fn capture_order_matches_the_scenario_table() {
        // The parallel capture must keep suite order — the committed
        // snapshot document and the byte-identity test depend on it.
        let mut names: Vec<String> = scenarios().into_iter().map(|s| s.name).collect();
        names.extend(serve_scenarios().into_iter().map(|s| s.name));
        let snap = BenchSnapshot::capture(0, 0);
        let got: Vec<&str> = snap.scenarios.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(got, names.iter().map(String::as_str).collect::<Vec<_>>());
        assert!(
            snap.embedding_rows_per_sec
                .contains_key("gather_rows_per_sec")
                && snap
                    .embedding_rows_per_sec
                    .contains_key("scatter_rows_per_sec"),
            "micro-bench rows/sec recorded in the volatile section"
        );
        assert!(snap.embedding_rows_per_sec.values().all(|&v| v > 0.0));
    }

    #[test]
    fn delta_table_renders_every_row() {
        let cmp = compare(
            &synthetic_snapshot(0, 1500.0),
            &synthetic_snapshot(1, 1000.0),
        );
        let table = cmp.delta_table();
        assert_eq!(table.rows.len(), cmp.rows.len());
        let text = table.to_string();
        assert!(text.contains("BENCH_0"));
        assert!(text.contains("Regressed"));
        assert!(text.contains("ips_per_node"));
    }
}
