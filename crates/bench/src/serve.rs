//! The serving bench suite.
//!
//! Runs every [`ServeScenario`] — a seeded open-loop traffic plan against
//! one forward-only replica — and collects the deterministic
//! `picasso.serve_report` of each. The replica event loop is virtual-time
//! discrete-event simulation, so every latency quantile, queue depth, and
//! cache counter is bit-identical across repeated invocations; the
//! snapshot suite gates the `srv_*` metrics exactly like the training
//! ones.
//!
//! The serving plan itself reuses the training pass pipeline with the
//! backward/optimizer/collective stages pruned
//! ([`picasso_core::exec::prepare_serving`]), so the static analyzer —
//! including the `run.backward-stage-in-serving` and
//! `run.serve-no-admission` rules — covers exactly the graph the replica
//! prices.

use crate::scenarios::{serve_scenarios, ServeScenario};
use picasso_core::data::DatasetSpec;
use picasso_core::exec::{prepare_serving, ModelKind, ServingPlan, TrainerOptions};
use picasso_core::obs::json::Json;
use picasso_core::serve::{
    serve, BatchPolicy, ReplicaConfig, ServeReport, SERVE_REPORT_KIND, SERVE_REPORT_SCHEMA_VERSION,
};
use picasso_core::{Severity, Strategy, TextTable};

/// The forward-only plan every serving scenario prices: the suite's
/// Wide&Deep model over the Criteo layout, lowered through the serving
/// pass pipeline on one EFLOPS node.
pub fn serving_plan(queue_capacity: Option<usize>) -> Result<ServingPlan, String> {
    let data = DatasetSpec::criteo().shared();
    let opts = TrainerOptions {
        batch_per_executor: Some(256),
        ..Default::default()
    };
    prepare_serving(
        ModelKind::WideDeep,
        &data,
        Strategy::Hybrid,
        &opts,
        queue_capacity,
    )
    .map_err(|e| e.to_string())
}

/// The replica configuration a scenario prescribes.
pub fn replica_config(sc: &ServeScenario) -> ReplicaConfig {
    ReplicaConfig {
        policy: BatchPolicy {
            max_batch: sc.max_batch,
            max_linger_ns: sc.max_linger_ns,
        },
        queue_capacity: sc.queue_capacity,
        ..ReplicaConfig::default()
    }
}

/// Runs one serving scenario to its deterministic report. Planning or
/// traffic-grammar failures surface as `Err` — a registered scenario that
/// cannot run is a suite bug, not a gate verdict.
pub fn run_scenario(sc: &ServeScenario) -> Result<ServeReport, String> {
    let plan = serving_plan(sc.queue_capacity)?;
    let traffic = sc
        .traffic
        .parse()
        .map_err(|e| format!("{}: bad traffic plan: {e}", sc.name))?;
    Ok(serve(&plan, &traffic, &replica_config(sc), &sc.name).report)
}

/// The JSON artifact the `serve` CI leg uploads: the aggregated
/// `picasso.serve_report` document, one per-scenario report (each with its
/// own digest) under `scenarios`.
pub fn suite_report_json(reports: &[ServeReport]) -> Json {
    Json::obj([
        ("kind", Json::str(SERVE_REPORT_KIND)),
        ("schema_version", Json::UInt(SERVE_REPORT_SCHEMA_VERSION)),
        (
            "scenarios",
            Json::Arr(reports.iter().map(ServeReport::to_json).collect()),
        ),
    ])
}

/// Human-readable summary (printed by `repro --serve`).
pub fn summary_table(reports: &[ServeReport]) -> TextTable {
    let mut t = TextTable::new(
        "Serving: dynamic batching under open-loop traffic".to_string(),
        &[
            "scenario",
            "batch",
            "p50 ms",
            "p99 ms",
            "capacity rps",
            "hit ratio",
            "shed",
            "slo viol",
        ],
    );
    for r in reports {
        t.row(vec![
            r.scenario.clone(),
            format!("{:.0}/{}", r.mean_batch(), r.max_batch),
            format!("{:.2}", r.p50_ns as f64 / 1e6),
            format!("{:.2}", r.p99_ns as f64 / 1e6),
            format!("{:.0}", r.capacity_rps()),
            format!("{:.3}", r.cache_hit_ratio()),
            r.shed.to_string(),
            r.slo_violations.to_string(),
        ]);
    }
    t
}

/// True when the serving plan's static analysis carries an error-severity
/// diagnostic (`repro --serve` exits 4 on this, mirroring `--lint`).
pub fn has_errors(plan: &ServingPlan) -> bool {
    plan.diagnostics
        .iter()
        .any(|d| d.severity >= Severity::Error)
}

/// Runs the whole registered serving suite in order.
pub fn run_suite() -> Result<Vec<ServeReport>, String> {
    serve_scenarios().iter().map(run_scenario).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(name: &str) -> ServeScenario {
        serve_scenarios()
            .into_iter()
            .find(|sc| sc.name == name)
            .expect("registered serve scenario")
    }

    #[test]
    fn serve_suite_is_deterministic() {
        let sc = scenario("srv_b256");
        let a = run_scenario(&sc).unwrap();
        let b = run_scenario(&sc).unwrap();
        assert_eq!(a, b, "serve report must be bit-identical across runs");
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn tradeoff_scenarios_pin_the_batch_size_vs_latency_curve() {
        // The acceptance pair: the larger-batch rung must show BOTH a
        // higher p99 (it lingers for bigger batches) AND higher service
        // capacity (the ~46 ms launch floor amortizes over more requests).
        let small = run_scenario(&scenario("srv_b256")).unwrap();
        let large = run_scenario(&scenario("srv_b1024")).unwrap();
        assert!(
            large.p99_ns > small.p99_ns,
            "srv_b1024 p99 {} must exceed srv_b256 p99 {}",
            large.p99_ns,
            small.p99_ns
        );
        assert!(
            large.capacity_rps() > small.capacity_rps(),
            "srv_b1024 capacity {:.0} must exceed srv_b256 {:.0}",
            large.capacity_rps(),
            small.capacity_rps()
        );
        assert!(large.mean_batch() > small.mean_batch());
        // Both operating points are queue-stable: nothing shed.
        assert_eq!(small.shed, 0);
        assert_eq!(large.shed, 0);
    }

    #[test]
    fn shed_scenario_sheds_and_respects_the_admission_bound() {
        let sc = scenario("srv_shed");
        let r = run_scenario(&sc).unwrap();
        assert!(r.shed > 0, "overload scenario must shed");
        assert_eq!(r.served + r.shed, r.requests);
        assert!(r.max_queue_depth <= sc.queue_capacity.unwrap() as u64);
    }

    #[test]
    fn suite_report_names_every_scenario() {
        let reports = run_suite().unwrap();
        assert_eq!(reports.len(), serve_scenarios().len());
        let doc = suite_report_json(&reports);
        let parsed = picasso_core::obs::json::parse(&doc.to_json()).unwrap();
        assert_eq!(
            parsed.get("kind").and_then(Json::as_str),
            Some(SERVE_REPORT_KIND)
        );
        let scenarios = parsed.get("scenarios").and_then(Json::items).unwrap();
        assert_eq!(scenarios.len(), reports.len());
        for (doc, r) in scenarios.iter().zip(&reports) {
            assert_eq!(
                doc.get("scenario").and_then(Json::as_str),
                Some(r.scenario.as_str())
            );
        }
        let table = summary_table(&reports).to_string();
        for r in &reports {
            assert!(table.contains(&r.scenario));
        }
    }

    #[test]
    fn suite_serving_plan_lints_clean() {
        let plan = serving_plan(Some(4096)).unwrap();
        assert!(
            !has_errors(&plan),
            "serving plan has error diagnostics: {:?}",
            plan.diagnostics
        );
        // Dropping the admission bound draws the warn-severity
        // `run.serve-no-admission` rule but stays below the error gate.
        let unbounded = serving_plan(None).unwrap();
        assert!(!has_errors(&unbounded));
        assert!(
            unbounded
                .diagnostics
                .iter()
                .any(|d| d.rule == "run.serve-no-admission"),
            "unbounded queue must draw run.serve-no-admission: {:?}",
            unbounded.diagnostics
        );
    }
}
