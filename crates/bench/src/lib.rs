//! # picasso-bench
//!
//! The benchmark harness of the PICASSO reproduction. Each Criterion bench
//! target regenerates one table or figure of the paper (printed once at
//! startup) and then measures a representative unit of that experiment so
//! regressions in the underlying systems are caught by `cargo bench`.
//!
//! The `repro` binary prints every table at either scale:
//!
//! ```text
//! cargo run --release -p picasso-bench --bin repro -- all quick
//! cargo run --release -p picasso-bench --bin repro -- fig13 full
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod observatory;
pub mod races;
pub mod recovery;
pub mod scenarios;
pub mod serve;
pub mod snapshot;

use picasso_core::{Framework, ModelKind};
use picasso_core::{PicassoConfig, Scale, Session};

/// A small, fast session used as the measured unit inside benches: one
/// EFLOPS node, fixed batch, few iterations.
pub fn quick_session(kind: ModelKind) -> Session {
    let mut cfg: PicassoConfig = Scale::Quick.eflops_config();
    cfg.machines = 1;
    cfg.iterations = 2;
    cfg.batch_per_executor = Some(1024);
    Session::new(kind, cfg)
}

/// Measured unit: one full PICASSO training simulation.
pub fn measured_picasso_run(kind: ModelKind) -> f64 {
    quick_session(kind).report().ips_per_node
}

/// Measured unit: one baseline run.
pub fn measured_baseline_run(kind: ModelKind, fw: Framework) -> f64 {
    quick_session(kind).run_framework(fw).report.ips_per_node
}
