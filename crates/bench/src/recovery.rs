//! The crash-and-recover bench scenario.
//!
//! Runs one [`RecoveryScenario`] twice through the real trainer: once
//! uninterrupted (no store, no faults) and once under its fault plan with
//! checkpointing enabled. The two runs must finish in **bit-identical**
//! model state — dense parameters, optimizer accumulators, and embedding
//! rows — which is the end-to-end proof that checkpoint/restore plus the
//! deterministic batch-cursor rewind lose no information. The `recovery`
//! CI job runs this and uploads [`RecoveryOutcome::report_json`] as its
//! artifact.

use crate::scenarios::RecoveryScenario;
use picasso_core::ckpt::CheckpointStore;
use picasso_core::exec::{run_recovery, RecoveryRun};
use picasso_core::obs::flight::FlightDump;
use picasso_core::obs::json::Json;
use picasso_core::sim::FaultPlan;
use picasso_core::train::auc_datasets;
use picasso_core::{TextTable, TrainError};
use std::path::Path;

/// Schema identifier of the recovery report document.
pub const RECOVERY_REPORT_KIND: &str = "picasso.recovery_report";

/// Both halves of one crash-and-recover comparison.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// Scenario name.
    pub scenario: String,
    /// The uninterrupted reference run (no store, no faults).
    pub baseline: RecoveryRun,
    /// The faulty run that checkpointed, crashed, and recovered.
    pub recovered: RecoveryRun,
}

impl RecoveryOutcome {
    /// Whether the recovered run ended in exactly the baseline's model
    /// state (the acceptance invariant).
    pub fn bit_identical(&self) -> bool {
        self.baseline.final_digest == self.recovered.final_digest
    }

    /// The JSON artifact the `recovery` CI job uploads.
    pub fn report_json(&self) -> Json {
        Json::obj([
            ("kind", Json::str(RECOVERY_REPORT_KIND)),
            ("scenario", Json::str(&self.scenario)),
            ("bit_identical", Json::Bool(self.bit_identical())),
            (
                "baseline",
                Json::obj([
                    (
                        "final_digest",
                        Json::str(format!("{:016x}", self.baseline.final_digest)),
                    ),
                    ("sim_time_s", Json::Num(self.baseline.sim_time_s)),
                ]),
            ),
            ("recovered", self.recovered.to_json()),
        ])
    }

    /// The post-mortem artifact `repro --flight-out` exports: the flight
    /// ring captured at the first crash when one fired, otherwise the
    /// end-of-run trailing window.
    pub fn post_mortem(&self) -> &FlightDump {
        self.recovered
            .post_mortems
            .first()
            .unwrap_or(&self.recovered.flight_dump)
    }

    /// Human-readable summary (printed by `repro --fault-plan`).
    pub fn summary_table(&self) -> TextTable {
        let mut t = TextTable::new(
            format!("Crash-and-recover: {}", self.scenario),
            &["metric", "value"],
        );
        let row = |t: &mut TextTable, k: &str, v: String| t.row(vec![k.to_string(), v]);
        row(
            &mut t,
            "recoveries",
            self.recovered.recoveries.len().to_string(),
        );
        row(
            &mut t,
            "lost_iterations",
            self.recovered.lost_iterations().to_string(),
        );
        row(
            &mut t,
            "time_to_recover_s",
            format!("{:.3}", self.recovered.time_to_recover_s()),
        );
        row(
            &mut t,
            "checkpoints",
            self.recovered.checkpoints.len().to_string(),
        );
        row(
            &mut t,
            "ckpt_bytes",
            self.recovered.ckpt_bytes().to_string(),
        );
        row(
            &mut t,
            "sim_time_s (recovered)",
            format!("{:.3}", self.recovered.sim_time_s),
        );
        row(
            &mut t,
            "sim_time_s (baseline)",
            format!("{:.3}", self.baseline.sim_time_s),
        );
        row(
            &mut t,
            "final_digest (recovered)",
            format!("{:016x}", self.recovered.final_digest),
        );
        row(
            &mut t,
            "final_digest (baseline)",
            format!("{:016x}", self.baseline.final_digest),
        );
        row(
            &mut t,
            "bit_identical",
            if self.bit_identical() { "yes" } else { "NO" }.to_string(),
        );
        t
    }
}

/// Runs one recovery scenario: the faulty run against `ckpt_dir` (no
/// checkpointing when `None`) and the uninterrupted baseline with the same
/// seed and iteration count.
pub fn run_scenario(
    sc: &RecoveryScenario,
    ckpt_dir: Option<&Path>,
) -> Result<RecoveryOutcome, TrainError> {
    let data = auc_datasets::criteo_like();

    let mut base_opts = sc.opts.clone();
    base_opts.fault_plan = FaultPlan::none();
    base_opts.ckpt_every = 0;
    let baseline = run_recovery(&data, None, &base_opts)?;

    let store = match ckpt_dir {
        Some(dir) => Some(CheckpointStore::open(dir).map_err(|e| {
            TrainError::Unrecoverable(format!("checkpoint store {}: {e}", dir.display()))
        })?),
        None => None,
    };
    let recovered = run_recovery(&data, store.as_ref(), &sc.opts)?;

    Ok(RecoveryOutcome {
        scenario: sc.name.clone(),
        baseline,
        recovered,
    })
}
