//! The causal-analysis bench suite.
//!
//! Runs every [`AnalysisScenario`] — each perf scenario of the snapshot
//! suite — and rebuilds the executed DAG from the scheduler's causal event
//! log: critical path + slack, achieved overlap per resource pair against
//! the pipeline's planned D×K interleaving, and per-lane idle-gap
//! attribution. The `analyze` CI job runs this through `repro --analyze`
//! and uploads [`suite_report_json`] as its artifact.
//!
//! Two invariants anchor the suite: the critical-path digest of every
//! scenario is bit-identical across repeated runs (the analysis inherits
//! the simulator's determinism), and the interleaving rungs of the ablation
//! ladder achieve strictly more comm-under-compute overlap than their
//! baselines (the overlap attribution actually measures what D/K-packing
//! buys).

use crate::scenarios::{suite_config, AnalysisScenario};
use picasso_core::exec::{analysis_report_json, analyze_run};
use picasso_core::obs::json::Json;
use picasso_core::{Session, Strategy, TextTable};

/// Schema identifier of the aggregated analysis-suite document.
pub const ANALYSIS_SUITE_KIND: &str = "picasso.analysis_suite";

/// The analysis of one scenario's executed DAG.
#[derive(Debug, Clone)]
pub struct AnalysisOutcome {
    /// Scenario name (`ana_*`).
    pub scenario: String,
    /// FNV-1a digest of the critical path (id, start, end per node).
    pub digest: u64,
    /// Achieved communication-under-computation overlap.
    pub comm_overlap: f64,
    /// Achieved host-under-device overlap.
    pub host_overlap: f64,
    /// Planned overlap from the pipeline's D×K interleaving (Eq. 2/Eq. 3).
    pub planned_overlap: f64,
    /// Fraction of the makespan explained by the critical path.
    pub critical_path_frac: f64,
    /// Analyzer wall time, nanoseconds (volatile — never compared).
    pub analyze_wall_ns: u64,
    /// The full `picasso.analysis_report` document.
    pub report: Json,
}

/// Runs one analysis scenario: simulate the wrapped perf scenario, then
/// analyze its executed DAG against the planned interleaving the pass
/// pipeline actually produced (post-pass `micro_batches` × `group_count`).
pub fn run_scenario(sc: &AnalysisScenario) -> AnalysisOutcome {
    let session = Session::new(sc.perf.model, suite_config());
    let artifacts = session.run_custom(Strategy::Hybrid, sc.perf.pipeline.clone(), &sc.name);
    let micro = artifacts.spec.micro_batches.max(1);
    let groups = artifacts.spec.group_count().max(1);
    let t0 = std::time::Instant::now();
    let a = analyze_run(&artifacts.output, micro, groups);
    let analyze_wall_ns = t0.elapsed().as_nanos() as u64;
    let overlap = |pair: &str| {
        a.overlaps
            .iter()
            .find(|o| o.pair == pair)
            .map(|o| o.achieved)
            .unwrap_or(0.0)
    };
    let planned_overlap = a.overlaps.first().map(|o| o.planned).unwrap_or(0.0);
    AnalysisOutcome {
        scenario: sc.name.clone(),
        digest: a.digest,
        comm_overlap: overlap("comm_under_compute"),
        host_overlap: overlap("host_under_device"),
        planned_overlap,
        critical_path_frac: a.critical_path_frac,
        analyze_wall_ns,
        report: analysis_report_json(&sc.name, &artifacts.output, micro, groups),
    }
}

/// The JSON artifact the `analyze` CI job uploads: one
/// `picasso.analysis_report` per scenario under an aggregated header.
pub fn suite_report_json(outcomes: &[AnalysisOutcome]) -> Json {
    Json::obj([
        ("kind", Json::str(ANALYSIS_SUITE_KIND)),
        (
            "reports",
            Json::Arr(outcomes.iter().map(|o| o.report.clone()).collect()),
        ),
    ])
}

/// Human-readable summary (printed by `repro --analyze`).
pub fn summary_table(outcomes: &[AnalysisOutcome]) -> TextTable {
    let mut t = TextTable::new(
        "Causal analysis: executed-DAG critical path and overlap".to_string(),
        &[
            "scenario",
            "digest",
            "comm/compute",
            "host/device",
            "planned",
            "crit-frac",
        ],
    );
    for o in outcomes {
        t.row(vec![
            o.scenario.clone(),
            format!("{:016x}", o.digest),
            format!("{:.3}", o.comm_overlap),
            format!("{:.3}", o.host_overlap),
            format!("{:.3}", o.planned_overlap),
            format!("{:.3}", o.critical_path_frac),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::analysis_scenarios;

    fn scenario(name: &str) -> AnalysisScenario {
        analysis_scenarios()
            .into_iter()
            .find(|sc| sc.name == name)
            .expect("registered analysis scenario")
    }

    #[test]
    fn critical_path_digests_are_bit_identical_across_runs() {
        let sc = scenario("ana_wdl_base");
        let a = run_scenario(&sc);
        let b = run_scenario(&sc);
        assert_eq!(
            a.digest, b.digest,
            "the analysis must inherit the simulator's determinism"
        );
        assert_eq!(a.comm_overlap, b.comm_overlap);
        assert_eq!(a.critical_path_frac, b.critical_path_frac);
    }

    #[test]
    fn interleaving_achieves_more_comm_overlap_than_baseline() {
        // The acceptance invariant of the analysis suite: on the large
        // model, the +interleaving rung must *measurably* hide more
        // communication under compute than the unoptimized baseline —
        // otherwise the overlap attribution is not measuring what the
        // D/K passes buy.
        let base = run_scenario(&scenario("ana_can_base"));
        let inter = run_scenario(&scenario("ana_can_inter"));
        assert!(
            inter.comm_overlap > base.comm_overlap,
            "can_inter overlap {} must beat can_base {}",
            inter.comm_overlap,
            base.comm_overlap
        );
        assert!(
            inter.planned_overlap > 0.0,
            "the interleaving rung plans a non-trivial overlap"
        );
    }

    #[test]
    fn suite_report_aggregates_per_scenario_documents() {
        let o = run_scenario(&scenario("ana_wdl_base"));
        let doc = suite_report_json(std::slice::from_ref(&o));
        let text = doc.to_json();
        let parsed = picasso_core::obs::json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("kind").and_then(Json::as_str),
            Some(ANALYSIS_SUITE_KIND)
        );
        let reports = parsed.get("reports").and_then(Json::items).unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(
            reports[0].get("kind").and_then(Json::as_str),
            Some("picasso.analysis_report")
        );
        assert_eq!(
            reports[0].get("run").and_then(Json::as_str),
            Some("ana_wdl_base")
        );
        let table = summary_table(std::slice::from_ref(&o)).to_string();
        assert!(table.contains("ana_wdl_base"));
        assert!(table.contains(&format!("{:016x}", o.digest)));
    }
}
