//! The single shared scenario table of the bench suite.
//!
//! Every consumer registers scenarios exactly once, from here: the
//! `perfgate` snapshot suite runs [`perf_scenarios`], `repro --lint`
//! statically analyzes both [`perf_scenarios`] and [`recovery_scenarios`],
//! and the `recovery` CI job runs [`recovery_scenarios`] through
//! [`crate::recovery::run_scenario`]. The observatory adds two more
//! lists: [`flight_scenarios`] (the perf suite tapped through the flight
//! recorder) and [`history_scenarios`] (pinned synthetic series for the
//! cross-run change-point detector). The race analyzer wraps the perf
//! suite once more as [`race_scenarios`] (`repro --races`), and the
//! serving suite registers its own list, [`serve_scenarios`]
//! (`repro --serve` and the `srv_*` snapshot rows). Adding a scenario in
//! one consumer but not the others is therefore impossible by
//! construction.
//!
//! The perf scenario names and order are pinned by the committed
//! `BENCH_<n>.json` baselines (the gate compares by name and the
//! determinism test compares bytes) — append new perf scenarios at the
//! end, never rename or reorder the existing eight. Recovery scenarios
//! live in their own list precisely so they stay out of the snapshot
//! document.

use picasso_core::exec::{ModelKind, Optimizations, RecoveryOptions, WarmupConfig};
use picasso_core::obs::history::Shift;
use picasso_core::sim::FaultPlan;
use picasso_core::{PassId, PicassoConfig};

/// One perf scenario of the suite: a model and an optimization pipeline.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable scenario name (also the JSON key).
    pub name: String,
    /// Model to train.
    pub model: ModelKind,
    /// Optimization pipeline in effect, as a declarative pass list.
    pub pipeline: Optimizations,
}

/// One fault-tolerance scenario: a fault plan plus checkpoint cadence run
/// through the real trainer, verified bit-identical against an
/// uninterrupted run of the same seed.
#[derive(Debug, Clone)]
pub struct RecoveryScenario {
    /// Stable scenario name.
    pub name: String,
    /// Full run configuration, fault plan included.
    pub opts: RecoveryOptions,
}

/// One causal-analysis scenario: a perf scenario whose executed DAG is
/// rebuilt and analyzed after the run (critical path, overlap attribution,
/// idle gaps). Wrapping the perf scenario — rather than naming it — keeps
/// the two lists consistent by construction.
#[derive(Debug, Clone)]
pub struct AnalysisScenario {
    /// Stable scenario name (`ana_` + the wrapped perf scenario's name).
    pub name: String,
    /// The perf scenario whose simulation gets analyzed.
    pub perf: Scenario,
}

/// One flight-recorder scenario: a perf scenario whose finished simulation
/// is tapped into the flight recorder after the fact, asserting the event
/// stream (and therefore the post-mortem dump digest) is deterministic.
/// Wrapping the perf scenario keeps the lists consistent by construction,
/// exactly like [`AnalysisScenario`].
#[derive(Debug, Clone)]
pub struct FlightScenario {
    /// Stable scenario name (`flt_` + the wrapped perf scenario's name).
    pub name: String,
    /// The perf scenario whose simulation gets tapped.
    pub perf: Scenario,
}

/// One race-analysis scenario: a perf scenario whose stage graph is
/// checked for may-happen-in-parallel effect conflicts and whose executed
/// traces (several seeded runs) verify the declared effects against
/// observed task overlap. Wrapping the perf scenario keeps the lists
/// consistent by construction, exactly like [`AnalysisScenario`].
#[derive(Debug, Clone)]
pub struct RaceScenario {
    /// Stable scenario name (`race_` + the wrapped perf scenario's name).
    pub name: String,
    /// The perf scenario whose lowering and traces get race-checked.
    pub perf: Scenario,
}

/// One serving scenario: a seeded open-loop traffic plan driven through
/// one forward-only replica under a fixed dynamic-batching policy and
/// admission bound. The replica event loop is deterministic, so every
/// `srv_*` metric in the snapshot is bit-stable and gated like the
/// training metrics.
#[derive(Debug, Clone)]
pub struct ServeScenario {
    /// Stable scenario name (`srv_*`).
    pub name: String,
    /// Traffic plan in the `picasso_sim::TrafficPlan` grammar.
    pub traffic: String,
    /// Dynamic batcher: maximum coalesced batch size.
    pub max_batch: usize,
    /// Dynamic batcher: maximum linger delay in nanoseconds.
    pub max_linger_ns: u64,
    /// Admission bound (`None` = unbounded, drawing the
    /// `run.serve-no-admission` lint).
    pub queue_capacity: Option<usize>,
}

/// One run-history scenario: a synthetic metric series fed through the
/// observatory's change-point detector with a pinned expected verdict.
/// These exercise the detector itself (the cross-run trend math), not the
/// simulator, so their series are fixed literals.
#[derive(Debug, Clone)]
pub struct HistoryScenario {
    /// Stable scenario name (`hist_*`).
    pub name: String,
    /// The `secs_per_iteration` series, one value per synthetic run.
    pub values: Vec<f64>,
    /// The change-point direction the detector must report (`None` = the
    /// detector must stay silent).
    pub expect: Option<Shift>,
}

/// The fixed perf suite: {small = W&D, large = CAN} x {baseline, +packing,
/// +interleaving, +caching}. Each rung of the ladder is the previous pass
/// list plus one optimization family, mirroring the paper's ablation order,
/// so gate failures localize to the pass that regressed.
pub fn perf_scenarios() -> Vec<Scenario> {
    let rungs: [(&str, &[PassId]); 4] = [
        ("base", &[]),
        ("pack", &[PassId::DPacking, PassId::KPacking]),
        (
            "inter",
            &[
                PassId::DPacking,
                PassId::KPacking,
                PassId::KInterleaving,
                PassId::DInterleaving,
            ],
        ),
        ("cache", &PassId::ALL),
    ];
    let mut out = Vec::new();
    for (prefix, model) in [("wdl", ModelKind::WideDeep), ("can", ModelKind::Can)] {
        for (suffix, passes) in rungs {
            out.push(Scenario {
                name: format!("{prefix}_{suffix}"),
                model,
                pipeline: Optimizations::new(passes.to_vec()),
            });
        }
    }
    out
}

/// The fault-tolerance suite: one deterministic crash-and-recover run.
///
/// The plan crashes worker 0 one iteration after the third checkpoint, so
/// recovery restores an incremental chain (full at step 8, delta at 12)
/// and loses exactly one iteration of work.
pub fn recovery_scenarios() -> Vec<RecoveryScenario> {
    vec![RecoveryScenario {
        name: "crash_recover".into(),
        opts: RecoveryOptions {
            iterations: 24,
            batch_size: 16,
            seed: 41,
            ckpt_every: 4,
            full_every: 2,
            keep_full: 2,
            fault_plan: FaultPlan::parse("seed=41;crash@13").expect("static plan parses"),
            ..RecoveryOptions::default()
        },
    }]
}

/// The causal-analysis suite: every perf scenario, analyzed. Deriving the
/// list from [`perf_scenarios`] keeps `repro --analyze` covering exactly
/// what the perf gate runs, so the two ablation ladders (`*_base` through
/// `*_cache`) can be compared by achieved overlap as well as throughput.
pub fn analysis_scenarios() -> Vec<AnalysisScenario> {
    perf_scenarios()
        .into_iter()
        .map(|sc| AnalysisScenario {
            name: format!("ana_{}", sc.name),
            perf: sc,
        })
        .collect()
}

/// The flight-recorder suite: every perf scenario, tapped. Deriving the
/// list from [`perf_scenarios`] mirrors [`analysis_scenarios`]: whatever
/// the perf gate runs is also what the flight recorder must replay with a
/// deterministic dump digest.
pub fn flight_scenarios() -> Vec<FlightScenario> {
    perf_scenarios()
        .into_iter()
        .map(|sc| FlightScenario {
            name: format!("flt_{}", sc.name),
            perf: sc,
        })
        .collect()
}

/// The race-analysis suite: every perf scenario, race-checked. Deriving
/// the list from [`perf_scenarios`] mirrors [`analysis_scenarios`]: the
/// effect annotations must hold (zero findings) on exactly the lowerings
/// the perf gate runs.
pub fn race_scenarios() -> Vec<RaceScenario> {
    perf_scenarios()
        .into_iter()
        .map(|sc| RaceScenario {
            name: format!("race_{}", sc.name),
            perf: sc,
        })
        .collect()
}

/// The serving suite: the batch-size-vs-latency tradeoff plus an
/// overload-shedding run.
///
/// The analytic forward latency of the suite's serving plan has a ~46 ms
/// per-batch launch-overhead floor, so service capacity is roughly
/// `max_batch / 46 ms`. The two tradeoff scenarios share one 2 500 rps
/// traffic plan and are both queue-stable (capacities ~5 500 and
/// ~21 000 rps); the long-linger rung forms larger batches, buying higher
/// `srv_capacity_rps` at the cost of higher `srv_p99_ns` — the pair the
/// perf gate pins. The shed scenario offers 20 000 rps against a
/// 64-request batch bound (~1 400 rps capacity) behind a 512-entry
/// admission gate, exercising deterministic shedding.
pub fn serve_scenarios() -> Vec<ServeScenario> {
    let tradeoff = "seed=29;poisson@2500;users=200000;zipf=105;ids=8;reqs=6000";
    vec![
        ServeScenario {
            name: "srv_b256".into(),
            traffic: tradeoff.into(),
            max_batch: 256,
            max_linger_ns: 1_000_000, // 1 ms
            queue_capacity: Some(4096),
        },
        ServeScenario {
            name: "srv_b1024".into(),
            traffic: tradeoff.into(),
            max_batch: 1024,
            max_linger_ns: 100_000_000, // 100 ms
            queue_capacity: Some(4096),
        },
        ServeScenario {
            name: "srv_shed".into(),
            traffic: "seed=29;poisson@20000;users=200000;zipf=105;ids=8;reqs=6000".into(),
            max_batch: 64,
            max_linger_ns: 1_000_000,
            queue_capacity: Some(512),
        },
    ]
}

/// The run-history suite: pinned synthetic series covering the three
/// regimes the observatory must separate — a clean flat history (silent),
/// a sustained step regression (fires up), and a sustained improvement
/// (fires down). Sub-slack jitter rides on the flat case so the suite also
/// proves the slack band absorbs noise.
pub fn history_scenarios() -> Vec<HistoryScenario> {
    vec![
        HistoryScenario {
            name: "hist_flat".into(),
            values: vec![0.50, 0.505, 0.495, 0.50, 0.502, 0.498],
            expect: None,
        },
        HistoryScenario {
            name: "hist_step_up".into(),
            values: vec![0.50, 0.50, 0.50, 0.60, 0.60, 0.60],
            expect: Some(Shift::Up),
        },
        HistoryScenario {
            name: "hist_step_down".into(),
            values: vec![0.50, 0.50, 0.50, 0.40, 0.40, 0.40],
            expect: Some(Shift::Down),
        },
    ]
}

/// The session shape every perf scenario runs under: one EFLOPS node, two
/// iterations, fixed batch, fully seeded warm-up — deterministic end to
/// end.
pub fn suite_config() -> PicassoConfig {
    PicassoConfig {
        iterations: 2,
        warmup: WarmupConfig {
            batches: 4,
            batch_size: 256,
            max_vocab: 1000,
            hot_bytes: 1 << 24,
            seed: 17,
        },
        batch_per_executor: Some(1024),
        ..PicassoConfig::default()
    }
    .machines(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_scenario_names_are_pinned_by_the_committed_baseline() {
        let names: Vec<_> = perf_scenarios().into_iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "wdl_base",
                "wdl_pack",
                "wdl_inter",
                "wdl_cache",
                "can_base",
                "can_pack",
                "can_inter",
                "can_cache"
            ],
            "BENCH_<n>.json compares scenarios by these exact names"
        );
    }

    #[test]
    fn scenario_names_are_unique_across_all_lists() {
        let mut names: Vec<String> = perf_scenarios().into_iter().map(|s| s.name).collect();
        names.extend(recovery_scenarios().into_iter().map(|s| s.name));
        names.extend(analysis_scenarios().into_iter().map(|s| s.name));
        names.extend(flight_scenarios().into_iter().map(|s| s.name));
        names.extend(race_scenarios().into_iter().map(|s| s.name));
        names.extend(serve_scenarios().into_iter().map(|s| s.name));
        names.extend(history_scenarios().into_iter().map(|s| s.name));
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate scenario name");
    }

    #[test]
    fn analysis_scenarios_wrap_every_perf_scenario() {
        let ana = analysis_scenarios();
        let perf = perf_scenarios();
        assert_eq!(ana.len(), perf.len());
        for (a, p) in ana.iter().zip(&perf) {
            assert_eq!(a.name, format!("ana_{}", p.name));
            assert_eq!(a.perf.name, p.name);
        }
    }

    #[test]
    fn flight_scenarios_wrap_every_perf_scenario() {
        let flt = flight_scenarios();
        let perf = perf_scenarios();
        assert_eq!(flt.len(), perf.len());
        for (f, p) in flt.iter().zip(&perf) {
            assert_eq!(f.name, format!("flt_{}", p.name));
            assert_eq!(f.perf.name, p.name);
        }
    }

    #[test]
    fn race_scenarios_wrap_every_perf_scenario() {
        let race = race_scenarios();
        let perf = perf_scenarios();
        assert_eq!(race.len(), perf.len());
        for (r, p) in race.iter().zip(&perf) {
            assert_eq!(r.name, format!("race_{}", p.name));
            assert_eq!(r.perf.name, p.name);
        }
    }

    #[test]
    fn serve_scenarios_parse_and_bound_their_queues() {
        let suite = serve_scenarios();
        assert!(!suite.is_empty());
        for sc in &suite {
            assert!(
                sc.name.starts_with("srv_"),
                "{}: not srv_-prefixed",
                sc.name
            );
            let plan: picasso_core::sim::TrafficPlan = sc.traffic.parse().unwrap_or_else(|e| {
                panic!("{}: bad traffic plan: {e}", sc.name);
            });
            assert_eq!(plan.to_string(), sc.traffic, "{}: not round-trip", sc.name);
            assert!(sc.max_batch >= 1);
            assert!(
                sc.queue_capacity.is_some(),
                "{}: suite scenarios must bound admission",
                sc.name
            );
        }
    }

    #[test]
    fn history_scenarios_pin_all_three_detector_regimes() {
        let hist = history_scenarios();
        assert!(hist.iter().all(|h| h.name.starts_with("hist_")));
        assert!(hist.iter().all(|h| h.values.len() >= 3));
        assert!(hist.iter().any(|h| h.expect.is_none()));
        assert!(hist.iter().any(|h| h.expect == Some(Shift::Up)));
        assert!(hist.iter().any(|h| h.expect == Some(Shift::Down)));
    }

    #[test]
    fn recovery_scenarios_checkpoint_and_schedule_a_crash() {
        for sc in recovery_scenarios() {
            assert!(
                sc.opts.ckpt_every > 0,
                "{}: checkpointing disabled",
                sc.name
            );
            assert!(
                sc.opts.ckpt_every <= sc.opts.iterations,
                "{}: no checkpoint fits the horizon",
                sc.name
            );
            assert!(!sc.opts.fault_plan.is_empty(), "{}: empty plan", sc.name);
        }
    }
}
