//! The single shared scenario table of the bench suite.
//!
//! Every consumer registers scenarios exactly once, from here: the
//! `perfgate` snapshot suite runs [`perf_scenarios`], `repro --lint`
//! statically analyzes both [`perf_scenarios`] and [`recovery_scenarios`],
//! and the `recovery` CI job runs [`recovery_scenarios`] through
//! [`crate::recovery::run_scenario`]. Adding a scenario in one consumer
//! but not the others is therefore impossible by construction.
//!
//! The perf scenario names and order are pinned by the committed
//! `BENCH_<n>.json` baselines (the gate compares by name and the
//! determinism test compares bytes) — append new perf scenarios at the
//! end, never rename or reorder the existing eight. Recovery scenarios
//! live in their own list precisely so they stay out of the snapshot
//! document.

use picasso_core::exec::{ModelKind, Optimizations, RecoveryOptions, WarmupConfig};
use picasso_core::sim::FaultPlan;
use picasso_core::{PassId, PicassoConfig};

/// One perf scenario of the suite: a model and an optimization pipeline.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Stable scenario name (also the JSON key).
    pub name: String,
    /// Model to train.
    pub model: ModelKind,
    /// Optimization pipeline in effect, as a declarative pass list.
    pub pipeline: Optimizations,
}

/// One fault-tolerance scenario: a fault plan plus checkpoint cadence run
/// through the real trainer, verified bit-identical against an
/// uninterrupted run of the same seed.
#[derive(Debug, Clone)]
pub struct RecoveryScenario {
    /// Stable scenario name.
    pub name: String,
    /// Full run configuration, fault plan included.
    pub opts: RecoveryOptions,
}

/// One causal-analysis scenario: a perf scenario whose executed DAG is
/// rebuilt and analyzed after the run (critical path, overlap attribution,
/// idle gaps). Wrapping the perf scenario — rather than naming it — keeps
/// the two lists consistent by construction.
#[derive(Debug, Clone)]
pub struct AnalysisScenario {
    /// Stable scenario name (`ana_` + the wrapped perf scenario's name).
    pub name: String,
    /// The perf scenario whose simulation gets analyzed.
    pub perf: Scenario,
}

/// The fixed perf suite: {small = W&D, large = CAN} x {baseline, +packing,
/// +interleaving, +caching}. Each rung of the ladder is the previous pass
/// list plus one optimization family, mirroring the paper's ablation order,
/// so gate failures localize to the pass that regressed.
pub fn perf_scenarios() -> Vec<Scenario> {
    let rungs: [(&str, &[PassId]); 4] = [
        ("base", &[]),
        ("pack", &[PassId::DPacking, PassId::KPacking]),
        (
            "inter",
            &[
                PassId::DPacking,
                PassId::KPacking,
                PassId::KInterleaving,
                PassId::DInterleaving,
            ],
        ),
        ("cache", &PassId::ALL),
    ];
    let mut out = Vec::new();
    for (prefix, model) in [("wdl", ModelKind::WideDeep), ("can", ModelKind::Can)] {
        for (suffix, passes) in rungs {
            out.push(Scenario {
                name: format!("{prefix}_{suffix}"),
                model,
                pipeline: Optimizations::new(passes.to_vec()),
            });
        }
    }
    out
}

/// The fault-tolerance suite: one deterministic crash-and-recover run.
///
/// The plan crashes worker 0 one iteration after the third checkpoint, so
/// recovery restores an incremental chain (full at step 8, delta at 12)
/// and loses exactly one iteration of work.
pub fn recovery_scenarios() -> Vec<RecoveryScenario> {
    vec![RecoveryScenario {
        name: "crash_recover".into(),
        opts: RecoveryOptions {
            iterations: 24,
            batch_size: 16,
            seed: 41,
            ckpt_every: 4,
            full_every: 2,
            keep_full: 2,
            fault_plan: FaultPlan::parse("seed=41;crash@13").expect("static plan parses"),
            ..RecoveryOptions::default()
        },
    }]
}

/// The causal-analysis suite: every perf scenario, analyzed. Deriving the
/// list from [`perf_scenarios`] keeps `repro --analyze` covering exactly
/// what the perf gate runs, so the two ablation ladders (`*_base` through
/// `*_cache`) can be compared by achieved overlap as well as throughput.
pub fn analysis_scenarios() -> Vec<AnalysisScenario> {
    perf_scenarios()
        .into_iter()
        .map(|sc| AnalysisScenario {
            name: format!("ana_{}", sc.name),
            perf: sc,
        })
        .collect()
}

/// The session shape every perf scenario runs under: one EFLOPS node, two
/// iterations, fixed batch, fully seeded warm-up — deterministic end to
/// end.
pub fn suite_config() -> PicassoConfig {
    PicassoConfig {
        iterations: 2,
        warmup: WarmupConfig {
            batches: 4,
            batch_size: 256,
            max_vocab: 1000,
            hot_bytes: 1 << 24,
            seed: 17,
        },
        batch_per_executor: Some(1024),
        ..PicassoConfig::default()
    }
    .machines(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_scenario_names_are_pinned_by_the_committed_baseline() {
        let names: Vec<_> = perf_scenarios().into_iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "wdl_base",
                "wdl_pack",
                "wdl_inter",
                "wdl_cache",
                "can_base",
                "can_pack",
                "can_inter",
                "can_cache"
            ],
            "BENCH_<n>.json compares scenarios by these exact names"
        );
    }

    #[test]
    fn scenario_names_are_unique_across_all_lists() {
        let mut names: Vec<String> = perf_scenarios().into_iter().map(|s| s.name).collect();
        names.extend(recovery_scenarios().into_iter().map(|s| s.name));
        names.extend(analysis_scenarios().into_iter().map(|s| s.name));
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate scenario name");
    }

    #[test]
    fn analysis_scenarios_wrap_every_perf_scenario() {
        let ana = analysis_scenarios();
        let perf = perf_scenarios();
        assert_eq!(ana.len(), perf.len());
        for (a, p) in ana.iter().zip(&perf) {
            assert_eq!(a.name, format!("ana_{}", p.name));
            assert_eq!(a.perf.name, p.name);
        }
    }

    #[test]
    fn recovery_scenarios_checkpoint_and_schedule_a_crash() {
        for sc in recovery_scenarios() {
            assert!(
                sc.opts.ckpt_every > 0,
                "{}: checkpointing disabled",
                sc.name
            );
            assert!(
                sc.opts.ckpt_every <= sc.opts.iterations,
                "{}: no checkpoint fits the horizon",
                sc.name
            );
            assert!(!sc.opts.fault_plan.is_empty(), "{}: empty plan", sc.name);
        }
    }
}
