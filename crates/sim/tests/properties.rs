//! Property-based tests of the discrete-event engine and interval algebra.

use picasso_sim::{
    Engine, IntervalSet, ResourceKind, ResourceSpec, SimDuration, SimTime, Task, TaskCategory,
};
use proptest::prelude::*;

/// A randomly generated DAG description: each task picks a resource and may
/// depend on a subset of earlier tasks (guaranteeing acyclicity).
#[derive(Debug, Clone)]
struct DagSpec {
    n_resources: usize,
    tasks: Vec<(usize, f64, Vec<usize>)>, // (resource, work, deps < index)
}

fn dag_strategy() -> impl Strategy<Value = DagSpec> {
    (1usize..4, 1usize..60).prop_flat_map(|(n_resources, n_tasks)| {
        let task = (0..n_tasks).map(move |i| {
            (
                0..n_resources,
                0.0f64..1e7,
                proptest::collection::vec(0..i.max(1), 0..3.min(i + 1)),
            )
        });
        let tasks: Vec<_> = task.collect();
        tasks.prop_map(move |tasks| DagSpec {
            n_resources,
            tasks: tasks
                .into_iter()
                .enumerate()
                .map(|(i, (r, w, deps))| {
                    let deps = if i == 0 { vec![] } else { deps };
                    (r, w, deps)
                })
                .collect(),
        })
    })
}

fn run_dag(spec: &DagSpec) -> picasso_sim::RunResult {
    let mut e = Engine::new();
    let kinds = [
        ResourceKind::GpuSm,
        ResourceKind::Network,
        ResourceKind::Pcie,
    ];
    let mut rids = Vec::new();
    for r in 0..spec.n_resources {
        rids.push(
            e.add_resource(
                ResourceSpec::new(format!("r{r}"), kinds[r % kinds.len()], 1e9, 0)
                    .with_launch_overhead(SimDuration::from_micros(5)),
            ),
        );
    }
    let mut tids = Vec::new();
    for (r, w, deps) in &spec.tasks {
        let deps: Vec<_> = deps.iter().map(|&d| tids[d]).collect();
        let t = e
            .add_task(Task::new(rids[*r], *w, TaskCategory::Computation).after(deps))
            .unwrap();
        tids.push(t);
    }
    e.run().unwrap()
}

proptest! {
    /// Every task starts no earlier than it became ready, and completes after
    /// all of its dependencies.
    #[test]
    fn start_respects_dependencies(spec in dag_strategy()) {
        let result = run_dag(&spec);
        for (i, (_, _, deps)) in spec.tasks.iter().enumerate() {
            let rec = &result.records[i];
            prop_assert!(rec.start >= rec.ready);
            prop_assert!(rec.end >= rec.start);
            for &d in deps {
                prop_assert!(rec.start >= result.records[d].end,
                    "task {i} started before dep {d} finished");
            }
        }
    }

    /// Per single-channel resource, task service intervals never overlap.
    #[test]
    fn single_channel_intervals_disjoint(spec in dag_strategy()) {
        let result = run_dag(&spec);
        for r in 0..spec.n_resources {
            let mut spans: Vec<(SimTime, SimTime)> = result
                .records
                .iter()
                .filter(|rec| rec.resource.0 == r && rec.end > rec.start)
                .map(|rec| (rec.start, rec.end))
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "overlap on resource {r}: {w:?}");
            }
        }
    }

    /// The engine is deterministic: two runs of the same DAG agree exactly.
    #[test]
    fn runs_are_deterministic(spec in dag_strategy()) {
        let a = run_dag(&spec);
        let b = run_dag(&spec);
        prop_assert_eq!(a.makespan, b.makespan);
        for (x, y) in a.records.iter().zip(&b.records) {
            prop_assert_eq!(x.start, y.start);
            prop_assert_eq!(x.end, y.end);
        }
    }

    /// Makespan is bounded below by the critical resource load and above by
    /// fully serial execution.
    #[test]
    fn makespan_bounds(spec in dag_strategy()) {
        let result = run_dag(&spec);
        let total_busy: f64 = result.resources.iter().map(|r| r.busy.as_secs_f64()).sum();
        let max_busy = result
            .resources
            .iter()
            .map(|r| r.busy.as_secs_f64() / r.spec.channels as f64)
            .fold(0.0, f64::max);
        let span = result.makespan.as_secs_f64();
        prop_assert!(span + 1e-12 >= max_busy, "makespan {span} < busiest resource {max_busy}");
        prop_assert!(span <= total_busy + 1e-9, "makespan {span} > serial bound {total_busy}");
    }
}

fn spans_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..1000, 0u64..200), 0..20)
        .prop_map(|v| v.into_iter().map(|(s, len)| (s, s + len)).collect())
}

fn to_set(spans: &[(u64, u64)]) -> IntervalSet {
    IntervalSet::from_spans(
        spans
            .iter()
            .map(|&(s, e)| (SimTime(s), SimTime(e)))
            .collect(),
    )
}

fn contains(set: &IntervalSet, t: u64) -> bool {
    set.spans().iter().any(|&(s, e)| s.0 <= t && t < e.0)
}

proptest! {
    /// Interval union/subtract/intersect agree with pointwise membership.
    #[test]
    fn interval_algebra_pointwise(a in spans_strategy(), b in spans_strategy()) {
        let sa = to_set(&a);
        let sb = to_set(&b);
        let union = sa.union(&sb);
        let diff = sa.subtract(&sb);
        let inter = sa.intersect(&sb);
        for t in (0..1300).step_by(7) {
            let ina = contains(&sa, t);
            let inb = contains(&sb, t);
            prop_assert_eq!(contains(&union, t), ina || inb, "union at {}", t);
            prop_assert_eq!(contains(&diff, t), ina && !inb, "diff at {}", t);
            prop_assert_eq!(contains(&inter, t), ina && inb, "inter at {}", t);
        }
    }

    /// measure(a) = measure(a\b) + measure(a∩b): subtraction and intersection
    /// partition a set.
    #[test]
    fn subtract_intersect_partition(a in spans_strategy(), b in spans_strategy()) {
        let sa = to_set(&a);
        let sb = to_set(&b);
        let lhs = sa.measure().as_nanos();
        let rhs = sa.subtract(&sb).measure().as_nanos() + sa.intersect(&sb).measure().as_nanos();
        prop_assert_eq!(lhs, rhs);
    }

    /// Bucketed overlap sums to total measure when buckets tile the horizon.
    #[test]
    fn bucket_overlaps_sum_to_measure(a in spans_strategy()) {
        let sa = to_set(&a);
        let mut total = 0u64;
        for b in 0..130 {
            total += sa
                .overlap_with(SimTime(b * 10), SimTime((b + 1) * 10))
                .as_nanos();
        }
        prop_assert_eq!(total, sa.measure().as_nanos());
    }
}
