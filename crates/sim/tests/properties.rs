//! Property-based tests of the discrete-event engine and interval algebra.

use picasso_sim::{
    Engine, IntervalSet, NameId, NameInterner, ResourceKind, ResourceSpec, SimDuration, SimTime,
    Task, TaskCategory,
};
use proptest::prelude::*;

/// A randomly generated DAG description: each task picks a resource and may
/// depend on a subset of earlier tasks (guaranteeing acyclicity).
#[derive(Debug, Clone)]
struct DagSpec {
    n_resources: usize,
    tasks: Vec<(usize, f64, Vec<usize>)>, // (resource, work, deps < index)
}

fn dag_strategy() -> impl Strategy<Value = DagSpec> {
    (1usize..4, 1usize..60).prop_flat_map(|(n_resources, n_tasks)| {
        let task = (0..n_tasks).map(move |i| {
            (
                0..n_resources,
                0.0f64..1e7,
                proptest::collection::vec(0..i.max(1), 0..3.min(i + 1)),
            )
        });
        let tasks: Vec<_> = task.collect();
        tasks.prop_map(move |tasks| DagSpec {
            n_resources,
            tasks: tasks
                .into_iter()
                .enumerate()
                .map(|(i, (r, w, deps))| {
                    let deps = if i == 0 { vec![] } else { deps };
                    (r, w, deps)
                })
                .collect(),
        })
    })
}

fn run_dag(spec: &DagSpec) -> picasso_sim::RunResult {
    let mut e = Engine::new();
    let kinds = [
        ResourceKind::GpuSm,
        ResourceKind::Network,
        ResourceKind::Pcie,
    ];
    let mut rids = Vec::new();
    for r in 0..spec.n_resources {
        rids.push(
            e.add_resource(
                ResourceSpec::new(format!("r{r}"), kinds[r % kinds.len()], 1e9, 0)
                    .with_launch_overhead(SimDuration::from_micros(5)),
            ),
        );
    }
    let mut tids = Vec::new();
    for (r, w, deps) in &spec.tasks {
        let deps: Vec<_> = deps.iter().map(|&d| tids[d]).collect();
        let t = e
            .add_task(Task::new(rids[*r], *w, TaskCategory::Computation).after(deps))
            .unwrap();
        tids.push(t);
    }
    e.run().unwrap()
}

proptest! {
    /// Every task starts no earlier than it became ready, and completes after
    /// all of its dependencies.
    #[test]
    fn start_respects_dependencies(spec in dag_strategy()) {
        let result = run_dag(&spec);
        for (i, (_, _, deps)) in spec.tasks.iter().enumerate() {
            let rec = &result.records[i];
            prop_assert!(rec.start >= rec.ready);
            prop_assert!(rec.end >= rec.start);
            for &d in deps {
                prop_assert!(rec.start >= result.records[d].end,
                    "task {i} started before dep {d} finished");
            }
        }
    }

    /// Per single-channel resource, task service intervals never overlap.
    #[test]
    fn single_channel_intervals_disjoint(spec in dag_strategy()) {
        let result = run_dag(&spec);
        for r in 0..spec.n_resources {
            let mut spans: Vec<(SimTime, SimTime)> = result
                .records
                .iter()
                .filter(|rec| rec.resource.0 == r && rec.end > rec.start)
                .map(|rec| (rec.start, rec.end))
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "overlap on resource {r}: {w:?}");
            }
        }
    }

    /// The engine is deterministic: two runs of the same DAG agree exactly.
    #[test]
    fn runs_are_deterministic(spec in dag_strategy()) {
        let a = run_dag(&spec);
        let b = run_dag(&spec);
        prop_assert_eq!(a.makespan, b.makespan);
        for (x, y) in a.records.iter().zip(&b.records) {
            prop_assert_eq!(x.start, y.start);
            prop_assert_eq!(x.end, y.end);
        }
    }

    /// Makespan is bounded below by the critical resource load and above by
    /// fully serial execution.
    #[test]
    fn makespan_bounds(spec in dag_strategy()) {
        let result = run_dag(&spec);
        let total_busy: f64 = result.resources.iter().map(|r| r.busy.as_secs_f64()).sum();
        let max_busy = result
            .resources
            .iter()
            .map(|r| r.busy.as_secs_f64() / r.spec.channels as f64)
            .fold(0.0, f64::max);
        let span = result.makespan.as_secs_f64();
        prop_assert!(span + 1e-12 >= max_busy, "makespan {span} < busiest resource {max_busy}");
        prop_assert!(span <= total_busy + 1e-9, "makespan {span} > serial bound {total_busy}");
    }
}

proptest! {
    /// Interned names round-trip (name -> id -> name), handles are dense in
    /// first-intern order, and re-interning is idempotent — the contract
    /// every handle-indexed side table in the engine depends on.
    #[test]
    fn interned_names_round_trip(
        parts in proptest::collection::vec((0usize..12, 0usize..5), 1..40)
    ) {
        // Hierarchical names off a small alphabet so duplicates are common.
        let names: Vec<String> = parts
            .into_iter()
            .map(|(node, unit)| format!("node{node}/unit{unit}"))
            .collect();
        let mut interner = NameInterner::new();
        let ids: Vec<NameId> = names.iter().map(|n| interner.intern(n)).collect();
        for (name, &id) in names.iter().zip(&ids) {
            prop_assert_eq!(interner.resolve(id), name.as_str());
            prop_assert_eq!(interner.intern(name), id, "re-intern changed the handle");
            prop_assert_eq!(interner.get(name), Some(id));
        }
        // Handles are dense and ordered by first occurrence.
        let mut first_seen: Vec<&str> = Vec::new();
        for n in &names {
            if !first_seen.contains(&n.as_str()) {
                first_seen.push(n);
            }
        }
        prop_assert_eq!(interner.len(), first_seen.len());
        for (i, n) in first_seen.iter().enumerate() {
            prop_assert_eq!(interner.resolve(NameId(i as u32)), *n);
        }
    }

    /// The engine's registration-time interning agrees with a standalone
    /// interner over the same name sequence, and `resource_by_name` finds
    /// the first resource registered under each name.
    #[test]
    fn engine_name_handles_match_a_reference_interner(
        name_keys in proptest::collection::vec(0usize..8, 1..20)
    ) {
        let names: Vec<String> = name_keys.into_iter().map(|k| format!("res{k}")).collect();
        let mut engine = Engine::new();
        let mut reference = NameInterner::new();
        let mut first_by_name: Vec<(&str, picasso_sim::ResourceId)> = Vec::new();
        for n in &names {
            let rid = engine.add_resource(ResourceSpec::new(n, ResourceKind::HostCpu, 1e9, 0));
            prop_assert_eq!(engine.resource_name_id(rid), reference.intern(n));
            if !first_by_name.iter().any(|&(seen, _)| seen == n.as_str()) {
                first_by_name.push((n, rid));
            }
        }
        for (name, rid) in first_by_name {
            prop_assert_eq!(engine.resource_by_name(name), Some(rid));
        }
    }
}

fn spans_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..1000, 0u64..200), 0..20)
        .prop_map(|v| v.into_iter().map(|(s, len)| (s, s + len)).collect())
}

fn to_set(spans: &[(u64, u64)]) -> IntervalSet {
    IntervalSet::from_spans(
        spans
            .iter()
            .map(|&(s, e)| (SimTime(s), SimTime(e)))
            .collect(),
    )
}

fn contains(set: &IntervalSet, t: u64) -> bool {
    set.spans().iter().any(|&(s, e)| s.0 <= t && t < e.0)
}

proptest! {
    /// Interval union/subtract/intersect agree with pointwise membership.
    #[test]
    fn interval_algebra_pointwise(a in spans_strategy(), b in spans_strategy()) {
        let sa = to_set(&a);
        let sb = to_set(&b);
        let union = sa.union(&sb);
        let diff = sa.subtract(&sb);
        let inter = sa.intersect(&sb);
        for t in (0..1300).step_by(7) {
            let ina = contains(&sa, t);
            let inb = contains(&sb, t);
            prop_assert_eq!(contains(&union, t), ina || inb, "union at {}", t);
            prop_assert_eq!(contains(&diff, t), ina && !inb, "diff at {}", t);
            prop_assert_eq!(contains(&inter, t), ina && inb, "inter at {}", t);
        }
    }

    /// measure(a) = measure(a\b) + measure(a∩b): subtraction and intersection
    /// partition a set.
    #[test]
    fn subtract_intersect_partition(a in spans_strategy(), b in spans_strategy()) {
        let sa = to_set(&a);
        let sb = to_set(&b);
        let lhs = sa.measure().as_nanos();
        let rhs = sa.subtract(&sb).measure().as_nanos() + sa.intersect(&sb).measure().as_nanos();
        prop_assert_eq!(lhs, rhs);
    }

    /// Bucketed overlap sums to total measure when buckets tile the horizon.
    #[test]
    fn bucket_overlaps_sum_to_measure(a in spans_strategy()) {
        let sa = to_set(&a);
        let mut total = 0u64;
        for b in 0..130 {
            total += sa
                .overlap_with(SimTime(b * 10), SimTime((b + 1) * 10))
                .as_nanos();
        }
        prop_assert_eq!(total, sa.measure().as_nanos());
    }
}
