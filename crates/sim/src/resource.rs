//! Simulated hardware resources.
//!
//! A [`ResourceSpec`] describes a server (or a small pool of identical server *channels*)
//! with a service rate expressed in abstract work units per second — FLOPS for
//! compute resources, bytes/s for memory and interconnect resources. Every
//! operation dispatched onto a resource first pays the per-launch overhead
//! (the CUDA-kernel-launch / DMA-setup cost that PICASSO's packing
//! optimization amortizes) and then `work / rate` seconds of service time.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The class of hardware a resource belongs to.
///
/// The paper's low-level projection (Fig. 4) groups operators by the dominant
/// hardware resource they are bounded by; kernel-packing only fuses kernels
/// within one class, and interleaving overlaps work across classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceKind {
    /// GPU streaming multiprocessors (compute, FLOPS).
    GpuSm,
    /// GPU device memory bandwidth (HBM, bytes/s).
    GpuMem,
    /// Host DRAM bandwidth (bytes/s).
    DramBw,
    /// Host CPU cores (FLOPS; also serves hashmap/host-side work).
    HostCpu,
    /// PCIe link between host and device (bytes/s).
    Pcie,
    /// NVLink between devices in one machine (bytes/s).
    NvLink,
    /// Inter-machine network (Ethernet TCP or RDMA, bytes/s).
    Network,
}

impl ResourceKind {
    /// All resource kinds, in a fixed display order.
    pub const ALL: [ResourceKind; 7] = [
        ResourceKind::GpuSm,
        ResourceKind::GpuMem,
        ResourceKind::DramBw,
        ResourceKind::HostCpu,
        ResourceKind::Pcie,
        ResourceKind::NvLink,
        ResourceKind::Network,
    ];

    /// Whether the work units on this resource are bytes (as opposed to FLOPs).
    pub fn is_bandwidth(self) -> bool {
        !matches!(self, ResourceKind::GpuSm | ResourceKind::HostCpu)
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ResourceKind::GpuSm => "gpu-sm",
            ResourceKind::GpuMem => "gpu-mem",
            ResourceKind::DramBw => "dram",
            ResourceKind::HostCpu => "cpu",
            ResourceKind::Pcie => "pcie",
            ResourceKind::NvLink => "nvlink",
            ResourceKind::Network => "network",
        };
        f.write_str(name)
    }
}

/// Identifies a resource within an [`crate::engine::Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub usize);

/// Burst-congestion behaviour of a resource.
///
/// Real interconnects lose efficiency when many transfers are issued at
/// once (TCP incast on Ethernet, DMA contention on PCIe): a transfer that
/// has been queued behind a burst for `backlog` time is served at a rate
/// degraded by `1 + alpha * backlog / (backlog + tau)`. This is the
/// mechanism PICASSO's interleaving exploits — pacing operations through
/// control dependencies keeps backlogs (and therefore the penalty) small,
/// while the unoptimized graph issues everything upfront and throttles
/// itself (§III-C: "the packed operations ... still race for the same
/// hardware resource").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CongestionSpec {
    /// Maximum fractional slowdown under a deep backlog.
    pub alpha: f64,
    /// Backlog scale at which half the penalty applies.
    pub tau: SimDuration,
}

impl CongestionSpec {
    /// Service-time multiplier for a task that waited `backlog` in queue.
    pub fn slowdown(&self, backlog: SimDuration) -> f64 {
        let b = backlog.as_secs_f64();
        let t = self.tau.as_secs_f64();
        if b <= 0.0 || t <= 0.0 {
            return 1.0;
        }
        1.0 + self.alpha * b / (b + t)
    }
}

/// Static description of one resource.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResourceSpec {
    /// Human-readable name, e.g. `"node3/gpu-sm"`.
    pub name: String,
    /// Hardware class.
    pub kind: ResourceKind,
    /// Service rate in work units per second (FLOPS or bytes/s).
    pub rate: f64,
    /// Number of identical parallel channels (e.g. CUDA streams); operations
    /// queue FIFO across channels.
    pub channels: usize,
    /// Fixed overhead paid by every operation before service starts.
    pub launch_overhead: SimDuration,
    /// Burst-congestion behaviour (None = ideally work-conserving).
    pub congestion: Option<CongestionSpec>,
    /// Which machine in the cluster this resource belongs to.
    pub node: usize,
}

impl ResourceSpec {
    /// Creates a single-channel resource.
    pub fn new(name: impl Into<String>, kind: ResourceKind, rate: f64, node: usize) -> Self {
        assert!(rate > 0.0, "resource rate must be positive");
        ResourceSpec {
            name: name.into(),
            kind,
            rate,
            channels: 1,
            launch_overhead: SimDuration::ZERO,
            congestion: None,
            node,
        }
    }

    /// Sets the number of parallel channels.
    pub fn with_channels(mut self, channels: usize) -> Self {
        assert!(channels > 0, "a resource needs at least one channel");
        self.channels = channels;
        self
    }

    /// Sets the per-operation launch overhead.
    pub fn with_launch_overhead(mut self, overhead: SimDuration) -> Self {
        self.launch_overhead = overhead;
        self
    }

    /// Enables burst-congestion behaviour.
    pub fn with_congestion(mut self, congestion: CongestionSpec) -> Self {
        self.congestion = Some(congestion);
        self
    }

    /// Sets (or clears) burst-congestion behaviour.
    pub fn with_congestion_opt(mut self, congestion: Option<CongestionSpec>) -> Self {
        self.congestion = congestion;
        self
    }

    /// Time to serve `work` units on one channel, excluding launch overhead.
    pub fn service_time(&self, work: f64) -> SimDuration {
        assert!(
            work.is_finite() && work >= 0.0,
            "work must be finite and non-negative, got {work}"
        );
        SimDuration::from_secs_f64(work / self.rate)
    }
}

/// Runtime accounting of a resource inside the engine. The per-channel
/// next-free times live in the engine's flat channel arena, not here; this
/// struct carries only the spec and the served-work totals.
#[derive(Debug, Clone)]
pub(crate) struct ResourceState {
    pub spec: ResourceSpec,
    /// Total busy time summed over channels.
    pub busy: SimDuration,
    /// Total work units served.
    pub work_served: f64,
    /// Number of operations served (for launch-overhead accounting).
    pub ops_served: u64,
}

/// Index of the channel in `channel_free` that frees up earliest (ties broken
/// by index for determinism).
pub(crate) fn earliest_channel(channel_free: &[SimTime]) -> usize {
    channel_free
        .iter()
        .enumerate()
        .min_by_key(|&(i, &t)| (t, i))
        .map(|(i, _)| i)
        .expect("resource has at least one channel")
}

impl ResourceState {
    pub fn new(spec: ResourceSpec) -> Self {
        ResourceState {
            spec,
            busy: SimDuration::ZERO,
            work_served: 0.0,
            ops_served: 0,
        }
    }

    /// Dispatches an operation that became ready at `ready` onto the earliest
    /// of `channel_free` (one slot per channel), returning the chosen channel
    /// and the `(start, end)` interval. Tasks that queued behind a burst are
    /// served slower per the resource's congestion model.
    ///
    /// `channel_free` is passed in rather than read from `self` so the engine
    /// can keep every resource's channels in one flat arena and hand this
    /// method a subslice; this struct then carries only the accounting.
    pub fn dispatch_on(
        &mut self,
        channel_free: &mut [SimTime],
        ready: SimTime,
        work: f64,
    ) -> (usize, SimTime, SimTime) {
        let ch = earliest_channel(channel_free);
        let start = ready.max(channel_free[ch]);
        let mut service = self.spec.service_time(work);
        if let Some(c) = self.spec.congestion {
            service = SimDuration::from_secs_f64(service.as_secs_f64() * c.slowdown(start - ready));
        }
        let dur = self.spec.launch_overhead + service;
        let end = start + dur;
        channel_free[ch] = end;
        self.busy += dur;
        self.work_served += work;
        self.ops_served += 1;
        (ch, start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(rate: f64) -> ResourceSpec {
        ResourceSpec::new("test", ResourceKind::GpuSm, rate, 0)
    }

    #[test]
    fn service_time_scales_with_rate() {
        let s = spec(1e9); // 1 GFLOPS
        assert_eq!(s.service_time(1e9), SimDuration::from_secs_f64(1.0));
        assert_eq!(s.service_time(0.0), SimDuration::ZERO);
    }

    /// Allocates the channel slice a test engine would hold for this spec.
    fn channels_for(spec: &ResourceSpec) -> Vec<SimTime> {
        vec![SimTime::ZERO; spec.channels]
    }

    #[test]
    fn dispatch_is_fifo_on_single_channel() {
        let mut st =
            ResourceState::new(spec(1e9).with_launch_overhead(SimDuration::from_micros(10)));
        let mut free = channels_for(&st.spec);
        let (_, s1, e1) = st.dispatch_on(&mut free, SimTime::ZERO, 1e6); // 1 ms + 10 us
        let (_, s2, e2) = st.dispatch_on(&mut free, SimTime::ZERO, 1e6);
        assert_eq!(s1, SimTime::ZERO);
        assert_eq!(e1.as_nanos(), 1_010_000);
        assert_eq!(s2, e1, "second op waits for the channel");
        assert_eq!(e2.as_nanos(), 2_020_000);
        assert_eq!(st.ops_served, 2);
    }

    #[test]
    fn channels_serve_in_parallel() {
        let mut st = ResourceState::new(spec(1e9).with_channels(2));
        let mut free = channels_for(&st.spec);
        let (c1, _, e1) = st.dispatch_on(&mut free, SimTime::ZERO, 1e6);
        let (c2, s2, _) = st.dispatch_on(&mut free, SimTime::ZERO, 1e6);
        assert_eq!(s2, SimTime::ZERO, "second channel is free");
        assert_ne!(c1, c2);
        let (c3, s3, _) = st.dispatch_on(&mut free, SimTime::ZERO, 1e6);
        assert_eq!(s3, e1, "third op waits for the earliest channel");
        assert_eq!(c3, c1);
    }

    #[test]
    fn dispatch_respects_ready_time() {
        let mut st = ResourceState::new(spec(1e9));
        let mut free = channels_for(&st.spec);
        let (_, s, _) = st.dispatch_on(&mut free, SimTime(500), 1.0);
        assert_eq!(s, SimTime(500));
    }

    #[test]
    fn busy_time_accumulates() {
        let mut st = ResourceState::new(spec(1e9));
        let mut free = channels_for(&st.spec);
        st.dispatch_on(&mut free, SimTime::ZERO, 2e9);
        assert_eq!(st.busy, SimDuration::from_secs_f64(2.0));
        assert_eq!(st.work_served, 2e9);
    }

    #[test]
    fn earliest_channel_breaks_ties_by_index() {
        assert_eq!(earliest_channel(&[SimTime(5), SimTime(3), SimTime(3)]), 1);
        assert_eq!(earliest_channel(&[SimTime::ZERO]), 0);
    }

    #[test]
    fn kind_classification() {
        assert!(ResourceKind::Pcie.is_bandwidth());
        assert!(ResourceKind::Network.is_bandwidth());
        assert!(!ResourceKind::GpuSm.is_bandwidth());
        assert!(!ResourceKind::HostCpu.is_bandwidth());
        assert_eq!(ResourceKind::ALL.len(), 7);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = spec(0.0);
    }

    #[test]
    fn congestion_slows_backlogged_tasks() {
        let c = CongestionSpec {
            alpha: 1.0,
            tau: SimDuration::from_millis(1),
        };
        assert_eq!(c.slowdown(SimDuration::ZERO), 1.0);
        assert!((c.slowdown(SimDuration::from_millis(1)) - 1.5).abs() < 1e-9);
        assert!(c.slowdown(SimDuration::from_millis(100)) < 2.0);

        let mut st = ResourceState::new(spec(1e9).with_congestion(c));
        let mut free = channels_for(&st.spec);
        // A burst of 3 tasks, all ready at t=0, 1 ms of work each.
        let (_, _, e1) = st.dispatch_on(&mut free, SimTime::ZERO, 1e6);
        assert_eq!(e1.as_nanos(), 1_000_000, "first task is uncongested");
        let (_, _, e2) = st.dispatch_on(&mut free, SimTime::ZERO, 1e6);
        assert!(e2.as_nanos() > 2_400_000, "queued task slows down: {e2:?}");
        // The same work paced (ready when the channel frees) stays fast.
        let mut paced = ResourceState::new(spec(1e9).with_congestion(c));
        let mut pfree = channels_for(&paced.spec);
        let (_, _, p1) = paced.dispatch_on(&mut pfree, SimTime::ZERO, 1e6);
        let (_, _, p2) = paced.dispatch_on(&mut pfree, p1, 1e6);
        assert_eq!(p2.as_nanos(), 2_000_000, "paced tasks pay no penalty");
    }
}
