//! Simulation clock types.
//!
//! All simulator time is kept in integer nanoseconds to make event ordering
//! exact and runs bit-for-bit reproducible. Durations derived from
//! floating-point cost models are rounded up so that a nonzero amount of work
//! always takes a nonzero amount of simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the simulation epoch.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the simulation epoch.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole nanoseconds.
    #[inline]
    pub fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Builds a duration from whole microseconds.
    #[inline]
    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us.saturating_mul(1_000))
    }

    /// Builds a duration from whole milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    /// Builds a duration from fractional seconds, rounding up to the next
    /// nanosecond so nonzero work never becomes a zero-length duration.
    pub fn from_secs_f64(secs: f64) -> SimDuration {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1e9).ceil() as u64)
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds in this duration.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating duration subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::ZERO + SimDuration::from_millis(3);
        assert_eq!(t.as_nanos(), 3_000_000);
        assert_eq!(t - SimTime::ZERO, SimDuration::from_millis(3));
        assert_eq!(t.since(SimTime(5_000_000)), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_rounds_up() {
        // 1.5 ns of work must not vanish to zero.
        let d = SimDuration::from_secs_f64(1.5e-9);
        assert_eq!(d.as_nanos(), 2);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        let d = SimDuration::from_secs_f64(2.5);
        assert!((d.as_secs_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering_is_by_nanos() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimDuration(5) > SimDuration(4));
        let mut t = SimTime(1);
        t += SimDuration(9);
        assert_eq!(t, SimTime(10));
    }
}
