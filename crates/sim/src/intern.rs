//! Dense string interning for resource names.
//!
//! The engine resolves every resource name to a [`NameId`] handle when the
//! resource is registered, so nothing on the hot path — the event loop, the
//! scheduler's resource filters, metrics grouping — ever compares strings.
//! Strings exist at the edges only: topology construction (which names
//! resources) and report rendering (which resolves handles back).

use std::collections::HashMap;
use std::fmt;

/// Dense handle for an interned name. Handles are assigned in first-intern
/// order starting at 0, so they double as indices into side tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(pub u32);

/// An append-only string interner: each distinct string maps to one dense
/// [`NameId`], and every handle resolves back to exactly the string that
/// produced it.
#[derive(Debug, Default, Clone)]
pub struct NameInterner {
    names: Vec<String>,
    index: HashMap<String, NameId>,
}

impl NameInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        NameInterner::default()
    }

    /// Interns `name`, returning its dense handle. Interning the same
    /// string twice returns the same handle.
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = NameId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// Resolves a handle back to its string.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: NameId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Looks up the handle of an already-interned name.
    pub fn get(&self, name: &str) -> Option<NameId> {
        self.index.get(name).copied()
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no names have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl fmt::Display for NameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "name#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut i = NameInterner::new();
        let a = i.intern("node0/gpu0/sm");
        let b = i.intern("node0/nic");
        let a2 = i.intern("node0/gpu0/sm");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.0, 0);
        assert_eq!(b.0, 1);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn handles_resolve_back_to_their_strings() {
        let mut i = NameInterner::new();
        let ids: Vec<NameId> = ["a", "b", "", "a/b/c"]
            .iter()
            .map(|s| i.intern(s))
            .collect();
        assert_eq!(i.resolve(ids[0]), "a");
        assert_eq!(i.resolve(ids[2]), "");
        assert_eq!(i.resolve(ids[3]), "a/b/c");
        assert_eq!(i.get("a/b/c"), Some(ids[3]));
        assert_eq!(i.get("missing"), None);
    }
}
