//! The discrete-event execution engine.
//!
//! The engine executes a DAG of [`Task`]s over a set of resources. A task
//! becomes *ready* when all of its dependencies have completed; ready tasks
//! are dispatched in ready-time order (FIFO per resource) onto the earliest
//! free channel of their resource, paying the resource's launch overhead plus
//! `work / rate` of service time. The result records the exact `(start, end)`
//! interval of every task, from which the metrics module derives utilization
//! timelines, bandwidth traces, and time breakdowns.

use crate::intern::{NameId, NameInterner};
use crate::resource::{ResourceId, ResourceKind, ResourceSpec, ResourceState};
use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

/// Identifies a task within one engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// Coarse category of a task, used for time-breakdown attribution (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TaskCategory {
    /// Reading and decoding training data from remote storage.
    DataIo,
    /// Embedding lookup and other memory-bound work.
    Memory,
    /// Parameter / embedding exchange between executors.
    Communication,
    /// Dense arithmetic (feature interaction, MLP, gradients).
    Computation,
    /// Synchronization barriers and bookkeeping.
    Sync,
}

impl TaskCategory {
    /// All categories, in a fixed display order.
    pub const ALL: [TaskCategory; 5] = [
        TaskCategory::DataIo,
        TaskCategory::Memory,
        TaskCategory::Communication,
        TaskCategory::Computation,
        TaskCategory::Sync,
    ];
}

impl fmt::Display for TaskCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TaskCategory::DataIo => "io",
            TaskCategory::Memory => "memory",
            TaskCategory::Communication => "communication",
            TaskCategory::Computation => "computation",
            TaskCategory::Sync => "sync",
        };
        f.write_str(s)
    }
}

/// One node of the task DAG.
#[derive(Debug, Clone)]
pub struct Task {
    /// Resource the task executes on.
    pub resource: ResourceId,
    /// Amount of work in the resource's units (FLOPs or bytes).
    pub work: f64,
    /// Attribution category for breakdowns.
    pub category: TaskCategory,
    /// Tasks that must complete before this one may start.
    pub deps: Vec<TaskId>,
    /// Earliest allowed start (e.g. data arrival), independent of deps.
    pub earliest: SimTime,
}

impl Task {
    /// Creates a task with no dependencies.
    pub fn new(resource: ResourceId, work: f64, category: TaskCategory) -> Self {
        Task {
            resource,
            work,
            category,
            deps: Vec::new(),
            earliest: SimTime::ZERO,
        }
    }

    /// Adds dependencies.
    pub fn after(mut self, deps: impl IntoIterator<Item = TaskId>) -> Self {
        self.deps.extend(deps);
        self
    }
}

/// What delayed a task's start: the edge the critical path follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Binding {
    /// Started the moment it was created (no wait).
    Immediate,
    /// Waited for a dependency to finish.
    Dependency(TaskId),
    /// Waited for its resource channel, held by this task.
    Resource(TaskId),
}

/// The execution record of one task.
#[derive(Debug, Clone, Copy)]
pub struct TaskRecord {
    /// Task this record belongs to.
    pub task: TaskId,
    /// Resource it ran on.
    pub resource: ResourceId,
    /// Attribution category.
    pub category: TaskCategory,
    /// Instant all dependencies were satisfied.
    pub ready: SimTime,
    /// Instant the resource channel started serving it (includes launch
    /// overhead).
    pub start: SimTime,
    /// Completion instant.
    pub end: SimTime,
    /// Work units served.
    pub work: f64,
    /// What the task waited on before starting.
    pub binding: Binding,
}

/// Per-resource summary after a run.
#[derive(Debug, Clone)]
pub struct ResourceSummary {
    /// Static description of the resource.
    pub spec: ResourceSpec,
    /// Total busy time summed over channels.
    pub busy: SimDuration,
    /// Total work units served.
    pub work_served: f64,
    /// Number of operations served.
    pub ops_served: u64,
}

impl ResourceSummary {
    /// Busy fraction over the run's makespan (can exceed 1.0 only if the
    /// resource has multiple channels; it is normalized per channel).
    pub fn utilization(&self, makespan: SimTime) -> f64 {
        if makespan == SimTime::ZERO {
            return 0.0;
        }
        self.busy.as_secs_f64() / (makespan.as_secs_f64() * self.spec.channels as f64)
    }
}

/// Output of [`Engine::run`].
#[derive(Debug, Clone)]
pub struct RunResult {
    /// One record per task, indexed by `TaskId`.
    pub records: Vec<TaskRecord>,
    /// Completion time of the last task.
    pub makespan: SimTime,
    /// Per-resource summaries, indexed by `ResourceId`.
    pub resources: Vec<ResourceSummary>,
}

impl RunResult {
    /// Record for a given task.
    pub fn record(&self, task: TaskId) -> &TaskRecord {
        &self.records[task.0]
    }

    /// Walks the chain of binding constraints back from the last-finishing
    /// task: the sequence of tasks whose waits determined the makespan,
    /// earliest first. The single most useful diagnostic for "why is this
    /// schedule slow" — a path dominated by `Resource` bindings on one kind
    /// names the bottleneck.
    pub fn critical_path(&self) -> Vec<TaskId> {
        let Some(last) = self
            .records
            .iter()
            .max_by_key(|r| (r.end, r.task.0))
            .map(|r| r.task)
        else {
            return Vec::new();
        };
        let mut path = vec![last];
        let mut cur = last;
        loop {
            match self.records[cur.0].binding {
                Binding::Immediate => break,
                Binding::Dependency(p) | Binding::Resource(p) => {
                    path.push(p);
                    cur = p;
                }
            }
        }
        path.reverse();
        path
    }

    /// Busy time along the critical path attributed per resource kind —
    /// where the makespan was actually spent.
    pub fn critical_path_by_kind(&self) -> Vec<(ResourceKind, SimDuration)> {
        let mut per: std::collections::BTreeMap<ResourceKind, SimDuration> =
            std::collections::BTreeMap::new();
        for &t in &self.critical_path() {
            let rec = &self.records[t.0];
            let kind = self.resources[rec.resource.0].spec.kind;
            *per.entry(kind).or_insert(SimDuration::ZERO) += rec.end - rec.start;
        }
        per.into_iter().collect()
    }

    /// Total busy time of all resources of a given kind.
    pub fn busy_by_kind(&self, kind: ResourceKind) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for r in &self.resources {
            if r.spec.kind == kind {
                total += r.busy;
            }
        }
        total
    }
}

/// Errors from building or running a task DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A task references a dependency with an id not yet added.
    UnknownDependency {
        /// The referencing task.
        task: TaskId,
        /// The missing dependency.
        dep: TaskId,
    },
    /// A task references a resource that does not exist.
    UnknownResource {
        /// The referencing task.
        task: TaskId,
        /// The missing resource.
        resource: ResourceId,
    },
    /// The DAG contains a cycle (some tasks never became ready).
    Cycle {
        /// Number of tasks that never completed.
        stuck: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownDependency { task, dep } => {
                write!(f, "task {} depends on unknown task {}", task.0, dep.0)
            }
            EngineError::UnknownResource { task, resource } => {
                write!(f, "task {} uses unknown resource {}", task.0, resource.0)
            }
            EngineError::Cycle { stuck } => {
                write!(
                    f,
                    "task graph has a cycle; {stuck} tasks never became ready"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// A discrete-event engine holding resources and a task DAG.
///
/// Resource names are interned into dense [`NameId`] handles at registration
/// time; the event loop itself touches only flat integer-indexed arrays
/// (struct-of-arrays task fields, CSR successor lists, one channel arena) —
/// no strings, hash maps, or nested `Vec`s on the hot path.
#[derive(Debug, Default)]
pub struct Engine {
    resources: Vec<ResourceState>,
    tasks: Vec<Task>,
    /// Interner over resource names; handles are resolved at build time.
    names: NameInterner,
    /// Interned name per resource, indexed by `ResourceId`.
    name_ids: Vec<NameId>,
    /// First resource registered under each interned name, indexed by
    /// `NameId` (dense, since names are interned in registration order).
    name_owner: Vec<u32>,
}

impl Engine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Registers a resource and returns its id. The resource's name is
    /// interned here — this is the last point on the execution path where
    /// the name exists as a string.
    pub fn add_resource(&mut self, spec: ResourceSpec) -> ResourceId {
        let id = ResourceId(self.resources.len());
        let name_id = self.names.intern(&spec.name);
        if name_id.0 as usize == self.name_owner.len() {
            self.name_owner.push(id.0 as u32);
        }
        self.name_ids.push(name_id);
        self.resources.push(ResourceState::new(spec));
        id
    }

    /// Interned handle of a resource's name.
    pub fn resource_name_id(&self, id: ResourceId) -> NameId {
        self.name_ids[id.0]
    }

    /// The engine's name interner, for resolving handles back to strings at
    /// the reporting edges.
    pub fn names(&self) -> &NameInterner {
        &self.names
    }

    /// Looks up a resource by exact name through the interner (no scan over
    /// specs). If several resources share a name, the first one registered
    /// wins.
    pub fn resource_by_name(&self, name: &str) -> Option<ResourceId> {
        self.names
            .get(name)
            .map(|nid| ResourceId(self.name_owner[nid.0 as usize] as usize))
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Number of registered tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Spec of a registered resource.
    pub fn resource_spec(&self, id: ResourceId) -> &ResourceSpec {
        &self.resources[id.0].spec
    }

    /// Finds the first resource of `kind` on `node`, if any.
    pub fn find_resource(&self, node: usize, kind: ResourceKind) -> Option<ResourceId> {
        self.resources
            .iter()
            .position(|r| r.spec.node == node && r.spec.kind == kind)
            .map(ResourceId)
    }

    /// Adds a task; dependencies must already have been added (this enforces
    /// acyclicity by construction for the common builder pattern).
    pub fn add_task(&mut self, task: Task) -> Result<TaskId, EngineError> {
        let id = TaskId(self.tasks.len());
        if task.resource.0 >= self.resources.len() {
            return Err(EngineError::UnknownResource {
                task: id,
                resource: task.resource,
            });
        }
        for &dep in &task.deps {
            if dep.0 >= self.tasks.len() {
                return Err(EngineError::UnknownDependency { task: id, dep });
            }
        }
        self.tasks.push(task);
        Ok(id)
    }

    /// Executes the DAG to completion and returns the full trace.
    ///
    /// Before the loop starts, the DAG is flattened into dense arrays: the
    /// hot task fields (resource, work) as struct-of-arrays columns,
    /// successor lists in CSR form (one flat edge array plus offsets), and
    /// every resource's channels in a single arena sliced by per-resource
    /// offsets. The loop then moves `u32` handles between a global ready
    /// heap and preallocated per-resource FIFO queues — it performs no
    /// allocation, string comparison, or map lookup.
    pub fn run(mut self) -> Result<RunResult, EngineError> {
        let n = self.tasks.len();
        let n_res = self.resources.len();

        // Struct-of-arrays columns for the two task fields the loop reads
        // on every dispatch; `deps` stays behind in the cold Task structs.
        let task_res: Vec<u32> = self.tasks.iter().map(|t| t.resource.0 as u32).collect();
        let task_work: Vec<f64> = self.tasks.iter().map(|t| t.work).collect();

        // Successor lists in CSR form, preserving per-dependency insertion
        // order (tasks are scanned in id order, exactly the order the old
        // per-task Vec<TaskId> lists were appended in).
        let mut indegree: Vec<u32> = vec![0; n];
        let mut succ_off: Vec<u32> = vec![0; n + 1];
        for t in &self.tasks {
            for &dep in &t.deps {
                succ_off[dep.0 + 1] += 1;
            }
        }
        for i in 0..n {
            succ_off[i + 1] += succ_off[i];
        }
        let mut succ: Vec<u32> = vec![0; succ_off[n] as usize];
        let mut cursor: Vec<u32> = succ_off[..n].to_vec();
        for (i, t) in self.tasks.iter().enumerate() {
            indegree[i] = t.deps.len() as u32;
            for &dep in &t.deps {
                succ[cursor[dep.0] as usize] = i as u32;
                cursor[dep.0] += 1;
            }
        }

        // ready_at[t] = max(earliest, latest dep end); updated as deps finish.
        let mut ready_at: Vec<SimTime> = self.tasks.iter().map(|t| t.earliest).collect();
        // The dependency that set ready_at (u32::MAX = none), for
        // critical-path analysis.
        let mut ready_by: Vec<u32> = vec![u32::MAX; n];

        // One flat channel arena for all resources: next-free time and last
        // task served (u32::MAX = none) per channel, sliced by chan_off.
        let mut chan_off: Vec<u32> = Vec::with_capacity(n_res + 1);
        chan_off.push(0);
        for r in &self.resources {
            chan_off.push(chan_off[chan_off.len() - 1] + r.spec.channels as u32);
        }
        let n_chan = chan_off[n_res] as usize;
        let mut chan_free: Vec<SimTime> = vec![SimTime::ZERO; n_chan];
        let mut chan_last: Vec<u32> = vec![u32::MAX; n_chan];

        let mut records: Vec<Option<TaskRecord>> = vec![None; n];

        // Min-heap of (ready time, handle) so dispatch order is deterministic.
        let mut heap: BinaryHeap<Reverse<(SimTime, u32)>> = BinaryHeap::new();
        for (i, deg) in indegree.iter().enumerate() {
            if *deg == 0 {
                heap.push(Reverse((ready_at[i], i as u32)));
            }
        }

        // Per-resource FIFO staging between the global event order and each
        // resource's dispatch order. Tasks drain immediately (per-resource
        // order must equal global ready order exactly — a zero-duration task
        // can release a same-timestamp successor, so batching pops would
        // reorder dispatches), but routing through the handle-indexed queues
        // keeps the loop free of any per-event allocation.
        let mut ready_q: Vec<VecDeque<u32>> =
            (0..n_res).map(|_| VecDeque::with_capacity(4)).collect();

        let mut completed = 0usize;
        let mut makespan = SimTime::ZERO;
        while let Some(Reverse((_, popped))) = heap.pop() {
            let r = task_res[popped as usize] as usize;
            ready_q[r].push_back(popped);
            while let Some(idx) = ready_q[r].pop_front() {
                let i = idx as usize;
                let ready = ready_at[i];
                let lo = chan_off[r] as usize;
                let hi = chan_off[r + 1] as usize;
                let (ch, start, end) =
                    self.resources[r].dispatch_on(&mut chan_free[lo..hi], ready, task_work[i]);
                let binding = if start > ready {
                    match chan_last[lo + ch] {
                        u32::MAX => Binding::Immediate,
                        last => Binding::Resource(TaskId(last as usize)),
                    }
                } else {
                    match ready_by[i] {
                        u32::MAX => Binding::Immediate,
                        by => Binding::Dependency(TaskId(by as usize)),
                    }
                };
                chan_last[lo + ch] = idx;
                records[i] = Some(TaskRecord {
                    task: TaskId(i),
                    resource: ResourceId(r),
                    category: self.tasks[i].category,
                    ready,
                    start,
                    end,
                    work: task_work[i],
                    binding,
                });
                completed += 1;
                makespan = makespan.max(end);
                // Complete: release successors via the CSR edge list.
                for &edge in &succ[succ_off[i] as usize..succ_off[i + 1] as usize] {
                    let s = edge as usize;
                    if end >= ready_at[s] {
                        ready_at[s] = end;
                        ready_by[s] = idx;
                    }
                    indegree[s] -= 1;
                    if indegree[s] == 0 {
                        heap.push(Reverse((ready_at[s], s as u32)));
                    }
                }
            }
        }

        if completed != n {
            return Err(EngineError::Cycle {
                stuck: n - completed,
            });
        }

        let resources = self
            .resources
            .into_iter()
            .map(|r| ResourceSummary {
                spec: r.spec,
                busy: r.busy,
                work_served: r.work_served,
                ops_served: r.ops_served,
            })
            .collect();

        Ok(RunResult {
            records: records
                .into_iter()
                .map(|r| r.expect("all tasks completed"))
                .collect(),
            makespan,
            resources,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu(engine: &mut Engine) -> ResourceId {
        engine.add_resource(ResourceSpec::new("gpu", ResourceKind::GpuSm, 1e9, 0))
    }

    fn net(engine: &mut Engine) -> ResourceId {
        engine.add_resource(ResourceSpec::new("net", ResourceKind::Network, 1e9, 0))
    }

    #[test]
    fn chain_executes_in_order() {
        let mut e = Engine::new();
        let g = gpu(&mut e);
        let a = e
            .add_task(Task::new(g, 1e6, TaskCategory::Computation))
            .unwrap();
        let b = e
            .add_task(Task::new(g, 1e6, TaskCategory::Computation).after([a]))
            .unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.record(a).start, SimTime::ZERO);
        assert_eq!(r.record(b).start, r.record(a).end);
        assert_eq!(r.makespan.as_nanos(), 2_000_000);
    }

    #[test]
    fn independent_tasks_on_distinct_resources_overlap() {
        let mut e = Engine::new();
        let g = gpu(&mut e);
        let nw = net(&mut e);
        let a = e
            .add_task(Task::new(g, 1e6, TaskCategory::Computation))
            .unwrap();
        let b = e
            .add_task(Task::new(nw, 1e6, TaskCategory::Communication))
            .unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.record(a).start, SimTime::ZERO);
        assert_eq!(r.record(b).start, SimTime::ZERO);
        assert_eq!(r.makespan.as_nanos(), 1_000_000, "perfect overlap");
    }

    #[test]
    fn diamond_join_waits_for_slowest_parent() {
        let mut e = Engine::new();
        let g = gpu(&mut e);
        let nw = net(&mut e);
        let a = e
            .add_task(Task::new(g, 1e6, TaskCategory::Computation))
            .unwrap();
        let b = e
            .add_task(Task::new(nw, 5e6, TaskCategory::Communication))
            .unwrap();
        let c = e
            .add_task(Task::new(g, 1e6, TaskCategory::Computation).after([a, b]))
            .unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.record(c).ready, r.record(b).end);
        assert_eq!(r.makespan.as_nanos(), 6_000_000);
    }

    #[test]
    fn launch_overhead_dominates_fragmentary_ops() {
        // The packing motivation: 1000 tiny ops pay 1000 overheads; one packed
        // op pays a single overhead for the same total work.
        let overhead = SimDuration::from_micros(10);
        let total_work = 1e6;

        let mut frag = Engine::new();
        let g = frag.add_resource(
            ResourceSpec::new("gpu", ResourceKind::GpuSm, 1e9, 0).with_launch_overhead(overhead),
        );
        for _ in 0..1000 {
            frag.add_task(Task::new(g, total_work / 1000.0, TaskCategory::Memory))
                .unwrap();
        }
        let frag_time = frag.run().unwrap().makespan;

        let mut packed = Engine::new();
        let g = packed.add_resource(
            ResourceSpec::new("gpu", ResourceKind::GpuSm, 1e9, 0).with_launch_overhead(overhead),
        );
        packed
            .add_task(Task::new(g, total_work, TaskCategory::Memory))
            .unwrap();
        let packed_time = packed.run().unwrap().makespan;

        assert!(
            frag_time.as_secs_f64() > 5.0 * packed_time.as_secs_f64(),
            "fragmentary {frag_time} should be >5x packed {packed_time}"
        );
    }

    #[test]
    fn earliest_start_is_honoured() {
        let mut e = Engine::new();
        let g = gpu(&mut e);
        let mut t = Task::new(g, 1e6, TaskCategory::Computation);
        t.earliest = SimTime(42_000);
        let a = e.add_task(t).unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.record(a).start, SimTime(42_000));
    }

    #[test]
    fn forward_dependency_is_rejected() {
        let mut e = Engine::new();
        let g = gpu(&mut e);
        let err = e
            .add_task(Task::new(g, 1.0, TaskCategory::Computation).after([TaskId(7)]))
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownDependency { .. }));
    }

    #[test]
    fn unknown_resource_is_rejected() {
        let mut e = Engine::new();
        let err = e
            .add_task(Task::new(ResourceId(3), 1.0, TaskCategory::Computation))
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownResource { .. }));
    }

    #[test]
    fn summaries_report_busy_and_ops() {
        let mut e = Engine::new();
        let g = gpu(&mut e);
        e.add_task(Task::new(g, 2e9, TaskCategory::Computation))
            .unwrap();
        e.add_task(Task::new(g, 2e9, TaskCategory::Computation))
            .unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.resources[0].ops_served, 2);
        assert!((r.resources[0].utilization(r.makespan) - 1.0).abs() < 1e-9);
        assert_eq!(
            r.busy_by_kind(ResourceKind::GpuSm),
            SimDuration::from_secs_f64(4.0)
        );
        assert_eq!(r.busy_by_kind(ResourceKind::Pcie), SimDuration::ZERO);
    }

    #[test]
    fn critical_path_follows_the_slow_chain() {
        let mut e = Engine::new();
        let g = gpu(&mut e);
        let nw = net(&mut e);
        // Slow comm (5 ms) feeding compute (1 ms); a fast independent task.
        let slow = e
            .add_task(Task::new(nw, 5e6, TaskCategory::Communication))
            .unwrap();
        let _fast = e
            .add_task(Task::new(g, 1e5, TaskCategory::Computation))
            .unwrap();
        let tail = e
            .add_task(Task::new(g, 1e6, TaskCategory::Computation).after([slow]))
            .unwrap();
        let r = e.run().unwrap();
        let path = r.critical_path();
        assert_eq!(path, vec![slow, tail]);
        let by_kind = r.critical_path_by_kind();
        let net_time = by_kind
            .iter()
            .find(|(k, _)| *k == ResourceKind::Network)
            .map(|(_, d)| *d)
            .unwrap();
        assert_eq!(net_time, SimDuration::from_millis(5), "network dominates");
    }

    #[test]
    fn critical_path_attributes_resource_queueing() {
        let mut e = Engine::new();
        let g = gpu(&mut e);
        // Two independent 1-ms tasks on one resource: the second queues.
        let a = e
            .add_task(Task::new(g, 1e6, TaskCategory::Computation))
            .unwrap();
        let b = e
            .add_task(Task::new(g, 1e6, TaskCategory::Computation))
            .unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.record(b).binding, Binding::Resource(a));
        assert_eq!(r.record(a).binding, Binding::Immediate);
        assert_eq!(r.critical_path(), vec![a, b]);
    }

    #[test]
    fn resource_names_are_interned_at_registration() {
        let mut e = Engine::new();
        let g = gpu(&mut e);
        let nw = net(&mut e);
        let gid = e.resource_name_id(g);
        let nid = e.resource_name_id(nw);
        assert_ne!(gid, nid);
        assert_eq!(e.names().resolve(gid), "gpu");
        assert_eq!(e.names().resolve(nid), "net");
        assert_eq!(e.resource_by_name("net"), Some(nw));
        assert_eq!(e.resource_by_name("tpu"), None);
    }

    #[test]
    fn duplicate_names_resolve_to_first_registration() {
        let mut e = Engine::new();
        let a = e.add_resource(ResourceSpec::new("x", ResourceKind::HostCpu, 1e9, 0));
        let b = e.add_resource(ResourceSpec::new("x", ResourceKind::HostCpu, 1e9, 1));
        assert_eq!(e.resource_name_id(a), e.resource_name_id(b));
        assert_eq!(e.resource_by_name("x"), Some(a));
    }

    #[test]
    fn deterministic_across_runs() {
        let build = || {
            let mut e = Engine::new();
            let g = gpu(&mut e);
            let nw = net(&mut e);
            let mut prev = None;
            for i in 0..50 {
                let res = if i % 3 == 0 { nw } else { g };
                let mut t = Task::new(res, (i as f64 + 1.0) * 1e4, TaskCategory::Memory);
                if let Some(p) = prev {
                    if i % 2 == 0 {
                        t = t.after([p]);
                    }
                }
                prev = Some(e.add_task(t).unwrap());
            }
            e.run().unwrap()
        };
        let a = build();
        let b = build();
        assert_eq!(a.makespan, b.makespan);
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.start, y.start);
            assert_eq!(x.end, y.end);
        }
    }
}
