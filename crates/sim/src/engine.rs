//! The discrete-event execution engine.
//!
//! The engine executes a DAG of [`Task`]s over a set of resources. A task
//! becomes *ready* when all of its dependencies have completed; ready tasks
//! are dispatched in ready-time order (FIFO per resource) onto the earliest
//! free channel of their resource, paying the resource's launch overhead plus
//! `work / rate` of service time. The result records the exact `(start, end)`
//! interval of every task, from which the metrics module derives utilization
//! timelines, bandwidth traces, and time breakdowns.

use crate::resource::{ResourceId, ResourceKind, ResourceSpec, ResourceState};
use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Identifies a task within one engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// Coarse category of a task, used for time-breakdown attribution (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TaskCategory {
    /// Reading and decoding training data from remote storage.
    DataIo,
    /// Embedding lookup and other memory-bound work.
    Memory,
    /// Parameter / embedding exchange between executors.
    Communication,
    /// Dense arithmetic (feature interaction, MLP, gradients).
    Computation,
    /// Synchronization barriers and bookkeeping.
    Sync,
}

impl TaskCategory {
    /// All categories, in a fixed display order.
    pub const ALL: [TaskCategory; 5] = [
        TaskCategory::DataIo,
        TaskCategory::Memory,
        TaskCategory::Communication,
        TaskCategory::Computation,
        TaskCategory::Sync,
    ];
}

impl fmt::Display for TaskCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TaskCategory::DataIo => "io",
            TaskCategory::Memory => "memory",
            TaskCategory::Communication => "communication",
            TaskCategory::Computation => "computation",
            TaskCategory::Sync => "sync",
        };
        f.write_str(s)
    }
}

/// One node of the task DAG.
#[derive(Debug, Clone)]
pub struct Task {
    /// Resource the task executes on.
    pub resource: ResourceId,
    /// Amount of work in the resource's units (FLOPs or bytes).
    pub work: f64,
    /// Attribution category for breakdowns.
    pub category: TaskCategory,
    /// Tasks that must complete before this one may start.
    pub deps: Vec<TaskId>,
    /// Earliest allowed start (e.g. data arrival), independent of deps.
    pub earliest: SimTime,
}

impl Task {
    /// Creates a task with no dependencies.
    pub fn new(resource: ResourceId, work: f64, category: TaskCategory) -> Self {
        Task {
            resource,
            work,
            category,
            deps: Vec::new(),
            earliest: SimTime::ZERO,
        }
    }

    /// Adds dependencies.
    pub fn after(mut self, deps: impl IntoIterator<Item = TaskId>) -> Self {
        self.deps.extend(deps);
        self
    }
}

/// What delayed a task's start: the edge the critical path follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Binding {
    /// Started the moment it was created (no wait).
    Immediate,
    /// Waited for a dependency to finish.
    Dependency(TaskId),
    /// Waited for its resource channel, held by this task.
    Resource(TaskId),
}

/// The execution record of one task.
#[derive(Debug, Clone, Copy)]
pub struct TaskRecord {
    /// Task this record belongs to.
    pub task: TaskId,
    /// Resource it ran on.
    pub resource: ResourceId,
    /// Attribution category.
    pub category: TaskCategory,
    /// Instant all dependencies were satisfied.
    pub ready: SimTime,
    /// Instant the resource channel started serving it (includes launch
    /// overhead).
    pub start: SimTime,
    /// Completion instant.
    pub end: SimTime,
    /// Work units served.
    pub work: f64,
    /// What the task waited on before starting.
    pub binding: Binding,
}

/// Per-resource summary after a run.
#[derive(Debug, Clone)]
pub struct ResourceSummary {
    /// Static description of the resource.
    pub spec: ResourceSpec,
    /// Total busy time summed over channels.
    pub busy: SimDuration,
    /// Total work units served.
    pub work_served: f64,
    /// Number of operations served.
    pub ops_served: u64,
}

impl ResourceSummary {
    /// Busy fraction over the run's makespan (can exceed 1.0 only if the
    /// resource has multiple channels; it is normalized per channel).
    pub fn utilization(&self, makespan: SimTime) -> f64 {
        if makespan == SimTime::ZERO {
            return 0.0;
        }
        self.busy.as_secs_f64() / (makespan.as_secs_f64() * self.spec.channels as f64)
    }
}

/// Output of [`Engine::run`].
#[derive(Debug, Clone)]
pub struct RunResult {
    /// One record per task, indexed by `TaskId`.
    pub records: Vec<TaskRecord>,
    /// Completion time of the last task.
    pub makespan: SimTime,
    /// Per-resource summaries, indexed by `ResourceId`.
    pub resources: Vec<ResourceSummary>,
}

impl RunResult {
    /// Record for a given task.
    pub fn record(&self, task: TaskId) -> &TaskRecord {
        &self.records[task.0]
    }

    /// Walks the chain of binding constraints back from the last-finishing
    /// task: the sequence of tasks whose waits determined the makespan,
    /// earliest first. The single most useful diagnostic for "why is this
    /// schedule slow" — a path dominated by `Resource` bindings on one kind
    /// names the bottleneck.
    pub fn critical_path(&self) -> Vec<TaskId> {
        let Some(last) = self
            .records
            .iter()
            .max_by_key(|r| (r.end, r.task.0))
            .map(|r| r.task)
        else {
            return Vec::new();
        };
        let mut path = vec![last];
        let mut cur = last;
        loop {
            match self.records[cur.0].binding {
                Binding::Immediate => break,
                Binding::Dependency(p) | Binding::Resource(p) => {
                    path.push(p);
                    cur = p;
                }
            }
        }
        path.reverse();
        path
    }

    /// Busy time along the critical path attributed per resource kind —
    /// where the makespan was actually spent.
    pub fn critical_path_by_kind(&self) -> Vec<(ResourceKind, SimDuration)> {
        let mut per: std::collections::BTreeMap<ResourceKind, SimDuration> =
            std::collections::BTreeMap::new();
        for &t in &self.critical_path() {
            let rec = &self.records[t.0];
            let kind = self.resources[rec.resource.0].spec.kind;
            *per.entry(kind).or_insert(SimDuration::ZERO) += rec.end - rec.start;
        }
        per.into_iter().collect()
    }

    /// Total busy time of all resources of a given kind.
    pub fn busy_by_kind(&self, kind: ResourceKind) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for r in &self.resources {
            if r.spec.kind == kind {
                total += r.busy;
            }
        }
        total
    }
}

/// Errors from building or running a task DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A task references a dependency with an id not yet added.
    UnknownDependency {
        /// The referencing task.
        task: TaskId,
        /// The missing dependency.
        dep: TaskId,
    },
    /// A task references a resource that does not exist.
    UnknownResource {
        /// The referencing task.
        task: TaskId,
        /// The missing resource.
        resource: ResourceId,
    },
    /// The DAG contains a cycle (some tasks never became ready).
    Cycle {
        /// Number of tasks that never completed.
        stuck: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownDependency { task, dep } => {
                write!(f, "task {} depends on unknown task {}", task.0, dep.0)
            }
            EngineError::UnknownResource { task, resource } => {
                write!(f, "task {} uses unknown resource {}", task.0, resource.0)
            }
            EngineError::Cycle { stuck } => {
                write!(
                    f,
                    "task graph has a cycle; {stuck} tasks never became ready"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// A discrete-event engine holding resources and a task DAG.
#[derive(Debug, Default)]
pub struct Engine {
    resources: Vec<ResourceState>,
    tasks: Vec<Task>,
    /// successors[t] lists tasks depending on t.
    successors: Vec<Vec<TaskId>>,
}

impl Engine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Registers a resource and returns its id.
    pub fn add_resource(&mut self, spec: ResourceSpec) -> ResourceId {
        let id = ResourceId(self.resources.len());
        self.resources.push(ResourceState::new(spec));
        id
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Number of registered tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Spec of a registered resource.
    pub fn resource_spec(&self, id: ResourceId) -> &ResourceSpec {
        &self.resources[id.0].spec
    }

    /// Finds the first resource of `kind` on `node`, if any.
    pub fn find_resource(&self, node: usize, kind: ResourceKind) -> Option<ResourceId> {
        self.resources
            .iter()
            .position(|r| r.spec.node == node && r.spec.kind == kind)
            .map(ResourceId)
    }

    /// Adds a task; dependencies must already have been added (this enforces
    /// acyclicity by construction for the common builder pattern).
    pub fn add_task(&mut self, task: Task) -> Result<TaskId, EngineError> {
        let id = TaskId(self.tasks.len());
        if task.resource.0 >= self.resources.len() {
            return Err(EngineError::UnknownResource {
                task: id,
                resource: task.resource,
            });
        }
        for &dep in &task.deps {
            if dep.0 >= self.tasks.len() {
                return Err(EngineError::UnknownDependency { task: id, dep });
            }
            self.successors[dep.0].push(id);
        }
        self.tasks.push(task);
        self.successors.push(Vec::new());
        Ok(id)
    }

    /// Executes the DAG to completion and returns the full trace.
    pub fn run(mut self) -> Result<RunResult, EngineError> {
        let n = self.tasks.len();
        let mut indegree: Vec<usize> = self.tasks.iter().map(|t| t.deps.len()).collect();
        // ready_at[t] = max(earliest, latest dep end); updated as deps finish.
        let mut ready_at: Vec<SimTime> = self.tasks.iter().map(|t| t.earliest).collect();
        // The dependency that set ready_at (for critical-path analysis).
        let mut ready_by: Vec<Option<TaskId>> = vec![None; n];
        // Last task served per (resource, channel), to attribute queueing.
        let mut channel_last: Vec<Vec<Option<TaskId>>> = self
            .resources
            .iter()
            .map(|r| vec![None; r.spec.channels])
            .collect();
        let mut records: Vec<Option<TaskRecord>> = vec![None; n];

        // Min-heap of (ready time, seq) so dispatch order is deterministic.
        let mut heap: BinaryHeap<Reverse<(SimTime, usize)>> = BinaryHeap::new();
        for (i, deg) in indegree.iter().enumerate() {
            if *deg == 0 {
                heap.push(Reverse((ready_at[i], i)));
            }
        }

        let mut completed = 0usize;
        let mut makespan = SimTime::ZERO;
        while let Some(Reverse((ready, idx))) = heap.pop() {
            let task = &self.tasks[idx];
            let ch = self.resources[task.resource.0].earliest_channel();
            let (start, end) = self.resources[task.resource.0].dispatch(ready, task.work);
            let binding = if start > ready {
                channel_last[task.resource.0][ch]
                    .map(Binding::Resource)
                    .unwrap_or(Binding::Immediate)
            } else {
                ready_by[idx]
                    .map(Binding::Dependency)
                    .unwrap_or(Binding::Immediate)
            };
            channel_last[task.resource.0][ch] = Some(TaskId(idx));
            records[idx] = Some(TaskRecord {
                task: TaskId(idx),
                resource: task.resource,
                category: task.category,
                ready,
                start,
                end,
                work: task.work,
                binding,
            });
            completed += 1;
            makespan = makespan.max(end);
            // Complete: release successors.
            for s in 0..self.successors[idx].len() {
                let succ = self.successors[idx][s];
                if end >= ready_at[succ.0] {
                    ready_at[succ.0] = end;
                    ready_by[succ.0] = Some(TaskId(idx));
                }
                indegree[succ.0] -= 1;
                if indegree[succ.0] == 0 {
                    heap.push(Reverse((ready_at[succ.0], succ.0)));
                }
            }
        }

        if completed != n {
            return Err(EngineError::Cycle {
                stuck: n - completed,
            });
        }

        let resources = self
            .resources
            .into_iter()
            .map(|r| ResourceSummary {
                spec: r.spec,
                busy: r.busy,
                work_served: r.work_served,
                ops_served: r.ops_served,
            })
            .collect();

        Ok(RunResult {
            records: records
                .into_iter()
                .map(|r| r.expect("all tasks completed"))
                .collect(),
            makespan,
            resources,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu(engine: &mut Engine) -> ResourceId {
        engine.add_resource(ResourceSpec::new("gpu", ResourceKind::GpuSm, 1e9, 0))
    }

    fn net(engine: &mut Engine) -> ResourceId {
        engine.add_resource(ResourceSpec::new("net", ResourceKind::Network, 1e9, 0))
    }

    #[test]
    fn chain_executes_in_order() {
        let mut e = Engine::new();
        let g = gpu(&mut e);
        let a = e
            .add_task(Task::new(g, 1e6, TaskCategory::Computation))
            .unwrap();
        let b = e
            .add_task(Task::new(g, 1e6, TaskCategory::Computation).after([a]))
            .unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.record(a).start, SimTime::ZERO);
        assert_eq!(r.record(b).start, r.record(a).end);
        assert_eq!(r.makespan.as_nanos(), 2_000_000);
    }

    #[test]
    fn independent_tasks_on_distinct_resources_overlap() {
        let mut e = Engine::new();
        let g = gpu(&mut e);
        let nw = net(&mut e);
        let a = e
            .add_task(Task::new(g, 1e6, TaskCategory::Computation))
            .unwrap();
        let b = e
            .add_task(Task::new(nw, 1e6, TaskCategory::Communication))
            .unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.record(a).start, SimTime::ZERO);
        assert_eq!(r.record(b).start, SimTime::ZERO);
        assert_eq!(r.makespan.as_nanos(), 1_000_000, "perfect overlap");
    }

    #[test]
    fn diamond_join_waits_for_slowest_parent() {
        let mut e = Engine::new();
        let g = gpu(&mut e);
        let nw = net(&mut e);
        let a = e
            .add_task(Task::new(g, 1e6, TaskCategory::Computation))
            .unwrap();
        let b = e
            .add_task(Task::new(nw, 5e6, TaskCategory::Communication))
            .unwrap();
        let c = e
            .add_task(Task::new(g, 1e6, TaskCategory::Computation).after([a, b]))
            .unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.record(c).ready, r.record(b).end);
        assert_eq!(r.makespan.as_nanos(), 6_000_000);
    }

    #[test]
    fn launch_overhead_dominates_fragmentary_ops() {
        // The packing motivation: 1000 tiny ops pay 1000 overheads; one packed
        // op pays a single overhead for the same total work.
        let overhead = SimDuration::from_micros(10);
        let total_work = 1e6;

        let mut frag = Engine::new();
        let g = frag.add_resource(
            ResourceSpec::new("gpu", ResourceKind::GpuSm, 1e9, 0).with_launch_overhead(overhead),
        );
        for _ in 0..1000 {
            frag.add_task(Task::new(g, total_work / 1000.0, TaskCategory::Memory))
                .unwrap();
        }
        let frag_time = frag.run().unwrap().makespan;

        let mut packed = Engine::new();
        let g = packed.add_resource(
            ResourceSpec::new("gpu", ResourceKind::GpuSm, 1e9, 0).with_launch_overhead(overhead),
        );
        packed
            .add_task(Task::new(g, total_work, TaskCategory::Memory))
            .unwrap();
        let packed_time = packed.run().unwrap().makespan;

        assert!(
            frag_time.as_secs_f64() > 5.0 * packed_time.as_secs_f64(),
            "fragmentary {frag_time} should be >5x packed {packed_time}"
        );
    }

    #[test]
    fn earliest_start_is_honoured() {
        let mut e = Engine::new();
        let g = gpu(&mut e);
        let mut t = Task::new(g, 1e6, TaskCategory::Computation);
        t.earliest = SimTime(42_000);
        let a = e.add_task(t).unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.record(a).start, SimTime(42_000));
    }

    #[test]
    fn forward_dependency_is_rejected() {
        let mut e = Engine::new();
        let g = gpu(&mut e);
        let err = e
            .add_task(Task::new(g, 1.0, TaskCategory::Computation).after([TaskId(7)]))
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownDependency { .. }));
    }

    #[test]
    fn unknown_resource_is_rejected() {
        let mut e = Engine::new();
        let err = e
            .add_task(Task::new(ResourceId(3), 1.0, TaskCategory::Computation))
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownResource { .. }));
    }

    #[test]
    fn summaries_report_busy_and_ops() {
        let mut e = Engine::new();
        let g = gpu(&mut e);
        e.add_task(Task::new(g, 2e9, TaskCategory::Computation))
            .unwrap();
        e.add_task(Task::new(g, 2e9, TaskCategory::Computation))
            .unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.resources[0].ops_served, 2);
        assert!((r.resources[0].utilization(r.makespan) - 1.0).abs() < 1e-9);
        assert_eq!(
            r.busy_by_kind(ResourceKind::GpuSm),
            SimDuration::from_secs_f64(4.0)
        );
        assert_eq!(r.busy_by_kind(ResourceKind::Pcie), SimDuration::ZERO);
    }

    #[test]
    fn critical_path_follows_the_slow_chain() {
        let mut e = Engine::new();
        let g = gpu(&mut e);
        let nw = net(&mut e);
        // Slow comm (5 ms) feeding compute (1 ms); a fast independent task.
        let slow = e
            .add_task(Task::new(nw, 5e6, TaskCategory::Communication))
            .unwrap();
        let _fast = e
            .add_task(Task::new(g, 1e5, TaskCategory::Computation))
            .unwrap();
        let tail = e
            .add_task(Task::new(g, 1e6, TaskCategory::Computation).after([slow]))
            .unwrap();
        let r = e.run().unwrap();
        let path = r.critical_path();
        assert_eq!(path, vec![slow, tail]);
        let by_kind = r.critical_path_by_kind();
        let net_time = by_kind
            .iter()
            .find(|(k, _)| *k == ResourceKind::Network)
            .map(|(_, d)| *d)
            .unwrap();
        assert_eq!(net_time, SimDuration::from_millis(5), "network dominates");
    }

    #[test]
    fn critical_path_attributes_resource_queueing() {
        let mut e = Engine::new();
        let g = gpu(&mut e);
        // Two independent 1-ms tasks on one resource: the second queues.
        let a = e
            .add_task(Task::new(g, 1e6, TaskCategory::Computation))
            .unwrap();
        let b = e
            .add_task(Task::new(g, 1e6, TaskCategory::Computation))
            .unwrap();
        let r = e.run().unwrap();
        assert_eq!(r.record(b).binding, Binding::Resource(a));
        assert_eq!(r.record(a).binding, Binding::Immediate);
        assert_eq!(r.critical_path(), vec![a, b]);
    }

    #[test]
    fn deterministic_across_runs() {
        let build = || {
            let mut e = Engine::new();
            let g = gpu(&mut e);
            let nw = net(&mut e);
            let mut prev = None;
            for i in 0..50 {
                let res = if i % 3 == 0 { nw } else { g };
                let mut t = Task::new(res, (i as f64 + 1.0) * 1e4, TaskCategory::Memory);
                if let Some(p) = prev {
                    if i % 2 == 0 {
                        t = t.after([p]);
                    }
                }
                prev = Some(e.add_task(t).unwrap());
            }
            e.run().unwrap()
        };
        let a = build();
        let b = build();
        assert_eq!(a.makespan, b.makespan);
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.start, y.start);
            assert_eq!(x.end, y.end);
        }
    }
}
