//! Exports a finished run into the [`picasso_obs`] metrics registry.
//!
//! This is the simulator side of the observability layer: task counts,
//! per-resource service totals, task-duration and queue-wait histograms, and
//! the clock-stamped time series the Chrome exporter renders as counter
//! lanes — SM busy fraction, per-link bytes/s, queue depth, and congestion
//! backlog. Everything is derived from the immutable [`RunResult`], so
//! exporting is observation-only and cannot perturb the schedule.

use crate::engine::{RunResult, TaskCategory};
use crate::metrics::RunAnalysis;
use crate::resource::ResourceKind;
use crate::time::SimDuration;
use picasso_obs::{MetricKind, MetricsRegistry};

/// Histogram bounds for task service and queue-wait times, seconds.
pub const TASK_SECONDS_BOUNDS: [f64; 8] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

/// Records a run's metrics into `registry`, bucketing time series at
/// `bucket` (the paper's DCGM sampling uses 10 ms).
pub fn export_metrics(result: &RunResult, registry: &MetricsRegistry, bucket: SimDuration) {
    registry.describe(
        "sim_tasks_total",
        MetricKind::Counter,
        "Tasks executed, by category",
    );
    registry.describe(
        "sim_ops_total",
        MetricKind::Counter,
        "Operations served, by resource kind",
    );
    registry.describe(
        "sim_makespan_seconds",
        MetricKind::Gauge,
        "Completion time of the last task",
    );
    registry.describe(
        "sim_exposed_fraction",
        MetricKind::Gauge,
        "Fraction of the makespan a category blocks alone",
    );
    registry.describe(
        "sim_task_seconds",
        MetricKind::Histogram,
        "Task service time, by category",
    );
    registry.describe(
        "sim_queue_wait_seconds",
        MetricKind::Histogram,
        "Time between readiness and service start, by resource kind",
    );
    registry.describe(
        "sim_sm_busy",
        MetricKind::TimeSeries,
        "Mean GPU SM busy fraction per bucket",
    );
    registry.describe(
        "sim_link_bytes_per_sec",
        MetricKind::TimeSeries,
        "Interconnect throughput per bucket, by link",
    );
    registry.describe(
        "sim_resource_busy",
        MetricKind::TimeSeries,
        "Busy fraction per bucket, by concrete resource",
    );
    registry.describe(
        "sim_queue_depth",
        MetricKind::TimeSeries,
        "Tasks ready but not yet served, all resources",
    );
    registry.describe(
        "sim_congestion_backlog_seconds",
        MetricKind::TimeSeries,
        "Queue backlog observed at each service start on congested links",
    );
    registry.histogram_buckets("sim_task_seconds", &TASK_SECONDS_BOUNDS);
    registry.histogram_buckets("sim_queue_wait_seconds", &TASK_SECONDS_BOUNDS);

    registry.gauge_set("sim_makespan_seconds", &[], result.makespan.as_secs_f64());

    for rec in &result.records {
        let category = rec.category.to_string();
        let kind = result.resources[rec.resource.0].spec.kind.to_string();
        registry.counter_add("sim_tasks_total", &[("category", &category)], 1);
        registry.histogram_observe(
            "sim_task_seconds",
            &[("category", &category)],
            (rec.end - rec.start).as_secs_f64(),
        );
        registry.histogram_observe(
            "sim_queue_wait_seconds",
            &[("kind", &kind)],
            (rec.start - rec.ready).as_secs_f64(),
        );
    }
    for summary in &result.resources {
        let kind = summary.spec.kind.to_string();
        registry.counter_add("sim_ops_total", &[("kind", &kind)], summary.ops_served);
    }

    let analysis = RunAnalysis::new(result);
    let breakdown = analysis.breakdown();
    for cat in TaskCategory::ALL {
        registry.gauge_set(
            "sim_exposed_fraction",
            &[("category", &cat.to_string())],
            breakdown.exposed_fraction(cat),
        );
    }

    if result.makespan.as_nanos() == 0 {
        // Zero-length run: totals above are still valid; there is no
        // timeline to sample.
        return;
    }

    let sm = analysis.utilization_avg(ResourceKind::GpuSm, bucket);
    for (i, &value) in sm.samples.iter().enumerate() {
        registry.record_sample("sim_sm_busy", &[], i as u64 * bucket.as_nanos(), value);
    }
    for kind in [
        ResourceKind::Pcie,
        ResourceKind::NvLink,
        ResourceKind::Network,
    ] {
        let bw = analysis.bandwidth(kind, bucket);
        let link = kind.to_string();
        for (i, &value) in bw.samples.iter().enumerate() {
            registry.record_sample(
                "sim_link_bytes_per_sec",
                &[("link", &link)],
                i as u64 * bucket.as_nanos(),
                value,
            );
        }
    }

    // One counter lane per resource that ever served work; all-idle resources
    // still show up in the report's utilization block but would only clutter
    // the trace here.
    for lane in analysis.resource_timelines(bucket) {
        if lane.busy_fraction == 0.0 {
            continue;
        }
        let kind = lane.kind.to_string();
        let labels = [
            ("resource", lane.resource.as_str()),
            ("kind", kind.as_str()),
        ];
        for (i, &value) in lane.timeline.samples.iter().enumerate() {
            registry.record_sample(
                "sim_resource_busy",
                &labels,
                i as u64 * bucket.as_nanos(),
                value,
            );
        }
    }

    // Queue depth: +1 when a task becomes ready, -1 when it starts serving.
    let mut edges: Vec<(u64, i64)> = Vec::with_capacity(result.records.len() * 2);
    for rec in &result.records {
        if rec.start > rec.ready {
            edges.push((rec.ready.as_nanos(), 1));
            edges.push((rec.start.as_nanos(), -1));
        }
    }
    edges.sort();
    let mut depth = 0i64;
    let mut i = 0;
    while i < edges.len() {
        let t = edges[i].0;
        while i < edges.len() && edges[i].0 == t {
            depth += edges[i].1;
            i += 1;
        }
        registry.record_sample("sim_queue_depth", &[], t, depth as f64);
    }

    // Congestion backlog at each service start on links that model it.
    for rec in &result.records {
        let spec = &result.resources[rec.resource.0].spec;
        if spec.congestion.is_some() {
            registry.record_sample(
                "sim_congestion_backlog_seconds",
                &[("link", &spec.kind.to_string())],
                rec.start.as_nanos(),
                (rec.start - rec.ready).as_secs_f64(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, Task};
    use crate::resource::{CongestionSpec, ResourceSpec};

    fn run_with_queueing() -> RunResult {
        let mut e = Engine::new();
        let g = e.add_resource(ResourceSpec::new("gpu", ResourceKind::GpuSm, 1e9, 0));
        let nw = e.add_resource(
            ResourceSpec::new("net", ResourceKind::Network, 1e9, 0).with_congestion(
                CongestionSpec {
                    alpha: 0.0,
                    tau: SimDuration::from_millis(1),
                },
            ),
        );
        // Two independent network tasks (second queues) feeding one compute.
        let a = e
            .add_task(Task::new(nw, 1e6, TaskCategory::Communication))
            .unwrap();
        let b = e
            .add_task(Task::new(nw, 1e6, TaskCategory::Communication))
            .unwrap();
        e.add_task(Task::new(g, 1e6, TaskCategory::Computation).after([a, b]))
            .unwrap();
        e.run().unwrap()
    }

    #[test]
    fn exports_counters_histograms_and_series() {
        let result = run_with_queueing();
        let registry = MetricsRegistry::new();
        export_metrics(&result, &registry, SimDuration::from_micros(100));

        assert_eq!(
            registry.counter_value("sim_tasks_total", &[("category", "communication")]),
            2
        );
        assert_eq!(
            registry.counter_value("sim_tasks_total", &[("category", "computation")]),
            1
        );
        assert_eq!(
            registry.gauge_value("sim_makespan_seconds", &[]),
            Some(result.makespan.as_secs_f64())
        );

        let snap = registry.snapshot();
        let sm: Vec<_> = snap
            .series
            .iter()
            .filter(|((name, _), _)| name == "sim_sm_busy")
            .collect();
        assert_eq!(sm.len(), 1);
        // GPU is busy only in the last 1 ms of the 3 ms run.
        let samples = &sm[0].1.samples;
        assert_eq!(samples.len(), 30);
        assert!(samples.iter().rev().take(10).all(|&(_, v)| v > 0.99));

        // The queued task contributes a nonzero queue-depth sample.
        let depth = snap
            .series
            .iter()
            .find(|((name, _), _)| name == "sim_queue_depth")
            .expect("queue depth series");
        assert!(depth.1.samples.iter().any(|&(_, v)| v >= 1.0));

        // Congested network resource reports backlog at each start.
        let backlog = snap
            .series
            .iter()
            .find(|((name, _), _)| name == "sim_congestion_backlog_seconds")
            .expect("backlog series");
        assert_eq!(backlog.1.samples.len(), 2);
        assert!(backlog.1.samples.iter().any(|&(_, v)| v > 0.0));
    }

    #[test]
    fn per_resource_busy_lanes_skip_idle_resources() {
        let mut e = Engine::new();
        let g0 = e.add_resource(ResourceSpec::new("gpu0", ResourceKind::GpuSm, 1e9, 0));
        let _g1 = e.add_resource(ResourceSpec::new("gpu1", ResourceKind::GpuSm, 1e9, 0));
        e.add_task(Task::new(g0, 1e6, TaskCategory::Computation))
            .unwrap();
        let result = e.run().unwrap();
        let registry = MetricsRegistry::new();
        export_metrics(&result, &registry, SimDuration::from_micros(100));

        let snap = registry.snapshot();
        let lanes: Vec<_> = snap
            .series
            .iter()
            .filter(|((name, _), _)| name == "sim_resource_busy")
            .collect();
        // Only the busy gpu0 gets a lane; idle gpu1 is suppressed.
        assert_eq!(lanes.len(), 1);
        let (key, series) = lanes[0];
        assert!(key.1.iter().any(|(k, v)| k == "resource" && v == "gpu0"));
        assert!(key.1.iter().any(|(k, v)| k == "kind" && v == "gpu-sm"));
        assert!(series.samples.iter().all(|&(_, v)| (v - 1.0).abs() < 1e-9));
    }

    #[test]
    fn empty_run_exports_without_timeline() {
        let result = Engine::new().run().unwrap();
        let registry = MetricsRegistry::new();
        export_metrics(&result, &registry, SimDuration::from_micros(100));
        assert_eq!(registry.gauge_value("sim_makespan_seconds", &[]), Some(0.0));
        let snap = registry.snapshot();
        assert!(snap.series.is_empty());
        assert!(snap.counters.is_empty());
    }
}
