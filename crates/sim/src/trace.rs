//! Chrome-trace export of simulation runs.
//!
//! Serializes a [`RunResult`] into the Trace Event Format understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one lane per
//! resource, one complete event per task. Invaluable for eyeballing why a
//! schedule serializes — the pulse-like baseline patterns of Fig. 4/11 are
//! immediately visible.

use crate::engine::RunResult;
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the run as a Chrome Trace Event Format JSON string.
///
/// Resources become "threads" (tid = resource index, pinned in that order by
/// `thread_sort_index` metadata), tasks become complete (`"ph":"X"`) events
/// with microsecond timestamps; the task's category and work volume ride
/// along as arguments. Control dependencies ([`crate::Binding::Dependency`]) are
/// exported as flow arrows (`"ph":"s"` at the producer's completion,
/// `"ph":"f"` binding to the consumer's enclosing slice), so Perfetto draws
/// the task graph over the lanes.
pub fn to_chrome_trace(result: &RunResult) -> String {
    let mut out = String::with_capacity(result.records.len() * 160 + 1024);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    // Thread name + sort-index metadata per resource, keeping lanes in
    // resource-declaration order (machines group together) in the viewer.
    for (i, r) in result.resources.iter().enumerate() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            i,
            escape(&r.spec.name)
        );
        let _ = write!(
            out,
            ",{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":{i},\"args\":{{\"sort_index\":{i}}}}}"
        );
    }
    for rec in &result.records {
        let dur_us = (rec.end.as_nanos() - rec.start.as_nanos()) as f64 / 1e3;
        let ts_us = rec.start.as_nanos() as f64 / 1e3;
        let _ = write!(
            out,
            ",{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"work\":{},\"task\":{}}}}}",
            rec.category,
            rec.category,
            rec.resource.0,
            ts_us,
            dur_us,
            rec.work,
            rec.task.0
        );
        // One flow arrow per control dependency the scheduler actually
        // waited on, from producer end to consumer start. Resource bindings
        // (queueing) are omitted: they are visible as lane occupancy already.
        if let crate::engine::Binding::Dependency(producer) = rec.binding {
            let prod = &result.records[producer.0];
            let prod_end_us = prod.end.as_nanos() as f64 / 1e3;
            let _ = write!(
                out,
                ",{{\"name\":\"dep\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{},\"pid\":1,\"tid\":{},\"ts\":{:.3}}}",
                rec.task.0,
                prod.resource.0,
                prod_end_us
            );
            let _ = write!(
                out,
                ",{{\"name\":\"dep\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\"pid\":1,\"tid\":{},\"ts\":{:.3}}}",
                rec.task.0,
                rec.resource.0,
                ts_us
            );
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, Task, TaskCategory};
    use crate::resource::{ResourceKind, ResourceSpec};

    fn small_run() -> RunResult {
        let mut e = Engine::new();
        let g = e.add_resource(ResourceSpec::new("gpu\"0\"", ResourceKind::GpuSm, 1e9, 0));
        let n = e.add_resource(ResourceSpec::new("nic", ResourceKind::Network, 1e9, 0));
        let a = e
            .add_task(Task::new(n, 1e6, TaskCategory::Communication))
            .unwrap();
        e.add_task(Task::new(g, 2e6, TaskCategory::Computation).after([a]))
            .unwrap();
        e.run().unwrap()
    }

    #[test]
    fn trace_is_valid_jsonish_and_complete() {
        let r = small_run();
        let json = to_chrome_trace(&r);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // 2 thread_name + 2 thread_sort_index metadata, 2 task events.
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 4);
        assert_eq!(json.matches("\"thread_sort_index\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"communication\""));
        assert!(json.contains("gpu\\\"0\\\""), "names are escaped");
        // Balanced braces (cheap structural sanity).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn dependencies_become_flow_pairs() {
        let r = small_run();
        let json = to_chrome_trace(&r);
        // One control dependency (comm -> compute) -> one s/f pair sharing
        // the consumer's task id, source stamped at the producer's end.
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 1);
        let consumer = r.records[1].task.0;
        assert!(json.contains(&format!(
            "\"ph\":\"s\",\"id\":{consumer},\"pid\":1,\"tid\":1,\"ts\":1000.000"
        )));
        assert!(json.contains(&format!("\"ph\":\"f\",\"bp\":\"e\",\"id\":{consumer}")));
    }

    #[test]
    fn timestamps_are_microseconds() {
        let r = small_run();
        let json = to_chrome_trace(&r);
        // The compute task runs [1ms, 3ms] -> ts 1000us dur 2000us.
        assert!(json.contains("\"ts\":1000.000,\"dur\":2000.000"), "{json}");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
