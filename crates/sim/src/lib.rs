//! # picasso-sim
//!
//! A deterministic discrete-event simulator of heterogeneous GPU-centric
//! training clusters — the hardware substrate underneath the PICASSO
//! reproduction.
//!
//! The paper evaluates on clusters of NVIDIA V100 machines (Table I). This
//! crate substitutes those testbeds with an event-driven model in which every
//! hardware component (GPU SMs, HBM, DRAM, PCIe, NVLink, NIC, host CPU) is a
//! rate server with per-operation launch overhead. All of PICASSO's headline
//! effects are *scheduling* effects — launch-overhead amortization (packing),
//! cross-resource overlap (interleaving), and service-rate selection
//! (caching) — so they emerge from the engine rather than being hard-coded.
//!
//! ## Quick example
//!
//! ```
//! use picasso_sim::{Engine, Task, TaskCategory, ResourceKind, ResourceSpec};
//!
//! let mut engine = Engine::new();
//! let net = engine.add_resource(ResourceSpec::new("nic", ResourceKind::Network, 1e9, 0));
//! let gpu = engine.add_resource(ResourceSpec::new("gpu", ResourceKind::GpuSm, 1e12, 0));
//! let shuffle = engine
//!     .add_task(Task::new(net, 4e6, TaskCategory::Communication))
//!     .unwrap();
//! let matmul = engine
//!     .add_task(Task::new(gpu, 1e9, TaskCategory::Computation).after([shuffle]))
//!     .unwrap();
//! let result = engine.run().unwrap();
//! assert!(result.record(matmul).start >= result.record(shuffle).end);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod fault;
pub mod intern;
pub mod intervals;
pub mod metrics;
pub mod observe;
pub mod resource;
pub mod time;
pub mod topology;
pub mod trace;
pub mod traffic;

pub use engine::{Binding, Engine, EngineError, RunResult, Task, TaskCategory, TaskId, TaskRecord};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use intern::{NameId, NameInterner};
pub use intervals::IntervalSet;
pub use metrics::{
    BandwidthTimeline, Breakdown, ResourceTimeline, RunAnalysis, UtilizationTimeline,
};
pub use observe::export_metrics;
pub use resource::{CongestionSpec, ResourceId, ResourceKind, ResourceSpec};
pub use time::{SimDuration, SimTime};
pub use topology::{Cluster, ExecutorHandles, GpuSpec, MachineSpec, OverheadSpec, ServerHandles};
pub use trace::to_chrome_trace;
pub use traffic::{ArrivalProcess, Request, TrafficGen, TrafficPlan};
