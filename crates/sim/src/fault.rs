//! Deterministic fault plans.
//!
//! Production WDL clusters lose workers, saturate NICs, and grow stragglers;
//! a reproduction has to inject those failures *deterministically* so a
//! crash-and-recover run can be compared bit for bit against an
//! uninterrupted one. A [`FaultPlan`] is a seeded schedule of
//! [`FaultEvent`]s pinned to iteration numbers — nothing samples at
//! runtime; the seed only perturbs detection latency downstream.
//!
//! Plans round-trip through a compact text grammar (the `--fault-plan`
//! flag):
//!
//! ```text
//! seed=7;crash@3:w0;nic@5:p25:i2;slow@7:w1:p50:i3
//! ```
//!
//! * `seed=N` — optional, defaults to 0; feeds detection jitter.
//! * `crash@K[:wW]` — worker `W` (default 0) crashes at iteration `K`.
//! * `nic@K:pP[:iN]` — NIC bandwidth drops to `P`% for `N` iterations
//!   (default 1) starting at `K`; `p0` is a full outage.
//! * `slow@K:wW:pP[:iN]` — worker `W` computes at `P`% of nominal speed
//!   for `N` iterations (default 1); `p50` is a 2x straggler.

use std::fmt;

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A worker process dies and must be replaced; training cannot continue
    /// past the iteration without a restore.
    WorkerCrash {
        /// Index of the crashing worker.
        worker: usize,
    },
    /// NIC bandwidth degrades to `factor_pct`% of nominal for `iters`
    /// iterations. `factor_pct == 0` models a partitioned network: every
    /// collective fails until the outage ends.
    NicDegrade {
        /// Remaining bandwidth, percent of nominal.
        factor_pct: u32,
        /// Affected iterations.
        iters: u32,
    },
    /// One worker computes at `factor_pct`% of nominal speed for `iters`
    /// iterations (a straggler slows every synchronous step it joins).
    Straggler {
        /// Index of the slow worker.
        worker: usize,
        /// Compute speed, percent of nominal.
        factor_pct: u32,
        /// Affected iterations.
        iters: u32,
    },
}

/// A fault pinned to an iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Iteration (0-based) at which the fault fires.
    pub at_iter: u64,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// A seeded, deterministic schedule of faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed perturbing *detection* (heartbeat jitter), never the schedule.
    pub seed: u64,
    /// Scheduled faults, in parse order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether the plan schedules anything.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The largest iteration any event fires at, if any.
    pub fn last_iter(&self) -> Option<u64> {
        self.events.iter().map(|e| e.at_iter).max()
    }

    /// Events firing exactly at iteration `iter`.
    pub fn events_at(&self, iter: u64) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.at_iter == iter)
    }

    /// Parses the `--fault-plan` grammar (see the module docs).
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in text.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if let Some(seed) = part.strip_prefix("seed=") {
                plan.seed = seed
                    .parse()
                    .map_err(|_| format!("bad seed '{seed}' in fault plan"))?;
                continue;
            }
            let (verb, rest) = part
                .split_once('@')
                .ok_or_else(|| format!("bad fault event '{part}' (expected verb@iter...)"))?;
            let mut fields = rest.split(':');
            let at_iter: u64 = fields
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("bad iteration in fault event '{part}'"))?;
            let mut worker: Option<usize> = None;
            let mut pct: Option<u32> = None;
            let mut iters: Option<u32> = None;
            for field in fields {
                if let Some(w) = field.strip_prefix('w') {
                    worker = Some(
                        w.parse()
                            .map_err(|_| format!("bad worker field '{field}' in '{part}'"))?,
                    );
                } else if let Some(p) = field.strip_prefix('p') {
                    pct = Some(
                        p.parse()
                            .map_err(|_| format!("bad percent field '{field}' in '{part}'"))?,
                    );
                } else if let Some(i) = field.strip_prefix('i') {
                    iters = Some(
                        i.parse()
                            .map_err(|_| format!("bad duration field '{field}' in '{part}'"))?,
                    );
                } else {
                    return Err(format!("unknown field '{field}' in fault event '{part}'"));
                }
            }
            let kind = match verb {
                "crash" => FaultKind::WorkerCrash {
                    worker: worker.unwrap_or(0),
                },
                "nic" => FaultKind::NicDegrade {
                    factor_pct: pct
                        .ok_or_else(|| format!("nic event '{part}' needs a pP field"))?,
                    iters: iters.unwrap_or(1).max(1),
                },
                "slow" => {
                    let factor_pct =
                        pct.ok_or_else(|| format!("slow event '{part}' needs a pP field"))?;
                    if factor_pct == 0 {
                        return Err(format!("slow event '{part}': p0 would never finish"));
                    }
                    FaultKind::Straggler {
                        worker: worker
                            .ok_or_else(|| format!("slow event '{part}' needs a wW field"))?,
                        factor_pct,
                        iters: iters.unwrap_or(1).max(1),
                    }
                }
                other => return Err(format!("unknown fault verb '{other}' in '{part}'")),
            };
            plan.events.push(FaultEvent { at_iter, kind });
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for e in &self.events {
            match e.kind {
                FaultKind::WorkerCrash { worker } => {
                    write!(f, ";crash@{}:w{worker}", e.at_iter)?;
                }
                FaultKind::NicDegrade { factor_pct, iters } => {
                    write!(f, ";nic@{}:p{factor_pct}:i{iters}", e.at_iter)?;
                }
                FaultKind::Straggler {
                    worker,
                    factor_pct,
                    iters,
                } => {
                    write!(f, ";slow@{}:w{worker}:p{factor_pct}:i{iters}", e.at_iter)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips() {
        let text = "seed=7;crash@3:w0;nic@5:p25:i2;slow@7:w1:p50:i3";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.events.len(), 3);
        assert_eq!(plan.to_string(), text);
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn defaults_fill_optional_fields() {
        let plan = FaultPlan::parse("crash@2;nic@4:p0").unwrap();
        assert_eq!(plan.seed, 0);
        assert_eq!(plan.events[0].kind, FaultKind::WorkerCrash { worker: 0 });
        assert_eq!(
            plan.events[1].kind,
            FaultKind::NicDegrade {
                factor_pct: 0,
                iters: 1
            }
        );
    }

    #[test]
    fn events_at_filters_by_iteration() {
        let plan = FaultPlan::parse("crash@3;nic@3:p50;slow@9:w2:p40").unwrap();
        assert_eq!(plan.events_at(3).count(), 2);
        assert_eq!(plan.events_at(9).count(), 1);
        assert_eq!(plan.events_at(4).count(), 0);
        assert_eq!(plan.last_iter(), Some(9));
        assert!(FaultPlan::none().last_iter().is_none());
    }

    #[test]
    fn malformed_plans_are_rejected_with_reasons() {
        for (text, needle) in [
            ("boom@3", "unknown fault verb"),
            ("crash3", "expected verb@iter"),
            ("crash@x", "bad iteration"),
            ("nic@3", "needs a pP field"),
            ("slow@3:p50", "needs a wW field"),
            ("slow@3:w0:p0", "never finish"),
            ("crash@3:z9", "unknown field"),
            ("seed=abc", "bad seed"),
        ] {
            let err = FaultPlan::parse(text).unwrap_err();
            assert!(err.contains(needle), "'{text}' -> '{err}'");
        }
    }

    #[test]
    fn empty_and_whitespace_plans_parse_to_none() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" ; ;").unwrap().is_empty());
    }
}
