//! Deterministic open-loop traffic generation for the serving model.
//!
//! A production recommender replica sees an *open-loop* request stream: users
//! keep arriving whether or not the server keeps up, so queueing delay and
//! shed rate are consequences, never inputs. A [`TrafficPlan`] describes such
//! a stream — a seeded arrival process (Poisson, or a two-state MMPP for
//! bursty traffic) over Zipf-distributed user IDs drawn from a vocabulary of
//! millions — and [`TrafficGen`] replays it deterministically: the same plan
//! always produces the same arrival sequence, bit for bit, which is what lets
//! `repro --serve` pin latency digests the way the fault plans pin recovery.
//!
//! Plans round-trip through a compact text grammar (the `--serve-plan` flag),
//! mirroring [`crate::fault::FaultPlan`]:
//!
//! ```text
//! seed=7;poisson@50000;users=3000000;zipf=105;ids=8;reqs=60000
//! seed=7;mmpp@20000:b160000:d40;users=3000000;zipf=105;ids=8;reqs=60000
//! ```
//!
//! * `seed=N` — optional, defaults to 0; seeds both arrivals and IDs.
//! * `poisson@R` — Poisson arrivals at `R` requests/second.
//! * `mmpp@R:bB:dD` — two-state Markov-modulated Poisson process: a calm
//!   state at `R` req/s and a burst state at `B` req/s, with exponentially
//!   distributed dwell times of mean `D` milliseconds in either state.
//! * `users=N` — user-ID vocabulary (rank 0 is the hottest user).
//! * `zipf=Z` — Zipf exponent in centi-units (`zipf=105` ⇒ s = 1.05);
//!   `zipf=0` is uniform.
//! * `ids=K` — embedding IDs looked up per request (the user ID plus K−1
//!   feature IDs drawn from the same skewed distribution).
//! * `reqs=N` — total requests the stream generates.
//!
//! Every field is an integer, so `parse` ∘ `Display` is exact.

use std::fmt;

/// The arrival process of a [`TrafficPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant rate (requests/second).
    Poisson {
        /// Arrival rate, requests per second.
        rate_hz: u64,
    },
    /// A two-state Markov-modulated Poisson process: bursty traffic that
    /// alternates between a calm and a burst rate, dwelling in each state
    /// for an exponentially distributed time.
    Mmpp {
        /// Calm-state arrival rate, requests per second.
        base_hz: u64,
        /// Burst-state arrival rate, requests per second.
        burst_hz: u64,
        /// Mean dwell time in either state, milliseconds.
        dwell_ms: u64,
    },
}

/// A seeded, deterministic open-loop request stream description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficPlan {
    /// Seed for both the arrival clock and the ID draws.
    pub seed: u64,
    /// Arrival process.
    pub process: ArrivalProcess,
    /// User-ID vocabulary size (rank 0 = hottest).
    pub users: u64,
    /// Zipf exponent in centi-units (`105` ⇒ s = 1.05; `0` = uniform).
    pub zipf_centi: u32,
    /// Embedding IDs looked up per request.
    pub ids_per_request: u32,
    /// Total requests in the stream.
    pub requests: u64,
}

impl Default for TrafficPlan {
    /// A moderate seeded Poisson stream over three million users — the
    /// default `repro --serve` scenario shape.
    fn default() -> Self {
        TrafficPlan {
            seed: 0,
            process: ArrivalProcess::Poisson { rate_hz: 20_000 },
            users: 3_000_000,
            zipf_centi: 105,
            ids_per_request: 8,
            requests: 20_000,
        }
    }
}

impl TrafficPlan {
    /// The Zipf exponent as a float.
    pub fn zipf_s(&self) -> f64 {
        self.zipf_centi as f64 / 100.0
    }

    /// Builds the deterministic generator replaying this plan.
    pub fn generator(&self) -> TrafficGen {
        TrafficGen::new(self.clone())
    }

    /// Parses the `--serve-plan` grammar (see the module docs).
    pub fn parse(text: &str) -> Result<TrafficPlan, String> {
        let mut plan = TrafficPlan::default();
        let mut process: Option<ArrivalProcess> = None;
        for part in text.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            if let Some((key, value)) = part.split_once('=') {
                let n: u64 = value
                    .parse()
                    .map_err(|_| format!("bad value '{value}' for '{key}' in traffic plan"))?;
                match key {
                    "seed" => plan.seed = n,
                    "users" => plan.users = n,
                    "zipf" => plan.zipf_centi = n as u32,
                    "ids" => plan.ids_per_request = n as u32,
                    "reqs" => plan.requests = n,
                    other => return Err(format!("unknown field '{other}' in traffic plan")),
                }
                continue;
            }
            let (verb, rest) = part.split_once('@').ok_or_else(|| {
                format!("bad traffic term '{part}' (expected key=value or verb@rate)")
            })?;
            let mut fields = rest.split(':');
            let rate: u64 = fields
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("bad rate in traffic term '{part}'"))?;
            let mut burst: Option<u64> = None;
            let mut dwell: Option<u64> = None;
            for field in fields {
                if let Some(b) = field.strip_prefix('b') {
                    burst = Some(
                        b.parse()
                            .map_err(|_| format!("bad burst field '{field}' in '{part}'"))?,
                    );
                } else if let Some(d) = field.strip_prefix('d') {
                    dwell = Some(
                        d.parse()
                            .map_err(|_| format!("bad dwell field '{field}' in '{part}'"))?,
                    );
                } else {
                    return Err(format!("unknown field '{field}' in traffic term '{part}'"));
                }
            }
            process = Some(match verb {
                "poisson" => ArrivalProcess::Poisson { rate_hz: rate },
                "mmpp" => ArrivalProcess::Mmpp {
                    base_hz: rate,
                    burst_hz: burst
                        .ok_or_else(|| format!("mmpp term '{part}' needs a bB burst rate"))?,
                    dwell_ms: dwell.unwrap_or(50).max(1),
                },
                other => return Err(format!("unknown arrival process '{other}' in '{part}'")),
            });
        }
        if let Some(p) = process {
            plan.process = p;
        }
        if plan.users == 0 {
            return Err("traffic plan needs users >= 1".into());
        }
        if plan.ids_per_request == 0 {
            return Err("traffic plan needs ids >= 1".into());
        }
        match plan.process {
            ArrivalProcess::Poisson { rate_hz: 0 } => {
                return Err("poisson rate must be positive".into())
            }
            ArrivalProcess::Mmpp {
                base_hz, burst_hz, ..
            } if base_hz == 0 || burst_hz == 0 => return Err("mmpp rates must be positive".into()),
            _ => {}
        }
        Ok(plan)
    }
}

impl fmt::Display for TrafficPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        match self.process {
            ArrivalProcess::Poisson { rate_hz } => write!(f, ";poisson@{rate_hz}")?,
            ArrivalProcess::Mmpp {
                base_hz,
                burst_hz,
                dwell_ms,
            } => write!(f, ";mmpp@{base_hz}:b{burst_hz}:d{dwell_ms}")?,
        }
        write!(
            f,
            ";users={};zipf={};ids={};reqs={}",
            self.users, self.zipf_centi, self.ids_per_request, self.requests
        )
    }
}

impl std::str::FromStr for TrafficPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<TrafficPlan, String> {
        TrafficPlan::parse(s)
    }
}

/// One generated request: an arrival instant and the embedding IDs it needs
/// gathered (`ids[0]` is the user ID; all IDs share the plan's skew).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Arrival time, nanoseconds from stream start.
    pub at_ns: u64,
    /// Embedding IDs this request looks up (`ids[0]` = user ID, rank
    /// 0-based, hottest first).
    pub ids: Vec<u64>,
}

/// Deterministic splitmix64 stream (the same generator the flight recorder
/// samples with; duplicated here to keep `picasso-sim` dependency-free).
#[derive(Debug, Clone)]
struct SplitMix(u64);

impl SplitMix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `(0, 1]` — safe as a `ln` argument.
    fn open_unit(&mut self) -> f64 {
        1.0 - (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Zipf sampler over ranks `0..n` by Hörmann's rejection-inversion —
/// O(1) memory and time per draw, so vocabularies of millions cost nothing
/// to set up (an exact-CDF table at this scale would be tens of megabytes;
/// cf. `picasso_data::IdSampler`, which serves the *training* side where
/// vocabularies are clamped).
#[derive(Debug, Clone)]
struct ZipfSampler {
    n: f64,
    s: f64,
    h_x1: f64,
    h_n: f64,
    reject_s: f64,
}

impl ZipfSampler {
    fn new(n: u64, s: f64) -> ZipfSampler {
        assert!(n >= 1, "zipf vocabulary must be nonempty");
        assert!(s.is_finite() && s >= 0.0, "zipf exponent must be >= 0");
        let nf = n as f64;
        let h_x1 = Self::h_integral(1.5, s) - 1.0;
        let h_n = Self::h_integral(nf + 0.5, s);
        let reject_s =
            2.0 - Self::h_integral_inverse(Self::h_integral(2.5, s) - Self::h(2.0, s), s);
        ZipfSampler {
            n: nf,
            s,
            h_x1,
            h_n,
            reject_s,
        }
    }

    /// ∫ x^-s dx with the s = 1 limit handled.
    fn h_integral(x: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-9 {
            x.ln()
        } else {
            (x.powf(1.0 - s) - 1.0) / (1.0 - s)
        }
    }

    fn h(x: f64, s: f64) -> f64 {
        x.powf(-s)
    }

    fn h_integral_inverse(x: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-9 {
            x.exp()
        } else {
            (1.0 + (1.0 - s) * x).powf(1.0 / (1.0 - s))
        }
    }

    /// Draws one rank in `0..n` (0 = hottest).
    fn sample(&self, rng: &mut SplitMix) -> u64 {
        if self.s == 0.0 {
            // Uniform: no rejection loop needed.
            return (rng.next_u64() % self.n as u64).min(self.n as u64 - 1);
        }
        loop {
            let u = self.h_n + rng.open_unit() * (self.h_x1 - self.h_n);
            let x = Self::h_integral_inverse(u, self.s);
            let k = x.clamp(1.0, self.n).round();
            if k - x <= self.reject_s || u >= Self::h_integral(k + 0.5, self.s) - Self::h(k, self.s)
            {
                return (k as u64 - 1).min(self.n as u64 - 1);
            }
        }
    }
}

/// The deterministic replay of one [`TrafficPlan`].
#[derive(Debug, Clone)]
pub struct TrafficGen {
    plan: TrafficPlan,
    zipf: ZipfSampler,
    arrivals: SplitMix,
    ids: SplitMix,
    now_ns: u64,
    emitted: u64,
    /// MMPP state: true while in the burst state.
    bursting: bool,
    /// MMPP: virtual time at which the current state's dwell ends.
    state_until_ns: u64,
}

impl TrafficGen {
    /// Builds the generator (position 0, calm state).
    pub fn new(plan: TrafficPlan) -> TrafficGen {
        let zipf = ZipfSampler::new(plan.users, plan.zipf_s());
        // Two decorrelated streams from one seed: arrival clock and ID draws
        // advance independently, so adding an ID per request never shifts
        // the arrival sequence.
        let mut arrivals = SplitMix(plan.seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        let ids = SplitMix(arrivals.next_u64());
        TrafficGen {
            zipf,
            arrivals,
            ids,
            now_ns: 0,
            emitted: 0,
            bursting: false,
            state_until_ns: 0,
            plan,
        }
    }

    /// The plan being replayed.
    pub fn plan(&self) -> &TrafficPlan {
        &self.plan
    }

    /// Requests emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    fn exp_ns(&mut self, rate_hz: u64) -> u64 {
        let u = self.arrivals.open_unit();
        let secs = -u.ln() / rate_hz as f64;
        ((secs * 1e9).round() as u64).max(1)
    }

    /// Exponential dwell with mean `dwell_ms` milliseconds.
    fn dwell_ns(&mut self, dwell_ms: u64) -> u64 {
        let u = self.arrivals.open_unit();
        ((-u.ln() * dwell_ms as f64 * 1e6).round() as u64).max(1)
    }

    fn advance_clock(&mut self) {
        match self.plan.process {
            ArrivalProcess::Poisson { rate_hz } => {
                self.now_ns += self.exp_ns(rate_hz);
            }
            ArrivalProcess::Mmpp {
                base_hz,
                burst_hz,
                dwell_ms,
            } => {
                // Exponential dwell in each state; the memoryless property
                // makes "redraw the inter-arrival from the new rate at a
                // state boundary" exact, not an approximation.
                if self.state_until_ns == 0 {
                    // First call: start calm with a drawn dwell.
                    let dwell = self.dwell_ns(dwell_ms);
                    self.state_until_ns = self.now_ns + dwell;
                }
                loop {
                    let rate = if self.bursting { burst_hz } else { base_hz };
                    let dt = self.exp_ns(rate);
                    if self.now_ns + dt <= self.state_until_ns {
                        self.now_ns += dt;
                        return;
                    }
                    // The proposed arrival lands past the state switch:
                    // fast-forward to the boundary, toggle, and redraw.
                    self.now_ns = self.state_until_ns;
                    self.bursting = !self.bursting;
                    let dwell = self.dwell_ns(dwell_ms);
                    self.state_until_ns = self.now_ns + dwell;
                }
            }
        }
    }
}

impl Iterator for TrafficGen {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        if self.emitted >= self.plan.requests {
            return None;
        }
        self.advance_clock();
        let mut ids = Vec::with_capacity(self.plan.ids_per_request as usize);
        for _ in 0..self.plan.ids_per_request {
            ids.push(self.zipf.sample(&mut self.ids));
        }
        self.emitted += 1;
        Some(Request {
            at_ns: self.now_ns,
            ids,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips_poisson_and_mmpp() {
        for text in [
            "seed=7;poisson@50000;users=3000000;zipf=105;ids=8;reqs=60000",
            "seed=3;mmpp@20000:b160000:d40;users=2000000;zipf=90;ids=4;reqs=1000",
        ] {
            let plan = TrafficPlan::parse(text).unwrap();
            assert_eq!(plan.to_string(), text);
            assert_eq!(TrafficPlan::parse(&plan.to_string()).unwrap(), plan);
        }
    }

    #[test]
    fn defaults_fill_missing_fields() {
        let plan = TrafficPlan::parse("poisson@1000").unwrap();
        assert_eq!(plan.seed, 0);
        assert_eq!(plan.users, TrafficPlan::default().users);
        let plan = TrafficPlan::parse("").unwrap();
        assert_eq!(plan, TrafficPlan::default());
    }

    #[test]
    fn malformed_plans_are_rejected_with_reasons() {
        for (text, needle) in [
            ("boom@3", "unknown arrival process"),
            ("poisson3000", "bad traffic term"),
            ("poisson@x", "bad rate"),
            ("mmpp@100", "needs a bB burst rate"),
            ("mmpp@100:z3", "unknown field"),
            ("seed=abc", "bad value"),
            ("warp=9", "unknown field"),
            ("poisson@0", "must be positive"),
            ("users=0", "users >= 1"),
            ("ids=0", "ids >= 1"),
        ] {
            let err = TrafficPlan::parse(text).unwrap_err();
            assert!(err.contains(needle), "'{text}' -> '{err}'");
        }
    }

    #[test]
    fn same_seed_replays_identically() {
        let plan = TrafficPlan::parse("seed=11;poisson@50000;reqs=500").unwrap();
        let a: Vec<Request> = plan.generator().collect();
        let b: Vec<Request> = plan.generator().collect();
        assert_eq!(a, b, "same plan must replay bit-identically");
        assert_eq!(a.len(), 500);
        let mut c = TrafficPlan::parse("seed=12;poisson@50000;reqs=500")
            .unwrap()
            .generator();
        assert_ne!(a[0], c.next().unwrap(), "different seed, different stream");
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_near_rate() {
        let plan = TrafficPlan::parse("seed=5;poisson@100000;reqs=20000").unwrap();
        let arrivals: Vec<u64> = plan.generator().map(|r| r.at_ns).collect();
        assert!(arrivals.windows(2).all(|w| w[0] < w[1]));
        // 20k arrivals at 100k/s should span roughly 0.2s (±25%).
        let span_s = *arrivals.last().unwrap() as f64 / 1e9;
        assert!((0.15..0.25).contains(&span_s), "span {span_s}");
    }

    #[test]
    fn zipf_head_dominates_and_ids_stay_in_range() {
        let plan =
            TrafficPlan::parse("seed=2;poisson@10000;users=1000000;zipf=110;reqs=20000").unwrap();
        let mut head = 0u64;
        let mut total = 0u64;
        for r in plan.generator() {
            assert_eq!(r.ids.len(), 8);
            for &id in &r.ids {
                assert!(id < 1_000_000);
                total += 1;
                if id < 1000 {
                    head += 1;
                }
            }
        }
        // Under s=1.1 the hottest 0.1% of a 1M vocabulary draws the large
        // majority of lookups — the skew HybridHash feeds on (Fig. 3).
        let frac = head as f64 / total as f64;
        assert!(frac > 0.5, "head coverage {frac}");
    }

    #[test]
    fn uniform_traffic_spreads_ids() {
        let plan = TrafficPlan::parse("seed=2;poisson@10000;users=1000000;zipf=0;ids=1;reqs=5000")
            .unwrap();
        let head = plan.generator().filter(|r| r.ids[0] < 1000).count();
        assert!(head < 50, "uniform head draws {head}");
    }

    #[test]
    fn mmpp_bursts_raise_local_rates() {
        let plan = TrafficPlan::parse(
            "seed=9;mmpp@5000:b200000:d20;users=100000;zipf=100;ids=1;reqs=30000",
        )
        .unwrap();
        let arrivals: Vec<u64> = plan.generator().map(|r| r.at_ns).collect();
        assert!(arrivals.windows(2).all(|w| w[0] < w[1]));
        // Count arrivals per 10ms window; a bursty process must show both
        // calm windows (few arrivals) and burst windows (hundreds).
        let mut windows = std::collections::BTreeMap::new();
        for &t in &arrivals {
            *windows.entry(t / 10_000_000).or_insert(0u64) += 1;
        }
        let max = windows.values().copied().max().unwrap();
        let min = windows.values().copied().min().unwrap();
        assert!(
            max > min.saturating_mul(4).max(100),
            "burstiness missing: min {min} max {max}"
        );
    }
}
