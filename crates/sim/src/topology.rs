//! Cluster topology: machine specifications and resource construction.
//!
//! Mirrors Table I of the paper. A *machine* (cluster node) hosts one or more
//! GPUs; each GPU plus its share of host resources forms one executor slot
//! (a PICASSO-Executor maps onto one machine in the paper, but contention is
//! per device, so we expose per-GPU handles and share NIC/DRAM/NVLink per
//! machine). Parameter-server strategies additionally use CPU-only server
//! nodes.

use crate::engine::Engine;
use crate::resource::{CongestionSpec, ResourceId, ResourceKind, ResourceSpec};
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Per-operation fixed overheads for each resource class.
///
/// These model CUDA kernel-launch latency, DMA setup, and RPC/message setup —
/// the costs that make fragmentary operations expensive and that packing
/// amortizes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadSpec {
    /// GPU kernel launch (issue to a CUDA stream + driver overhead).
    pub gpu_kernel: SimDuration,
    /// PCIe / NVLink DMA transfer setup.
    pub dma_setup: SimDuration,
    /// Network message setup (higher for TCP, lower for RDMA).
    pub net_msg: SimDuration,
    /// Host-side memory operation setup.
    pub dram_op: SimDuration,
    /// Host CPU task dispatch.
    pub cpu_op: SimDuration,
    /// Framework-level operation dispatch: the time the training runtime's
    /// executor threads spend scheduling ONE graph operation (TensorFlow
    /// executor + kernel launch path). With up to hundreds of thousands of
    /// operations per iteration (Table V) this serialized cost dominates
    /// unpacked WDL graphs — it is precisely what D-/K-packing amortize.
    pub op_dispatch: SimDuration,
}

impl OverheadSpec {
    /// Overheads typical of a TCP-connected commodity node.
    pub fn tcp() -> Self {
        OverheadSpec {
            gpu_kernel: SimDuration::from_micros(10),
            dma_setup: SimDuration::from_micros(8),
            net_msg: SimDuration::from_micros(30),
            dram_op: SimDuration::from_micros(2),
            cpu_op: SimDuration::from_micros(1),
            op_dispatch: SimDuration::from_micros(12),
        }
    }

    /// Overheads with an RDMA-capable NIC.
    pub fn rdma() -> Self {
        OverheadSpec {
            net_msg: SimDuration::from_micros(5),
            ..OverheadSpec::tcp()
        }
    }
}

/// One GPU device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Single-precision throughput, FLOPS.
    pub sm_flops: f64,
    /// Concurrent CUDA streams modeled as parallel channels.
    pub streams: usize,
    /// Device memory (HBM) capacity in bytes.
    pub mem_capacity: u64,
    /// Device memory bandwidth, bytes/s.
    pub mem_bw: f64,
}

impl GpuSpec {
    /// NVIDIA Tesla V100 (32 GB HBM2), per Table I.
    pub fn v100() -> Self {
        GpuSpec {
            sm_flops: 15.7e12,
            streams: 1,
            mem_capacity: 32 * (1 << 30),
            mem_bw: 900e9,
        }
    }
}

impl MachineSpec {
    /// Burst-congestion of the machine's NIC: TCP suffers incast collapse
    /// far more than RDMA. `None` when congestion modeling is disabled.
    pub fn nic_congestion(&self) -> Option<CongestionSpec> {
        if !self.burst_congestion {
            return None;
        }
        Some(if self.rdma {
            CongestionSpec {
                alpha: 0.6,
                tau: SimDuration::from_millis(2),
            }
        } else {
            CongestionSpec {
                alpha: 1.2,
                tau: SimDuration::from_millis(2),
            }
        })
    }

    /// Burst-congestion of a PCIe link under concurrent DMA.
    pub fn pcie_congestion(&self) -> Option<CongestionSpec> {
        if !self.burst_congestion {
            return None;
        }
        Some(CongestionSpec {
            alpha: 0.5,
            tau: SimDuration::from_millis(1),
        })
    }

    /// Disables burst-congestion modeling (design-choice ablation).
    pub fn without_congestion(mut self) -> MachineSpec {
        self.burst_congestion = false;
        self
    }

    /// Zeroes the framework op-dispatch cost (design-choice ablation).
    pub fn without_dispatch_cost(mut self) -> MachineSpec {
        self.overheads.op_dispatch = SimDuration::ZERO;
        self
    }
}

/// One machine (cluster node), per Table I.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Human-readable cluster name.
    pub name: String,
    /// GPUs per node (Gn6e: 8; EFLOPS: 1).
    pub gpus_per_node: usize,
    /// GPU device spec.
    pub gpu: GpuSpec,
    /// Effective host CPU throughput, FLOPS (the paper cites a 30x SP gap
    /// between V100 and a Xeon socket).
    pub cpu_flops: f64,
    /// Host DRAM capacity in bytes.
    pub dram_capacity: u64,
    /// Host DRAM bandwidth, bytes/s.
    pub dram_bw: f64,
    /// PCIe bandwidth per GPU, bytes/s.
    pub pcie_bw: f64,
    /// NVLink fabric bandwidth per machine, bytes/s (None if absent).
    pub nvlink_bw: Option<f64>,
    /// NIC bandwidth per machine, bytes/s.
    pub nic_bw: f64,
    /// Whether the NIC supports RDMA (affects message overhead).
    pub rdma: bool,
    /// Whether interconnects model burst congestion (disable to ablate the
    /// design choice; see DESIGN.md).
    pub burst_congestion: bool,
    /// Per-operation overheads.
    pub overheads: OverheadSpec,
}

impl MachineSpec {
    /// AliCloud Gn6e node: 8x V100-SXM2 with NVLink, 724 GB DDR4, 32 Gbps TCP.
    pub fn gn6e() -> Self {
        MachineSpec {
            name: "gn6e".into(),
            gpus_per_node: 8,
            gpu: GpuSpec::v100(),
            cpu_flops: 0.5e12,
            dram_capacity: 724 * (1 << 30),
            dram_bw: 100e9,
            pcie_bw: 16e9,
            nvlink_bw: Some(300e9),
            nic_bw: 4e9, // 32 Gbps
            rdma: false,
            burst_congestion: true,
            overheads: OverheadSpec::tcp(),
        }
    }

    /// EFLOPS node: 1x V100S-PCIe, 512 GB DDR4, 100 Gbps RDMA.
    pub fn eflops() -> Self {
        MachineSpec {
            name: "eflops".into(),
            gpus_per_node: 1,
            gpu: GpuSpec::v100(),
            cpu_flops: 0.55e12,
            dram_capacity: 512 * (1 << 30),
            dram_bw: 100e9,
            pcie_bw: 16e9,
            nvlink_bw: None,
            nic_bw: 12.5e9, // 100 Gbps
            rdma: true,
            burst_congestion: true,
            overheads: OverheadSpec::rdma(),
        }
    }
}

/// A CPU-only parameter-server node (same host platform, no GPU).
#[derive(Debug, Clone)]
pub struct ServerHandles {
    /// Host CPU resource.
    pub cpu: ResourceId,
    /// Host DRAM bandwidth resource.
    pub dram: ResourceId,
    /// NIC resource (workers pulling/pushing contend here).
    pub nic: ResourceId,
}

/// Resource handles of one executor slot (one GPU worker).
#[derive(Debug, Clone)]
pub struct ExecutorHandles {
    /// Machine index this executor lives on.
    pub node: usize,
    /// GPU streaming multiprocessors.
    pub gpu_sm: ResourceId,
    /// GPU device memory bandwidth.
    pub gpu_mem: ResourceId,
    /// PCIe link of this GPU.
    pub pcie: ResourceId,
    /// Host DRAM bandwidth (shared per machine).
    pub dram: ResourceId,
    /// Host CPU (shared per machine).
    pub cpu: ResourceId,
    /// Machine NIC (shared per machine).
    pub nic: ResourceId,
    /// NVLink fabric (shared per machine), if present.
    pub nvlink: Option<ResourceId>,
    /// The framework's op-dispatch threads for this executor (work units
    /// are seconds; rate 1.0).
    pub launcher: ResourceId,
}

/// A cluster's worth of resources registered in an engine.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Machine spec used for every node.
    pub machine: MachineSpec,
    /// One handle set per executor (machines x gpus_per_node).
    pub executors: Vec<ExecutorHandles>,
    /// Parameter-server nodes (empty unless a PS strategy is in use).
    pub servers: Vec<ServerHandles>,
}

impl Cluster {
    /// Registers `machines` worker machines (each contributing
    /// `machine.gpus_per_node` executors) and `ps_servers` CPU-only server
    /// nodes into `engine`.
    pub fn build(
        machine: MachineSpec,
        machines: usize,
        ps_servers: usize,
        engine: &mut Engine,
    ) -> Cluster {
        assert!(machines > 0, "need at least one worker machine");
        let mut executors = Vec::with_capacity(machines * machine.gpus_per_node);
        for m in 0..machines {
            let dram = engine.add_resource(
                ResourceSpec::new(
                    format!("node{m}/dram"),
                    ResourceKind::DramBw,
                    machine.dram_bw,
                    m,
                )
                .with_launch_overhead(machine.overheads.dram_op),
            );
            let cpu = engine.add_resource(
                ResourceSpec::new(
                    format!("node{m}/cpu"),
                    ResourceKind::HostCpu,
                    machine.cpu_flops,
                    m,
                )
                .with_channels(4)
                .with_launch_overhead(machine.overheads.cpu_op),
            );
            let nic = engine.add_resource(
                ResourceSpec::new(
                    format!("node{m}/nic"),
                    ResourceKind::Network,
                    machine.nic_bw,
                    m,
                )
                .with_launch_overhead(machine.overheads.net_msg)
                .with_congestion_opt(machine.nic_congestion()),
            );
            let nvlink = machine.nvlink_bw.map(|bw| {
                engine.add_resource(
                    ResourceSpec::new(format!("node{m}/nvlink"), ResourceKind::NvLink, bw, m)
                        .with_channels(machine.gpus_per_node)
                        .with_launch_overhead(machine.overheads.dma_setup),
                )
            });
            for g in 0..machine.gpus_per_node {
                let launcher = engine.add_resource(
                    ResourceSpec::new(
                        format!("node{m}/gpu{g}/launcher"),
                        ResourceKind::HostCpu,
                        1.0,
                        m,
                    )
                    .with_channels(2),
                );
                let gpu_sm = engine.add_resource(
                    ResourceSpec::new(
                        format!("node{m}/gpu{g}/sm"),
                        ResourceKind::GpuSm,
                        machine.gpu.sm_flops,
                        m,
                    )
                    .with_channels(machine.gpu.streams)
                    .with_launch_overhead(machine.overheads.gpu_kernel),
                );
                let gpu_mem = engine.add_resource(
                    ResourceSpec::new(
                        format!("node{m}/gpu{g}/hbm"),
                        ResourceKind::GpuMem,
                        machine.gpu.mem_bw,
                        m,
                    )
                    .with_launch_overhead(machine.overheads.gpu_kernel),
                );
                let pcie = engine.add_resource(
                    ResourceSpec::new(
                        format!("node{m}/gpu{g}/pcie"),
                        ResourceKind::Pcie,
                        machine.pcie_bw,
                        m,
                    )
                    .with_launch_overhead(machine.overheads.dma_setup)
                    .with_congestion_opt(machine.pcie_congestion()),
                );
                executors.push(ExecutorHandles {
                    node: m,
                    gpu_sm,
                    gpu_mem,
                    pcie,
                    dram,
                    cpu,
                    nic,
                    nvlink,
                    launcher,
                });
            }
        }

        let mut servers = Vec::with_capacity(ps_servers);
        for s in 0..ps_servers {
            let node = machines + s;
            let cpu = engine.add_resource(
                ResourceSpec::new(
                    format!("ps{s}/cpu"),
                    ResourceKind::HostCpu,
                    machine.cpu_flops,
                    node,
                )
                .with_channels(8)
                .with_launch_overhead(machine.overheads.cpu_op),
            );
            let dram = engine.add_resource(
                ResourceSpec::new(
                    format!("ps{s}/dram"),
                    ResourceKind::DramBw,
                    machine.dram_bw,
                    node,
                )
                .with_launch_overhead(machine.overheads.dram_op),
            );
            let nic = engine.add_resource(
                ResourceSpec::new(
                    format!("ps{s}/nic"),
                    ResourceKind::Network,
                    machine.nic_bw,
                    node,
                )
                .with_launch_overhead(machine.overheads.net_msg)
                .with_congestion_opt(machine.nic_congestion()),
            );
            servers.push(ServerHandles { cpu, dram, nic });
        }

        Cluster {
            machine,
            executors,
            servers,
        }
    }

    /// Number of executors (GPU workers).
    pub fn executor_count(&self) -> usize {
        self.executors.len()
    }

    /// Whether two executors are on the same machine (NVLink reachable).
    pub fn same_machine(&self, a: usize, b: usize) -> bool {
        self.executors[a].node == self.executors[b].node
    }

    /// Resource handles of every parameter-server node, flattened in
    /// registration order. This is the precomputed handle set consumers
    /// filter by instead of matching on `"ps<N>/..."` name prefixes.
    pub fn server_resource_ids(&self) -> Vec<ResourceId> {
        self.servers
            .iter()
            .flat_map(|s| [s.cpu, s.dram, s.nic])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gn6e_matches_table_one() {
        let m = MachineSpec::gn6e();
        assert_eq!(m.gpus_per_node, 8);
        assert!(m.nvlink_bw.is_some());
        assert!(!m.rdma);
        assert_eq!(m.gpu.mem_capacity, 32 * (1 << 30));
        // 32 Gbps = 4 GB/s
        assert!((m.nic_bw - 4e9).abs() < 1.0);
    }

    #[test]
    fn eflops_matches_table_one() {
        let m = MachineSpec::eflops();
        assert_eq!(m.gpus_per_node, 1);
        assert!(m.nvlink_bw.is_none());
        assert!(m.rdma);
        assert!((m.nic_bw - 12.5e9).abs() < 1.0);
        assert!(m.overheads.net_msg < MachineSpec::gn6e().overheads.net_msg);
    }

    #[test]
    fn cluster_builds_executor_grid() {
        let mut e = Engine::new();
        let c = Cluster::build(MachineSpec::gn6e(), 2, 0, &mut e);
        assert_eq!(c.executor_count(), 16);
        assert!(c.same_machine(0, 7));
        assert!(!c.same_machine(0, 8));
        // Executors on one machine share dram/cpu/nic/nvlink.
        assert_eq!(c.executors[0].nic, c.executors[7].nic);
        assert_ne!(c.executors[0].nic, c.executors[8].nic);
        assert_eq!(c.executors[0].nvlink, c.executors[1].nvlink);
        assert_ne!(c.executors[0].gpu_sm, c.executors[1].gpu_sm);
    }

    #[test]
    fn eflops_cluster_has_no_nvlink() {
        let mut e = Engine::new();
        let c = Cluster::build(MachineSpec::eflops(), 4, 0, &mut e);
        assert_eq!(c.executor_count(), 4);
        assert!(c.executors.iter().all(|x| x.nvlink.is_none()));
    }

    #[test]
    fn ps_servers_are_built() {
        let mut e = Engine::new();
        let c = Cluster::build(MachineSpec::eflops(), 2, 1, &mut e);
        assert_eq!(c.servers.len(), 1);
        let nic = c.servers[0].nic;
        assert_eq!(e.resource_spec(nic).kind, ResourceKind::Network);
        assert_eq!(
            e.resource_spec(nic).node,
            2,
            "server occupies the next node index"
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker machine")]
    fn zero_machines_rejected() {
        let mut e = Engine::new();
        let _ = Cluster::build(MachineSpec::eflops(), 0, 0, &mut e);
    }

    #[test]
    fn v100_flops_ratio_to_cpu_is_about_30x() {
        let m = MachineSpec::eflops();
        let ratio = m.gpu.sm_flops / m.cpu_flops;
        assert!(
            (25.0..35.0).contains(&ratio),
            "paper cites ~30x V100-to-CPU SP gap, got {ratio}"
        );
    }
}
