//! Interval-set algebra over simulated time.
//!
//! Used to turn raw task `(start, end)` records into union busy intervals,
//! exposed-time breakdowns (time where one category blocks all others), and
//! bucketed utilization timelines.

use crate::time::{SimDuration, SimTime};

/// A set of disjoint, sorted, half-open intervals `[start, end)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalSet {
    spans: Vec<(SimTime, SimTime)>,
}

impl IntervalSet {
    /// The empty set.
    pub fn new() -> Self {
        IntervalSet::default()
    }

    /// Builds a normalized set from arbitrary (possibly overlapping,
    /// unsorted) intervals; empty intervals are dropped.
    pub fn from_spans(mut spans: Vec<(SimTime, SimTime)>) -> Self {
        spans.retain(|&(s, e)| e > s);
        spans.sort_unstable();
        let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(spans.len());
        for (s, e) in spans {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        IntervalSet { spans: merged }
    }

    /// The disjoint spans, sorted ascending.
    pub fn spans(&self) -> &[(SimTime, SimTime)] {
        &self.spans
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total covered duration.
    pub fn measure(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for &(s, e) in &self.spans {
            total += e - s;
        }
        total
    }

    /// Union of two sets.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut all = self.spans.clone();
        all.extend_from_slice(&other.spans);
        IntervalSet::from_spans(all)
    }

    /// Set difference `self \ other`.
    pub fn subtract(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let mut j = 0;
        for &(mut s, e) in &self.spans {
            // Skip subtrahend spans entirely before s.
            while j < other.spans.len() && other.spans[j].1 <= s {
                j += 1;
            }
            let mut k = j;
            while k < other.spans.len() && other.spans[k].0 < e {
                let (os, oe) = other.spans[k];
                if os > s {
                    out.push((s, os.min(e)));
                }
                s = s.max(oe);
                if s >= e {
                    break;
                }
                k += 1;
            }
            if s < e {
                out.push((s, e));
            }
        }
        IntervalSet { spans: out }
    }

    /// Intersection of two sets.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        while i < self.spans.len() && j < other.spans.len() {
            let (a_s, a_e) = self.spans[i];
            let (b_s, b_e) = other.spans[j];
            let s = a_s.max(b_s);
            let e = a_e.min(b_e);
            if s < e {
                out.push((s, e));
            }
            if a_e <= b_e {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { spans: out }
    }

    /// Duration of overlap with the bucket `[bucket_start, bucket_end)`.
    pub fn overlap_with(&self, bucket_start: SimTime, bucket_end: SimTime) -> SimDuration {
        // Binary search to the first span that could overlap.
        let start_idx = self.spans.partition_point(|&(_, e)| e <= bucket_start);
        let mut total = SimDuration::ZERO;
        for &(s, e) in &self.spans[start_idx..] {
            if s >= bucket_end {
                break;
            }
            let lo = s.max(bucket_start);
            let hi = e.min(bucket_end);
            if hi > lo {
                total += hi - lo;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(spans: &[(u64, u64)]) -> IntervalSet {
        IntervalSet::from_spans(
            spans
                .iter()
                .map(|&(s, e)| (SimTime(s), SimTime(e)))
                .collect(),
        )
    }

    #[test]
    fn from_spans_merges_and_sorts() {
        let s = set(&[(5, 10), (0, 3), (2, 6), (20, 20)]);
        assert_eq!(s.spans(), &[(SimTime(0), SimTime(10))]);
        assert_eq!(s.measure(), SimDuration(10));
    }

    #[test]
    fn adjacent_spans_merge() {
        let s = set(&[(0, 5), (5, 10)]);
        assert_eq!(s.spans().len(), 1);
        assert_eq!(s.measure(), SimDuration(10));
    }

    #[test]
    fn union_covers_both() {
        let a = set(&[(0, 5)]);
        let b = set(&[(3, 8), (10, 12)]);
        let u = a.union(&b);
        assert_eq!(
            u.spans(),
            &[(SimTime(0), SimTime(8)), (SimTime(10), SimTime(12))]
        );
    }

    #[test]
    fn subtract_carves_holes() {
        let a = set(&[(0, 10)]);
        let b = set(&[(2, 4), (6, 8)]);
        let d = a.subtract(&b);
        assert_eq!(
            d.spans(),
            &[
                (SimTime(0), SimTime(2)),
                (SimTime(4), SimTime(6)),
                (SimTime(8), SimTime(10))
            ]
        );
        assert_eq!(d.measure(), SimDuration(6));
    }

    #[test]
    fn subtract_disjoint_is_identity() {
        let a = set(&[(0, 5)]);
        let b = set(&[(10, 20)]);
        assert_eq!(a.subtract(&b), a);
    }

    #[test]
    fn subtract_superset_is_empty() {
        let a = set(&[(2, 4)]);
        let b = set(&[(0, 10)]);
        assert!(a.subtract(&b).is_empty());
    }

    #[test]
    fn intersect_finds_overlap() {
        let a = set(&[(0, 5), (8, 12)]);
        let b = set(&[(3, 9)]);
        let i = a.intersect(&b);
        assert_eq!(
            i.spans(),
            &[(SimTime(3), SimTime(5)), (SimTime(8), SimTime(9))]
        );
    }

    #[test]
    fn overlap_with_bucket() {
        let a = set(&[(0, 5), (8, 12)]);
        assert_eq!(a.overlap_with(SimTime(4), SimTime(10)), SimDuration(3));
        assert_eq!(a.overlap_with(SimTime(5), SimTime(8)), SimDuration::ZERO);
        assert_eq!(a.overlap_with(SimTime(0), SimTime(20)), SimDuration(9));
    }

    #[test]
    fn measure_of_empty_is_zero() {
        assert_eq!(IntervalSet::new().measure(), SimDuration::ZERO);
        assert!(IntervalSet::new().is_empty());
    }
}
