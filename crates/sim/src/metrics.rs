//! DCGM-style measurement of a finished run.
//!
//! The paper inspects GPU SM utilization and PCIe/NVLink bandwidth at a
//! 10-millisecond granularity (Figs. 11 and 12) and reports worker-side time
//! breakdowns (Fig. 5). This module derives all of those from the raw task
//! records produced by the engine.

use crate::engine::{RunResult, TaskCategory};
use crate::intervals::IntervalSet;
use crate::resource::ResourceKind;
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Bucketed utilization samples for one resource kind.
#[derive(Debug, Clone)]
pub struct UtilizationTimeline {
    /// Bucket width.
    pub bucket: SimDuration,
    /// Per-bucket busy fraction in `[0, 1]` (union over channels/devices).
    pub samples: Vec<f64>,
}

impl UtilizationTimeline {
    /// Mean utilization over all buckets.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Empirical CDF as `(value, cumulative fraction)` points, sorted by value.
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        let mut v = self.samples.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("utilization samples are finite"));
        let n = v.len();
        v.into_iter()
            .enumerate()
            .map(|(i, x)| (x, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// Fraction of buckets with utilization below `threshold`.
    pub fn fraction_below(&self, threshold: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|&&s| s < threshold).count() as f64 / self.samples.len() as f64
    }
}

/// Busy/idle profile of one concrete resource (one device, link, or thread
/// pool) over schedule time: the Fig. 5-style per-resource breakdown for any
/// run. Multi-channel resources report the union over channels, so
/// `busy_fraction` is "was anything in flight", not channel-weighted load.
#[derive(Debug, Clone)]
pub struct ResourceTimeline {
    /// Resource name, e.g. `node0/gpu0/sm`.
    pub resource: String,
    /// Resource kind.
    pub kind: ResourceKind,
    /// Machine the resource belongs to.
    pub node: usize,
    /// Fraction of the makespan the resource was busy, in `[0, 1]`.
    pub busy_fraction: f64,
    /// Bucketed busy-fraction samples over schedule time.
    pub timeline: UtilizationTimeline,
}

impl ResourceTimeline {
    /// Fraction of the makespan the resource sat idle.
    pub fn idle_fraction(&self) -> f64 {
        (1.0 - self.busy_fraction).max(0.0)
    }
}

/// Bucketed throughput samples (bytes/s) for one resource kind.
#[derive(Debug, Clone)]
pub struct BandwidthTimeline {
    /// Bucket width.
    pub bucket: SimDuration,
    /// Per-bucket average bandwidth in bytes per second.
    pub samples: Vec<f64>,
}

impl BandwidthTimeline {
    /// Mean bandwidth over all buckets, bytes/s.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Peak bucket bandwidth, bytes/s.
    pub fn peak(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }
}

/// Worker-side time breakdown by task category (Fig. 5).
///
/// `exposed` counts, per category, the time during which *only* that category
/// was active — the period when the operation blocks all the others, per the
/// paper's definition — plus the share of fully-idle gaps attributed nowhere.
#[derive(Debug, Clone)]
pub struct Breakdown {
    /// Total busy (possibly overlapped) time per category.
    pub busy: BTreeMap<TaskCategory, SimDuration>,
    /// Exposed (blocking) time per category.
    pub exposed: BTreeMap<TaskCategory, SimDuration>,
    /// Run makespan.
    pub makespan: SimTime,
}

impl Breakdown {
    /// Exposed fraction of the makespan for a category.
    pub fn exposed_fraction(&self, cat: TaskCategory) -> f64 {
        if self.makespan == SimTime::ZERO {
            return 0.0;
        }
        self.exposed
            .get(&cat)
            .map(|d| d.as_secs_f64() / self.makespan.as_secs_f64())
            .unwrap_or(0.0)
    }
}

/// Analyzes a finished [`RunResult`].
#[derive(Debug)]
pub struct RunAnalysis<'a> {
    result: &'a RunResult,
}

impl<'a> RunAnalysis<'a> {
    /// Wraps a run result for analysis.
    pub fn new(result: &'a RunResult) -> Self {
        RunAnalysis { result }
    }

    /// Union busy intervals of all resources of a given kind.
    pub fn busy_intervals(&self, kind: ResourceKind) -> IntervalSet {
        let spans = self
            .result
            .records
            .iter()
            .filter(|r| self.result.resources[r.resource.0].spec.kind == kind)
            .map(|r| (r.start, r.end))
            .collect();
        IntervalSet::from_spans(spans)
    }

    /// Union busy intervals of all tasks of a given category.
    pub fn category_intervals(&self, cat: TaskCategory) -> IntervalSet {
        let spans = self
            .result
            .records
            .iter()
            .filter(|r| r.category == cat)
            .map(|r| (r.start, r.end))
            .collect();
        IntervalSet::from_spans(spans)
    }

    /// Average utilization timeline across all resources of a kind: each
    /// bucket is the mean busy fraction of the individual devices (what
    /// DCGM reports when averaging over GPUs). Use this for multi-executor
    /// clusters; [`RunAnalysis::utilization`] unions all devices instead.
    pub fn utilization_avg(&self, kind: ResourceKind, bucket: SimDuration) -> UtilizationTimeline {
        assert!(bucket.as_nanos() > 0, "bucket must be nonzero");
        let per_resource: Vec<IntervalSet> = self
            .result
            .resources
            .iter()
            .enumerate()
            .filter(|(_, r)| r.spec.kind == kind)
            .map(|(i, _)| {
                IntervalSet::from_spans(
                    self.result
                        .records
                        .iter()
                        .filter(|rec| rec.resource.0 == i)
                        .map(|rec| (rec.start, rec.end))
                        .collect(),
                )
            })
            .collect();
        let makespan = self.result.makespan;
        let n_buckets = makespan.as_nanos().div_ceil(bucket.as_nanos());
        let mut samples = Vec::with_capacity(n_buckets as usize);
        let n = per_resource.len().max(1) as f64;
        for b in 0..n_buckets {
            let s = SimTime(b * bucket.as_nanos());
            let e = SimTime(((b + 1) * bucket.as_nanos()).min(makespan.as_nanos()));
            let width = e - s;
            if width == SimDuration::ZERO {
                break;
            }
            let busy: f64 = per_resource
                .iter()
                .map(|set| set.overlap_with(s, e).as_secs_f64())
                .sum();
            samples.push(busy / (width.as_secs_f64() * n));
        }
        UtilizationTimeline { bucket, samples }
    }

    /// Utilization timeline of a resource kind, sampled in `bucket` windows
    /// (the paper uses 10 ms).
    pub fn utilization(&self, kind: ResourceKind, bucket: SimDuration) -> UtilizationTimeline {
        assert!(bucket.as_nanos() > 0, "bucket must be nonzero");
        let busy = self.busy_intervals(kind);
        let makespan = self.result.makespan;
        let n_buckets = makespan.as_nanos().div_ceil(bucket.as_nanos());
        let mut samples = Vec::with_capacity(n_buckets as usize);
        for b in 0..n_buckets {
            let s = SimTime(b * bucket.as_nanos());
            let e = SimTime(((b + 1) * bucket.as_nanos()).min(makespan.as_nanos()));
            let width = e - s;
            if width == SimDuration::ZERO {
                break;
            }
            let overlap = busy.overlap_with(s, e);
            samples.push(overlap.as_secs_f64() / width.as_secs_f64());
        }
        UtilizationTimeline { bucket, samples }
    }

    /// Per-resource busy/idle profile over the whole run, one entry per
    /// concrete resource in declaration order (idle resources included, with
    /// an all-zero timeline). This is the data behind the `utilization`
    /// section of the run report and the Chrome-trace counter lanes.
    pub fn resource_timelines(&self, bucket: SimDuration) -> Vec<ResourceTimeline> {
        assert!(bucket.as_nanos() > 0, "bucket must be nonzero");
        let makespan = self.result.makespan;
        let makespan_secs = makespan.as_secs_f64();
        let n_buckets = makespan.as_nanos().div_ceil(bucket.as_nanos());
        self.result
            .resources
            .iter()
            .enumerate()
            .map(|(i, res)| {
                let busy = IntervalSet::from_spans(
                    self.result
                        .records
                        .iter()
                        .filter(|rec| rec.resource.0 == i)
                        .map(|rec| (rec.start, rec.end))
                        .collect(),
                );
                let mut samples = Vec::with_capacity(n_buckets as usize);
                for b in 0..n_buckets {
                    let s = SimTime(b * bucket.as_nanos());
                    let e = SimTime(((b + 1) * bucket.as_nanos()).min(makespan.as_nanos()));
                    let width = e - s;
                    if width == SimDuration::ZERO {
                        break;
                    }
                    samples.push(busy.overlap_with(s, e).as_secs_f64() / width.as_secs_f64());
                }
                let busy_fraction = if makespan_secs > 0.0 {
                    busy.measure().as_secs_f64() / makespan_secs
                } else {
                    0.0
                };
                ResourceTimeline {
                    resource: res.spec.name.clone(),
                    kind: res.spec.kind,
                    node: res.spec.node,
                    busy_fraction,
                    timeline: UtilizationTimeline { bucket, samples },
                }
            })
            .collect()
    }

    /// Bandwidth timeline of a resource kind: bytes served per bucket,
    /// attributing each task's bytes uniformly over its service interval.
    pub fn bandwidth(&self, kind: ResourceKind, bucket: SimDuration) -> BandwidthTimeline {
        assert!(bucket.as_nanos() > 0, "bucket must be nonzero");
        let makespan = self.result.makespan;
        let n_buckets = makespan.as_nanos().div_ceil(bucket.as_nanos()) as usize;
        let mut bytes = vec![0.0f64; n_buckets];
        for r in &self.result.records {
            if self.result.resources[r.resource.0].spec.kind != kind {
                continue;
            }
            let dur = (r.end - r.start).as_secs_f64();
            if dur <= 0.0 || r.work <= 0.0 {
                continue;
            }
            let rate = r.work / dur;
            let first = (r.start.as_nanos() / bucket.as_nanos()) as usize;
            let last = ((r.end.as_nanos().saturating_sub(1)) / bucket.as_nanos()) as usize;
            for (b, slot) in bytes.iter_mut().enumerate().take(last + 1).skip(first) {
                let bs = SimTime(b as u64 * bucket.as_nanos());
                let be = SimTime((b as u64 + 1) * bucket.as_nanos());
                let lo = bs.max(r.start);
                let hi = be.min(r.end);
                if hi > lo {
                    *slot += rate * (hi - lo).as_secs_f64();
                }
            }
        }
        let bucket_secs = bucket.as_secs_f64();
        BandwidthTimeline {
            bucket,
            samples: bytes.into_iter().map(|b| b / bucket_secs).collect(),
        }
    }

    /// Worker-side breakdown by category (Fig. 5): busy and exposed time.
    pub fn breakdown(&self) -> Breakdown {
        let mut busy = BTreeMap::new();
        let mut sets: BTreeMap<TaskCategory, IntervalSet> = BTreeMap::new();
        for cat in TaskCategory::ALL {
            let set = self.category_intervals(cat);
            busy.insert(cat, set.measure());
            sets.insert(cat, set);
        }
        let mut exposed = BTreeMap::new();
        for cat in TaskCategory::ALL {
            let mut others = IntervalSet::new();
            for (other_cat, set) in &sets {
                if *other_cat != cat {
                    others = others.union(set);
                }
            }
            exposed.insert(cat, sets[&cat].subtract(&others).measure());
        }
        Breakdown {
            busy,
            exposed,
            makespan: self.result.makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, Task};
    use crate::resource::ResourceSpec;

    fn two_phase_run() -> RunResult {
        // A communication phase [0, 1ms] followed by a compute phase [1, 2ms]:
        // the classic pulse-like pattern PICASSO's interleaving diffuses.
        let mut e = Engine::new();
        let g = e.add_resource(ResourceSpec::new("gpu", ResourceKind::GpuSm, 1e9, 0));
        let nw = e.add_resource(ResourceSpec::new("net", ResourceKind::Network, 1e9, 0));
        let comm = e
            .add_task(Task::new(nw, 1e6, TaskCategory::Communication))
            .unwrap();
        e.add_task(Task::new(g, 1e6, TaskCategory::Computation).after([comm]))
            .unwrap();
        e.run().unwrap()
    }

    #[test]
    fn utilization_shows_pulse() {
        let r = two_phase_run();
        let a = RunAnalysis::new(&r);
        let u = a.utilization(ResourceKind::GpuSm, SimDuration::from_micros(100));
        assert_eq!(u.samples.len(), 20);
        // GPU idle in first 10 buckets, busy in last 10.
        assert!(u.samples[..10].iter().all(|&s| s == 0.0));
        assert!(u.samples[10..].iter().all(|&s| (s - 1.0).abs() < 1e-9));
        assert!((u.mean() - 0.5).abs() < 1e-9);
        assert!((u.fraction_below(0.5) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn cdf_is_monotone_and_complete() {
        let r = two_phase_run();
        let a = RunAnalysis::new(&r);
        let u = a.utilization(ResourceKind::GpuSm, SimDuration::from_micros(100));
        let cdf = u.cdf();
        assert_eq!(cdf.len(), 20);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_attributes_bytes_to_buckets() {
        let r = two_phase_run();
        let a = RunAnalysis::new(&r);
        let bw = a.bandwidth(ResourceKind::Network, SimDuration::from_micros(500));
        // 1e6 bytes in the first 1 ms: both first two 0.5 ms buckets at 1 GB/s.
        assert!((bw.samples[0] - 1e9).abs() < 1.0);
        assert!((bw.samples[1] - 1e9).abs() < 1.0);
        assert!(bw.samples[2] < 1.0);
        assert!((bw.peak() - 1e9).abs() < 1.0);
        // Total bytes conserved.
        let total: f64 = bw.samples.iter().sum::<f64>() * 500e-6;
        assert!((total - 1e6).abs() < 1.0);
    }

    #[test]
    fn breakdown_exposes_serial_phases() {
        let r = two_phase_run();
        let b = RunAnalysis::new(&r).breakdown();
        // Fully serial: each phase is 100% exposed, 50% of the makespan.
        assert!((b.exposed_fraction(TaskCategory::Communication) - 0.5).abs() < 1e-9);
        assert!((b.exposed_fraction(TaskCategory::Computation) - 0.5).abs() < 1e-9);
        assert_eq!(
            b.busy[&TaskCategory::Communication],
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn utilization_avg_averages_over_devices() {
        // Two GPUs: one busy the whole run, one idle -> avg 50%, union 100%.
        let mut e = Engine::new();
        let g0 = e.add_resource(ResourceSpec::new("gpu0", ResourceKind::GpuSm, 1e9, 0));
        let _g1 = e.add_resource(ResourceSpec::new("gpu1", ResourceKind::GpuSm, 1e9, 0));
        e.add_task(Task::new(g0, 1e6, TaskCategory::Computation))
            .unwrap();
        let r = e.run().unwrap();
        let a = RunAnalysis::new(&r);
        let avg = a.utilization_avg(ResourceKind::GpuSm, SimDuration::from_micros(100));
        let union = a.utilization(ResourceKind::GpuSm, SimDuration::from_micros(100));
        assert!((avg.mean() - 0.5).abs() < 1e-9, "avg {}", avg.mean());
        assert!((union.mean() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn resource_timelines_profile_every_resource() {
        let r = two_phase_run();
        let a = RunAnalysis::new(&r);
        let lanes = a.resource_timelines(SimDuration::from_micros(100));
        assert_eq!(lanes.len(), 2);
        let gpu = lanes.iter().find(|l| l.resource == "gpu").unwrap();
        let net = lanes.iter().find(|l| l.resource == "net").unwrap();
        assert_eq!(gpu.kind, ResourceKind::GpuSm);
        // Each resource busy for exactly half the 2 ms makespan.
        assert!((gpu.busy_fraction - 0.5).abs() < 1e-9);
        assert!((net.busy_fraction - 0.5).abs() < 1e-9);
        assert!((gpu.idle_fraction() - 0.5).abs() < 1e-9);
        // The net lane pulses first, the gpu lane second.
        assert!(net.timeline.samples[..10]
            .iter()
            .all(|&s| (s - 1.0).abs() < 1e-9));
        assert!(net.timeline.samples[10..].iter().all(|&s| s == 0.0));
        assert!(gpu.timeline.samples[..10].iter().all(|&s| s == 0.0));
        assert!(gpu.timeline.samples[10..]
            .iter()
            .all(|&s| (s - 1.0).abs() < 1e-9));
    }

    #[test]
    fn resource_timelines_include_idle_resources() {
        let mut e = Engine::new();
        let g0 = e.add_resource(ResourceSpec::new("gpu0", ResourceKind::GpuSm, 1e9, 0));
        let _g1 = e.add_resource(ResourceSpec::new("gpu1", ResourceKind::GpuSm, 1e9, 0));
        e.add_task(Task::new(g0, 1e6, TaskCategory::Computation))
            .unwrap();
        let r = e.run().unwrap();
        let lanes = RunAnalysis::new(&r).resource_timelines(SimDuration::from_micros(100));
        assert_eq!(lanes.len(), 2);
        assert!((lanes[0].busy_fraction - 1.0).abs() < 1e-9);
        assert_eq!(lanes[1].busy_fraction, 0.0);
        assert!(lanes[1].timeline.samples.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn overlapped_phases_have_no_exposure() {
        let mut e = Engine::new();
        let g = e.add_resource(ResourceSpec::new("gpu", ResourceKind::GpuSm, 1e9, 0));
        let nw = e.add_resource(ResourceSpec::new("net", ResourceKind::Network, 1e9, 0));
        e.add_task(Task::new(nw, 1e6, TaskCategory::Communication))
            .unwrap();
        e.add_task(Task::new(g, 1e6, TaskCategory::Computation))
            .unwrap();
        let r = e.run().unwrap();
        let b = RunAnalysis::new(&r).breakdown();
        assert_eq!(b.exposed[&TaskCategory::Communication], SimDuration::ZERO);
        assert_eq!(b.exposed[&TaskCategory::Computation], SimDuration::ZERO);
    }
}
