//! The Table III experiment: the same model trained under the semantics of
//! the four compared systems, with AUC measured on held-out data.
//!
//! PICASSO, PyTorch and Horovod all train *synchronously* — they differ in
//! feasible batch size, not update semantics — while TF-PS applies
//! gradients asynchronously with staleness. The experiment therefore
//! contrasts synchronous updates at several batch sizes against stale
//! updates, reproducing the paper's observation that synchronous training
//! preserves (and on the attention models slightly improves) AUC.

use crate::metrics::auc;
use crate::models::{CtrModel, Variant};
use crate::optimizer::StalenessQueue;
use picasso_data::{BatchGenerator, DatasetSpec};
use std::sync::Arc;

/// Update semantics of a training system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Synchronous data-parallel SGD (PICASSO / PyTorch / Horovod).
    Synchronous,
    /// Asynchronous parameter server: gradients applied `staleness` steps
    /// after they were computed (TF-PS).
    AsyncStale {
        /// Number of steps a gradient lags.
        staleness: usize,
    },
}

/// One training configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Optimization steps.
    pub steps: usize,
    /// Instances per step.
    pub batch: usize,
    /// Learning rate (Adagrad).
    pub lr: f32,
    /// Update semantics.
    pub mode: SyncMode,
    /// Data / init seed.
    pub seed: u64,
    /// Held-out evaluation instances.
    pub eval_size: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            steps: 120,
            batch: 256,
            lr: 0.1,
            mode: SyncMode::Synchronous,
            seed: 42,
            eval_size: 2048,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// AUC on the held-out evaluation batch.
    pub auc: f64,
    /// Final training loss.
    pub final_loss: f64,
    /// Loss at every step.
    pub loss_curve: Vec<f64>,
}

/// Trains `variant` on `data` under `cfg` and evaluates AUC.
pub fn train_ctr(variant: Variant, data: &Arc<DatasetSpec>, cfg: &TrainConfig) -> TrainOutcome {
    let mut gen = BatchGenerator::new(Arc::clone(data), cfg.seed);
    let eval = gen.next_batch(cfg.eval_size);
    let mut model = CtrModel::new(data, variant, cfg.lr, cfg.seed ^ 0x5151);

    let staleness = match cfg.mode {
        SyncMode::Synchronous => 0,
        SyncMode::AsyncStale { staleness } => staleness,
    };
    let mut queue = StalenessQueue::new(staleness);
    let mut loss_curve = Vec::with_capacity(cfg.steps);
    for _ in 0..cfg.steps {
        let batch = gen.next_batch(cfg.batch);
        let (stats, grads) = model.step(&batch, data);
        loss_curve.push(stats.loss);
        if let Some(due) = queue.exchange(grads) {
            model.apply(&due);
        }
    }
    // Late gradients still land (workers drain at the end of the epoch).
    let rest: Vec<_> = queue.drain().collect();
    for g in rest {
        model.apply(&g);
    }

    let scores = model.predict(&eval, data);
    TrainOutcome {
        auc: auc(&scores, &eval.labels),
        final_loss: *loss_curve.last().unwrap_or(&f64::NAN),
        loss_curve,
    }
}

/// Small datasets for the AUC benchmarks: shaped like Criteo (one-hot
/// fields, numeric features) and Alibaba (behaviour sequences), scaled to
/// CPU-trainable size.
pub mod auc_datasets {
    use picasso_data::{DatasetSpec, FieldSpec, IdDistribution};
    use std::sync::Arc;

    /// A Criteo-like dataset: 8 one-hot fields + 4 numeric features.
    pub fn criteo_like() -> Arc<DatasetSpec> {
        let dist = IdDistribution::Zipf { s: 1.05 };
        DatasetSpec {
            name: "criteo-like".into(),
            numeric: 4,
            fields: (0..8)
                .map(|i| FieldSpec::one_hot(format!("c{i}"), 2000, 8, dist, i))
                .collect(),
            instances: None,
        }
        .shared()
    }

    /// An Alibaba-like dataset: 4 one-hot profile fields + 2 behaviour
    /// sequences of average length 12.
    pub fn alibaba_like() -> Arc<DatasetSpec> {
        let dist = IdDistribution::Zipf { s: 1.2 };
        let mut fields: Vec<FieldSpec> = (0..4)
            .map(|i| FieldSpec::one_hot(format!("b{i}"), 2000, 8, dist, i))
            .collect();
        for s in 0..2 {
            fields.push(
                FieldSpec::one_hot(format!("seq{s}"), 4000, 8, dist, 4 + s).with_avg_ids(12.0),
            );
        }
        DatasetSpec {
            name: "alibaba-like".into(),
            numeric: 0,
            fields,
            instances: None,
        }
        .shared()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronous_training_reaches_good_auc() {
        let data = auc_datasets::criteo_like();
        let out = train_ctr(Variant::DotDeep, &data, &TrainConfig::default());
        assert!(out.auc > 0.65, "AUC {:.3}", out.auc);
        // Loss should trend downward.
        let early: f64 = out.loss_curve[..10].iter().sum::<f64>() / 10.0;
        let late: f64 = out.loss_curve[out.loss_curve.len() - 10..]
            .iter()
            .sum::<f64>()
            / 10.0;
        assert!(late < early, "loss {early:.4} -> {late:.4}");
    }

    #[test]
    fn stale_gradients_do_not_beat_synchronous() {
        let data = auc_datasets::alibaba_like();
        let mut cfg = TrainConfig {
            steps: 160,
            ..TrainConfig::default()
        };
        let sync = train_ctr(Variant::Attention, &data, &cfg);
        cfg.mode = SyncMode::AsyncStale { staleness: 4 };
        let stale = train_ctr(Variant::Attention, &data, &cfg);
        assert!(
            stale.auc <= sync.auc + 0.01,
            "stale {:.4} should not exceed sync {:.4}",
            stale.auc,
            sync.auc
        );
        assert!(
            stale.auc > 0.55,
            "stale training still learns: {:.3}",
            stale.auc
        );
    }

    #[test]
    fn outcomes_are_deterministic() {
        let data = auc_datasets::criteo_like();
        let cfg = TrainConfig {
            steps: 30,
            ..TrainConfig::default()
        };
        let a = train_ctr(Variant::Deep, &data, &cfg);
        let b = train_ctr(Variant::Deep, &data, &cfg);
        assert_eq!(a.auc, b.auc);
        assert_eq!(a.loss_curve, b.loss_curve);
    }
}
