//! Dense layers with manual backpropagation.

use crate::tensor::Matrix;
use picasso_data::sigmoid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fully-connected layer `y = x @ W + b` with optional ReLU.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weights, `in x out`.
    pub w: Matrix,
    /// Bias, length `out`.
    pub b: Vec<f32>,
    /// Whether a ReLU follows.
    pub relu: bool,
    // Cached forward state for backward.
    input: Option<Matrix>,
    pre_act: Option<Matrix>,
}

impl Linear {
    /// Xavier-style initialization from a seeded RNG.
    pub fn new(in_dim: usize, out_dim: usize, relu: bool, seed: u64) -> Linear {
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = (2.0 / (in_dim + out_dim) as f32).sqrt();
        Linear {
            w: Matrix::from_fn(in_dim, out_dim, |_, _| rng.gen_range(-scale..scale)),
            b: vec![0.0; out_dim],
            relu,
            input: None,
            pre_act: None,
        }
    }

    /// Forward pass; caches activations for backward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        for r in 0..y.rows() {
            let row = y.row_mut(r);
            for (v, b) in row.iter_mut().zip(&self.b) {
                *v += b;
            }
        }
        self.pre_act = Some(y.clone());
        self.input = Some(x.clone());
        if self.relu {
            for v in y.as_mut_slice() {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
        }
        y
    }

    /// Backward pass: consumes `dy`, returns `dx` and accumulates parameter
    /// gradients into `dw`/`db`.
    pub fn backward(&mut self, mut dy: Matrix, dw: &mut Matrix, db: &mut [f32]) -> Matrix {
        let x = self.input.take().expect("forward before backward");
        let pre = self.pre_act.take().expect("forward before backward");
        if self.relu {
            for (g, &z) in dy.as_mut_slice().iter_mut().zip(pre.as_slice()) {
                if z <= 0.0 {
                    *g = 0.0;
                }
            }
        }
        dw.add_scaled(&x.t_matmul(&dy), 1.0);
        for (d, s) in db.iter_mut().zip(dy.col_sums()) {
            *d += s;
        }
        dy.matmul_t(&self.w)
    }

    /// Allocates zeroed gradient buffers matching this layer.
    pub fn grad_buffers(&self) -> (Matrix, Vec<f32>) {
        (
            Matrix::zeros(self.w.rows(), self.w.cols()),
            vec![0.0; self.b.len()],
        )
    }
}

/// Binary cross-entropy on logits: returns `(mean loss, dlogits)`.
pub fn bce_with_logits(logits: &Matrix, labels: &[f32]) -> (f64, Matrix) {
    assert_eq!(logits.cols(), 1, "logits must be a column");
    assert_eq!(logits.rows(), labels.len());
    let n = labels.len() as f64;
    let mut loss = 0.0;
    let mut grad = Matrix::zeros(logits.rows(), 1);
    for (i, &label) in labels.iter().enumerate() {
        let z = logits.get(i, 0) as f64;
        let y = label as f64;
        let p = sigmoid(z);
        // Numerically stable BCE: max(z,0) - z*y + ln(1+e^{-|z|}).
        loss += z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln();
        grad.set(i, 0, ((p - y) / n) as f32);
    }
    (loss / n, grad)
}

/// Sigmoid of each logit (prediction probabilities).
pub fn predict(logits: &Matrix) -> Vec<f64> {
    (0..logits.rows())
        .map(|i| sigmoid(logits.get(i, 0) as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check on a 2-layer MLP.
    #[test]
    fn gradients_match_finite_differences() {
        let mut l1 = Linear::new(3, 4, true, 1);
        let mut l2 = Linear::new(4, 1, false, 2);
        let x = Matrix::from_vec(2, 3, vec![0.5, -0.2, 0.8, -0.5, 0.3, 0.1]);
        let labels = vec![1.0, 0.0];

        let loss_fn = |l1: &Linear, l2: &Linear| -> f64 {
            let mut a = l1.clone();
            let mut b = l2.clone();
            let h = a.forward(&x);
            let z = b.forward(&h);
            bce_with_logits(&z, &labels).0
        };

        // Analytic gradients.
        let h = l1.forward(&x);
        let z = l2.forward(&h);
        let (_, dz) = bce_with_logits(&z, &labels);
        let (mut dw2, mut db2) = l2.grad_buffers();
        let dh = l2.backward(dz, &mut dw2, &mut db2);
        let (mut dw1, mut db1) = l1.grad_buffers();
        let _ = l1.backward(dh, &mut dw1, &mut db1);

        // Numeric checks on a few weights of each layer.
        let eps = 1e-3f32;
        for (r, c) in [(0usize, 0usize), (1, 2), (2, 3)] {
            let mut lp = l1.clone();
            let v = lp.w.get(r, c);
            lp.w.set(r, c, v + eps);
            let up = loss_fn(&lp, &l2);
            lp.w.set(r, c, v - eps);
            let down = loss_fn(&lp, &l2);
            let numeric = (up - down) / (2.0 * eps as f64);
            let analytic = dw1.get(r, c) as f64;
            assert!(
                (numeric - analytic).abs() < 1e-3,
                "w1[{r},{c}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        for (c, &db) in db2.iter().enumerate() {
            let mut lp = l2.clone();
            lp.b[c] += eps;
            let up = loss_fn(&l1, &lp);
            lp.b[c] -= 2.0 * eps;
            let down = loss_fn(&l1, &lp);
            let numeric = (up - down) / (2.0 * eps as f64);
            assert!((numeric - db as f64).abs() < 1e-3);
        }
    }

    #[test]
    fn relu_blocks_negative_gradients() {
        let mut l = Linear::new(1, 1, true, 3);
        l.w.set(0, 0, 1.0);
        l.b[0] = -5.0; // pre-activation strongly negative
        let x = Matrix::from_vec(1, 1, vec![1.0]);
        let y = l.forward(&x);
        assert_eq!(y.get(0, 0), 0.0);
        let (mut dw, mut db) = l.grad_buffers();
        let dx = l.backward(Matrix::from_vec(1, 1, vec![1.0]), &mut dw, &mut db);
        assert_eq!(dx.get(0, 0), 0.0);
        assert_eq!(dw.get(0, 0), 0.0);
    }

    #[test]
    fn bce_loss_is_low_for_confident_correct() {
        let good = Matrix::from_vec(2, 1, vec![8.0, -8.0]);
        let (l_good, _) = bce_with_logits(&good, &[1.0, 0.0]);
        let bad = Matrix::from_vec(2, 1, vec![-8.0, 8.0]);
        let (l_bad, _) = bce_with_logits(&bad, &[1.0, 0.0]);
        assert!(l_good < 0.01);
        assert!(l_bad > 5.0);
    }

    #[test]
    fn predictions_are_probabilities() {
        let z = Matrix::from_vec(3, 1, vec![-100.0, 0.0, 100.0]);
        let p = predict(&z);
        assert!(p[0] < 1e-6);
        assert!((p[1] - 0.5).abs() < 1e-9);
        assert!(p[2] > 1.0 - 1e-6);
    }
}

/// 1-D batch normalization with learnable scale/shift and manual backward —
/// the paper's discussion names (global) batch normalization as an
/// auxiliary for super-large-batch WDL training.
#[derive(Debug, Clone)]
pub struct BatchNorm {
    /// Learnable scale, length `features`.
    pub gamma: Vec<f32>,
    /// Learnable shift, length `features`.
    pub beta: Vec<f32>,
    eps: f32,
    // Cached forward state.
    x_hat: Option<Matrix>,
    inv_std: Option<Vec<f32>>,
}

impl BatchNorm {
    /// Identity-initialized normalization over `features` columns.
    pub fn new(features: usize) -> BatchNorm {
        BatchNorm {
            gamma: vec![1.0; features],
            beta: vec![0.0; features],
            eps: 1e-5,
            x_hat: None,
            inv_std: None,
        }
    }

    /// Normalizes each column over the batch: `y = gamma * x_hat + beta`.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let (n, f) = (x.rows(), x.cols());
        assert_eq!(f, self.gamma.len(), "feature width mismatch");
        assert!(n > 0);
        let mut mean = vec![0.0f32; f];
        for r in 0..n {
            for (m, &v) in mean.iter_mut().zip(x.row(r)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f32;
        }
        let mut var = vec![0.0f32; f];
        for r in 0..n {
            for c in 0..f {
                let d = x.get(r, c) - mean[c];
                var[c] += d * d;
            }
        }
        let inv_std: Vec<f32> = var
            .iter()
            .map(|&v| 1.0 / (v / n as f32 + self.eps).sqrt())
            .collect();
        let mut x_hat = Matrix::zeros(n, f);
        let mut y = Matrix::zeros(n, f);
        for r in 0..n {
            for c in 0..f {
                let h = (x.get(r, c) - mean[c]) * inv_std[c];
                x_hat.set(r, c, h);
                y.set(r, c, self.gamma[c] * h + self.beta[c]);
            }
        }
        self.x_hat = Some(x_hat);
        self.inv_std = Some(inv_std);
        y
    }

    /// Backward pass: returns `dx`; accumulates `dgamma`/`dbeta`.
    pub fn backward(&mut self, dy: &Matrix, dgamma: &mut [f32], dbeta: &mut [f32]) -> Matrix {
        let x_hat = self.x_hat.take().expect("forward before backward");
        let inv_std = self.inv_std.take().expect("forward before backward");
        let (n, f) = (dy.rows(), dy.cols());
        let mut sum_dy = vec![0.0f32; f];
        let mut sum_dy_xhat = vec![0.0f32; f];
        for r in 0..n {
            for c in 0..f {
                let g = dy.get(r, c);
                sum_dy[c] += g;
                sum_dy_xhat[c] += g * x_hat.get(r, c);
            }
        }
        for c in 0..f {
            dgamma[c] += sum_dy_xhat[c];
            dbeta[c] += sum_dy[c];
        }
        let mut dx = Matrix::zeros(n, f);
        let n_f = n as f32;
        for r in 0..n {
            for c in 0..f {
                let term = n_f * dy.get(r, c) - sum_dy[c] - x_hat.get(r, c) * sum_dy_xhat[c];
                dx.set(r, c, self.gamma[c] * inv_std[c] * term / n_f);
            }
        }
        dx
    }
}

#[cfg(test)]
mod batchnorm_tests {
    use super::*;

    #[test]
    fn forward_normalizes_columns() {
        let mut bn = BatchNorm::new(2);
        let x = Matrix::from_vec(4, 2, vec![1., 10., 2., 20., 3., 30., 4., 40.]);
        let y = bn.forward(&x);
        for c in 0..2 {
            let mean: f32 = (0..4).map(|r| y.get(r, c)).sum::<f32>() / 4.0;
            let var: f32 = (0..4).map(|r| (y.get(r, c) - mean).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "col {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "col {c} var {var}");
        }
    }

    #[test]
    fn gamma_beta_rescale_output() {
        let mut bn = BatchNorm::new(1);
        bn.gamma[0] = 2.0;
        bn.beta[0] = 5.0;
        let x = Matrix::from_vec(2, 1, vec![-1.0, 1.0]);
        let y = bn.forward(&x);
        let mean: f32 = (y.get(0, 0) + y.get(1, 0)) / 2.0;
        assert!((mean - 5.0).abs() < 1e-5);
        assert!(
            (y.get(1, 0) - y.get(0, 0)).abs() > 3.9,
            "spread scaled by gamma"
        );
    }

    #[test]
    fn backward_matches_finite_differences() {
        let x = Matrix::from_vec(3, 2, vec![0.5, -1.0, 1.5, 0.3, -0.7, 2.0]);
        // Scalar loss: weighted sum of outputs.
        let w = [0.3f32, -0.8, 0.5, 0.9, -0.2, 0.4];
        let loss = |bn: &BatchNorm, x: &Matrix| -> f64 {
            let mut b = bn.clone();
            let y = b.forward(x);
            y.as_slice()
                .iter()
                .zip(&w)
                .map(|(a, b)| (a * b) as f64)
                .sum()
        };
        let mut bn = BatchNorm::new(2);
        bn.gamma = vec![1.3, 0.7];
        bn.beta = vec![0.1, -0.2];
        let _ = bn.forward(&x);
        let dy = Matrix::from_vec(3, 2, w.to_vec());
        let mut dgamma = vec![0.0; 2];
        let mut dbeta = vec![0.0; 2];
        let dx = bn.backward(&dy, &mut dgamma, &mut dbeta);

        let eps = 1e-3f32;
        for (r, c) in [(0usize, 0usize), (1, 1), (2, 0)] {
            let mut xp = x.clone();
            xp.set(r, c, x.get(r, c) + eps);
            let up = loss(&bn, &xp);
            xp.set(r, c, x.get(r, c) - eps);
            let down = loss(&bn, &xp);
            let numeric = (up - down) / (2.0 * eps as f64);
            let analytic = dx.get(r, c) as f64;
            assert!(
                (numeric - analytic).abs() < 2e-3,
                "dx[{r},{c}] numeric {numeric} analytic {analytic}"
            );
        }
        // dgamma check.
        let base_gamma = bn.gamma.clone();
        for (c, &dg) in dgamma.iter().enumerate() {
            let mut bp = bn.clone();
            bp.gamma = base_gamma.clone();
            bp.gamma[c] += eps;
            let up = loss(&bp, &x);
            bp.gamma[c] -= 2.0 * eps;
            let down = loss(&bp, &x);
            let numeric = (up - down) / (2.0 * eps as f64);
            assert!(
                (numeric - dg as f64).abs() < 2e-3,
                "dgamma[{c}] numeric {numeric} analytic {dg}"
            );
        }
    }
}
