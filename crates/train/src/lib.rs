//! # picasso-train
//!
//! A real (CPU) trainer with manual backpropagation, used to reproduce the
//! Table III accuracy experiment: the same CTR models trained under
//! synchronous semantics (PICASSO / PyTorch / Horovod) versus asynchronous
//! stale-gradient parameter-server semantics (TF-PS), with AUC measured on
//! held-out synthetic click data whose ground truth comes from a hidden
//! logistic model.
//!
//! ```
//! use picasso_train::{auc_datasets, train_ctr, TrainConfig, Variant};
//!
//! let data = auc_datasets::criteo_like();
//! let cfg = TrainConfig { steps: 40, ..TrainConfig::default() };
//! let out = train_ctr(Variant::Deep, &data, &cfg);
//! assert!(out.auc > 0.5);
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod models;
pub mod nn;
pub mod optimizer;
pub mod tensor;
pub mod trainer;

pub use metrics::auc;
pub use models::{CtrModel, StepStats, Variant, EMB_DIM};
pub use nn::{bce_with_logits, predict, BatchNorm, Linear};
pub use optimizer::{Adagrad, Lamb, StalenessQueue};
pub use tensor::Matrix;
pub use trainer::{auc_datasets, train_ctr, SyncMode, TrainConfig, TrainOutcome};
