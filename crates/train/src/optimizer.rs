//! Optimizers and the asynchronous-staleness model.

use crate::tensor::Matrix;
use std::collections::VecDeque;

/// Adagrad state for one dense parameter matrix + bias.
#[derive(Debug, Clone)]
pub struct Adagrad {
    lr: f32,
    eps: f32,
    acc_w: Matrix,
    acc_b: Vec<f32>,
}

impl Adagrad {
    /// Creates state for a `rows x cols` weight and `cols` bias.
    pub fn new(rows: usize, cols: usize, lr: f32) -> Adagrad {
        Adagrad {
            lr,
            eps: 1e-8,
            acc_w: Matrix::zeros(rows, cols),
            acc_b: vec![0.0; cols],
        }
    }

    /// The per-weight squared-gradient accumulator.
    pub fn acc_w(&self) -> &Matrix {
        &self.acc_w
    }

    /// The per-bias squared-gradient accumulator.
    pub fn acc_b(&self) -> &[f32] {
        &self.acc_b
    }

    /// Replaces the accumulators (checkpoint restore). Shapes must match.
    pub fn restore_acc(&mut self, acc_w: Matrix, acc_b: Vec<f32>) {
        assert_eq!(
            acc_w.rows(),
            self.acc_w.rows(),
            "accumulator rows must match"
        );
        assert_eq!(
            acc_w.cols(),
            self.acc_w.cols(),
            "accumulator cols must match"
        );
        assert_eq!(
            acc_b.len(),
            self.acc_b.len(),
            "bias accumulator length must match"
        );
        self.acc_w = acc_w;
        self.acc_b = acc_b;
    }

    /// Applies one accumulated gradient to the parameters.
    pub fn step(&mut self, w: &mut Matrix, b: &mut [f32], dw: &Matrix, db: &[f32]) {
        for i in 0..w.as_slice().len() {
            let g = dw.as_slice()[i];
            self.acc_w.as_mut_slice()[i] += g * g;
            let denom = (self.acc_w.as_slice()[i]).sqrt() + self.eps;
            w.as_mut_slice()[i] -= self.lr * g / denom;
        }
        for i in 0..b.len() {
            let g = db[i];
            self.acc_b[i] += g * g;
            b[i] -= self.lr * g / (self.acc_b[i].sqrt() + self.eps);
        }
    }
}

/// A delay line modelling asynchronous-PS gradient staleness: gradients
/// computed at step `t` are applied at step `t + staleness`, so parameters
/// they were computed against are stale by then. `staleness = 0` degrades
/// to synchronous training.
#[derive(Debug)]
pub struct StalenessQueue<G> {
    staleness: usize,
    queue: VecDeque<G>,
}

impl<G> StalenessQueue<G> {
    /// Creates a queue with the given delay.
    pub fn new(staleness: usize) -> Self {
        StalenessQueue {
            staleness,
            queue: VecDeque::new(),
        }
    }

    /// Pushes this step's gradient and returns the gradient due for
    /// application now (if any).
    pub fn exchange(&mut self, grad: G) -> Option<G> {
        self.queue.push_back(grad);
        if self.queue.len() > self.staleness {
            self.queue.pop_front()
        } else {
            None
        }
    }

    /// Drains any still-queued gradients (applied at the end of training).
    pub fn drain(&mut self) -> impl Iterator<Item = G> + '_ {
        self.queue.drain(..)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adagrad_decreases_effective_lr() {
        let mut w = Matrix::from_vec(1, 1, vec![1.0]);
        let mut b = vec![0.0];
        let mut opt = Adagrad::new(1, 1, 0.1);
        let g = Matrix::from_vec(1, 1, vec![1.0]);
        opt.step(&mut w, &mut b, &g, &[1.0]);
        let first_step = 1.0 - w.get(0, 0);
        opt.step(&mut w, &mut b, &g, &[1.0]);
        let second_step = (1.0 - first_step) - w.get(0, 0);
        assert!(first_step > 0.0);
        assert!(
            second_step < first_step,
            "accumulated curvature shrinks steps"
        );
        assert!(b[0] < 0.0);
    }

    #[test]
    fn zero_staleness_is_synchronous() {
        let mut q = StalenessQueue::new(0);
        assert_eq!(q.exchange(1), Some(1));
        assert_eq!(q.exchange(2), Some(2));
    }

    #[test]
    fn staleness_delays_gradients() {
        let mut q = StalenessQueue::new(2);
        assert_eq!(q.exchange(1), None);
        assert_eq!(q.exchange(2), None);
        assert_eq!(q.exchange(3), Some(1));
        assert_eq!(q.exchange(4), Some(2));
        let rest: Vec<_> = q.drain().collect();
        assert_eq!(rest, vec![3, 4]);
    }
}

/// LAMB (Layer-wise Adaptive Moments for Batch training): the paper's
/// discussion notes that super-large-batch WDL training pairs with the Lamb
/// optimizer. Adam-style moments with a layer-wise trust ratio
/// `|w| / |update|` that rescales each layer's step.
#[derive(Debug, Clone)]
pub struct Lamb {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step: i32,
    m_w: Matrix,
    v_w: Matrix,
    m_b: Vec<f32>,
    v_b: Vec<f32>,
}

impl Lamb {
    /// Creates LAMB state for a `rows x cols` weight and `cols` bias.
    pub fn new(rows: usize, cols: usize, lr: f32) -> Lamb {
        Lamb {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-6,
            weight_decay: 0.01,
            step: 0,
            m_w: Matrix::zeros(rows, cols),
            v_w: Matrix::zeros(rows, cols),
            m_b: vec![0.0; cols],
            v_b: vec![0.0; cols],
        }
    }

    /// Applies one LAMB update.
    pub fn step(&mut self, w: &mut Matrix, b: &mut [f32], dw: &Matrix, db: &[f32]) {
        self.step += 1;
        let bc1 = 1.0 - self.beta1.powi(self.step);
        let bc2 = 1.0 - self.beta2.powi(self.step);

        // Weight matrix: compute the layer-wise trust ratio.
        let mut update = vec![0.0f32; w.as_slice().len()];
        for (i, u) in update.iter_mut().enumerate() {
            let g = dw.as_slice()[i];
            self.m_w.as_mut_slice()[i] =
                self.beta1 * self.m_w.as_slice()[i] + (1.0 - self.beta1) * g;
            self.v_w.as_mut_slice()[i] =
                self.beta2 * self.v_w.as_slice()[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m_w.as_slice()[i] / bc1;
            let v_hat = self.v_w.as_slice()[i] / bc2;
            *u = m_hat / (v_hat.sqrt() + self.eps) + self.weight_decay * w.as_slice()[i];
        }
        let w_norm: f32 = w.as_slice().iter().map(|x| x * x).sum::<f32>().sqrt();
        let u_norm: f32 = update.iter().map(|x| x * x).sum::<f32>().sqrt();
        let trust = if w_norm > 0.0 && u_norm > 0.0 {
            w_norm / u_norm
        } else {
            1.0
        };
        for (wi, u) in w.as_mut_slice().iter_mut().zip(&update) {
            *wi -= self.lr * trust * u;
        }

        // Bias: plain Adam step (no decay, trust 1).
        for i in 0..b.len() {
            let g = db[i];
            self.m_b[i] = self.beta1 * self.m_b[i] + (1.0 - self.beta1) * g;
            self.v_b[i] = self.beta2 * self.v_b[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m_b[i] / bc1;
            let v_hat = self.v_b[i] / bc2;
            b[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod lamb_tests {
    use super::*;

    #[test]
    fn lamb_descends_a_quadratic() {
        // Minimize 0.5*(w-3)^2 starting at w=0.
        let mut w = Matrix::from_vec(1, 1, vec![0.0]);
        let mut b = vec![0.0];
        let mut opt = Lamb::new(1, 1, 0.05);
        for _ in 0..400 {
            let g = Matrix::from_vec(1, 1, vec![w.get(0, 0) - 3.0]);
            opt.step(&mut w, &mut b, &g, &[0.0]);
        }
        let wv = w.get(0, 0);
        assert!((wv - 3.0).abs() < 0.5, "w should approach 3, got {wv}");
    }

    #[test]
    fn trust_ratio_scales_with_weight_norm() {
        // Two identical gradients; the layer with bigger weights takes a
        // proportionally bigger step (that is the point of LAMB).
        let mut small = Matrix::from_vec(1, 1, vec![0.1]);
        let mut large = Matrix::from_vec(1, 1, vec![10.0]);
        let mut bs = vec![0.0];
        let mut bl = vec![0.0];
        let g = Matrix::from_vec(1, 1, vec![1.0]);
        let mut o1 = Lamb::new(1, 1, 0.01);
        let mut o2 = Lamb::new(1, 1, 0.01);
        let s0 = small.get(0, 0);
        let l0 = large.get(0, 0);
        o1.step(&mut small, &mut bs, &g, &[0.0]);
        o2.step(&mut large, &mut bl, &g, &[0.0]);
        let ds = (s0 - small.get(0, 0)).abs();
        let dl = (l0 - large.get(0, 0)).abs();
        assert!(dl > 10.0 * ds, "large layer step {dl} vs small {ds}");
    }

    #[test]
    fn bias_updates_without_decay() {
        let mut w = Matrix::from_vec(1, 1, vec![1.0]);
        let mut b = vec![1.0];
        let mut opt = Lamb::new(1, 1, 0.1);
        opt.step(&mut w, &mut b, &Matrix::zeros(1, 1), &[1.0]);
        assert!(b[0] < 1.0, "bias moves against its gradient");
    }
}
