//! Evaluation metrics: AUC.

/// Area under the ROC curve via the rank statistic (Mann–Whitney U), with
/// proper tie handling. Returns 0.5 when either class is absent.
pub fn auc(scores: &[f64], labels: &[f32]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));

    // Average ranks for tied scores (1-based ranks).
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }

    let n_pos = labels.iter().filter(|&&l| l > 0.5).count() as f64;
    let n_neg = labels.len() as f64 - n_pos;
    if n_pos == 0.0 || n_neg == 0.0 {
        return 0.5;
    }
    let rank_sum: f64 = labels
        .iter()
        .zip(&ranks)
        .filter(|(&l, _)| l > 0.5)
        .map(|(_, &r)| r)
        .sum();
    (rank_sum - n_pos * (n_pos + 1.0) / 2.0) / (n_pos * n_neg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_is_one() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [0.0, 0.0, 1.0, 1.0];
        assert_eq!(auc(&scores, &labels), 1.0);
    }

    #[test]
    fn inverted_ranking_is_zero() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [0.0, 0.0, 1.0, 1.0];
        assert_eq!(auc(&scores, &labels), 0.0);
    }

    #[test]
    fn random_like_is_half() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [1.0, 0.0, 1.0, 0.0];
        assert_eq!(auc(&scores, &labels), 0.5, "all ties average to 0.5");
    }

    #[test]
    fn single_class_is_half() {
        assert_eq!(auc(&[0.1, 0.9], &[1.0, 1.0]), 0.5);
        assert_eq!(auc(&[0.1, 0.9], &[0.0, 0.0]), 0.5);
    }

    #[test]
    fn matches_pairwise_definition() {
        let scores = [0.3, 0.7, 0.6, 0.2, 0.9];
        let labels = [0.0, 1.0, 0.0, 0.0, 1.0];
        // Pairwise: P(score_pos > score_neg) + 0.5 P(tie).
        let mut wins = 0.0;
        let mut total = 0.0;
        for (i, &li) in labels.iter().enumerate() {
            if li < 0.5 {
                continue;
            }
            for (j, &lj) in labels.iter().enumerate() {
                if lj > 0.5 {
                    continue;
                }
                total += 1.0;
                if scores[i] > scores[j] {
                    wins += 1.0;
                } else if scores[i] == scores[j] {
                    wins += 0.5;
                }
            }
        }
        assert!((auc(&scores, &labels) - wins / total).abs() < 1e-12);
    }
}
